#!/usr/bin/env python3
"""Offline audit of an ENLD live stats document (docs/OBSERVABILITY.md).

Usage: check_stats.py <stats.json> [--expect-requests=<n>]
                      [--expect-tagged-ring]

Validates, with nothing but the Python standard library, the
"enld-stats-v1" JSON served by enld_server on kStats frames and scraped
with `enld_cli stats <host:port>`:

  * the schema tag is "enld-stats-v1" and uptime is positive,
  * the build block names the current frame version and a hex config
    fingerprint,
  * server/pipeline counters are non-negative integers with the obvious
    invariants (responses <= requests, completed <= submitted),
  * every histogram is internally consistent: len(bucket_counts) ==
    len(upper_bounds) + 1, the bucket counts sum to `count`, bounds are
    strictly ascending, and the p50/p90/p99 readouts are monotone and
    inside [0, last_bound],
  * the rpc/e2e_seconds histogram count equals the server's dispatched
    request count — one end-to-end observation per request, no more, no
    less,
  * ring entries carry the per-request stage breakdown and a status name.

--expect-requests=<n> additionally pins the dispatched request count;
--expect-tagged-ring fails unless at least one ring entry carries a
nonzero client-set request id — used by the serving drill to prove the
ids crossed the wire. Exits non-zero with one message per violation so
CI can gate on it.
"""

import json
import sys

SCHEMA = "enld-stats-v1"

errors = []


def fail(message):
    errors.append(message)


def require_uint(doc, key, where):
    value = doc.get(key)
    if not isinstance(value, (int, float)) or value < 0 or value != int(value):
        fail(f"{where}.{key} missing or not a non-negative integer: {value!r}")
        return None
    return int(value)


def check_histogram(name, hist):
    where = f"histograms[{name}]"
    if not isinstance(hist, dict):
        fail(f"{where} is not an object")
        return None
    count = require_uint(hist, "count", where)
    bounds = hist.get("upper_bounds")
    buckets = hist.get("bucket_counts")
    if not isinstance(bounds, list) or not isinstance(buckets, list):
        fail(f"{where} lacks upper_bounds/bucket_counts arrays")
        return count
    if len(buckets) != len(bounds) + 1:
        fail(f"{where}: {len(buckets)} bucket(s) for {len(bounds)} bound(s); "
             "want bounds + 1 (overflow)")
    for i in range(1, len(bounds)):
        if not bounds[i - 1] < bounds[i]:
            fail(f"{where}: upper_bounds not strictly ascending at {i}")
    if count is not None and sum(buckets) != count:
        fail(f"{where}: bucket_counts sum {sum(buckets)} != count {count}")
    quantiles = hist.get("quantiles")
    if not isinstance(quantiles, dict):
        fail(f"{where} lacks a quantiles object")
        return count
    readouts = []
    for q in ("p50", "p90", "p99"):
        value = quantiles.get(q)
        if not isinstance(value, (int, float)):
            fail(f"{where}.quantiles.{q} missing or not a number")
            return count
        readouts.append(value)
    p50, p90, p99 = readouts
    if not p50 <= p90 <= p99:
        fail(f"{where}: quantiles not monotone: p50={p50} p90={p90} p99={p99}")
    if bounds and count:
        if p50 < 0 or p99 > bounds[-1]:
            fail(f"{where}: quantiles escape [0, {bounds[-1]}]: "
                 f"p50={p50} p99={p99}")
    if count == 0 and any(r != 0.0 for r in readouts):
        fail(f"{where}: empty histogram must read 0 at every quantile")
    return count


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    if len(args) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    expect_requests = None
    expect_tagged_ring = False
    for arg in sys.argv[1:]:
        if arg.startswith("--expect-requests="):
            expect_requests = int(arg.split("=", 1)[1])
        elif arg == "--expect-tagged-ring":
            expect_tagged_ring = True

    try:
        with open(args[0], "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot load {args[0]}: {exc}", file=sys.stderr)
        return 1

    if doc.get("schema") != SCHEMA:
        fail(f"schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    uptime = doc.get("uptime_seconds")
    if not isinstance(uptime, (int, float)) or uptime <= 0:
        fail(f"uptime_seconds missing or not positive: {uptime!r}")

    build = doc.get("build")
    if not isinstance(build, dict):
        fail("build block missing")
    else:
        require_uint(build, "frame_version", "build")
        require_uint(build, "frame_header_bytes", "build")
        fingerprint = build.get("config_fingerprint")
        if (not isinstance(fingerprint, str) or len(fingerprint) != 16
                or any(c not in "0123456789abcdef" for c in fingerprint)):
            fail(f"build.config_fingerprint is not a 16-digit hex string: "
                 f"{fingerprint!r}")

    server = doc.get("server")
    requests = None
    if not isinstance(server, dict):
        fail("server block missing")
    else:
        for key in ("connections_accepted", "connections_rejected",
                    "connections_active", "requests", "responses",
                    "wire_errors", "dropped_frames", "deadline_propagated",
                    "stats_served"):
            require_uint(server, key, "server")
        requests = server.get("requests")
        responses = server.get("responses")
        if (isinstance(requests, (int, float))
                and isinstance(responses, (int, float))
                and responses > requests):
            fail(f"server.responses {responses} > server.requests {requests}")

    pipeline = doc.get("pipeline")
    if not isinstance(pipeline, dict):
        fail("pipeline block missing")
    else:
        for key in ("submitted", "completed", "batches", "largest_batch",
                    "queue_deadline_drops", "hol_blocked", "snapshot_writes",
                    "queue_depth"):
            require_uint(pipeline, key, "pipeline")
        submitted = pipeline.get("submitted")
        completed = pipeline.get("completed")
        if (isinstance(submitted, (int, float))
                and isinstance(completed, (int, float))
                and completed > submitted):
            fail(f"pipeline.completed {completed} > submitted {submitted}")

    ring = doc.get("recent_requests")
    tagged = 0
    if not isinstance(ring, list):
        fail("recent_requests block missing")
    else:
        for i, entry in enumerate(ring):
            where = f"recent_requests[{i}]"
            if not isinstance(entry, dict):
                fail(f"{where} is not an object")
                continue
            sequence = require_uint(entry, "sequence", where)
            request_id = require_uint(entry, "request_id", where)
            if request_id:
                tagged += 1
            if sequence is not None and i > 0:
                prev = ring[i - 1].get("sequence")
                if isinstance(prev, (int, float)) and not prev < sequence:
                    fail(f"{where}: sequence {sequence} not after {prev}")
            status = entry.get("status")
            if not isinstance(status, str) or not status:
                fail(f"{where}.status missing or empty")
            for key in ("queue_seconds", "admission_seconds",
                        "detect_seconds", "process_seconds"):
                value = entry.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    fail(f"{where}.{key} missing or negative: {value!r}")
    if expect_tagged_ring and tagged == 0:
        fail("no recent_requests entry carries a nonzero request_id "
             "(--expect-tagged-ring)")

    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        fail("metrics block missing")
    else:
        histograms = metrics.get("histograms")
        if not isinstance(histograms, dict):
            fail("metrics.histograms missing")
            histograms = {}
        e2e_count = None
        for name, hist in histograms.items():
            count = check_histogram(name, hist)
            if name == "rpc/e2e_seconds":
                e2e_count = count
        if e2e_count is None:
            fail("rpc/e2e_seconds histogram missing")
        elif requests is not None and e2e_count != requests:
            fail(f"rpc/e2e_seconds count {e2e_count} != server.requests "
                 f"{requests} (must observe exactly once per request)")

    if expect_requests is not None and requests != expect_requests:
        fail(f"server.requests is {requests}, expected {expect_requests}")

    if errors:
        for message in errors:
            print(f"check_stats: {message}", file=sys.stderr)
        return 1
    ring_len = len(ring) if isinstance(ring, list) else 0
    print(f"check_stats: OK ({requests} request(s), {ring_len} ring "
          f"entr{'y' if ring_len == 1 else 'ies'}, {tagged} tagged)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
