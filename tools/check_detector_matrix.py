#!/usr/bin/env python3
"""Validates an enld-detector-matrix-v1 JSON report (bench_detector_matrix).

Usage: check_detector_matrix.py matrix.json [--min-detectors N]

Checks the acceptance shape of the detector matrix (docs/DETECTORS.md):
schema, complete detector x dataset x noise coverage (every combination
listed in the header arrays appears exactly once among the cells), metric
ranges (precision/recall/F1 in [0, 1], timings non-negative, at least one
incremental dataset processed per cell), and the per-cell telemetry span
rows — every cell must carry a 'detector/<key>' span so per-detector
wall-clock is attributable. Exits non-zero with a message per violation.
"""

import json
import sys

REQUIRED_TOP_KEYS = ("schema", "threads", "detectors", "datasets", "noises",
                     "cells")
REQUIRED_CELL_KEYS = ("detector", "display_name", "dataset", "noise",
                      "datasets_processed", "precision", "recall", "f1",
                      "setup_seconds", "avg_process_seconds", "spans")


def check_cell(cell, idx, errors):
    where = f"cell[{idx}]"
    for key in REQUIRED_CELL_KEYS:
        if key not in cell:
            errors.append(f"{where}: missing key {key}")
            return
    where = (f"cell[{idx}] ({cell['detector']}/{cell['dataset']}"
             f"/{cell['noise']})")
    for metric in ("precision", "recall", "f1"):
        value = cell[metric]
        if not (isinstance(value, (int, float)) and 0.0 <= value <= 1.0):
            errors.append(f"{where}: {metric}={value!r} outside [0, 1]")
    for metric in ("setup_seconds", "avg_process_seconds"):
        value = cell[metric]
        if not (isinstance(value, (int, float)) and value >= 0.0):
            errors.append(f"{where}: {metric}={value!r} negative")
    if cell["datasets_processed"] < 1:
        errors.append(f"{where}: no incremental datasets processed")
    spans = cell["spans"]
    if not spans:
        errors.append(f"{where}: no telemetry spans")
        return
    paths = set()
    for span in spans:
        if not {"path", "count", "seconds"} <= set(span):
            errors.append(f"{where}: span row missing path/count/seconds")
            continue
        if span["count"] < 1:
            errors.append(f"{where}: span {span['path']} has count 0")
        if span["seconds"] < 0:
            errors.append(f"{where}: span {span['path']} negative time")
        paths.add(span["path"])
    wrapper = f"detector/{cell['detector']}"
    if wrapper not in paths:
        errors.append(f"{where}: missing per-detector span '{wrapper}'")


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    min_detectors = 1
    for arg in sys.argv[1:]:
        if arg.startswith("--min-detectors="):
            min_detectors = int(arg.split("=", 1)[1])
    if len(args) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(args[0]) as f:
        report = json.load(f)

    errors = []

    for key in REQUIRED_TOP_KEYS:
        if key not in report:
            errors.append(f"missing top-level key: {key}")
    if report.get("schema") != "enld-detector-matrix-v1":
        errors.append(f"unexpected schema: {report.get('schema')!r}")
    if errors:
        for e in errors:
            print(f"check_detector_matrix: {e}", file=sys.stderr)
        return 1

    detectors = report["detectors"]
    datasets = report["datasets"]
    noises = report["noises"]
    cells = report["cells"]
    if len(detectors) < min_detectors:
        errors.append(
            f"only {len(detectors)} detectors swept, "
            f"expected >= {min_detectors}")
    if len(set(detectors)) != len(detectors):
        errors.append("duplicate keys in 'detectors'")
    if not datasets:
        errors.append("no datasets swept")
    if len(noises) < 1:
        errors.append("no noise rates swept")

    # Full-coverage check: every header combination exactly once.
    seen = {}
    for idx, cell in enumerate(cells):
        check_cell(cell, idx, errors)
        key = (cell.get("detector"), cell.get("dataset"), cell.get("noise"))
        seen[key] = seen.get(key, 0) + 1
    for detector in detectors:
        for dataset in datasets:
            for noise in noises:
                count = seen.get((detector, dataset, noise), 0)
                if count != 1:
                    errors.append(
                        f"combination ({detector}, {dataset}, {noise}) "
                        f"appears {count} times, expected 1")
    expected = len(detectors) * len(datasets) * len(noises)
    if len(cells) != expected:
        errors.append(f"{len(cells)} cells for {expected} combinations")

    if errors:
        for e in errors:
            print(f"check_detector_matrix: {e}", file=sys.stderr)
        return 1

    print(
        f"ok: {args[0]} — {len(detectors)} detectors x {len(datasets)} "
        f"datasets x {len(noises)} noise rates = {len(cells)} cells, "
        f"threads={report['threads']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
