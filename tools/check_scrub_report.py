#!/usr/bin/env python3
"""Offline validator for ENLD self-healing reports (docs/ROBUSTNESS.md).

Usage: check_scrub_report.py <report.json> [expectations...]

Auto-detects and structurally validates, with nothing but the Python
standard library, the three report schemas the self-healing tooling
writes:

  * "enld-scrub-v1"   — `enld_cli repair --scrub_out` /
                        store::WriteScrubReportJson: counters consistent,
                        findings typed (known section/reason vocabulary),
                        `clean` agrees with the findings list, `intact`
                        is a subset of `scrubbed`;
  * "enld-repair-v1"  — `enld_cli repair --repair_out`: every action uses
                        a known method, repaired/clean/failure are
                        mutually consistent, a repaired store names a
                        published seq;
  * "enld-replay-v1"  — `enld_cli replay --replay_out`: verdict counts
                        add up (replayed + missing == records,
                        readmitted + still_rejected == replayed), each
                        outcome carries a known verdict.

Expectations (each adds failures when unmet):
  --expect-clean       scrub/repair: report must be clean
  --expect-findings    scrub: at least one finding
                       repair: scrub_findings > 0
  --expect-repaired    repair: `repaired` must be true
  --expect-readmitted  replay: at least one readmitted sample, none
                       still rejected or missing
  --schema=<name>      fail unless the report carries this exact schema

Exit codes: 0 = report valid (and expectations met); 3 = validation or
expectation failures; 2 = usage error; 1 = unreadable/malformed input.
"""

import json
import sys

SECTIONS = {"file", "header", "manifest", "pointer", "geometry"}
REASONS = {"missing", "unreadable", "malformed", "bad_magic", "truncated",
           "size_mismatch", "crc_mismatch", "mismatch", "dangling",
           "trailing_bytes"}
METHODS = {"section_rebuild", "donor_file", "donor_rows",
           "dataset_manifest_rebuild", "manifest_rebuild",
           "current_rebuild", "rollback", "gc"}
VERDICTS = {"readmitted", "still_rejected", "missing"}

errors = []


def fail(message):
    errors.append(message)


def require_uint(doc, key, context=""):
    value = doc.get(key)
    where = f"{context}{key}"
    if not isinstance(value, (int, float)) or isinstance(value, bool) \
            or value < 0 or value != int(value):
        fail(f"field '{where}' missing or not a non-negative integer: "
             f"{value!r}")
        return None
    return int(value)


def require_bool(doc, key, context=""):
    value = doc.get(key)
    if not isinstance(value, bool):
        fail(f"field '{context}{key}' missing or not a boolean: {value!r}")
        return None
    return value


def require_str(doc, key, context="", nonempty=True):
    value = doc.get(key)
    if not isinstance(value, str) or (nonempty and not value):
        fail(f"field '{context}{key}' missing or not a "
             f"{'non-empty ' if nonempty else ''}string: {value!r}")
        return None
    return value


def require_list(doc, key):
    value = doc.get(key)
    if not isinstance(value, list):
        fail(f"field '{key}' missing or not an array")
        return []
    return value


def check_findings(findings):
    for i, finding in enumerate(findings):
        if not isinstance(finding, dict):
            fail(f"findings[{i}] is not an object")
            continue
        require_uint(finding, "seq", f"findings[{i}].")
        require_str(finding, "file", f"findings[{i}].", nonempty=False)
        section = require_str(finding, "section", f"findings[{i}].")
        if section is not None and section not in SECTIONS \
                and not section.startswith("section-"):
            fail(f"findings[{i}] has unknown section {section!r}")
        reason = require_str(finding, "reason", f"findings[{i}].")
        if reason is not None and reason not in REASONS:
            fail(f"findings[{i}] has unknown reason {reason!r}")
        require_str(finding, "detail", f"findings[{i}].")


def check_scrub(doc, expect):
    scrubbed = require_list(doc, "scrubbed")
    intact = require_list(doc, "intact")
    if not set(intact) <= set(scrubbed):
        fail("intact snapshots are not a subset of scrubbed snapshots")
    require_uint(doc, "files_checked")
    require_uint(doc, "sections_checked")
    require_uint(doc, "bytes_scrubbed")
    findings = require_list(doc, "findings")
    check_findings(findings)
    clean = require_bool(doc, "clean")
    if clean is not None and clean != (not findings):
        fail(f"clean={clean} disagrees with {len(findings)} finding(s)")
    if expect.get("clean") and findings:
        fail(f"expected a clean scrub, got {len(findings)} finding(s)")
    if expect.get("findings") and not findings:
        fail("expected scrub findings, got none")
    return f"{len(findings)} finding(s)"


def check_repair(doc, expect):
    repaired = require_bool(doc, "repaired")
    clean = require_bool(doc, "clean")
    require_bool(doc, "dry_run")
    failure = require_str(doc, "failure", nonempty=False)
    published = require_uint(doc, "published_seq")
    require_uint(doc, "target_seq")
    scrub_findings = require_uint(doc, "scrub_findings")
    require_list(doc, "intact")
    actions = require_list(doc, "actions")
    for i, action in enumerate(actions):
        if not isinstance(action, dict):
            fail(f"actions[{i}] is not an object")
            continue
        require_uint(action, "seq", f"actions[{i}].")
        method = require_str(action, "method", f"actions[{i}].")
        if method is not None and method not in METHODS:
            fail(f"actions[{i}] has unknown method {method!r}")
        require_str(action, "detail", f"actions[{i}].")
    if clean and repaired:
        fail("a store cannot be both already-clean and repaired")
    if clean and actions:
        fail(f"clean=true but {len(actions)} action(s) were taken")
    if repaired and failure:
        fail(f"repaired=true alongside failure {failure!r}")
    if repaired and not doc.get("dry_run") and published == 0:
        fail("repaired=true but no published_seq")
    if not repaired and not clean and not doc.get("dry_run") and not failure:
        fail("neither clean, repaired, dry_run nor failed — "
             "inconsistent report")
    if expect.get("clean") and not clean:
        fail("expected an already-clean store")
    if expect.get("findings") and not scrub_findings:
        fail("expected scrub findings, got none")
    if expect.get("repaired") and not repaired:
        fail(f"expected repaired=true (failure: {failure!r})")
    verdict = "clean" if clean else \
        ("repaired" if repaired else f"failed: {failure!r}")
    return f"{verdict}, {len(actions)} action(s)"


def check_replay(doc, expect):
    records = require_uint(doc, "records")
    replayed = require_uint(doc, "replayed")
    missing = require_uint(doc, "missing")
    readmitted = require_uint(doc, "readmitted")
    still_rejected = require_uint(doc, "still_rejected")
    require_bool(doc, "quarantine_truncated")
    require_bool(doc, "processed")
    require_bool(doc, "all_readmitted")
    counts = (records, replayed, missing, readmitted, still_rejected)
    if None not in counts:
        if replayed + missing != records:
            fail(f"replayed {replayed} + missing {missing} != "
                 f"records {records}")
        if readmitted + still_rejected != replayed:
            fail(f"readmitted {readmitted} + still_rejected "
                 f"{still_rejected} != replayed {replayed}")
    by_reason = doc.get("still_rejected_by_reason")
    if not isinstance(by_reason, dict):
        fail("field 'still_rejected_by_reason' missing or not an object")
    elif still_rejected is not None \
            and sum(by_reason.values()) != still_rejected:
        fail(f"still_rejected_by_reason sums to {sum(by_reason.values())}, "
             f"not {still_rejected}")
    outcomes = require_list(doc, "outcomes")
    if records is not None and len(outcomes) != records:
        fail(f"{len(outcomes)} outcome(s) for {records} record(s)")
    for i, outcome in enumerate(outcomes):
        if not isinstance(outcome, dict):
            fail(f"outcomes[{i}] is not an object")
            continue
        require_uint(outcome, "sample_id", f"outcomes[{i}].")
        verdict = require_str(outcome, "verdict", f"outcomes[{i}].")
        if verdict is not None and verdict not in VERDICTS:
            fail(f"outcomes[{i}] has unknown verdict {verdict!r}")
        if verdict == "still_rejected" and not outcome.get("reason"):
            fail(f"outcomes[{i}] still_rejected without a fresh reason")
    if expect.get("readmitted"):
        if not readmitted:
            fail("expected readmitted samples, got none")
        if still_rejected or missing:
            fail(f"expected a full readmission, got {still_rejected} still "
                 f"rejected and {missing} missing")
    return (f"{readmitted}/{records} readmitted, {still_rejected} still "
            f"rejected, {missing} missing")


CHECKERS = {
    "enld-scrub-v1": check_scrub,
    "enld-repair-v1": check_repair,
    "enld-replay-v1": check_replay,
}


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    expect = {
        "clean": "--expect-clean" in sys.argv[1:],
        "findings": "--expect-findings" in sys.argv[1:],
        "repaired": "--expect-repaired" in sys.argv[1:],
        "readmitted": "--expect-readmitted" in sys.argv[1:],
    }
    want_schema = None
    known = {"--expect-clean", "--expect-findings", "--expect-repaired",
             "--expect-readmitted"}
    for arg in sys.argv[1:]:
        if arg.startswith("--schema="):
            want_schema = arg[len("--schema="):]
        elif arg.startswith("--") and arg not in known:
            print(f"unknown flag {arg}", file=sys.stderr)
            print(__doc__)
            return 2
    if len(args) != 1:
        print(__doc__)
        return 2
    path = args[0]

    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"FAIL {path}: unreadable or malformed JSON: {e}",
              file=sys.stderr)
        return 1

    schema = doc.get("schema")
    checker = CHECKERS.get(schema)
    if checker is None:
        print(f"FAIL {path}: unknown report schema {schema!r} "
              f"(expected one of {sorted(CHECKERS)})", file=sys.stderr)
        return 1
    if want_schema is not None and schema != want_schema:
        fail(f"schema {schema!r} != required {want_schema!r}")

    summary = checker(doc, expect)

    if errors:
        for message in errors:
            print(f"FAIL {path}: {message}", file=sys.stderr)
        print(f"{len(errors)} violation(s) in {path}", file=sys.stderr)
        return 3
    print(f"OK: {schema} report {path} verified ({summary})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
