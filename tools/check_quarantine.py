#!/usr/bin/env python3
"""Offline audit of an ENLD quarantine log (docs/ROBUSTNESS.md).

Usage: check_quarantine.py <quarantine.json> [--expect-nonempty]

Validates, with nothing but the Python standard library, the JSON file
written by WriteQuarantineJson / `enld_cli validate --quarantine_out` /
`data_platform_stream --quarantine_out`:

  * the schema tag is "enld-quarantine-v1",
  * total/recorded/capacity are consistent non-negative integers
    (recorded == len(records), recorded <= capacity, total >= recorded),
  * every record carries a known reason name, a non-empty human-readable
    detail, and integer request/row/sample_id fields,
  * kNonFiniteFeature records name the offending column,
  * the "truncated" marker agrees with the counters (truncated iff
    total > recorded). A truncated log draws a warning: records were
    dropped at write time, so `enld_cli replay` cannot re-screen them.

With --expect-nonempty the audit additionally fails when the log holds no
records — used by CI to prove a drill actually quarantined something.
Exits non-zero with one message per violation so CI can gate on it.
"""

import json
import sys

SCHEMA = "enld-quarantine-v1"
REASONS = {
    "non_finite_feature",
    "observed_label_out_of_range",
    "true_label_out_of_range",
}

errors = []


def fail(message):
    errors.append(message)


def require_uint(doc, key):
    value = doc.get(key)
    if not isinstance(value, (int, float)) or value < 0 or value != int(value):
        fail(f"field '{key}' missing or not a non-negative integer: {value!r}")
        return None
    return int(value)


def check_record(i, record):
    if not isinstance(record, dict):
        fail(f"records[{i}] is not an object")
        return
    reason = record.get("reason")
    if reason not in REASONS:
        fail(f"records[{i}] has unknown reason {reason!r}")
    detail = record.get("detail")
    if not isinstance(detail, str) or not detail.strip():
        fail(f"records[{i}] has an empty detail message")
    for key in ("request", "row", "sample_id"):
        value = record.get(key)
        if not isinstance(value, (int, float)) or value < 0:
            fail(f"records[{i}].{key} missing or negative: {value!r}")
    if reason == "non_finite_feature":
        column = record.get("column")
        if not isinstance(column, (int, float)) or column < 0:
            fail(f"records[{i}] lacks the offending column: {column!r}")
    # `value` is serialized as a string because NaN — the typical offender —
    # is not representable in JSON.
    if not isinstance(record.get("value"), str):
        fail(f"records[{i}].value is not a string")


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    expect_nonempty = "--expect-nonempty" in sys.argv[1:]
    if len(args) != 1:
        print(__doc__)
        return 2
    path = args[0]

    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"FAIL {path}: unreadable or malformed JSON: {e}",
              file=sys.stderr)
        return 1

    if doc.get("schema") != SCHEMA:
        fail(f"schema {doc.get('schema')!r} != {SCHEMA!r}")

    total = require_uint(doc, "total")
    recorded = require_uint(doc, "recorded")
    capacity = require_uint(doc, "capacity")
    records = doc.get("records")
    if not isinstance(records, list):
        fail("field 'records' missing or not an array")
        records = []

    if recorded is not None and recorded != len(records):
        fail(f"recorded {recorded} != len(records) {len(records)}")
    if None not in (recorded, capacity) and recorded > capacity:
        fail(f"recorded {recorded} exceeds capacity {capacity}")
    if None not in (total, recorded) and total < recorded:
        fail(f"total {total} < recorded {recorded}")

    truncated = doc.get("truncated")
    if truncated is not None and not isinstance(truncated, bool):
        fail(f"field 'truncated' is not a boolean: {truncated!r}")
    elif None not in (total, recorded):
        # Older files predate the marker; when present it must agree with
        # the counters.
        if truncated is not None and truncated != (total > recorded):
            fail(f"truncated marker {truncated} disagrees with counters "
                 f"(total {total}, recorded {recorded})")
        if total > recorded:
            print(f"WARN {path}: log truncated at capacity — "
                  f"{total - recorded} record(s) were dropped and cannot "
                  f"be replayed", file=sys.stderr)

    for i, record in enumerate(records):
        check_record(i, record)

    if expect_nonempty and not records:
        fail("expected a non-empty quarantine log, got zero records")

    if errors:
        for message in errors:
            print(f"FAIL {path}: {message}", file=sys.stderr)
        print(f"{len(errors)} violation(s) in {path}", file=sys.stderr)
        return 1
    print(f"OK: quarantine log {path} verified "
          f"({len(records)} record(s), {total} total)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
