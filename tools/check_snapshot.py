#!/usr/bin/env python3
"""Offline integrity audit of an ENLD snapshot store.

Usage: check_snapshot.py <snapshot_root> [--all] [--json=<path>]

Walks the snapshot directory written by SnapshotStore (docs/PERSISTENCE.md)
and re-verifies, with nothing but the Python standard library:

  * the CURRENT pointer names an existing snapshot directory,
  * MANIFEST.json parses, carries the expected schema/seq, and every
    listed file matches its recorded byte size and CRC32 (zlib.crc32 —
    the store writes the same IEEE polynomial),
  * each dataset directory's manifest.json is consistent (shard row
    totals, per-shard size + CRC32),
  * every shard starts with the ENLDSHD1 magic and little-endian tag,
  * state.bin parses structurally: ENLDSNP1 magic, endian tag, version
    (1, 2 or 3), and every section's payload CRC matches its envelope
    (v1: meta/stats/rng/conditional/selected; v2 appends admission; v3
    extends the admission payload with the deadline-exceeded counter).

By default only the snapshot CURRENT points at is audited; --all checks
every snap-* directory present. Violations are typed findings — one
"FAIL <path> [<section>/<reason>] <detail>" line each on stderr, and,
with --json=<path>, a machine-readable report (schema
"enld-snapshot-audit-v1") for downstream tooling.

Exit codes: 0 = store verified clean; 3 = integrity violations found;
2 = usage error; 1 = hard error (unwritable --json output). CI callers
gating on zero/nonzero are unaffected by the 1 -> 3 split.
"""

import json
import os
import struct
import sys
import zlib

SNAPSHOT_SCHEMA = "enld-snapshot-manifest-v1"
DATASET_SCHEMA = "enld-dataset-manifest-v1"
AUDIT_SCHEMA = "enld-snapshot-audit-v1"
SNAPSHOT_MAGIC = b"ENLDSNP1"
SHARD_MAGIC = b"ENLDSHD1"
ENDIAN_TAG = 0x01020304
# meta, stats, rng, conditional, selected (+ admission in v2/v3)
STATE_SECTION_IDS_BY_VERSION = {
    1: (1, 2, 3, 4, 5),
    2: (1, 2, 3, 4, 5, 6),
    3: (1, 2, 3, 4, 5, 6),
}

# Typed findings, mirroring the C++ scrubber's vocabulary
# (src/store/scrub.h): section in {"file", "header", "section-<id>",
# "manifest", "pointer", "geometry"}, reason in {"missing", "unreadable",
# "malformed", "bad_magic", "truncated", "size_mismatch", "crc_mismatch",
# "mismatch", "dangling"}.
findings = []


def fail(path, detail, section="file", reason="mismatch"):
    findings.append({"path": path, "section": section, "reason": reason,
                     "detail": detail})


def check_file_crc(path, expect_bytes, expect_crc):
    try:
        with open(path, "rb") as f:
            data = f.read()
    except OSError as e:
        fail(path, f"unreadable: {e}", reason="unreadable")
        return None
    if len(data) != expect_bytes:
        fail(path, f"size {len(data)} != manifest bytes {expect_bytes}",
             reason="size_mismatch")
    crc = zlib.crc32(data) & 0xFFFFFFFF
    if crc != expect_crc:
        fail(path, f"crc32 {crc:#010x} != manifest crc32 {expect_crc:#010x}",
             reason="crc_mismatch")
    return data


def check_sections(path, data, offset, expected_ids):
    """Verifies a run of (id u32, len u64, crc u32, payload) envelopes."""
    for section_id in expected_ids:
        section = f"section-{section_id}"
        if offset + 16 > len(data):
            fail(path, f"truncated before section {section_id}",
                 section=section, reason="truncated")
            return
        sid, length, crc = struct.unpack_from("<IQI", data, offset)
        offset += 16
        if sid != section_id:
            fail(path, f"section id {sid} where {section_id} expected",
                 section=section, reason="malformed")
            return
        if offset + length > len(data):
            fail(path, f"section {sid} payload truncated",
                 section=section, reason="truncated")
            return
        payload = data[offset : offset + length]
        offset += length
        if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
            fail(path, f"section {sid} payload fails its CRC",
                 section=section, reason="crc_mismatch")
    if offset != len(data):
        fail(path, f"{len(data) - offset} trailing bytes after last section",
             reason="malformed")


def check_state_bin(path, data):
    if not data.startswith(SNAPSHOT_MAGIC):
        fail(path, "bad magic (not an ENLD snapshot state file)",
             section="header", reason="bad_magic")
        return
    if len(data) < 20:
        fail(path, "truncated header", section="header", reason="truncated")
        return
    endian, version = struct.unpack_from("<II", data, 8)
    if endian != ENDIAN_TAG:
        fail(path, f"byte-order tag {endian:#010x} != {ENDIAN_TAG:#010x}",
             section="header", reason="malformed")
        return
    section_ids = STATE_SECTION_IDS_BY_VERSION.get(version)
    if section_ids is None:
        fail(path, f"unsupported state version {version}",
             section="header", reason="malformed")
        return
    (count,) = struct.unpack_from("<I", data, 16)
    if count != len(section_ids):
        fail(path, f"section count {count} != {len(section_ids)}",
             section="header", reason="malformed")
        return
    check_sections(path, data, 20, section_ids)


def check_shard_header(path, data):
    if not data.startswith(SHARD_MAGIC):
        fail(path, "bad magic (not an ENLD shard)",
             section="header", reason="bad_magic")
        return
    endian, version = struct.unpack_from("<II", data, 8)
    if endian != ENDIAN_TAG:
        fail(path, f"byte-order tag {endian:#010x} != {ENDIAN_TAG:#010x}",
             section="header", reason="malformed")
    if version != 1:
        fail(path, f"unsupported shard version {version}",
             section="header", reason="malformed")


def load_json(path, schema):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        fail(path, f"unreadable: {e}", section="manifest", reason="unreadable")
        return None
    except ValueError as e:
        fail(path, f"malformed JSON: {e}", section="manifest",
             reason="malformed")
        return None
    if doc.get("schema") != schema:
        fail(path, f"schema {doc.get('schema')!r} != {schema!r}",
             section="manifest", reason="malformed")
        return None
    return doc


def check_dataset_dir(dataset_dir):
    manifest = load_json(os.path.join(dataset_dir, "manifest.json"),
                         DATASET_SCHEMA)
    if manifest is None:
        return
    listed_rows = 0
    for entry in manifest.get("shards", []):
        shard_path = os.path.join(dataset_dir, entry["file"])
        listed_rows += int(entry["rows"])
        data = check_file_crc(shard_path, int(entry["bytes"]),
                              int(entry["crc32"]))
        if data is not None and len(data) >= 16:
            check_shard_header(shard_path, data)
    if listed_rows != int(manifest.get("num_rows", -1)):
        fail(dataset_dir,
             f"shard rows total {listed_rows} != num_rows "
             f"{manifest.get('num_rows')}",
             section="geometry")


def check_snapshot_dir(snap_dir, expect_seq):
    manifest = load_json(os.path.join(snap_dir, "MANIFEST.json"),
                         SNAPSHOT_SCHEMA)
    if manifest is None:
        return
    if int(manifest.get("seq", -1)) != expect_seq:
        fail(snap_dir,
             f"manifest seq {manifest.get('seq')} != directory seq "
             f"{expect_seq}",
             section="manifest")
    listed = {e["file"] for e in manifest.get("files", [])}
    for required in ("state.bin", "model.bin"):
        if required not in listed:
            fail(snap_dir, f"manifest does not list {required}",
                 section="manifest", reason="missing")
    for entry in manifest.get("files", []):
        path = os.path.join(snap_dir, entry["file"])
        data = check_file_crc(path, int(entry["bytes"]), int(entry["crc32"]))
        if data is not None and entry["file"] == "state.bin":
            check_state_bin(path, data)
    for dataset in manifest.get("datasets", []):
        dataset_dir = os.path.join(snap_dir, dataset)
        if not os.path.isdir(dataset_dir):
            fail(snap_dir, f"listed dataset directory missing: {dataset}",
                 reason="missing")
            continue
        check_dataset_dir(dataset_dir)


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    check_all = "--all" in sys.argv[1:]
    json_out = None
    for arg in sys.argv[1:]:
        if arg.startswith("--json="):
            json_out = arg[len("--json="):]
        elif arg.startswith("--") and arg != "--all":
            print(f"unknown flag {arg}", file=sys.stderr)
            print(__doc__)
            return 2
    if len(args) != 1:
        print(__doc__)
        return 2
    root = args[0]

    current_path = os.path.join(root, "CURRENT")
    try:
        with open(current_path, "r", encoding="utf-8") as f:
            current = f.read().strip()
    except OSError as e:
        fail(current_path, f"unreadable: {e}", section="pointer",
             reason="unreadable")
        current = None

    current_seq = None
    if current is not None:
        if (len(current) == 11 and current.startswith("snap-")
                and current[5:].isdigit() and int(current[5:]) > 0):
            current_seq = int(current[5:])
            if not os.path.isdir(os.path.join(root, current)):
                fail(current_path, f"points at missing directory {current}",
                     section="pointer", reason="dangling")
                current_seq = None
        else:
            fail(current_path, f"malformed pointer {current!r}",
                 section="pointer", reason="malformed")

    if check_all:
        targets = sorted(
            int(name[5:]) for name in os.listdir(root)
            if len(name) == 11 and name.startswith("snap-")
            and name[5:].isdigit())
    else:
        targets = [current_seq] if current_seq is not None else []

    for seq in targets:
        check_snapshot_dir(os.path.join(root, f"snap-{seq:06d}"), seq)

    if json_out is not None:
        report = {
            "schema": AUDIT_SCHEMA,
            "root": root,
            "current_seq": current_seq or 0,
            "audited": [f"snap-{seq:06d}" for seq in targets],
            "clean": not findings,
            "findings": findings,
        }
        try:
            with open(json_out, "w", encoding="utf-8") as f:
                json.dump(report, f, indent=2)
                f.write("\n")
        except OSError as e:
            print(f"FAIL cannot write {json_out}: {e}", file=sys.stderr)
            return 1

    if findings:
        for finding in findings:
            print(f"FAIL {finding['path']} "
                  f"[{finding['section']}/{finding['reason']}] "
                  f"{finding['detail']}", file=sys.stderr)
        print(f"{len(findings)} integrity violation(s) in {root}",
              file=sys.stderr)
        return 3
    audited = ", ".join(f"snap-{seq:06d}" for seq in targets) or "(none)"
    print(f"OK: snapshot store {root} verified ({audited})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
