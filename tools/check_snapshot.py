#!/usr/bin/env python3
"""Offline integrity audit of an ENLD snapshot store.

Usage: check_snapshot.py <snapshot_root> [--all]

Walks the snapshot directory written by SnapshotStore (docs/PERSISTENCE.md)
and re-verifies, with nothing but the Python standard library:

  * the CURRENT pointer names an existing snapshot directory,
  * MANIFEST.json parses, carries the expected schema/seq, and every
    listed file matches its recorded byte size and CRC32 (zlib.crc32 —
    the store writes the same IEEE polynomial),
  * each dataset directory's manifest.json is consistent (shard row
    totals, per-shard size + CRC32),
  * every shard starts with the ENLDSHD1 magic and little-endian tag,
  * state.bin parses structurally: ENLDSNP1 magic, endian tag, version
    (1, 2 or 3), and every section's payload CRC matches its envelope
    (v1: meta/stats/rng/conditional/selected; v2 appends admission; v3
    extends the admission payload with the deadline-exceeded counter).

By default only the snapshot CURRENT points at is audited; --all checks
every snap-* directory present. Exits non-zero with one message per
violation, so CI can gate on it.
"""

import json
import os
import struct
import sys
import zlib

SNAPSHOT_SCHEMA = "enld-snapshot-manifest-v1"
DATASET_SCHEMA = "enld-dataset-manifest-v1"
SNAPSHOT_MAGIC = b"ENLDSNP1"
SHARD_MAGIC = b"ENLDSHD1"
ENDIAN_TAG = 0x01020304
# meta, stats, rng, conditional, selected (+ admission in v2/v3)
STATE_SECTION_IDS_BY_VERSION = {
    1: (1, 2, 3, 4, 5),
    2: (1, 2, 3, 4, 5, 6),
    3: (1, 2, 3, 4, 5, 6),
}

errors = []


def fail(path, message):
    errors.append(f"{path}: {message}")


def check_file_crc(path, expect_bytes, expect_crc):
    try:
        with open(path, "rb") as f:
            data = f.read()
    except OSError as e:
        fail(path, f"unreadable: {e}")
        return None
    if len(data) != expect_bytes:
        fail(path, f"size {len(data)} != manifest bytes {expect_bytes}")
    crc = zlib.crc32(data) & 0xFFFFFFFF
    if crc != expect_crc:
        fail(path, f"crc32 {crc:#010x} != manifest crc32 {expect_crc:#010x}")
    return data


def check_sections(path, data, offset, expected_ids):
    """Verifies a run of (id u32, len u64, crc u32, payload) envelopes."""
    for section_id in expected_ids:
        if offset + 16 > len(data):
            fail(path, f"truncated before section {section_id}")
            return
        sid, length, crc = struct.unpack_from("<IQI", data, offset)
        offset += 16
        if sid != section_id:
            fail(path, f"section id {sid} where {section_id} expected")
            return
        if offset + length > len(data):
            fail(path, f"section {sid} payload truncated")
            return
        payload = data[offset : offset + length]
        offset += length
        if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
            fail(path, f"section {sid} payload fails its CRC")
    if offset != len(data):
        fail(path, f"{len(data) - offset} trailing bytes after last section")


def check_state_bin(path, data):
    if not data.startswith(SNAPSHOT_MAGIC):
        fail(path, "bad magic (not an ENLD snapshot state file)")
        return
    if len(data) < 20:
        fail(path, "truncated header")
        return
    endian, version = struct.unpack_from("<II", data, 8)
    if endian != ENDIAN_TAG:
        fail(path, f"byte-order tag {endian:#010x} != {ENDIAN_TAG:#010x}")
        return
    section_ids = STATE_SECTION_IDS_BY_VERSION.get(version)
    if section_ids is None:
        fail(path, f"unsupported state version {version}")
        return
    (count,) = struct.unpack_from("<I", data, 16)
    if count != len(section_ids):
        fail(path, f"section count {count} != {len(section_ids)}")
        return
    check_sections(path, data, 20, section_ids)


def check_shard_header(path, data):
    if not data.startswith(SHARD_MAGIC):
        fail(path, "bad magic (not an ENLD shard)")
        return
    endian, version = struct.unpack_from("<II", data, 8)
    if endian != ENDIAN_TAG:
        fail(path, f"byte-order tag {endian:#010x} != {ENDIAN_TAG:#010x}")
    if version != 1:
        fail(path, f"unsupported shard version {version}")


def load_json(path, schema):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        fail(path, f"unreadable or malformed JSON: {e}")
        return None
    if doc.get("schema") != schema:
        fail(path, f"schema {doc.get('schema')!r} != {schema!r}")
        return None
    return doc


def check_dataset_dir(dataset_dir):
    manifest = load_json(os.path.join(dataset_dir, "manifest.json"),
                         DATASET_SCHEMA)
    if manifest is None:
        return
    listed_rows = 0
    for entry in manifest.get("shards", []):
        shard_path = os.path.join(dataset_dir, entry["file"])
        listed_rows += int(entry["rows"])
        data = check_file_crc(shard_path, int(entry["bytes"]),
                              int(entry["crc32"]))
        if data is not None and len(data) >= 16:
            check_shard_header(shard_path, data)
    if listed_rows != int(manifest.get("num_rows", -1)):
        fail(dataset_dir,
             f"shard rows total {listed_rows} != num_rows "
             f"{manifest.get('num_rows')}")


def check_snapshot_dir(snap_dir, expect_seq):
    manifest = load_json(os.path.join(snap_dir, "MANIFEST.json"),
                         SNAPSHOT_SCHEMA)
    if manifest is None:
        return
    if int(manifest.get("seq", -1)) != expect_seq:
        fail(snap_dir,
             f"manifest seq {manifest.get('seq')} != directory seq "
             f"{expect_seq}")
    listed = {e["file"] for e in manifest.get("files", [])}
    for required in ("state.bin", "model.bin"):
        if required not in listed:
            fail(snap_dir, f"manifest does not list {required}")
    for entry in manifest.get("files", []):
        path = os.path.join(snap_dir, entry["file"])
        data = check_file_crc(path, int(entry["bytes"]), int(entry["crc32"]))
        if data is not None and entry["file"] == "state.bin":
            check_state_bin(path, data)
    for dataset in manifest.get("datasets", []):
        dataset_dir = os.path.join(snap_dir, dataset)
        if not os.path.isdir(dataset_dir):
            fail(snap_dir, f"listed dataset directory missing: {dataset}")
            continue
        check_dataset_dir(dataset_dir)


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    check_all = "--all" in sys.argv[1:]
    if len(args) != 1:
        print(__doc__)
        return 2
    root = args[0]

    current_path = os.path.join(root, "CURRENT")
    try:
        with open(current_path, "r", encoding="utf-8") as f:
            current = f.read().strip()
    except OSError as e:
        fail(current_path, f"unreadable: {e}")
        current = None

    current_seq = None
    if current is not None:
        if (len(current) == 11 and current.startswith("snap-")
                and current[5:].isdigit() and int(current[5:]) > 0):
            current_seq = int(current[5:])
            if not os.path.isdir(os.path.join(root, current)):
                fail(current_path, f"points at missing directory {current}")
                current_seq = None
        else:
            fail(current_path, f"malformed pointer {current!r}")

    if check_all:
        targets = sorted(
            int(name[5:]) for name in os.listdir(root)
            if len(name) == 11 and name.startswith("snap-")
            and name[5:].isdigit())
    else:
        targets = [current_seq] if current_seq is not None else []

    for seq in targets:
        check_snapshot_dir(os.path.join(root, f"snap-{seq:06d}"), seq)

    if errors:
        for message in errors:
            print(f"FAIL {message}", file=sys.stderr)
        print(f"{len(errors)} integrity violation(s) in {root}",
              file=sys.stderr)
        return 1
    audited = ", ".join(f"snap-{seq:06d}" for seq in targets) or "(none)"
    print(f"OK: snapshot store {root} verified ({audited})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
