#!/usr/bin/env python3
"""Validates an enld-telemetry-v1 JSON run report.

Usage: check_telemetry_report.py report.json

Checks the acceptance shape of the telemetry subsystem (docs/OBSERVABILITY.md):
schema and top-level keys, a nested span tree with setup/detect phases at
least two child levels deep, a reasonably populated metrics registry, and
the per-iteration detection series. Exits non-zero with a message per
violation.
"""

import json
import sys

REQUIRED_TOP_KEYS = ("schema", "method", "noise_rate", "threads", "spans",
                     "metrics", "quality")
REQUIRED_SERIES = ("detect/clean_size", "detect/ambiguous_size", "eval/f1")
REQUIRED_COUNTERS = ("detect/votes_cast", "knn/queries", "train/steps")
REQUIRED_HISTOGRAMS = ("detect/vote_margin",)
MIN_DISTINCT_METRICS = 10  # counters + histograms


def span_depth(span):
    children = span.get("children", [])
    if not children:
        return 0
    return 1 + max(span_depth(c) for c in children)


def find_span(span, name):
    if span.get("name") == name:
        return span
    for child in span.get("children", []):
        found = find_span(child, name)
        if found is not None:
            return found
    return None


def main():
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        report = json.load(f)

    errors = []

    for key in REQUIRED_TOP_KEYS:
        if key not in report:
            errors.append(f"missing top-level key: {key}")
    if report.get("schema") != "enld-telemetry-v1":
        errors.append(f"unexpected schema: {report.get('schema')!r}")

    spans = report.get("spans", {})
    for phase in ("setup", "detect"):
        node = find_span(spans, phase)
        if node is None:
            errors.append(f"span tree has no '{phase}' node")
        elif span_depth(node) < 1:
            errors.append(f"span '{phase}' has no children")
    # Nesting requirement: >= 2 child levels below the root, e.g.
    # detect > detect/iteration > detect/finetune.
    if span_depth(spans) < 3:
        errors.append(
            f"span tree depth {span_depth(spans)} < 3 (root > phase > "
            "child > grandchild expected)")

    metrics = report.get("metrics", {})
    counters = metrics.get("counters", {})
    histograms = metrics.get("histograms", {})
    series = metrics.get("series", {})

    distinct = len(counters) + len(histograms)
    if distinct < MIN_DISTINCT_METRICS:
        errors.append(
            f"only {distinct} distinct counters+histograms, "
            f"expected >= {MIN_DISTINCT_METRICS}")
    for name in REQUIRED_COUNTERS:
        if name not in counters:
            errors.append(f"missing counter: {name}")
    for name in REQUIRED_HISTOGRAMS:
        if name not in histograms:
            errors.append(f"missing histogram: {name}")
        elif histograms[name].get("count", 0) <= 0:
            errors.append(f"histogram {name} has no observations")
    for name in REQUIRED_SERIES:
        if name not in series:
            errors.append(f"missing series: {name}")
        elif not series[name]:
            errors.append(f"series {name} is empty")

    if errors:
        for e in errors:
            print(f"check_telemetry_report: {e}", file=sys.stderr)
        return 1

    print(
        f"ok: {sys.argv[1]} — method={report['method']} "
        f"threads={report['threads']} span_depth={span_depth(spans)} "
        f"counters={len(counters)} histograms={len(histograms)} "
        f"series={len(series)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
