#!/usr/bin/env python3
"""Validates a bench_serving telemetry run report (docs/SERVING.md §6).

Usage: check_serving_report.py report.json

Asserts the open-loop serving bench actually measured what it claims:
an enld-telemetry-v1 report with p50/p99 latency quality keys for every
(connections, qps) cell, sane percentile ordering (p50 <= p99), wire
traffic recorded on the rpc/* byte counters, and at least one detect
request served through the platform. Exits non-zero with a message per
violation.
"""

import json
import sys


def main():
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        report = json.load(f)

    errors = []

    if report.get("schema") != "enld-telemetry-v1":
        errors.append(f"unexpected schema: {report.get('schema')!r}")
    if report.get("method") != "bench-serving":
        errors.append(f"unexpected method: {report.get('method')!r}")

    quality = report.get("quality", {})
    cells = sorted({key.rsplit("_", 2)[0] for key in quality
                    if key.endswith("_p50_ms")})
    if not cells:
        errors.append("no *_p50_ms latency cells in quality")
    for cell in cells:
        p50 = quality.get(f"{cell}_p50_ms")
        p99 = quality.get(f"{cell}_p99_ms")
        qps = quality.get(f"{cell}_achieved_qps")
        if p99 is None:
            errors.append(f"cell {cell}: p50 present but p99 missing")
            continue
        if not (0 < p50 <= p99):
            errors.append(
                f"cell {cell}: bad percentile ordering p50={p50} p99={p99}")
        if qps is None or qps <= 0:
            errors.append(f"cell {cell}: achieved qps missing or zero")

    counters = report.get("metrics", {}).get("counters", {})
    for name in ("rpc/bytes_read", "rpc/bytes_written", "rpc/requests",
                 "rpc/responses"):
        if counters.get(name, 0) <= 0:
            errors.append(f"counter {name} missing or zero")
    if counters.get("rpc/responses", 0) > counters.get("rpc/requests", 0):
        errors.append("more responses than requests on the rpc counters")
    if counters.get("pipeline/completed", 0) <= 0:
        errors.append("pipeline served no requests")

    if errors:
        for error in errors:
            print(f"serving report: {error}", file=sys.stderr)
        return 1
    print(f"serving report OK: {len(cells)} cell(s), "
          f"{int(counters.get('rpc/requests', 0))} wire request(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
