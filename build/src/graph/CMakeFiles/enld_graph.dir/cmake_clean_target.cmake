file(REMOVE_RECURSE
  "libenld_graph.a"
)
