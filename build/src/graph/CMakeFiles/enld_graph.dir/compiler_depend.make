# Empty compiler generated dependencies file for enld_graph.
# This may be replaced when dependencies are built.
