
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/knn_graph.cc" "src/graph/CMakeFiles/enld_graph.dir/knn_graph.cc.o" "gcc" "src/graph/CMakeFiles/enld_graph.dir/knn_graph.cc.o.d"
  "/root/repo/src/graph/union_find.cc" "src/graph/CMakeFiles/enld_graph.dir/union_find.cc.o" "gcc" "src/graph/CMakeFiles/enld_graph.dir/union_find.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/enld_common.dir/DependInfo.cmake"
  "/root/repo/build/src/knn/CMakeFiles/enld_knn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
