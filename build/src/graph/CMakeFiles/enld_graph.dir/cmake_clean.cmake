file(REMOVE_RECURSE
  "CMakeFiles/enld_graph.dir/knn_graph.cc.o"
  "CMakeFiles/enld_graph.dir/knn_graph.cc.o.d"
  "CMakeFiles/enld_graph.dir/union_find.cc.o"
  "CMakeFiles/enld_graph.dir/union_find.cc.o.d"
  "libenld_graph.a"
  "libenld_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enld_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
