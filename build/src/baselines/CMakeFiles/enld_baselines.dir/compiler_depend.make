# Empty compiler generated dependencies file for enld_baselines.
# This may be replaced when dependencies are built.
