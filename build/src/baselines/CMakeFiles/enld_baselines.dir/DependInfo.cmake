
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/co_teaching.cc" "src/baselines/CMakeFiles/enld_baselines.dir/co_teaching.cc.o" "gcc" "src/baselines/CMakeFiles/enld_baselines.dir/co_teaching.cc.o.d"
  "/root/repo/src/baselines/confident_learning.cc" "src/baselines/CMakeFiles/enld_baselines.dir/confident_learning.cc.o" "gcc" "src/baselines/CMakeFiles/enld_baselines.dir/confident_learning.cc.o.d"
  "/root/repo/src/baselines/default_detector.cc" "src/baselines/CMakeFiles/enld_baselines.dir/default_detector.cc.o" "gcc" "src/baselines/CMakeFiles/enld_baselines.dir/default_detector.cc.o.d"
  "/root/repo/src/baselines/incv.cc" "src/baselines/CMakeFiles/enld_baselines.dir/incv.cc.o" "gcc" "src/baselines/CMakeFiles/enld_baselines.dir/incv.cc.o.d"
  "/root/repo/src/baselines/o2u.cc" "src/baselines/CMakeFiles/enld_baselines.dir/o2u.cc.o" "gcc" "src/baselines/CMakeFiles/enld_baselines.dir/o2u.cc.o.d"
  "/root/repo/src/baselines/related.cc" "src/baselines/CMakeFiles/enld_baselines.dir/related.cc.o" "gcc" "src/baselines/CMakeFiles/enld_baselines.dir/related.cc.o.d"
  "/root/repo/src/baselines/topofilter.cc" "src/baselines/CMakeFiles/enld_baselines.dir/topofilter.cc.o" "gcc" "src/baselines/CMakeFiles/enld_baselines.dir/topofilter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/enld_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/enld_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/enld_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/enld_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/knn/CMakeFiles/enld_knn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
