file(REMOVE_RECURSE
  "CMakeFiles/enld_baselines.dir/co_teaching.cc.o"
  "CMakeFiles/enld_baselines.dir/co_teaching.cc.o.d"
  "CMakeFiles/enld_baselines.dir/confident_learning.cc.o"
  "CMakeFiles/enld_baselines.dir/confident_learning.cc.o.d"
  "CMakeFiles/enld_baselines.dir/default_detector.cc.o"
  "CMakeFiles/enld_baselines.dir/default_detector.cc.o.d"
  "CMakeFiles/enld_baselines.dir/incv.cc.o"
  "CMakeFiles/enld_baselines.dir/incv.cc.o.d"
  "CMakeFiles/enld_baselines.dir/o2u.cc.o"
  "CMakeFiles/enld_baselines.dir/o2u.cc.o.d"
  "CMakeFiles/enld_baselines.dir/related.cc.o"
  "CMakeFiles/enld_baselines.dir/related.cc.o.d"
  "CMakeFiles/enld_baselines.dir/topofilter.cc.o"
  "CMakeFiles/enld_baselines.dir/topofilter.cc.o.d"
  "libenld_baselines.a"
  "libenld_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enld_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
