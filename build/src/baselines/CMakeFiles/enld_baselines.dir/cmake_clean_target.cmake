file(REMOVE_RECURSE
  "libenld_baselines.a"
)
