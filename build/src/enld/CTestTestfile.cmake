# CMake generated Testfile for 
# Source directory: /root/repo/src/enld
# Build directory: /root/repo/build/src/enld
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
