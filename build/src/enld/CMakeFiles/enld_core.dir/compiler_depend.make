# Empty compiler generated dependencies file for enld_core.
# This may be replaced when dependencies are built.
