file(REMOVE_RECURSE
  "libenld_core.a"
)
