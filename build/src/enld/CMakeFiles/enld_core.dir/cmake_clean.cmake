file(REMOVE_RECURSE
  "CMakeFiles/enld_core.dir/contrastive.cc.o"
  "CMakeFiles/enld_core.dir/contrastive.cc.o.d"
  "CMakeFiles/enld_core.dir/fine_grained.cc.o"
  "CMakeFiles/enld_core.dir/fine_grained.cc.o.d"
  "CMakeFiles/enld_core.dir/framework.cc.o"
  "CMakeFiles/enld_core.dir/framework.cc.o.d"
  "CMakeFiles/enld_core.dir/platform.cc.o"
  "CMakeFiles/enld_core.dir/platform.cc.o.d"
  "CMakeFiles/enld_core.dir/sample_sets.cc.o"
  "CMakeFiles/enld_core.dir/sample_sets.cc.o.d"
  "CMakeFiles/enld_core.dir/strategies.cc.o"
  "CMakeFiles/enld_core.dir/strategies.cc.o.d"
  "libenld_core.a"
  "libenld_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enld_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
