
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/enld/contrastive.cc" "src/enld/CMakeFiles/enld_core.dir/contrastive.cc.o" "gcc" "src/enld/CMakeFiles/enld_core.dir/contrastive.cc.o.d"
  "/root/repo/src/enld/fine_grained.cc" "src/enld/CMakeFiles/enld_core.dir/fine_grained.cc.o" "gcc" "src/enld/CMakeFiles/enld_core.dir/fine_grained.cc.o.d"
  "/root/repo/src/enld/framework.cc" "src/enld/CMakeFiles/enld_core.dir/framework.cc.o" "gcc" "src/enld/CMakeFiles/enld_core.dir/framework.cc.o.d"
  "/root/repo/src/enld/platform.cc" "src/enld/CMakeFiles/enld_core.dir/platform.cc.o" "gcc" "src/enld/CMakeFiles/enld_core.dir/platform.cc.o.d"
  "/root/repo/src/enld/sample_sets.cc" "src/enld/CMakeFiles/enld_core.dir/sample_sets.cc.o" "gcc" "src/enld/CMakeFiles/enld_core.dir/sample_sets.cc.o.d"
  "/root/repo/src/enld/strategies.cc" "src/enld/CMakeFiles/enld_core.dir/strategies.cc.o" "gcc" "src/enld/CMakeFiles/enld_core.dir/strategies.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/enld_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/enld_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/enld_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/knn/CMakeFiles/enld_knn.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/enld_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/enld_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
