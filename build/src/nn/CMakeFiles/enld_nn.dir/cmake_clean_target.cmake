file(REMOVE_RECURSE
  "libenld_nn.a"
)
