
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/confident_joint.cc" "src/nn/CMakeFiles/enld_nn.dir/confident_joint.cc.o" "gcc" "src/nn/CMakeFiles/enld_nn.dir/confident_joint.cc.o.d"
  "/root/repo/src/nn/general_model.cc" "src/nn/CMakeFiles/enld_nn.dir/general_model.cc.o" "gcc" "src/nn/CMakeFiles/enld_nn.dir/general_model.cc.o.d"
  "/root/repo/src/nn/layer.cc" "src/nn/CMakeFiles/enld_nn.dir/layer.cc.o" "gcc" "src/nn/CMakeFiles/enld_nn.dir/layer.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/nn/CMakeFiles/enld_nn.dir/loss.cc.o" "gcc" "src/nn/CMakeFiles/enld_nn.dir/loss.cc.o.d"
  "/root/repo/src/nn/mlp.cc" "src/nn/CMakeFiles/enld_nn.dir/mlp.cc.o" "gcc" "src/nn/CMakeFiles/enld_nn.dir/mlp.cc.o.d"
  "/root/repo/src/nn/model_zoo.cc" "src/nn/CMakeFiles/enld_nn.dir/model_zoo.cc.o" "gcc" "src/nn/CMakeFiles/enld_nn.dir/model_zoo.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/enld_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/enld_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/serialization.cc" "src/nn/CMakeFiles/enld_nn.dir/serialization.cc.o" "gcc" "src/nn/CMakeFiles/enld_nn.dir/serialization.cc.o.d"
  "/root/repo/src/nn/trainer.cc" "src/nn/CMakeFiles/enld_nn.dir/trainer.cc.o" "gcc" "src/nn/CMakeFiles/enld_nn.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/enld_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/enld_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
