# Empty compiler generated dependencies file for enld_nn.
# This may be replaced when dependencies are built.
