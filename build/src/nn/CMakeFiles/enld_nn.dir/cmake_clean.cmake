file(REMOVE_RECURSE
  "CMakeFiles/enld_nn.dir/confident_joint.cc.o"
  "CMakeFiles/enld_nn.dir/confident_joint.cc.o.d"
  "CMakeFiles/enld_nn.dir/general_model.cc.o"
  "CMakeFiles/enld_nn.dir/general_model.cc.o.d"
  "CMakeFiles/enld_nn.dir/layer.cc.o"
  "CMakeFiles/enld_nn.dir/layer.cc.o.d"
  "CMakeFiles/enld_nn.dir/loss.cc.o"
  "CMakeFiles/enld_nn.dir/loss.cc.o.d"
  "CMakeFiles/enld_nn.dir/mlp.cc.o"
  "CMakeFiles/enld_nn.dir/mlp.cc.o.d"
  "CMakeFiles/enld_nn.dir/model_zoo.cc.o"
  "CMakeFiles/enld_nn.dir/model_zoo.cc.o.d"
  "CMakeFiles/enld_nn.dir/optimizer.cc.o"
  "CMakeFiles/enld_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/enld_nn.dir/serialization.cc.o"
  "CMakeFiles/enld_nn.dir/serialization.cc.o.d"
  "CMakeFiles/enld_nn.dir/trainer.cc.o"
  "CMakeFiles/enld_nn.dir/trainer.cc.o.d"
  "libenld_nn.a"
  "libenld_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enld_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
