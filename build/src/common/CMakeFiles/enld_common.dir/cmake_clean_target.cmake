file(REMOVE_RECURSE
  "libenld_common.a"
)
