# Empty dependencies file for enld_common.
# This may be replaced when dependencies are built.
