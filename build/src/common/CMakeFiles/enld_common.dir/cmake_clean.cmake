file(REMOVE_RECURSE
  "CMakeFiles/enld_common.dir/logging.cc.o"
  "CMakeFiles/enld_common.dir/logging.cc.o.d"
  "CMakeFiles/enld_common.dir/matrix.cc.o"
  "CMakeFiles/enld_common.dir/matrix.cc.o.d"
  "CMakeFiles/enld_common.dir/rng.cc.o"
  "CMakeFiles/enld_common.dir/rng.cc.o.d"
  "CMakeFiles/enld_common.dir/stats.cc.o"
  "CMakeFiles/enld_common.dir/stats.cc.o.d"
  "CMakeFiles/enld_common.dir/status.cc.o"
  "CMakeFiles/enld_common.dir/status.cc.o.d"
  "CMakeFiles/enld_common.dir/table.cc.o"
  "CMakeFiles/enld_common.dir/table.cc.o.d"
  "libenld_common.a"
  "libenld_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enld_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
