file(REMOVE_RECURSE
  "CMakeFiles/enld_eval.dir/experiment.cc.o"
  "CMakeFiles/enld_eval.dir/experiment.cc.o.d"
  "CMakeFiles/enld_eval.dir/metrics.cc.o"
  "CMakeFiles/enld_eval.dir/metrics.cc.o.d"
  "CMakeFiles/enld_eval.dir/paper_setup.cc.o"
  "CMakeFiles/enld_eval.dir/paper_setup.cc.o.d"
  "CMakeFiles/enld_eval.dir/reporting.cc.o"
  "CMakeFiles/enld_eval.dir/reporting.cc.o.d"
  "libenld_eval.a"
  "libenld_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enld_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
