# Empty dependencies file for enld_eval.
# This may be replaced when dependencies are built.
