file(REMOVE_RECURSE
  "libenld_eval.a"
)
