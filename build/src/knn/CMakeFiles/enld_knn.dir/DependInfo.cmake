
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/knn/class_index.cc" "src/knn/CMakeFiles/enld_knn.dir/class_index.cc.o" "gcc" "src/knn/CMakeFiles/enld_knn.dir/class_index.cc.o.d"
  "/root/repo/src/knn/kdtree.cc" "src/knn/CMakeFiles/enld_knn.dir/kdtree.cc.o" "gcc" "src/knn/CMakeFiles/enld_knn.dir/kdtree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/enld_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
