# Empty compiler generated dependencies file for enld_knn.
# This may be replaced when dependencies are built.
