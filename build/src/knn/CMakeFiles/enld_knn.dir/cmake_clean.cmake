file(REMOVE_RECURSE
  "CMakeFiles/enld_knn.dir/class_index.cc.o"
  "CMakeFiles/enld_knn.dir/class_index.cc.o.d"
  "CMakeFiles/enld_knn.dir/kdtree.cc.o"
  "CMakeFiles/enld_knn.dir/kdtree.cc.o.d"
  "libenld_knn.a"
  "libenld_knn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enld_knn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
