file(REMOVE_RECURSE
  "libenld_knn.a"
)
