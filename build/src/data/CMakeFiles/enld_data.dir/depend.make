# Empty dependencies file for enld_data.
# This may be replaced when dependencies are built.
