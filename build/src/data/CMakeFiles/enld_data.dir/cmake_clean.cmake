file(REMOVE_RECURSE
  "CMakeFiles/enld_data.dir/dataset.cc.o"
  "CMakeFiles/enld_data.dir/dataset.cc.o.d"
  "CMakeFiles/enld_data.dir/noise.cc.o"
  "CMakeFiles/enld_data.dir/noise.cc.o.d"
  "CMakeFiles/enld_data.dir/serialization.cc.o"
  "CMakeFiles/enld_data.dir/serialization.cc.o.d"
  "CMakeFiles/enld_data.dir/split.cc.o"
  "CMakeFiles/enld_data.dir/split.cc.o.d"
  "CMakeFiles/enld_data.dir/synthetic.cc.o"
  "CMakeFiles/enld_data.dir/synthetic.cc.o.d"
  "CMakeFiles/enld_data.dir/workload.cc.o"
  "CMakeFiles/enld_data.dir/workload.cc.o.d"
  "libenld_data.a"
  "libenld_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enld_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
