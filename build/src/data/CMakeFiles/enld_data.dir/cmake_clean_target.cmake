file(REMOVE_RECURSE
  "libenld_data.a"
)
