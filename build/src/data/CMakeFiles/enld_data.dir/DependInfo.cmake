
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/enld_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/enld_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/noise.cc" "src/data/CMakeFiles/enld_data.dir/noise.cc.o" "gcc" "src/data/CMakeFiles/enld_data.dir/noise.cc.o.d"
  "/root/repo/src/data/serialization.cc" "src/data/CMakeFiles/enld_data.dir/serialization.cc.o" "gcc" "src/data/CMakeFiles/enld_data.dir/serialization.cc.o.d"
  "/root/repo/src/data/split.cc" "src/data/CMakeFiles/enld_data.dir/split.cc.o" "gcc" "src/data/CMakeFiles/enld_data.dir/split.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/data/CMakeFiles/enld_data.dir/synthetic.cc.o" "gcc" "src/data/CMakeFiles/enld_data.dir/synthetic.cc.o.d"
  "/root/repo/src/data/workload.cc" "src/data/CMakeFiles/enld_data.dir/workload.cc.o" "gcc" "src/data/CMakeFiles/enld_data.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/enld_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
