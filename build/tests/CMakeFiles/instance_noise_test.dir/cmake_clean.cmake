file(REMOVE_RECURSE
  "CMakeFiles/instance_noise_test.dir/data/instance_noise_test.cc.o"
  "CMakeFiles/instance_noise_test.dir/data/instance_noise_test.cc.o.d"
  "instance_noise_test"
  "instance_noise_test.pdb"
  "instance_noise_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instance_noise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
