# Empty compiler generated dependencies file for instance_noise_test.
# This may be replaced when dependencies are built.
