file(REMOVE_RECURSE
  "CMakeFiles/knn_graph_test.dir/graph/knn_graph_test.cc.o"
  "CMakeFiles/knn_graph_test.dir/graph/knn_graph_test.cc.o.d"
  "knn_graph_test"
  "knn_graph_test.pdb"
  "knn_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knn_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
