# Empty compiler generated dependencies file for knn_graph_test.
# This may be replaced when dependencies are built.
