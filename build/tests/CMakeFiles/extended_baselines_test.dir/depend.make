# Empty dependencies file for extended_baselines_test.
# This may be replaced when dependencies are built.
