file(REMOVE_RECURSE
  "CMakeFiles/extended_baselines_test.dir/baselines/extended_baselines_test.cc.o"
  "CMakeFiles/extended_baselines_test.dir/baselines/extended_baselines_test.cc.o.d"
  "extended_baselines_test"
  "extended_baselines_test.pdb"
  "extended_baselines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
