file(REMOVE_RECURSE
  "CMakeFiles/fine_grained_test.dir/enld/fine_grained_test.cc.o"
  "CMakeFiles/fine_grained_test.dir/enld/fine_grained_test.cc.o.d"
  "fine_grained_test"
  "fine_grained_test.pdb"
  "fine_grained_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fine_grained_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
