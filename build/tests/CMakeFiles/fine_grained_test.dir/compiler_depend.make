# Empty compiler generated dependencies file for fine_grained_test.
# This may be replaced when dependencies are built.
