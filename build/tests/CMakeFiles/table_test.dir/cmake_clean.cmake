file(REMOVE_RECURSE
  "CMakeFiles/table_test.dir/common/table_test.cc.o"
  "CMakeFiles/table_test.dir/common/table_test.cc.o.d"
  "table_test"
  "table_test.pdb"
  "table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
