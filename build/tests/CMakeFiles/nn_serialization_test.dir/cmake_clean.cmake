file(REMOVE_RECURSE
  "CMakeFiles/nn_serialization_test.dir/nn/serialization_test.cc.o"
  "CMakeFiles/nn_serialization_test.dir/nn/serialization_test.cc.o.d"
  "nn_serialization_test"
  "nn_serialization_test.pdb"
  "nn_serialization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_serialization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
