file(REMOVE_RECURSE
  "CMakeFiles/data_serialization_test.dir/data/serialization_test.cc.o"
  "CMakeFiles/data_serialization_test.dir/data/serialization_test.cc.o.d"
  "data_serialization_test"
  "data_serialization_test.pdb"
  "data_serialization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_serialization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
