
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/eval/reporting_test.cc" "tests/CMakeFiles/reporting_test.dir/eval/reporting_test.cc.o" "gcc" "tests/CMakeFiles/reporting_test.dir/eval/reporting_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/enld_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/enld/CMakeFiles/enld_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/enld_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/enld_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/knn/CMakeFiles/enld_knn.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/enld_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/enld_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/enld_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
