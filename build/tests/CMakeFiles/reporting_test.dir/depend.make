# Empty dependencies file for reporting_test.
# This may be replaced when dependencies are built.
