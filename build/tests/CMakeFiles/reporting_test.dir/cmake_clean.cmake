file(REMOVE_RECURSE
  "CMakeFiles/reporting_test.dir/eval/reporting_test.cc.o"
  "CMakeFiles/reporting_test.dir/eval/reporting_test.cc.o.d"
  "reporting_test"
  "reporting_test.pdb"
  "reporting_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reporting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
