file(REMOVE_RECURSE
  "CMakeFiles/dropout_adam_test.dir/nn/dropout_adam_test.cc.o"
  "CMakeFiles/dropout_adam_test.dir/nn/dropout_adam_test.cc.o.d"
  "dropout_adam_test"
  "dropout_adam_test.pdb"
  "dropout_adam_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dropout_adam_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
