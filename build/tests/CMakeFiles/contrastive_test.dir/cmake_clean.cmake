file(REMOVE_RECURSE
  "CMakeFiles/contrastive_test.dir/enld/contrastive_test.cc.o"
  "CMakeFiles/contrastive_test.dir/enld/contrastive_test.cc.o.d"
  "contrastive_test"
  "contrastive_test.pdb"
  "contrastive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contrastive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
