# Empty compiler generated dependencies file for contrastive_test.
# This may be replaced when dependencies are built.
