# Empty compiler generated dependencies file for confident_joint_test.
# This may be replaced when dependencies are built.
