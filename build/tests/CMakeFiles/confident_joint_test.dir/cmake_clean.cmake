file(REMOVE_RECURSE
  "CMakeFiles/confident_joint_test.dir/nn/confident_joint_test.cc.o"
  "CMakeFiles/confident_joint_test.dir/nn/confident_joint_test.cc.o.d"
  "confident_joint_test"
  "confident_joint_test.pdb"
  "confident_joint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confident_joint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
