file(REMOVE_RECURSE
  "CMakeFiles/split_test.dir/data/split_test.cc.o"
  "CMakeFiles/split_test.dir/data/split_test.cc.o.d"
  "split_test"
  "split_test.pdb"
  "split_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/split_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
