file(REMOVE_RECURSE
  "CMakeFiles/layer_test.dir/nn/layer_test.cc.o"
  "CMakeFiles/layer_test.dir/nn/layer_test.cc.o.d"
  "layer_test"
  "layer_test.pdb"
  "layer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
