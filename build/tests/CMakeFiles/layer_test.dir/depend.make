# Empty dependencies file for layer_test.
# This may be replaced when dependencies are built.
