file(REMOVE_RECURSE
  "CMakeFiles/noise_test.dir/data/noise_test.cc.o"
  "CMakeFiles/noise_test.dir/data/noise_test.cc.o.d"
  "noise_test"
  "noise_test.pdb"
  "noise_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
