file(REMOVE_RECURSE
  "CMakeFiles/sample_sets_test.dir/enld/sample_sets_test.cc.o"
  "CMakeFiles/sample_sets_test.dir/enld/sample_sets_test.cc.o.d"
  "sample_sets_test"
  "sample_sets_test.pdb"
  "sample_sets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sample_sets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
