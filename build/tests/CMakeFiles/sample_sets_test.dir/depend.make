# Empty dependencies file for sample_sets_test.
# This may be replaced when dependencies are built.
