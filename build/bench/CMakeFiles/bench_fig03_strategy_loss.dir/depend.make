# Empty dependencies file for bench_fig03_strategy_loss.
# This may be replaced when dependencies are built.
