file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_strategy_loss.dir/bench_fig03_strategy_loss.cpp.o"
  "CMakeFiles/bench_fig03_strategy_loss.dir/bench_fig03_strategy_loss.cpp.o.d"
  "bench_fig03_strategy_loss"
  "bench_fig03_strategy_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_strategy_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
