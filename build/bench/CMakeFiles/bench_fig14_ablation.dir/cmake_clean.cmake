file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_ablation.dir/bench_fig14_ablation.cpp.o"
  "CMakeFiles/bench_fig14_ablation.dir/bench_fig14_ablation.cpp.o.d"
  "bench_fig14_ablation"
  "bench_fig14_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
