# Empty compiler generated dependencies file for bench_fig12_k_time.
# This may be replaced when dependencies are built.
