file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_k_time.dir/bench_fig12_k_time.cpp.o"
  "CMakeFiles/bench_fig12_k_time.dir/bench_fig12_k_time.cpp.o.d"
  "bench_fig12_k_time"
  "bench_fig12_k_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_k_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
