# Empty dependencies file for bench_table2_model_update.
# This may be replaced when dependencies are built.
