file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_model_update.dir/bench_table2_model_update.cpp.o"
  "CMakeFiles/bench_table2_model_update.dir/bench_table2_model_update.cpp.o.d"
  "bench_table2_model_update"
  "bench_table2_model_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_model_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
