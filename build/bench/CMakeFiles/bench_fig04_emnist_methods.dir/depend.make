# Empty dependencies file for bench_fig04_emnist_methods.
# This may be replaced when dependencies are built.
