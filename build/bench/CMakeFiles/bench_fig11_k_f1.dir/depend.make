# Empty dependencies file for bench_fig11_k_f1.
# This may be replaced when dependencies are built.
