file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_k_f1.dir/bench_fig11_k_f1.cpp.o"
  "CMakeFiles/bench_fig11_k_f1.dir/bench_fig11_k_f1.cpp.o.d"
  "bench_fig11_k_f1"
  "bench_fig11_k_f1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_k_f1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
