# Empty dependencies file for bench_fig09_training_process.
# This may be replaced when dependencies are built.
