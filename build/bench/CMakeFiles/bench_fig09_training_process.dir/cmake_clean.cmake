file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_training_process.dir/bench_fig09_training_process.cpp.o"
  "CMakeFiles/bench_fig09_training_process.dir/bench_fig09_training_process.cpp.o.d"
  "bench_fig09_training_process"
  "bench_fig09_training_process.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_training_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
