file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_tiny_methods.dir/bench_fig07_tiny_methods.cpp.o"
  "CMakeFiles/bench_fig07_tiny_methods.dir/bench_fig07_tiny_methods.cpp.o.d"
  "bench_fig07_tiny_methods"
  "bench_fig07_tiny_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_tiny_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
