# Empty compiler generated dependencies file for bench_fig07_tiny_methods.
# This may be replaced when dependencies are built.
