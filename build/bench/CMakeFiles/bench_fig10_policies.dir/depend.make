# Empty dependencies file for bench_fig10_policies.
# This may be replaced when dependencies are built.
