file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_policies.dir/bench_fig10_policies.cpp.o"
  "CMakeFiles/bench_fig10_policies.dir/bench_fig10_policies.cpp.o.d"
  "bench_fig10_policies"
  "bench_fig10_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
