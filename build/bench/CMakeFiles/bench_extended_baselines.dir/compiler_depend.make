# Empty compiler generated dependencies file for bench_extended_baselines.
# This may be replaced when dependencies are built.
