file(REMOVE_RECURSE
  "CMakeFiles/bench_extended_baselines.dir/bench_extended_baselines.cpp.o"
  "CMakeFiles/bench_extended_baselines.dir/bench_extended_baselines.cpp.o.d"
  "bench_extended_baselines"
  "bench_extended_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extended_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
