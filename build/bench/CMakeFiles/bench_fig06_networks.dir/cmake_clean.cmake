file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_networks.dir/bench_fig06_networks.cpp.o"
  "CMakeFiles/bench_fig06_networks.dir/bench_fig06_networks.cpp.o.d"
  "bench_fig06_networks"
  "bench_fig06_networks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_networks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
