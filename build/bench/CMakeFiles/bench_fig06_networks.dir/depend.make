# Empty dependencies file for bench_fig06_networks.
# This may be replaced when dependencies are built.
