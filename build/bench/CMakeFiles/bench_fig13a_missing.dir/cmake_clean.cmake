file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13a_missing.dir/bench_fig13a_missing.cpp.o"
  "CMakeFiles/bench_fig13a_missing.dir/bench_fig13a_missing.cpp.o.d"
  "bench_fig13a_missing"
  "bench_fig13a_missing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13a_missing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
