# Empty compiler generated dependencies file for bench_fig13a_missing.
# This may be replaced when dependencies are built.
