file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_time.dir/bench_fig08_time.cpp.o"
  "CMakeFiles/bench_fig08_time.dir/bench_fig08_time.cpp.o.d"
  "bench_fig08_time"
  "bench_fig08_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
