# Empty dependencies file for bench_fig08_time.
# This may be replaced when dependencies are built.
