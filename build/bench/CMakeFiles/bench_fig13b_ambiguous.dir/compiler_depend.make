# Empty compiler generated dependencies file for bench_fig13b_ambiguous.
# This may be replaced when dependencies are built.
