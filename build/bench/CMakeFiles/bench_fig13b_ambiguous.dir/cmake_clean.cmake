file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13b_ambiguous.dir/bench_fig13b_ambiguous.cpp.o"
  "CMakeFiles/bench_fig13b_ambiguous.dir/bench_fig13b_ambiguous.cpp.o.d"
  "bench_fig13b_ambiguous"
  "bench_fig13b_ambiguous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13b_ambiguous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
