# Empty compiler generated dependencies file for bench_fig05_cifar100_methods.
# This may be replaced when dependencies are built.
