file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_cifar100_methods.dir/bench_fig05_cifar100_methods.cpp.o"
  "CMakeFiles/bench_fig05_cifar100_methods.dir/bench_fig05_cifar100_methods.cpp.o.d"
  "bench_fig05_cifar100_methods"
  "bench_fig05_cifar100_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_cifar100_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
