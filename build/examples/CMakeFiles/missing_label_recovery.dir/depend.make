# Empty dependencies file for missing_label_recovery.
# This may be replaced when dependencies are built.
