file(REMOVE_RECURSE
  "CMakeFiles/missing_label_recovery.dir/missing_label_recovery.cpp.o"
  "CMakeFiles/missing_label_recovery.dir/missing_label_recovery.cpp.o.d"
  "missing_label_recovery"
  "missing_label_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/missing_label_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
