file(REMOVE_RECURSE
  "CMakeFiles/enld_cli.dir/enld_cli.cpp.o"
  "CMakeFiles/enld_cli.dir/enld_cli.cpp.o.d"
  "enld_cli"
  "enld_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enld_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
