# Empty compiler generated dependencies file for enld_cli.
# This may be replaced when dependencies are built.
