# Empty compiler generated dependencies file for data_platform_stream.
# This may be replaced when dependencies are built.
