file(REMOVE_RECURSE
  "CMakeFiles/data_platform_stream.dir/data_platform_stream.cpp.o"
  "CMakeFiles/data_platform_stream.dir/data_platform_stream.cpp.o.d"
  "data_platform_stream"
  "data_platform_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_platform_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
