// Serving-tier latency benchmark (docs/SERVING.md): starts the framed
// socket server in-process on an ephemeral loopback port, then drives it
// with OPEN-LOOP load — request arrivals follow a fixed schedule that does
// not slow down when the server does, and each request's latency is
// measured from its *scheduled* arrival to its completion. A server that
// falls behind therefore pays for the queueing it causes (no coordinated
// omission), which is what makes the p99 honest under overload.
//
// Reported: achieved throughput plus p50 / p99 / max end-to-end latency
// per (connections, offered qps) cell, and the serving span tree /
// rpc/* counters via --telemetry_out=report.json (or ENLD_TELEMETRY).
//
// Environment overrides for quick CI runs:
//   ENLD_BENCH_DATASETS        stream length to cycle over (default 12)
//   ENLD_BENCH_SERVING_REQS    requests per cell (default 48)
//   ENLD_BENCH_SERVING_QPS     comma-separated offered rates (default
//                              "40,160")
//   ENLD_BENCH_SERVING_CONNS   comma-separated connection counts
//                              (default "1,4")

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/table.h"
#include "common/telemetry/report.h"
#include "data/workload.h"
#include "enld/platform.h"
#include "eval/reporting.h"
#include "rpc/client.h"
#include "rpc/server.h"

namespace {

using namespace enld;
using Clock = std::chrono::steady_clock;

std::vector<size_t> EnvList(const char* name,
                            const std::vector<size_t>& fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  std::vector<size_t> values;
  const char* cursor = env;
  while (*cursor != '\0') {
    char* next = nullptr;
    const long parsed = std::strtol(cursor, &next, 10);
    if (next == cursor) break;
    if (parsed > 0) values.push_back(static_cast<size_t>(parsed));
    cursor = *next == ',' ? next + 1 : next;
  }
  return values.empty() ? fallback : values;
}

size_t EnvCount(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  const long parsed = std::strtol(env, nullptr, 10);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

double PercentileMs(std::vector<double> sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  const size_t idx = std::min(
      sorted_ms.size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted_ms.size() - 1) +
                          0.5));
  return sorted_ms[idx];
}

struct CellResult {
  size_t connections = 0;
  size_t offered_qps = 0;
  size_t completed = 0;
  double achieved_qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// One open-loop cell: `connections` workers pull request slots off a
/// shared schedule (slot i arrives at start + i/qps), wait for the slot's
/// arrival time, and run a closed detect call on their own connection.
CellResult RunCell(int port, const Workload& workload, size_t connections,
                   size_t offered_qps, size_t total_requests) {
  std::vector<double> latencies_ms(total_requests, 0.0);
  std::atomic<size_t> next_slot{0};
  std::atomic<size_t> failures{0};
  const auto start = Clock::now() + std::chrono::milliseconds(5);
  const std::chrono::duration<double> gap(1.0 /
                                          static_cast<double>(offered_qps));

  std::vector<std::thread> workers;
  workers.reserve(connections);
  for (size_t w = 0; w < connections; ++w) {
    workers.emplace_back([&, w] {
      rpc::ClientConfig config;
      config.port = port;
      rpc::RpcClient client(config);
      while (true) {
        const size_t slot = next_slot.fetch_add(1);
        if (slot >= total_requests) break;
        const auto scheduled = start + std::chrono::duration_cast<
                                           Clock::duration>(gap * slot);
        std::this_thread::sleep_until(scheduled);
        StatusOr<rpc::WireDetectResponse> response = client.Detect(
            workload.incremental[slot % workload.incremental.size()]);
        const auto done = Clock::now();
        if (!response.ok() || !response->service_status.ok()) {
          failures.fetch_add(1);
          continue;
        }
        latencies_ms[slot] =
            std::chrono::duration<double, std::milli>(done - scheduled)
                .count();
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  CellResult cell;
  cell.connections = connections;
  cell.offered_qps = offered_qps;
  std::vector<double> completed_ms;
  completed_ms.reserve(total_requests);
  for (double ms : latencies_ms) {
    if (ms > 0.0) completed_ms.push_back(ms);
  }
  std::sort(completed_ms.begin(), completed_ms.end());
  cell.completed = completed_ms.size();
  cell.achieved_qps = wall_seconds > 0.0
                          ? static_cast<double>(cell.completed) / wall_seconds
                          : 0.0;
  cell.p50_ms = PercentileMs(completed_ms, 0.50);
  cell.p99_ms = PercentileMs(completed_ms, 0.99);
  cell.max_ms = completed_ms.empty() ? 0.0 : completed_ms.back();
  if (failures.load() > 0) {
    std::fprintf(stderr, "cell %zux%zuqps: %zu request(s) failed\n",
                 connections, offered_qps, failures.load());
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  telemetry::ResetTelemetry();

  const size_t num_datasets = EnvCount("ENLD_BENCH_DATASETS", 12);
  const size_t total_requests = EnvCount("ENLD_BENCH_SERVING_REQS", 48);
  const std::vector<size_t> rates =
      EnvList("ENLD_BENCH_SERVING_QPS", {40, 160});
  const std::vector<size_t> conns =
      EnvList("ENLD_BENCH_SERVING_CONNS", {1, 4});

  WorkloadConfig workload_config = Cifar100WorkloadConfig(0.2);
  workload_config.stream.num_datasets = num_datasets;
  const Workload workload = BuildWorkload(workload_config);

  DataPlatformConfig config;
  config.enld = PaperEnldConfig(PaperDataset::kCifar100);
  DataPlatform platform(config);
  ENLD_CHECK_OK(platform.Initialize(workload.inventory));

  rpc::ServerConfig server_config;
  rpc::RpcServer server(&platform, server_config);
  ENLD_CHECK_OK(server.Start());
  std::printf("serving bench on 127.0.0.1:%d — %zu requests per cell, "
              "open-loop\n\n",
              server.port(), total_requests);

  std::vector<CellResult> cells;
  for (size_t connections : conns) {
    for (size_t qps : rates) {
      cells.push_back(
          RunCell(server.port(), workload, connections, qps,
                  total_requests));
    }
  }
  ENLD_CHECK_OK(server.Shutdown());

  TablePrinter table({"conns", "offered qps", "achieved qps", "p50 ms",
                      "p99 ms", "max ms"});
  for (const CellResult& cell : cells) {
    table.AddRow({std::to_string(cell.connections),
                  std::to_string(cell.offered_qps),
                  TablePrinter::Num(cell.achieved_qps, 1),
                  TablePrinter::Num(cell.p50_ms, 2),
                  TablePrinter::Num(cell.p99_ms, 2),
                  TablePrinter::Num(cell.max_ms, 2)});
  }
  table.Print("wire serving latency under open-loop load");

  telemetry::RunReport report = telemetry::CaptureRunReport();
  report.method = "bench-serving";
  for (const CellResult& cell : cells) {
    const std::string key = std::to_string(cell.connections) + "conn_" +
                            std::to_string(cell.offered_qps) + "qps";
    report.quality[key + "_p50_ms"] = cell.p50_ms;
    report.quality[key + "_p99_ms"] = cell.p99_ms;
    report.quality[key + "_achieved_qps"] = cell.achieved_qps;
  }
  std::printf("\n%s", TelemetrySummary(report).c_str());
  const std::string telemetry_path =
      telemetry::TelemetryOutPath(argc, argv);
  if (!telemetry_path.empty()) {
    ENLD_CHECK_OK(telemetry::WriteRunReport(report, telemetry_path));
    std::printf("telemetry report -> %s\n", telemetry_path.c_str());
  }
  return 0;
}
