// Reproduces Fig. 3: validation loss on the true-labeled noisy subset
// D_test of CIFAR100-sim incremental datasets, after one epoch of training
// with samples added by different strategies:
//   Origin          — the general model, no extra training.
//   Random          — |D_test| random candidate samples with true labels.
//   Nearest-Only    — the candidate sample nearest to each test sample
//                     (its own true label).
//   Nearest-Related — the nearest candidate sample whose true label matches
//                     the test sample's true label.
// The paper's conclusion to reproduce: related-nearest < nearest <
// random < origin.

#include <cstdio>

#include "bench_util.h"
#include "knn/class_index.h"
#include "knn/kdtree.h"
#include "nn/loss.h"
#include "nn/trainer.h"

namespace {

using namespace enld;

/// Mean softmax cross-entropy of `model` on (features, labels).
double EvaluateLoss(MlpModel* model, const Matrix& features,
                    const std::vector<int>& labels) {
  Matrix logits;
  model->Forward(features, &logits);
  return SoftmaxCrossEntropy(logits, labels, model->num_classes(), nullptr);
}

/// Trains a copy of the general model for one epoch on the addition set and
/// returns the resulting loss on the test set.
double LossAfterAdding(const GeneralModel& general, const Dataset& addition,
                       const Matrix& test_features,
                       const std::vector<int>& test_labels,
                       const EnldConfig& enld_config) {
  Rng rng(99);
  MlpModel model(general.model->layer_dims(), rng);
  model.SetWeights(general.model->GetWeights());
  if (!addition.empty()) {
    TrainConfig train = enld_config.finetune;
    train.epochs = 1;
    train.seed = 7;
    TrainModel(&model, addition, nullptr, train);
  }
  return EvaluateLoss(&model, test_features, test_labels);
}

}  // namespace

int main() {
  using namespace enld::bench;

  TablePrinter table({"noise", "origin", "random", "nearest_only",
                      "nearest_related"});
  const EnldConfig enld_config = PaperEnldConfig(PaperDataset::kCifar100);

  for (double noise : NoiseRates()) {
    const Workload workload = MakeWorkload(PaperDataset::kCifar100, noise);
    GeneralModel general =
        InitGeneralModel(workload.inventory,
                         PaperGeneralConfig(PaperDataset::kCifar100));
    const Dataset& candidate = general.candidate_set;
    const Matrix candidate_features =
        general.model->Features(candidate.features);

    double origin = 0.0, random = 0.0, nearest = 0.0, related = 0.0;
    size_t counted = 0;
    Rng rng(123);
    const size_t budget = std::min<size_t>(workload.incremental.size(), 8);
    for (size_t d = 0; d < budget; ++d) {
      const Dataset& incremental = workload.incremental[d];
      // D_test: the noisy samples with their true labels (Section IV-D).
      const auto noisy = incremental.GroundTruthNoisyIndices();
      if (noisy.size() < 3) continue;
      const Matrix test_features = incremental.features.SelectRows(noisy);
      std::vector<int> test_labels(noisy.size());
      for (size_t i = 0; i < noisy.size(); ++i) {
        test_labels[i] = incremental.true_labels[noisy[i]];
      }
      const Matrix test_model_features =
          general.model->Features(test_features);

      origin += EvaluateLoss(general.model.get(), test_features,
                             test_labels);

      // Random: |D_test| uniform candidate picks, true labels.
      {
        const auto picks = rng.SampleWithoutReplacement(
            candidate.size(), std::min(noisy.size(), candidate.size()));
        Dataset addition = candidate.Subset(picks);
        addition.observed_labels = addition.true_labels;
        random += LossAfterAdding(general, addition, test_features,
                                  test_labels, enld_config);
      }

      // Nearest-Only: nearest candidate (any class) per test sample.
      {
        KdTree tree(candidate_features);
        std::vector<size_t> picks;
        for (size_t i = 0; i < noisy.size(); ++i) {
          const auto found =
              tree.Nearest(test_model_features.Row(i), 1);
          if (!found.empty()) picks.push_back(found[0].index);
        }
        Dataset addition = candidate.Subset(picks);
        addition.observed_labels = addition.true_labels;
        nearest += LossAfterAdding(general, addition, test_features,
                                   test_labels, enld_config);
      }

      // Nearest-Related: nearest candidate of the same true class.
      {
        std::vector<size_t> all_rows(candidate.size());
        for (size_t i = 0; i < all_rows.size(); ++i) all_rows[i] = i;
        ClassKnnIndex index(candidate_features, candidate.true_labels,
                            all_rows, candidate.num_classes);
        std::vector<size_t> picks;
        for (size_t i = 0; i < noisy.size(); ++i) {
          const auto found = index.Nearest(
              test_labels[i], test_model_features.Row(i), 1);
          if (!found.empty()) picks.push_back(found[0].index);
        }
        Dataset addition = candidate.Subset(picks);
        addition.observed_labels = addition.true_labels;
        related += LossAfterAdding(general, addition, test_features,
                                   test_labels, enld_config);
      }
      ++counted;
    }
    if (counted == 0) continue;
    const double n = static_cast<double>(counted);
    table.AddRow({enld::TablePrinter::Num(noise, 1),
                  enld::TablePrinter::Num(origin / n),
                  enld::TablePrinter::Num(random / n),
                  enld::TablePrinter::Num(nearest / n),
                  enld::TablePrinter::Num(related / n)});
  }
  table.Print(
      "Fig. 3 — validation loss on D_test after one epoch per strategy");
  return 0;
}
