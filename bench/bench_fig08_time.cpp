// Reproduces Fig. 8: setup time and per-dataset process time of every
// method on the EMNIST / CIFAR100 / Tiny-ImageNet incremental streams with
// noise rates 0.1–0.4. Also prints the ENLD-vs-Topofilter process-time
// speedup the paper headlines (4.09x / 3.65x / 4.97x at full scale), and a
// per-phase wall-clock breakdown of ENLD (setup/* vs detect/*) so the
// effect of ENLD_THREADS on each phase is visible directly.

#include <cstdio>

#include "bench_util.h"
#include "common/parallel.h"

int main() {
  using namespace enld;
  using namespace enld::bench;

  std::printf("threads: %zu (set ENLD_THREADS to change)\n\n",
              ParallelThreadCount());

  TablePrinter table({"dataset", "noise", "method", "setup_s",
                      "avg_process_s"});
  TablePrinter speedups({"dataset", "noise", "topofilter/enld_speedup"});
  TablePrinter phases({"dataset", "noise", "phase", "seconds"});

  for (PaperDataset dataset :
       {PaperDataset::kEmnist, PaperDataset::kCifar100,
        PaperDataset::kTinyImagenet}) {
    for (double noise : NoiseRates()) {
      const Workload workload = MakeWorkload(dataset, noise);
      double topofilter_time = 0.0;
      double enld_time = 0.0;
      for (auto& detector : MakeAllDetectors(dataset)) {
        const MethodRunResult run = RunDetector(detector.get(), workload);
        table.AddRow({PaperDatasetName(dataset),
                      TablePrinter::Num(noise, 1), run.method,
                      TablePrinter::Num(run.setup_seconds, 2),
                      TablePrinter::Num(run.average_process_seconds(), 3)});
        if (run.method == "Topofilter") {
          topofilter_time = run.average_process_seconds();
        } else if (run.method == "ENLD") {
          enld_time = run.average_process_seconds();
          for (const auto& [phase, seconds] : run.phase_seconds) {
            phases.AddRow({PaperDatasetName(dataset),
                           TablePrinter::Num(noise, 1), phase,
                           TablePrinter::Num(seconds, 3)});
          }
        }
      }
      if (enld_time > 0.0) {
        speedups.AddRow({PaperDatasetName(dataset),
                         TablePrinter::Num(noise, 1),
                         TablePrinter::Num(topofilter_time / enld_time, 2)});
      }
    }
  }
  table.Print("Fig. 8 — setup and process time per incremental dataset");
  speedups.Print("Fig. 8 headline — ENLD process-time speedup vs Topofilter");
  phases.Print("ENLD per-phase wall clock (whole stream, current threads)");
  return 0;
}
