// Reproduces Fig. 8: setup time and per-dataset process time of every
// method on the EMNIST / CIFAR100 / Tiny-ImageNet incremental streams with
// noise rates 0.1–0.4. Also prints the ENLD-vs-Topofilter process-time
// speedup the paper headlines (4.09x / 3.65x / 4.97x at full scale), and
// ENLD's hierarchical span-tree breakdown (setup/detect with per-iteration
// nesting) so the effect of ENLD_THREADS on each phase is visible directly.
//
// Pass --telemetry_out=report.json (or set ENLD_TELEMETRY=report.json) to
// dump the full machine-readable run report — span tree, metrics registry,
// per-iteration series, and detection quality — of the last ENLD run.
// Scope the sweep with ENLD_BENCH_TASKS / ENLD_BENCH_NOISES /
// ENLD_BENCH_DATASETS for quick or CI passes.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/telemetry/metrics.h"
#include "common/telemetry/report.h"

namespace {

using namespace enld;

/// Indented pre-order rows of the span tree: the Fig. 8 breakdown with its
/// hierarchy (detect > iteration > finetune/voting/...) preserved.
void AddSpanRows(const telemetry::SpanSnapshot& span, int depth,
                 const std::string& dataset, const std::string& noise,
                 TablePrinter* table) {
  table->AddRow({dataset, noise,
                 std::string(2 * depth, ' ') + span.name,
                 std::to_string(span.count),
                 TablePrinter::Num(span.total_seconds, 3)});
  for (const telemetry::SpanSnapshot& child : span.children) {
    AddSpanRows(child, depth + 1, dataset, noise, table);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace enld;
  using namespace enld::bench;

  std::printf("threads: %zu (set ENLD_THREADS to change)\n\n",
              ParallelThreadCount());

  TablePrinter table({"dataset", "noise", "method", "setup_s",
                      "avg_process_s"});
  TablePrinter speedups({"dataset", "noise", "topofilter/enld_speedup"});
  TablePrinter phases({"dataset", "noise", "span", "count", "seconds"});

  telemetry::RunReport last_enld_report;
  for (PaperDataset dataset : PaperTasks()) {
    for (double noise : NoiseRates()) {
      const Workload workload = MakeWorkload(dataset, noise);
      double topofilter_time = 0.0;
      double enld_time = 0.0;
      for (auto& detector : MakeAllDetectors(dataset)) {
        const MethodRunResult run = RunDetector(detector.get(), workload);
        table.AddRow({PaperDatasetName(dataset),
                      TablePrinter::Num(noise, 1), run.method,
                      TablePrinter::Num(run.setup_seconds, 2),
                      TablePrinter::Num(run.average_process_seconds(), 3)});
        if (run.method == "topofilter") {
          topofilter_time = run.average_process_seconds();
        } else if (run.method == "enld") {
          enld_time = run.average_process_seconds();
          // The span tree replaces the old flat phase registry: every
          // top-level child of the root is one pipeline stage, with the
          // per-iteration loop nested underneath.
          for (const telemetry::SpanSnapshot& top :
               run.telemetry.spans.children) {
            AddSpanRows(top, 0, PaperDatasetName(dataset),
                        TablePrinter::Num(noise, 1), &phases);
          }
          last_enld_report = run.telemetry;
        }
      }
      if (enld_time > 0.0) {
        speedups.AddRow({PaperDatasetName(dataset),
                         TablePrinter::Num(noise, 1),
                         TablePrinter::Num(topofilter_time / enld_time, 2)});
      }
    }
  }
  table.Print("Fig. 8 — setup and process time per incremental dataset");
  speedups.Print("Fig. 8 headline — ENLD process-time speedup vs Topofilter");
  phases.Print("ENLD span tree (per workload, current threads)");

  // FeatureCache traffic across the whole sweep (the same counters land in
  // the --telemetry_out report and the serving /stats endpoint).
  auto& registry = telemetry::MetricsRegistry::Global();
  std::printf(
      "feature cache: view %llu hits / %llu misses, index %llu hits / "
      "%llu misses, %llu invalidations\n",
      static_cast<unsigned long long>(
          registry.GetCounter("cache/view_hits")->Value()),
      static_cast<unsigned long long>(
          registry.GetCounter("cache/view_misses")->Value()),
      static_cast<unsigned long long>(
          registry.GetCounter("cache/index_hits")->Value()),
      static_cast<unsigned long long>(
          registry.GetCounter("cache/index_misses")->Value()),
      static_cast<unsigned long long>(
          registry.GetCounter("cache/invalidations")->Value()));

  const std::string out_path = telemetry::TelemetryOutPath(argc, argv);
  if (!out_path.empty()) {
    const Status written =
        telemetry::WriteRunReport(last_enld_report, out_path);
    std::printf("telemetry report (last ENLD run) -> %s: %s\n",
                out_path.c_str(), written.ToString().c_str());
    if (!written.ok()) return 1;
  }
  return 0;
}
