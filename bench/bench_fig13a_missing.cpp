// Reproduces Fig. 13(a): pseudo-label accuracy and noisy-label detection f1
// at missing-label rates 25% / 50% / 75% with noise rate 0.2 on
// CIFAR100-sim. The paper's trend to track: both curves decrease as the
// missing rate grows.

#include <cstdio>

#include "bench_util.h"
#include "data/noise.h"

int main() {
  using namespace enld;
  using namespace enld::bench;

  TablePrinter table({"missing_rate", "pseudo_label_f1", "detection_f1"});
  for (double missing_rate : {0.25, 0.50, 0.75}) {
    Workload workload = MakeWorkload(PaperDataset::kCifar100, 0.2);
    Rng rng(501);
    std::vector<std::vector<size_t>> masked;
    for (Dataset& d : workload.incremental) {
      masked.push_back(MaskMissingLabels(&d, missing_rate, rng));
    }

    EnldFramework enld(PaperEnldConfig(PaperDataset::kCifar100));
    enld.Setup(workload.inventory);
    double pseudo = 0.0;
    double detection = 0.0;
    for (size_t i = 0; i < workload.incremental.size(); ++i) {
      const Dataset& d = workload.incremental[i];
      const DetectionResult result = enld.Detect(d);
      pseudo += PseudoLabelAccuracy(d, result.recovered_labels, masked[i]);
      detection += EvaluateDetection(d, result.noisy_indices).f1;
    }
    const double n = static_cast<double>(workload.incremental.size());
    table.AddRow({TablePrinter::Num(missing_rate, 2),
                  TablePrinter::Num(pseudo / n),
                  TablePrinter::Num(detection / n)});
  }
  table.Print(
      "Fig. 13(a) — missing-label recovery at noise 0.2 (CIFAR100)");
  return 0;
}
