// Detector head-to-head matrix: every registered detector x paper dataset
// x noise rate, one row per cell with detection quality (precision /
// recall / F1) and the setup / process wall-clock split, plus the
// per-phase span breakdown from the telemetry span tree. The JSON report
// ("enld-detector-matrix-v1") is deterministic apart from timings and is
// validated in CI by tools/check_detector_matrix.py.
//
// Scope the sweep with ENLD_BENCH_TASKS / ENLD_BENCH_NOISES /
// ENLD_BENCH_DATASETS (bench_util.h) and --detectors=key1,key2 (default:
// every registered detector). --matrix_out=PATH (or ENLD_MATRIX_OUT)
// chooses the JSON destination; default detector_matrix.json.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"

namespace {

using namespace enld;
using namespace enld::bench;

/// One (detector, dataset, noise) cell of the matrix.
struct MatrixCell {
  std::string detector;
  std::string display_name;
  std::string dataset;
  double noise = 0.0;
  size_t datasets_processed = 0;
  DetectionMetrics quality;
  double setup_seconds = 0.0;
  double avg_process_seconds = 0.0;
  /// Flat span rows (path joined with '>', root "run" excluded).
  std::vector<std::pair<std::string, std::pair<uint64_t, double>>> spans;
};

void FlattenSpans(const telemetry::SpanSnapshot& span,
                  const std::string& prefix, MatrixCell* cell) {
  const std::string path =
      prefix.empty() ? span.name : prefix + ">" + span.name;
  cell->spans.push_back({path, {span.count, span.total_seconds}});
  for (const telemetry::SpanSnapshot& child : span.children) {
    FlattenSpans(child, path, cell);
  }
}

std::string JsonNumber(double v) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

std::string MatrixToJson(const std::vector<std::string>& detectors,
                         const std::vector<std::string>& datasets,
                         const std::vector<double>& noises,
                         const std::vector<MatrixCell>& cells) {
  std::ostringstream out;
  out << "{\"schema\":\"enld-detector-matrix-v1\"";
  out << ",\"threads\":" << ParallelThreadCount();
  out << ",\"detectors\":[";
  for (size_t i = 0; i < detectors.size(); ++i) {
    if (i > 0) out << ",";
    out << JsonString(detectors[i]);
  }
  out << "],\"datasets\":[";
  for (size_t i = 0; i < datasets.size(); ++i) {
    if (i > 0) out << ",";
    out << JsonString(datasets[i]);
  }
  out << "],\"noises\":[";
  for (size_t i = 0; i < noises.size(); ++i) {
    if (i > 0) out << ",";
    out << JsonNumber(noises[i]);
  }
  out << "],\"cells\":[";
  for (size_t i = 0; i < cells.size(); ++i) {
    const MatrixCell& cell = cells[i];
    if (i > 0) out << ",";
    out << "{\"detector\":" << JsonString(cell.detector)
        << ",\"display_name\":" << JsonString(cell.display_name)
        << ",\"dataset\":" << JsonString(cell.dataset)
        << ",\"noise\":" << JsonNumber(cell.noise)
        << ",\"datasets_processed\":" << cell.datasets_processed
        << ",\"precision\":" << JsonNumber(cell.quality.precision)
        << ",\"recall\":" << JsonNumber(cell.quality.recall)
        << ",\"f1\":" << JsonNumber(cell.quality.f1)
        << ",\"setup_seconds\":" << JsonNumber(cell.setup_seconds)
        << ",\"avg_process_seconds\":"
        << JsonNumber(cell.avg_process_seconds) << ",\"spans\":[";
    for (size_t s = 0; s < cell.spans.size(); ++s) {
      if (s > 0) out << ",";
      out << "{\"path\":" << JsonString(cell.spans[s].first)
          << ",\"count\":" << cell.spans[s].second.first
          << ",\"seconds\":" << JsonNumber(cell.spans[s].second.second)
          << "}";
    }
    out << "]}";
  }
  out << "]}\n";
  return out.str();
}

/// --detectors=a,b,c (default: every registered key, sorted).
std::vector<std::string> SelectedDetectors(int argc, char** argv) {
  std::string spec;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--detectors=", 12) == 0) spec = argv[i] + 12;
  }
  std::vector<std::string> keys;
  if (spec.empty()) {
    for (const detect::DetectorInfo& info : detect::ListDetectors()) {
      keys.push_back(info.key);
    }
    return keys;
  }
  size_t start = 0;
  while (start <= spec.size()) {
    const size_t comma = spec.find(',', start);
    const std::string key =
        spec.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (!key.empty()) {
      if (detect::FindDetector(key) == nullptr) {
        std::fprintf(stderr, "unknown detector '%s'; --list via enld_cli "
                             "detect --list_detectors\n",
                     key.c_str());
        std::exit(2);
      }
      keys.push_back(key);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return keys;
}

std::string MatrixOutPath(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--matrix_out=", 13) == 0) return argv[i] + 13;
  }
  const char* env = std::getenv("ENLD_MATRIX_OUT");
  if (env != nullptr && *env != '\0') return env;
  return "detector_matrix.json";
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("threads: %zu (set ENLD_THREADS to change)\n\n",
              ParallelThreadCount());

  const std::vector<std::string> detector_keys =
      SelectedDetectors(argc, argv);
  TablePrinter quality({"dataset", "noise", "detector", "precision",
                       "recall", "f1"});
  TablePrinter timing({"dataset", "noise", "detector", "setup_s",
                      "avg_process_s"});

  std::vector<MatrixCell> cells;
  std::vector<std::string> dataset_names;
  for (PaperDataset dataset : PaperTasks()) {
    dataset_names.push_back(PaperDatasetName(dataset));
    for (double noise : NoiseRates()) {
      const Workload workload = MakeWorkload(dataset, noise);
      for (const std::string& key : detector_keys) {
        auto detector = MakePaperDetector(key, dataset);
        const MethodRunResult run = RunDetector(detector.get(), workload);

        MatrixCell cell;
        cell.detector = run.method;
        cell.display_name = run.method_display;
        cell.dataset = PaperDatasetName(dataset);
        cell.noise = noise;
        cell.datasets_processed = workload.incremental.size();
        cell.quality = run.average();
        cell.setup_seconds = run.setup_seconds;
        cell.avg_process_seconds = run.average_process_seconds();
        for (const telemetry::SpanSnapshot& top :
             run.telemetry.spans.children) {
          FlattenSpans(top, "", &cell);
        }
        cells.push_back(cell);

        quality.AddRow({cell.dataset, TablePrinter::Num(noise, 1),
                        cell.detector, TablePrinter::Num(cell.quality.precision),
                        TablePrinter::Num(cell.quality.recall),
                        TablePrinter::Num(cell.quality.f1)});
        timing.AddRow({cell.dataset, TablePrinter::Num(noise, 1),
                       cell.detector,
                       TablePrinter::Num(cell.setup_seconds, 2),
                       TablePrinter::Num(cell.avg_process_seconds, 3)});
      }
    }
  }

  quality.Print("Detector matrix — detection quality");
  timing.Print("Detector matrix — setup / process time");

  const std::string out_path = MatrixOutPath(argc, argv);
  const std::string json =
      MatrixToJson(detector_keys, dataset_names, NoiseRates(), cells);
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  out << json;
  out.flush();
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("matrix report (%zu cells) -> %s\n", cells.size(),
              out_path.c_str());
  return 0;
}
