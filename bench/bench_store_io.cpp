// Durable-store I/O benchmark: CSV text serialization vs the binary shard
// format, for save and load, at several dataset sizes — plus the sharded
// (manifest + parallel load) path at 1/2/4 threads.
//
// Reported columns: wall seconds, on-disk bytes, and MB/s of *logical*
// dataset payload (features + labels + ids) actually moved. Binary shards
// are expected to win on both axes: no float formatting/parsing, ~2.4x
// smaller files for typical feature dims.
//
// ENLD_BENCH_ROWS (comma-separated row counts, default "2000,20000")
// overrides the sweep for quick CI runs. Pass --telemetry_out=report.json
// (or set ENLD_TELEMETRY) to dump the store span tree and `store/*`
// counters as a machine-readable run report, like bench_fig08_time.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "common/telemetry/report.h"
#include "data/noise.h"
#include "data/serialization.h"
#include "data/synthetic.h"
#include "eval/reporting.h"
#include "store/manifest.h"
#include "store/shard.h"

namespace {

using namespace enld;

namespace fs = std::filesystem;

std::vector<size_t> RowCounts() {
  const char* env = std::getenv("ENLD_BENCH_ROWS");
  if (env != nullptr && *env != '\0') {
    std::vector<size_t> rows;
    const char* cursor = env;
    while (*cursor != '\0') {
      char* next = nullptr;
      const long parsed = std::strtol(cursor, &next, 10);
      if (next == cursor) break;
      if (parsed > 0) rows.push_back(static_cast<size_t>(parsed));
      cursor = *next == ',' ? next + 1 : next;
    }
    if (!rows.empty()) return rows;
  }
  return {2000, 20000};
}

Dataset MakeData(size_t rows) {
  SyntheticConfig config = Cifar100SimConfig();
  config.num_classes = 50;
  config.samples_per_class = (rows + 49) / 50;
  Dataset d = GenerateSynthetic(config);
  Rng rng(31);
  ApplyLabelNoise(&d, TransitionMatrix::Symmetric(d.num_classes, 0.2), rng);
  MaskMissingLabels(&d, 0.05, rng);
  return d;
}

/// Bytes of dataset payload a save/load actually moves (float32 features,
/// two int32 label columns, u64 ids) — the denominator for MB/s, so the
/// CSV and binary rows are comparable even though their files differ.
double LogicalMb(const Dataset& d) {
  const double bytes = static_cast<double>(d.size()) *
                       (static_cast<double>(d.dim()) * 4.0 + 4 + 4 + 8);
  return bytes / (1024.0 * 1024.0);
}

double FileMb(const fs::path& path) {
  return static_cast<double>(fs::file_size(path)) / (1024.0 * 1024.0);
}

double DirMb(const fs::path& dir) {
  double bytes = 0;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file()) {
      bytes += static_cast<double>(entry.file_size());
    }
  }
  return bytes / (1024.0 * 1024.0);
}

constexpr int kReps = 5;

}  // namespace

int main(int argc, char** argv) {
  telemetry::ResetTelemetry();
  const fs::path dir =
      fs::temp_directory_path() / "enld_bench_store_io";
  fs::remove_all(dir);
  fs::create_directories(dir);

  TablePrinter table(
      {"rows", "format", "op", "seconds", "file_mb", "logical_mb_s"});

  for (size_t rows : RowCounts()) {
    const Dataset data = MakeData(rows);
    const double logical_mb = LogicalMb(data);
    const std::string label = std::to_string(data.size());

    // --- CSV ---
    const fs::path csv = dir / "data.csv";
    Stopwatch watch;
    for (int rep = 0; rep < kReps; ++rep) {
      ENLD_CHECK(SaveDatasetCsv(data, csv.string()).ok());
    }
    double seconds = watch.ElapsedSeconds() / kReps;
    table.AddRow({label, "csv", "save", TablePrinter::Num(seconds, 4),
                  TablePrinter::Num(FileMb(csv), 2),
                  TablePrinter::Num(logical_mb / seconds, 1)});

    watch.Restart();
    for (int rep = 0; rep < kReps; ++rep) {
      ENLD_CHECK(LoadDatasetCsv(csv.string()).ok());
    }
    seconds = watch.ElapsedSeconds() / kReps;
    table.AddRow({label, "csv", "load", TablePrinter::Num(seconds, 4),
                  TablePrinter::Num(FileMb(csv), 2),
                  TablePrinter::Num(logical_mb / seconds, 1)});

    // --- single binary shard ---
    const fs::path shard = dir / "data.bin";
    watch.Restart();
    for (int rep = 0; rep < kReps; ++rep) {
      ENLD_CHECK(store::SaveDatasetShard(data, shard.string()).ok());
    }
    seconds = watch.ElapsedSeconds() / kReps;
    table.AddRow({label, "shard", "save", TablePrinter::Num(seconds, 4),
                  TablePrinter::Num(FileMb(shard), 2),
                  TablePrinter::Num(logical_mb / seconds, 1)});

    watch.Restart();
    for (int rep = 0; rep < kReps; ++rep) {
      ENLD_CHECK(store::LoadDatasetShard(shard.string()).ok());
    }
    seconds = watch.ElapsedSeconds() / kReps;
    table.AddRow({label, "shard", "load", TablePrinter::Num(seconds, 4),
                  TablePrinter::Num(FileMb(shard), 2),
                  TablePrinter::Num(logical_mb / seconds, 1)});

    // --- sharded directory, parallel load at 1/2/4 threads ---
    const fs::path sharded = dir / "sharded";
    fs::remove_all(sharded);
    watch.Restart();
    ENLD_CHECK(store::SaveDatasetSharded(data, sharded.string(), "bench",
                                         /*rows_per_shard=*/1024)
                   .ok());
    seconds = watch.ElapsedSeconds();
    table.AddRow({label, "sharded", "save", TablePrinter::Num(seconds, 4),
                  TablePrinter::Num(DirMb(sharded), 2),
                  TablePrinter::Num(logical_mb / seconds, 1)});

    for (size_t threads : {1, 2, 4}) {
      SetParallelThreads(threads);
      watch.Restart();
      for (int rep = 0; rep < kReps; ++rep) {
        ENLD_CHECK(store::LoadDatasetSharded(sharded.string()).ok());
      }
      seconds = watch.ElapsedSeconds() / kReps;
      table.AddRow({label, "sharded",
                    "load@" + std::to_string(threads) + "t",
                    TablePrinter::Num(seconds, 4),
                    TablePrinter::Num(DirMb(sharded), 2),
                    TablePrinter::Num(logical_mb / seconds, 1)});
    }
    SetParallelThreads(0);
  }

  table.Print("store I/O — CSV vs binary shards");
  fs::remove_all(dir);

  // The store instruments every save/load: print the span tree and the
  // store/* counters, and dump the machine-readable report on request.
  telemetry::RunReport report = telemetry::CaptureRunReport();
  report.method = "store-io";
  std::printf("\n%s", TelemetrySummary(report).c_str());
  const std::string out_path = telemetry::TelemetryOutPath(argc, argv);
  if (!out_path.empty()) {
    const Status written = telemetry::WriteRunReport(report, out_path);
    std::printf("telemetry report -> %s: %s\n", out_path.c_str(),
                written.ToString().c_str());
    if (!written.ok()) return 1;
  }
  return 0;
}
