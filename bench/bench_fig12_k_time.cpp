// Reproduces Fig. 12: average process time and average f1 per contrastive
// sample size k in {1, 2, 3, 4} on CIFAR100-sim, averaged over noise rates.
// The paper's observation to track: time does not grow monotonically in k —
// more contrastive samples can make the fine-tuning converge faster.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace enld;
  using namespace enld::bench;

  TablePrinter table({"k", "avg_process_s", "avg_f1"});
  for (size_t k = 1; k <= 4; ++k) {
    double total_time = 0.0;
    double total_f1 = 0.0;
    for (double noise : NoiseRates()) {
      const Workload workload = MakeWorkload(PaperDataset::kCifar100, noise);
      EnldConfig config = PaperEnldConfig(PaperDataset::kCifar100);
      config.contrastive_k = k;
      EnldFramework detector(config);
      const MethodRunResult run = RunDetector(&detector, workload);
      total_time += run.average_process_seconds();
      total_f1 += run.average().f1;
    }
    table.AddRow({std::to_string(k),
                  TablePrinter::Num(total_time / NoiseRates().size(), 3),
                  TablePrinter::Num(total_f1 / NoiseRates().size())});
  }
  table.Print("Fig. 12 — process time and f1 per contrastive size k");
  return 0;
}
