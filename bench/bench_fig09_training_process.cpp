// Reproduces Fig. 9: precision / recall / f1 of the detected noisy set
// across fine-grained iterations on CIFAR100-sim, per noise rate, with the
// standard deviation over the incremental datasets. The clean-set size per
// iteration point comes from the telemetry series the detector records
// (`detect/clean_size`), the same data the JSON run report carries.
//
// Pass --telemetry_out=report.json (or ENLD_TELEMETRY=report.json) to dump
// the last run's full report.

#include <cmath>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/telemetry/report.h"

int main(int argc, char** argv) {
  using namespace enld;
  using namespace enld::bench;

  TablePrinter table({"noise", "iteration", "precision", "recall", "f1",
                      "f1_std"});
  TablePrinter clean_table({"noise", "point", "clean_size"});
  telemetry::RunReport last_report;
  for (double noise : NoiseRates()) {
    const Workload workload = MakeWorkload(PaperDataset::kCifar100, noise);
    EnldFramework enld(PaperEnldConfig(PaperDataset::kCifar100));
    const MethodRunResult run =
        RunDetector(&enld, workload, /*keep_raw=*/true);
    last_report = run.telemetry;

    const size_t iterations =
        PaperEnldConfig(PaperDataset::kCifar100).iterations;
    for (size_t iter = 0; iter < iterations; ++iter) {
      std::vector<DetectionMetrics> per_dataset;
      for (size_t d = 0; d < workload.incremental.size(); ++d) {
        const Dataset& data = workload.incremental[d];
        const auto& clean = run.raw_results[d].per_iteration_clean[iter];
        // Noisy set after this iteration = labeled samples not yet clean.
        std::vector<bool> is_clean(data.size(), false);
        for (size_t pos : clean) is_clean[pos] = true;
        std::vector<size_t> noisy;
        for (size_t i = 0; i < data.size(); ++i) {
          if (data.observed_labels[i] != kMissingLabel && !is_clean[i]) {
            noisy.push_back(i);
          }
        }
        per_dataset.push_back(EvaluateDetection(data, noisy));
      }
      const DetectionMetrics avg = AverageMetrics(per_dataset);
      double var = 0.0;
      for (const DetectionMetrics& m : per_dataset) {
        var += (m.f1 - avg.f1) * (m.f1 - avg.f1);
      }
      const double stddev =
          per_dataset.empty() ? 0.0 : std::sqrt(var / per_dataset.size());
      table.AddRow({TablePrinter::Num(noise, 1),
                    std::to_string(iter + 1), TablePrinter::Num(avg.precision),
                    TablePrinter::Num(avg.recall), TablePrinter::Num(avg.f1),
                    TablePrinter::Num(stddev)});
    }

    // Companion view from telemetry: the clean-set trajectory the detector
    // recorded (one point per iteration per incremental dataset).
    const auto series = run.telemetry.metrics.series.find("detect/clean_size");
    if (series != run.telemetry.metrics.series.end()) {
      for (size_t p = 0; p < series->second.size(); ++p) {
        clean_table.AddRow({TablePrinter::Num(noise, 1), std::to_string(p),
                            TablePrinter::Num(series->second[p], 0)});
      }
    }
  }
  table.Print(
      "Fig. 9 — detection trajectory across fine-grained iterations "
      "(CIFAR100)");
  clean_table.Print(
      "Clean-set size per iteration point (telemetry detect/clean_size)");

  const std::string out_path = telemetry::TelemetryOutPath(argc, argv);
  if (!out_path.empty()) {
    const Status written = telemetry::WriteRunReport(last_report, out_path);
    std::printf("telemetry report -> %s: %s\n", out_path.c_str(),
                written.ToString().c_str());
    if (!written.ok()) return 1;
  }
  return 0;
}
