// Reproduces Fig. 9: precision / recall / f1 of the detected noisy set
// across fine-grained iterations on CIFAR100-sim, per noise rate, with the
// standard deviation over the incremental datasets.

#include <cmath>
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace enld;
  using namespace enld::bench;

  TablePrinter table({"noise", "iteration", "precision", "recall", "f1",
                      "f1_std"});
  for (double noise : NoiseRates()) {
    const Workload workload = MakeWorkload(PaperDataset::kCifar100, noise);
    EnldFramework enld(PaperEnldConfig(PaperDataset::kCifar100));
    const MethodRunResult run =
        RunDetector(&enld, workload, /*keep_raw=*/true);

    const size_t iterations =
        PaperEnldConfig(PaperDataset::kCifar100).iterations;
    for (size_t iter = 0; iter < iterations; ++iter) {
      std::vector<DetectionMetrics> per_dataset;
      for (size_t d = 0; d < workload.incremental.size(); ++d) {
        const Dataset& data = workload.incremental[d];
        const auto& clean = run.raw_results[d].per_iteration_clean[iter];
        // Noisy set after this iteration = labeled samples not yet clean.
        std::vector<bool> is_clean(data.size(), false);
        for (size_t pos : clean) is_clean[pos] = true;
        std::vector<size_t> noisy;
        for (size_t i = 0; i < data.size(); ++i) {
          if (data.observed_labels[i] != kMissingLabel && !is_clean[i]) {
            noisy.push_back(i);
          }
        }
        per_dataset.push_back(EvaluateDetection(data, noisy));
      }
      const DetectionMetrics avg = AverageMetrics(per_dataset);
      double var = 0.0;
      for (const DetectionMetrics& m : per_dataset) {
        var += (m.f1 - avg.f1) * (m.f1 - avg.f1);
      }
      const double stddev =
          per_dataset.empty() ? 0.0 : std::sqrt(var / per_dataset.size());
      table.AddRow({TablePrinter::Num(noise, 1),
                    std::to_string(iter + 1), TablePrinter::Num(avg.precision),
                    TablePrinter::Num(avg.recall), TablePrinter::Num(avg.f1),
                    TablePrinter::Num(stddev)});
    }
  }
  table.Print(
      "Fig. 9 — detection trajectory across fine-grained iterations "
      "(CIFAR100)");
  return 0;
}
