// Reproduces Fig. 11: detection quality for contrastive sample sizes
// k in {1, 2, 3, 4} on the CIFAR100-sim stream. The paper's findings to
// track: quality generally grows with k, and k = 4 helps most at the
// highest noise rate.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace enld;
  using namespace enld::bench;

  TablePrinter table({"noise", "k", "precision", "recall", "f1"});
  for (double noise : NoiseRates()) {
    const Workload workload = MakeWorkload(PaperDataset::kCifar100, noise);
    for (size_t k = 1; k <= 4; ++k) {
      EnldConfig config = PaperEnldConfig(PaperDataset::kCifar100);
      config.contrastive_k = k;
      EnldFramework detector(config);
      const DetectionMetrics avg =
          RunDetector(&detector, workload).average();
      table.AddRow({TablePrinter::Num(noise, 1), std::to_string(k),
                    TablePrinter::Num(avg.precision),
                    TablePrinter::Num(avg.recall),
                    TablePrinter::Num(avg.f1)});
    }
  }
  table.Print("Fig. 11 — contrastive sample size k sweep (CIFAR100)");
  return 0;
}
