// Google-benchmark micro-benchmarks for the substrates the paper's
// implementation notes call out: the KD-tree that accelerates repeated
// k-nearest queries (Section IV-D reports O(k|A| log|H'|) vs the brute
// O(c|A||H'|)), the dense kernels the network substrate runs on, and the
// union-find behind Topofilter's connected components.

#include <benchmark/benchmark.h>

#include "common/distance.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "graph/knn_graph.h"
#include "graph/union_find.h"
#include "knn/kdtree.h"
#include "nn/mlp.h"

namespace enld {
namespace {

Matrix RandomPoints(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, dim);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.Gaussian());
  }
  return m;
}

void BM_KdTreeBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix points = RandomPoints(n, 64, 1);
  for (auto _ : state) {
    KdTree tree(points);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KdTreeBuild)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_KdTreeQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix points = RandomPoints(n, 64, 2);
  const KdTree tree(points);
  Rng rng(3);
  std::vector<float> query(64);
  for (auto _ : state) {
    for (auto& q : query) q = static_cast<float>(rng.Gaussian());
    benchmark::DoNotOptimize(tree.Nearest(query.data(), 3));
  }
}
BENCHMARK(BM_KdTreeQuery)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_BruteForceQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix points = RandomPoints(n, 64, 4);
  std::vector<size_t> rows(n);
  for (size_t i = 0; i < n; ++i) rows[i] = i;
  Rng rng(5);
  std::vector<float> query(64);
  for (auto _ : state) {
    for (auto& q : query) q = static_cast<float>(rng.Gaussian());
    benchmark::DoNotOptimize(
        BruteForceNearest(points, rows, query.data(), 3));
  }
}
BENCHMARK(BM_BruteForceQuery)->Arg(1000)->Arg(4000)->Arg(16000);

// ---- Distance kernel rows (docs/BENCHMARKS.md, "Distance kernels") ----
// The scalar per-point loop the KD-tree leaf scans used before the SoA
// kernel landed, over the same candidate block. The kernel rows divide by
// this one for the tracked speedup number.

void BM_ScalarDistanceLoop(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t dim = static_cast<size_t>(state.range(1));
  const Matrix points = RandomPoints(n, dim, 21);
  const std::vector<float> query(dim, 0.25f);
  std::vector<float> out(n);
  for (auto _ : state) {
    for (size_t i = 0; i < n; ++i) {
      out[i] = SquaredDistance(points.Row(i), query.data(), dim);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ScalarDistanceLoop)
    ->Args({16, 64})
    ->Args({1024, 64})
    ->Args({16384, 64});

void BM_BatchedDistance(benchmark::State& state, const char* backend) {
  if (!SetDistanceKernelBackend(backend)) {
    state.SkipWithError("backend unavailable on this CPU");
    return;
  }
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t dim = static_cast<size_t>(state.range(1));
  const Matrix points = RandomPoints(n, dim, 21);
  std::vector<size_t> rows(n);
  for (size_t i = 0; i < n; ++i) rows[i] = i;
  const size_t stride = PaddedLaneCount(n);
  std::vector<float> soa(stride * dim);
  PackSoaBlock(points.data(), dim, rows.data(), n, stride, soa.data());
  const std::vector<float> query(dim, 0.25f);
  std::vector<float> out(n);
  for (auto _ : state) {
    BatchedSquaredDistances(soa.data(), stride, n, dim, query.data(),
                            out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  SetDistanceKernelBackend("auto");
}
BENCHMARK_CAPTURE(BM_BatchedDistance, generic, "generic")
    ->Args({16, 64})
    ->Args({1024, 64})
    ->Args({16384, 64});
BENCHMARK_CAPTURE(BM_BatchedDistance, avx2, "avx2")
    ->Args({16, 64})
    ->Args({1024, 64})
    ->Args({16384, 64});

void BM_MatMul(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix a = RandomPoints(n, n, 6);
  const Matrix b = RandomPoints(n, n, 7);
  Matrix out;
  for (auto _ : state) {
    MatMul(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_SoftmaxRows(benchmark::State& state) {
  const Matrix logits = RandomPoints(1024, 100, 8);
  Matrix probs;
  for (auto _ : state) {
    SoftmaxRows(logits, &probs);
    benchmark::DoNotOptimize(probs.data());
  }
}
BENCHMARK(BM_SoftmaxRows);

void BM_MlpForward(benchmark::State& state) {
  Rng rng(9);
  MlpModel model({32, 128, 64, 100}, rng);
  const Matrix inputs = RandomPoints(256, 32, 10);
  Matrix logits;
  for (auto _ : state) {
    model.Forward(inputs, &logits);
    benchmark::DoNotOptimize(logits.data());
  }
  state.SetItemsProcessed(state.iterations() * inputs.rows());
}
BENCHMARK(BM_MlpForward);

void BM_UnionFind(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(11);
  std::vector<std::pair<size_t, size_t>> edges(4 * n);
  for (auto& e : edges) e = {rng.UniformInt(n), rng.UniformInt(n)};
  for (auto _ : state) {
    UnionFind uf(n);
    for (const auto& [a, b] : edges) uf.Union(a, b);
    benchmark::DoNotOptimize(uf.num_sets());
  }
  state.SetItemsProcessed(state.iterations() * edges.size());
}
BENCHMARK(BM_UnionFind)->Arg(1000)->Arg(10000);

void BM_KnnGraphComponents(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix points = RandomPoints(n, 64, 12);
  std::vector<size_t> rows(n);
  for (size_t i = 0; i < n; ++i) rows[i] = i;
  for (auto _ : state) {
    benchmark::DoNotOptimize(KnnGraphComponents(points, rows, 4, true));
  }
}
BENCHMARK(BM_KnnGraphComponents)->Arg(200)->Arg(1000);

}  // namespace
}  // namespace enld

BENCHMARK_MAIN();
