// Reproduces Table II: validation accuracy (against true labels) of the
// original general model θ and the updated model θ^u on the remaining data
// (the incremental stream plus the swapped-out inventory half), per noise
// rate on CIFAR100-sim. The paper's claim to track: the update improves the
// model's generalization at every noise rate (most at low noise).

#include <cstdio>

#include "bench_util.h"
#include "nn/trainer.h"

namespace {

double StreamAccuracy(enld::MlpModel* model, const enld::Workload& workload) {
  double total = 0.0;
  for (const enld::Dataset& d : workload.incremental) {
    total += enld::AccuracyAgainstTrue(model, d);
  }
  return total / workload.incremental.size();
}

}  // namespace

int main() {
  using namespace enld;
  using namespace enld::bench;

  TablePrinter table({"noise", "origin_model_acc", "updated_model_acc",
                      "selected_clean", "selected_purity"});
  for (double noise : NoiseRates()) {
    const Workload workload = MakeWorkload(PaperDataset::kCifar100, noise);
    EnldFramework enld(PaperEnldConfig(PaperDataset::kCifar100));
    enld.Setup(workload.inventory);

    const double before = StreamAccuracy(enld.general_model(), workload);
    for (const Dataset& d : workload.incremental) enld.Detect(d);

    const auto selected = enld.selected_clean_positions();
    size_t pure = 0;
    for (size_t pos : selected) {
      if (enld.candidate_set().observed_labels[pos] ==
          enld.candidate_set().true_labels[pos]) {
        ++pure;
      }
    }
    const double purity =
        selected.empty() ? 0.0
                         : static_cast<double>(pure) / selected.size();

    const Status update = enld.UpdateModel();
    const double after = update.ok()
                             ? StreamAccuracy(enld.general_model(), workload)
                             : 0.0;
    table.AddRow({TablePrinter::Num(noise, 1), TablePrinter::Num(before),
                  TablePrinter::Num(after), std::to_string(selected.size()),
                  TablePrinter::Num(purity)});
  }
  table.Print(
      "Table II — validation accuracy before/after the model update "
      "(CIFAR100)");
  return 0;
}
