// Thread-scaling benchmark for the parallel substrate (src/common/parallel):
// times each hot path at 1/2/4/8 threads and reports speedup vs the
// sequential path. Also asserts the determinism contract end-to-end: the
// ENLD detector must produce bit-identical clean/noisy partitions at every
// thread count.
//
// Hot paths measured:
//   matmul        — dense MatMul (trainer forward/backward kernels)
//   knn_build     — per-class KD-tree construction (ClassKnnIndex)
//   knn_query     — batched class-constrained nearest-neighbour queries
//   conf_joint    — confident-joint estimation over the candidate set
//   detect_e2e    — one full fine-grained detection request (Alg. 3)
//
// Also reports two hot-path numbers that must hold regardless of thread
// count (docs/BENCHMARKS.md):
//   distance_kernel — batched SoA squared-distance kernel vs the scalar
//                     per-point loop (common/distance.h);
//   detect_stream   — a multi-request detection stream with the
//                     FeatureCache on vs off at 1 and 4 threads, asserting
//                     byte-identical partitions and fewer knn/trees_built
//                     with the cache on.
//
// Speedups depend on the host: on a single-core container every row is
// ~1.0x. ENLD_THREADS is ignored here (thread counts are swept in-process).

#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/distance.h"
#include "common/matrix.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/telemetry/metrics.h"
#include "data/synthetic.h"
#include "enld/framework.h"
#include "knn/class_index.h"
#include "nn/confident_joint.h"
#include "nn/mlp.h"

namespace {

using namespace enld;

constexpr size_t kThreadCounts[] = {1, 2, 4, 8};

double TimeMatMul() {
  Rng rng(11);
  Matrix a(384, 256), b(256, 384), out;
  for (size_t i = 0; i < a.size(); ++i) {
    a.data()[i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  for (size_t i = 0; i < b.size(); ++i) {
    b.data()[i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  Stopwatch watch;
  for (int rep = 0; rep < 20; ++rep) MatMul(a, b, &out);
  return watch.ElapsedSeconds();
}

Dataset MakeFeatureSet() {
  SyntheticConfig config = Cifar100SimConfig();
  config.samples_per_class = 40;
  return GenerateSynthetic(config);
}

double TimeKnnBuild(const Dataset& data) {
  std::vector<size_t> rows(data.size());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  Stopwatch watch;
  for (int rep = 0; rep < 5; ++rep) {
    ClassKnnIndex index(data.features, data.observed_labels, rows,
                        data.num_classes);
  }
  return watch.ElapsedSeconds();
}

double TimeKnnQuery(const Dataset& data) {
  std::vector<size_t> rows(data.size());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  ClassKnnIndex index(data.features, data.observed_labels, rows,
                      data.num_classes);
  // Every sample queries the *next* class — forces cross-tree traffic.
  std::vector<int> labels(data.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    labels[i] = (data.observed_labels[i] + 1) % data.num_classes;
  }
  Stopwatch watch;
  for (int rep = 0; rep < 5; ++rep) {
    index.NearestBatch(labels, data.features, rows, 10);
  }
  return watch.ElapsedSeconds();
}

double TimeConfidentJoint(const Dataset& data) {
  Rng rng(29);
  MlpModel model({data.dim(), 64, static_cast<size_t>(data.num_classes)},
                 rng);
  Stopwatch watch;
  for (int rep = 0; rep < 5; ++rep) {
    EstimateConfidentJoint(&model, data);
  }
  return watch.ElapsedSeconds();
}

struct DetectRun {
  double seconds = 0.0;
  std::vector<size_t> clean;
  std::vector<size_t> noisy;
};

DetectRun TimeDetect() {
  WorkloadConfig config =
      PaperWorkloadConfig(PaperDataset::kEmnist, /*noise_rate=*/0.2);
  config.stream.num_datasets = 1;
  const Workload workload = BuildWorkload(config);

  EnldFramework enld(PaperEnldConfig(PaperDataset::kEmnist));
  enld.Setup(workload.inventory);

  DetectRun run;
  Stopwatch watch;
  DetectionResult result = enld.Detect(workload.incremental.front());
  run.seconds = watch.ElapsedSeconds();
  run.clean = std::move(result.clean_indices);
  run.noisy = std::move(result.noisy_indices);
  return run;
}

/// Distance-kernel rows: scalar per-point loop vs the batched SoA kernel
/// on one 1024 x 64 candidate block — the BruteForceNearest chunk size,
/// so the block is L2-resident like the real leaf scans (at 16k+ points
/// both paths go memory-bound and converge). Single-threaded by
/// construction — the kernel win is orthogonal to the thread sweep.
/// Returns the batched/scalar speedup of the dispatched backend.
double PrintDistanceKernelTable() {
  const size_t n = 1024, dim = 64;
  Rng rng(41);
  Matrix points(n, dim);
  for (size_t i = 0; i < points.size(); ++i) {
    points.data()[i] = static_cast<float>(rng.Gaussian());
  }
  std::vector<size_t> rows(n);
  for (size_t i = 0; i < n; ++i) rows[i] = i;
  const size_t stride = PaddedLaneCount(n);
  std::vector<float> soa(stride * dim);
  PackSoaBlock(points.data(), dim, rows.data(), n, stride, soa.data());
  std::vector<float> query(dim, 0.25f);
  std::vector<float> out(n);
  constexpr int kReps = 2000;

  Stopwatch scalar_watch;
  for (int rep = 0; rep < kReps; ++rep) {
    for (size_t i = 0; i < n; ++i) {
      out[i] = SquaredDistance(points.Row(i), query.data(), dim);
    }
  }
  const double scalar_seconds = scalar_watch.ElapsedSeconds();

  TablePrinter table({"kernel", "seconds", "speedup_vs_scalar"});
  table.AddRow({"scalar_loop", TablePrinter::Num(scalar_seconds, 4),
                TablePrinter::Num(1.0, 2)});
  double dispatched_speedup = 0.0;
  for (const char* backend : {"generic", "avx2"}) {
    if (!SetDistanceKernelBackend(backend)) continue;
    Stopwatch watch;
    for (int rep = 0; rep < kReps; ++rep) {
      BatchedSquaredDistances(soa.data(), stride, n, dim, query.data(),
                              out.data());
    }
    const double seconds = watch.ElapsedSeconds();
    table.AddRow({backend, TablePrinter::Num(seconds, 4),
                  TablePrinter::Num(scalar_seconds / seconds, 2)});
    dispatched_speedup = scalar_seconds / seconds;
  }
  SetDistanceKernelBackend("auto");
  table.Print("distance kernel — 1024 points x 64 dims per query");
  return dispatched_speedup;
}

struct StreamRun {
  double seconds = 0.0;
  uint64_t trees_built = 0;
  uint64_t view_hits = 0;
  uint64_t index_hits = 0;
  std::vector<std::vector<size_t>> clean;
  std::vector<std::vector<size_t>> noisy;
};

/// A short multi-request detection stream against one framework, with the
/// FeatureCache forced on or off. The stream runs two passes over the
/// incremental datasets — the second pass replays each request, the
/// pattern the store's quarantine-replay ops produce — so the index cache
/// gets same-pool repeats to hit on. Counts the KD-trees built during the
/// Detect calls via the exact knn/trees_built counter.
StreamRun TimeDetectStream(bool use_cache) {
  WorkloadConfig config =
      PaperWorkloadConfig(PaperDataset::kEmnist, /*noise_rate=*/0.2);
  config.stream.num_datasets = 3;
  const Workload workload = BuildWorkload(config);

  EnldConfig enld_config = PaperEnldConfig(PaperDataset::kEmnist);
  enld_config.use_feature_cache = use_cache;
  EnldFramework enld(enld_config);
  enld.Setup(workload.inventory);

  auto* trees_built =
      telemetry::MetricsRegistry::Global().GetCounter("knn/trees_built");
  StreamRun run;
  const uint64_t before = trees_built->Value();
  Stopwatch watch;
  for (int pass = 0; pass < 2; ++pass) {
    for (const Dataset& d : workload.incremental) {
      DetectionResult result = enld.Detect(d);
      run.clean.push_back(std::move(result.clean_indices));
      run.noisy.push_back(std::move(result.noisy_indices));
    }
  }
  run.seconds = watch.ElapsedSeconds();
  run.trees_built = trees_built->Value() - before;
  run.view_hits = enld.feature_cache().stats().view_hits;
  run.index_hits = enld.feature_cache().stats().index_hits;
  return run;
}

}  // namespace

int main() {
  std::printf("hardware threads available: %u\n\n",
              std::thread::hardware_concurrency());

  const Dataset features = MakeFeatureSet();

  TablePrinter table({"hot_path", "threads", "seconds", "speedup_vs_1"});
  std::vector<DetectRun> detect_runs;

  struct PathResult {
    const char* name;
    double baseline = 0.0;
  };
  PathResult paths[] = {{"matmul"}, {"knn_build"}, {"knn_query"},
                        {"conf_joint"}, {"detect_e2e"}};

  for (size_t threads : kThreadCounts) {
    SetParallelThreads(threads);
    double seconds[5];
    seconds[0] = TimeMatMul();
    seconds[1] = TimeKnnBuild(features);
    seconds[2] = TimeKnnQuery(features);
    seconds[3] = TimeConfidentJoint(features);
    DetectRun run = TimeDetect();
    seconds[4] = run.seconds;
    detect_runs.push_back(std::move(run));

    for (int p = 0; p < 5; ++p) {
      if (threads == 1) paths[p].baseline = seconds[p];
      table.AddRow({paths[p].name, TablePrinter::Num(threads, 0),
                    TablePrinter::Num(seconds[p], 4),
                    TablePrinter::Num(paths[p].baseline / seconds[p], 2)});
    }
  }
  table.Print("parallel scaling — wall clock per hot path");

  // Determinism: the detector partition must be bit-identical at every
  // thread count.
  bool identical = true;
  for (size_t i = 1; i < detect_runs.size(); ++i) {
    identical = identical && detect_runs[i].clean == detect_runs[0].clean &&
                detect_runs[i].noisy == detect_runs[0].noisy;
  }
  std::printf("\ndeterminism across thread counts: %s (clean=%zu noisy=%zu)\n",
              identical ? "PASS" : "FAIL", detect_runs[0].clean.size(),
              detect_runs[0].noisy.size());

  SetParallelThreads(1);
  std::printf("\n");
  const double kernel_speedup = PrintDistanceKernelTable();

  // FeatureCache on/off at 1 and 4 threads: same partitions, fewer trees.
  struct Combo {
    size_t threads;
    bool cache;
  };
  const Combo combos[] = {{1, true}, {1, false}, {4, true}, {4, false}};
  std::vector<StreamRun> stream_runs;
  TablePrinter cache_table({"config", "threads", "seconds",
                            "knn_trees_built", "view_hits", "index_hits"});
  for (const Combo& combo : combos) {
    SetParallelThreads(combo.threads);
    StreamRun run = TimeDetectStream(combo.cache);
    cache_table.AddRow({combo.cache ? "cache_on" : "cache_off",
                        TablePrinter::Num(combo.threads, 0),
                        TablePrinter::Num(run.seconds, 4),
                        TablePrinter::Num(run.trees_built, 0),
                        TablePrinter::Num(run.view_hits, 0),
                        TablePrinter::Num(run.index_hits, 0)});
    stream_runs.push_back(std::move(run));
  }
  SetParallelThreads(0);
  cache_table.Print(
      "detect stream — FeatureCache on/off (3 requests + replay)");

  bool cache_identical = true;
  for (size_t i = 1; i < stream_runs.size(); ++i) {
    cache_identical = cache_identical &&
                      stream_runs[i].clean == stream_runs[0].clean &&
                      stream_runs[i].noisy == stream_runs[0].noisy;
  }
  const bool fewer_trees =
      stream_runs[0].trees_built < stream_runs[1].trees_built &&
      stream_runs[2].trees_built < stream_runs[3].trees_built;
  std::printf(
      "\ncache on/off byte-identity at 1 and 4 threads: %s\n"
      "cache builds fewer KD-trees: %s (on=%llu off=%llu)\n"
      "distance kernel speedup vs scalar loop: %.2fx\n",
      cache_identical ? "PASS" : "FAIL", fewer_trees ? "PASS" : "FAIL",
      static_cast<unsigned long long>(stream_runs[0].trees_built),
      static_cast<unsigned long long>(stream_runs[1].trees_built),
      kernel_speedup);
  return identical && cache_identical && fewer_trees ? 0 : 1;
}
