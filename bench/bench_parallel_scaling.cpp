// Thread-scaling benchmark for the parallel substrate (src/common/parallel):
// times each hot path at 1/2/4/8 threads and reports speedup vs the
// sequential path. Also asserts the determinism contract end-to-end: the
// ENLD detector must produce bit-identical clean/noisy partitions at every
// thread count.
//
// Hot paths measured:
//   matmul        — dense MatMul (trainer forward/backward kernels)
//   knn_build     — per-class KD-tree construction (ClassKnnIndex)
//   knn_query     — batched class-constrained nearest-neighbour queries
//   conf_joint    — confident-joint estimation over the candidate set
//   detect_e2e    — one full fine-grained detection request (Alg. 3)
//
// Speedups depend on the host: on a single-core container every row is
// ~1.0x. ENLD_THREADS is ignored here (thread counts are swept in-process).

#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/matrix.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "data/synthetic.h"
#include "knn/class_index.h"
#include "nn/confident_joint.h"
#include "nn/mlp.h"

namespace {

using namespace enld;

constexpr size_t kThreadCounts[] = {1, 2, 4, 8};

double TimeMatMul() {
  Rng rng(11);
  Matrix a(384, 256), b(256, 384), out;
  for (size_t i = 0; i < a.size(); ++i) {
    a.data()[i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  for (size_t i = 0; i < b.size(); ++i) {
    b.data()[i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  Stopwatch watch;
  for (int rep = 0; rep < 20; ++rep) MatMul(a, b, &out);
  return watch.ElapsedSeconds();
}

Dataset MakeFeatureSet() {
  SyntheticConfig config = Cifar100SimConfig();
  config.samples_per_class = 40;
  return GenerateSynthetic(config);
}

double TimeKnnBuild(const Dataset& data) {
  std::vector<size_t> rows(data.size());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  Stopwatch watch;
  for (int rep = 0; rep < 5; ++rep) {
    ClassKnnIndex index(data.features, data.observed_labels, rows,
                        data.num_classes);
  }
  return watch.ElapsedSeconds();
}

double TimeKnnQuery(const Dataset& data) {
  std::vector<size_t> rows(data.size());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  ClassKnnIndex index(data.features, data.observed_labels, rows,
                      data.num_classes);
  // Every sample queries the *next* class — forces cross-tree traffic.
  std::vector<int> labels(data.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    labels[i] = (data.observed_labels[i] + 1) % data.num_classes;
  }
  Stopwatch watch;
  for (int rep = 0; rep < 5; ++rep) {
    index.NearestBatch(labels, data.features, rows, 10);
  }
  return watch.ElapsedSeconds();
}

double TimeConfidentJoint(const Dataset& data) {
  Rng rng(29);
  MlpModel model({data.dim(), 64, static_cast<size_t>(data.num_classes)},
                 rng);
  Stopwatch watch;
  for (int rep = 0; rep < 5; ++rep) {
    EstimateConfidentJoint(&model, data);
  }
  return watch.ElapsedSeconds();
}

struct DetectRun {
  double seconds = 0.0;
  std::vector<size_t> clean;
  std::vector<size_t> noisy;
};

DetectRun TimeDetect() {
  WorkloadConfig config =
      PaperWorkloadConfig(PaperDataset::kEmnist, /*noise_rate=*/0.2);
  config.stream.num_datasets = 1;
  const Workload workload = BuildWorkload(config);

  EnldFramework enld(PaperEnldConfig(PaperDataset::kEmnist));
  enld.Setup(workload.inventory);

  DetectRun run;
  Stopwatch watch;
  DetectionResult result = enld.Detect(workload.incremental.front());
  run.seconds = watch.ElapsedSeconds();
  run.clean = std::move(result.clean_indices);
  run.noisy = std::move(result.noisy_indices);
  return run;
}

}  // namespace

int main() {
  std::printf("hardware threads available: %u\n\n",
              std::thread::hardware_concurrency());

  const Dataset features = MakeFeatureSet();

  TablePrinter table({"hot_path", "threads", "seconds", "speedup_vs_1"});
  std::vector<DetectRun> detect_runs;

  struct PathResult {
    const char* name;
    double baseline = 0.0;
  };
  PathResult paths[] = {{"matmul"}, {"knn_build"}, {"knn_query"},
                        {"conf_joint"}, {"detect_e2e"}};

  for (size_t threads : kThreadCounts) {
    SetParallelThreads(threads);
    double seconds[5];
    seconds[0] = TimeMatMul();
    seconds[1] = TimeKnnBuild(features);
    seconds[2] = TimeKnnQuery(features);
    seconds[3] = TimeConfidentJoint(features);
    DetectRun run = TimeDetect();
    seconds[4] = run.seconds;
    detect_runs.push_back(std::move(run));

    for (int p = 0; p < 5; ++p) {
      if (threads == 1) paths[p].baseline = seconds[p];
      table.AddRow({paths[p].name, TablePrinter::Num(threads, 0),
                    TablePrinter::Num(seconds[p], 4),
                    TablePrinter::Num(paths[p].baseline / seconds[p], 2)});
    }
  }
  table.Print("parallel scaling — wall clock per hot path");

  // Determinism: the detector partition must be bit-identical at every
  // thread count.
  bool identical = true;
  for (size_t i = 1; i < detect_runs.size(); ++i) {
    identical = identical && detect_runs[i].clean == detect_runs[0].clean &&
                detect_runs[i].noisy == detect_runs[0].noisy;
  }
  std::printf("\ndeterminism across thread counts: %s (clean=%zu noisy=%zu)\n",
              identical ? "PASS" : "FAIL", detect_runs[0].clean.size(),
              detect_runs[0].noisy.size());
  return identical ? 0 : 1;
}
