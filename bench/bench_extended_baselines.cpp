// Extension experiment (beyond the paper's comparison set): the related-
// work sample-selection methods the paper cites as unsuited to incremental
// data — O2U-Net [11], Co-teaching [22] and INCV [12] — run per-request on
// the related inventory subset + D, exactly like Topofilter.
//
// The result this bench demonstrates is the paper's core motivation
// (Section I): pair noise usually flows from a class *outside* label(D),
// so the mislabeled samples are the only occupants of their feature region
// in the per-request training set and any purely per-request method learns
// them as legitimate. Only methods with inventory-wide knowledge (the
// general model of Default / CL / ENLD) or label-free geometry
// (Topofilter) can catch such noise.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace enld;
  using namespace enld::bench;

  TablePrinter table({"noise", "method", "precision", "recall", "f1",
                      "avg_process_s"});
  for (double noise : {0.2, 0.4}) {
    const Workload workload = MakeWorkload(PaperDataset::kCifar100, noise);

    // Registry-created, default configs for the extension methods plus the
    // paper-calibrated reference points from the main comparison set.
    std::vector<std::unique_ptr<NoisyLabelDetector>> detectors;
    for (const char* key :
         {"o2u", "coteaching", "incv", "topofilter", "enld"}) {
      detectors.push_back(
          MakePaperDetector(key, PaperDataset::kCifar100));
    }

    for (auto& detector : detectors) {
      const MethodRunResult run = RunDetector(detector.get(), workload);
      const DetectionMetrics avg = run.average();
      table.AddRow({TablePrinter::Num(noise, 1), run.method,
                    TablePrinter::Num(avg.precision),
                    TablePrinter::Num(avg.recall), TablePrinter::Num(avg.f1),
                    TablePrinter::Num(run.average_process_seconds(), 3)});
    }
  }
  table.Print(
      "Extension — per-request sample-selection methods on incremental "
      "data (CIFAR100)");
  std::puts(
      "\nReading: O2U-Net / Co-teaching / INCV train per request on the\n"
      "label(D)-related subset, where mislabeled samples are usually the\n"
      "only occupants of their true class's feature region, so their\n"
      "recall collapses — the failure mode that motivates ENLD (Sec. I).");
  return 0;
}
