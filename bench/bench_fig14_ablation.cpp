// Reproduces Fig. 14: the ablation study of Section V-I on CIFAR100-sim.
//   ENLD-Origin — the full method.
//   ENLD-1      — random picks from the high-quality pool instead of
//                 contrastive (feature-nearest) sampling.
//   ENLD-2      — no majority voting (one agreeing step admits a sample).
//   ENLD-3      — no C = C ∪ S merge of selected clean samples.
//   ENLD-4      — j = i (observed label) instead of j ~ P̃(·|ỹ).
// The paper's findings to track: removing contrastive sampling costs the
// most; removing majority voting hurts mainly at high noise; ENLD-4 is
// competitive at low noise but loses at high noise.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace enld;
  using namespace enld::bench;

  struct Variant {
    const char* name;
    EnldAblation ablation;
  };
  std::vector<Variant> variants(5);
  variants[0].name = "ENLD-Origin";
  variants[1].name = "ENLD-1";
  variants[1].ablation.use_contrastive = false;
  variants[2].name = "ENLD-2";
  variants[2].ablation.use_majority_voting = false;
  variants[3].name = "ENLD-3";
  variants[3].ablation.merge_clean_into_c = false;
  variants[4].name = "ENLD-4";
  variants[4].ablation.use_probability_label = false;

  TablePrinter table({"noise", "variant", "precision", "recall", "f1"});
  std::vector<double> avg_f1(variants.size(), 0.0);
  for (double noise : NoiseRates()) {
    const Workload workload = MakeWorkload(PaperDataset::kCifar100, noise);
    for (size_t v = 0; v < variants.size(); ++v) {
      EnldConfig config = PaperEnldConfig(PaperDataset::kCifar100);
      config.ablation = variants[v].ablation;
      EnldFramework detector(config);
      const DetectionMetrics avg =
          RunDetector(&detector, workload).average();
      avg_f1[v] += avg.f1 / NoiseRates().size();
      table.AddRow({TablePrinter::Num(noise, 1), variants[v].name,
                    TablePrinter::Num(avg.precision),
                    TablePrinter::Num(avg.recall),
                    TablePrinter::Num(avg.f1)});
    }
  }
  table.Print("Fig. 14 — ablation study (CIFAR100)");

  TablePrinter summary({"variant", "avg_f1"});
  for (size_t v = 0; v < variants.size(); ++v) {
    summary.AddRow({variants[v].name, TablePrinter::Num(avg_f1[v])});
  }
  summary.Print("Fig. 14 summary — average f1 over noise rates");
  return 0;
}
