// Reproduces Fig. 6: ENLD vs Topofilter with the DenseNet-121-sim and
// ResNet-164-sim backbones on CIFAR100-sim, plus the per-backbone
// process-time speedups the paper reports (2.46x / 2.64x at full scale).

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace enld;
  using namespace enld::bench;

  TablePrinter table({"backbone", "noise", "method", "precision", "recall",
                      "f1", "avg_process_s"});
  TablePrinter speedups({"backbone", "avg_speedup"});

  for (Backbone backbone :
       {Backbone::kDenseNet121Sim, Backbone::kResNet164Sim}) {
    double topofilter_time = 0.0;
    double enld_time = 0.0;
    for (double noise : NoiseRates()) {
      const Workload workload = MakeWorkload(PaperDataset::kCifar100, noise);

      TopofilterConfig topo_config =
          PaperTopofilterConfig(PaperDataset::kCifar100);
      topo_config.backbone = backbone;
      TopofilterDetector topofilter(topo_config);
      const MethodRunResult topo_run = RunDetector(&topofilter, workload);
      topofilter_time += topo_run.average_process_seconds();

      EnldConfig enld_config = PaperEnldConfig(PaperDataset::kCifar100);
      enld_config.general.backbone = backbone;
      EnldFramework enld(enld_config);
      const MethodRunResult enld_run = RunDetector(&enld, workload);
      enld_time += enld_run.average_process_seconds();

      for (const MethodRunResult* run : {&topo_run, &enld_run}) {
        const DetectionMetrics avg = run->average();
        table.AddRow({BackboneName(backbone), TablePrinter::Num(noise, 1),
                      run->method, TablePrinter::Num(avg.precision),
                      TablePrinter::Num(avg.recall),
                      TablePrinter::Num(avg.f1),
                      TablePrinter::Num(run->average_process_seconds(), 3)});
      }
    }
    speedups.AddRow({BackboneName(backbone),
                     TablePrinter::Num(topofilter_time / enld_time, 2)});
  }
  table.Print("Fig. 6 — ENLD vs Topofilter across backbones (CIFAR100)");
  speedups.Print("Fig. 6 headline — process-time speedup per backbone");
  return 0;
}
