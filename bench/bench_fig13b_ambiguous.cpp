// Reproduces Fig. 13(b): the number of ambiguous samples per fine-grained
// iteration on CIFAR100-sim incremental datasets. The paper's trend to
// track: |A| shrinks monotonically as the fine-tuned model adapts.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace enld;
  using namespace enld::bench;

  TablePrinter table({"noise", "iteration", "avg_ambiguous",
                      "avg_dataset_size"});
  for (double noise : NoiseRates()) {
    const Workload workload = MakeWorkload(PaperDataset::kCifar100, noise);
    EnldFramework enld(PaperEnldConfig(PaperDataset::kCifar100));
    const MethodRunResult run =
        RunDetector(&enld, workload, /*keep_raw=*/true);

    double avg_size = 0.0;
    for (const Dataset& d : workload.incremental) avg_size += d.size();
    avg_size /= workload.incremental.size();

    const size_t iterations =
        PaperEnldConfig(PaperDataset::kCifar100).iterations;
    for (size_t iter = 0; iter < iterations; ++iter) {
      double total = 0.0;
      for (const DetectionResult& result : run.raw_results) {
        total += static_cast<double>(result.per_iteration_ambiguous[iter]);
      }
      table.AddRow({TablePrinter::Num(noise, 1), std::to_string(iter + 1),
                    TablePrinter::Num(total / run.raw_results.size(), 1),
                    TablePrinter::Num(avg_size, 1)});
    }
  }
  table.Print(
      "Fig. 13(b) — ambiguous samples per fine-grained iteration "
      "(CIFAR100)");
  return 0;
}
