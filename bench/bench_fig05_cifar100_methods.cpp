// Reproduces Fig. 5: precision / recall / f1 of every detection method on
// the CIFAR100-sim incremental stream at noise rates 0.1–0.4, averaged over
// the 20 incremental datasets.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace enld;
  using namespace enld::bench;

  std::vector<MethodRunResult> runs;
  for (double noise : NoiseRates()) {
    const Workload workload = MakeWorkload(PaperDataset::kCifar100, noise);
    for (auto& detector : MakeAllDetectors(PaperDataset::kCifar100)) {
      runs.push_back(RunDetector(detector.get(), workload));
    }
  }
  PrintMethodQualityTable(
      "Fig. 5 — noisy label detection on CIFAR100 (avg over stream)", runs);

  // Paper-style summary: average f1 across noise settings per method.
  TablePrinter summary({"method", "avg_f1"});
  for (size_t m = 0; m < 5; ++m) {
    double f1 = 0.0;
    for (size_t n = 0; n < NoiseRates().size(); ++n) {
      f1 += runs[n * 5 + m].average().f1;
    }
    summary.AddRow({runs[m].method,
                    TablePrinter::Num(f1 / NoiseRates().size())});
  }
  summary.Print("Fig. 5 summary — average f1 over noise rates");
  return 0;
}
