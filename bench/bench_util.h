#ifndef ENLD_BENCH_BENCH_UTIL_H_
#define ENLD_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/topofilter.h"
#include "common/check.h"
#include "common/table.h"
#include "detect/registry.h"
#include "enld/framework.h"
#include "eval/experiment.h"
#include "eval/paper_setup.h"

namespace enld {
namespace bench {

/// The paper's four noise settings (Section V-A2). The
/// ENLD_BENCH_NOISES environment variable (comma-separated rates, e.g.
/// "0.2" or "0.1,0.3") overrides them for quick or CI runs.
inline std::vector<double> NoiseRates() {
  const char* env = std::getenv("ENLD_BENCH_NOISES");
  if (env != nullptr && *env != '\0') {
    std::vector<double> rates;
    const char* cursor = env;
    while (*cursor != '\0') {
      char* next = nullptr;
      const double rate = std::strtod(cursor, &next);
      if (next == cursor) break;
      if (rate > 0.0 && rate < 1.0) rates.push_back(rate);
      cursor = *next == ',' ? next + 1 : next;
    }
    if (!rates.empty()) return rates;
  }
  return {0.1, 0.2, 0.3, 0.4};
}

/// The paper's three tasks. ENLD_BENCH_TASKS (comma-separated subset of
/// "emnist,cifar100,tiny") restricts them, e.g. for the CI telemetry run.
inline std::vector<PaperDataset> PaperTasks() {
  const std::vector<std::pair<std::string, PaperDataset>> known = {
      {"emnist", PaperDataset::kEmnist},
      {"cifar100", PaperDataset::kCifar100},
      {"tiny", PaperDataset::kTinyImagenet}};
  const char* env = std::getenv("ENLD_BENCH_TASKS");
  if (env != nullptr && *env != '\0') {
    std::vector<PaperDataset> tasks;
    std::string spec(env);
    size_t start = 0;
    while (start <= spec.size()) {
      const size_t comma = spec.find(',', start);
      const std::string name =
          spec.substr(start, comma == std::string::npos ? std::string::npos
                                                        : comma - start);
      for (const auto& [known_name, task] : known) {
        if (name == known_name) tasks.push_back(task);
      }
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    if (!tasks.empty()) return tasks;
  }
  return {PaperDataset::kEmnist, PaperDataset::kCifar100,
          PaperDataset::kTinyImagenet};
}

/// Number of incremental datasets to process. Defaults to the paper's
/// stream length for the profile; the ENLD_BENCH_DATASETS environment
/// variable overrides it (useful for quick runs).
inline size_t DatasetBudget(size_t paper_count) {
  const char* env = std::getenv("ENLD_BENCH_DATASETS");
  if (env != nullptr) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  return paper_count;
}

/// Builds the workload for a paper dataset at a noise rate, honouring the
/// dataset budget.
inline Workload MakeWorkload(PaperDataset dataset, double noise_rate) {
  WorkloadConfig config = PaperWorkloadConfig(dataset, noise_rate);
  config.stream.num_datasets = DatasetBudget(config.stream.num_datasets);
  return BuildWorkload(config);
}

/// Creates one registry detector under the task-calibrated context; the
/// keys come from detect::ListDetectors or the lists below. A benchmark
/// asking for an unregistered key is a programming error — aborts.
inline std::unique_ptr<NoisyLabelDetector> MakePaperDetector(
    const std::string& key, PaperDataset dataset,
    const detect::DetectorOptions& options = {}) {
  auto detector =
      detect::CreateDetector(key, options, PaperDetectorContext(dataset));
  ENLD_CHECK(detector.ok());
  return std::move(detector.value());
}

/// All five detection methods of Section V-A4, configured for `dataset`
/// (registry-created; same configs the paper figures use).
inline std::vector<std::unique_ptr<NoisyLabelDetector>> MakeAllDetectors(
    PaperDataset dataset) {
  std::vector<std::unique_ptr<NoisyLabelDetector>> detectors;
  for (const char* key : {"default", "cl1", "cl2", "topofilter", "enld"}) {
    detectors.push_back(MakePaperDetector(key, dataset));
  }
  return detectors;
}

/// Standard "methods x noise rates" quality table (Figs. 4, 5, 7 layout).
inline void PrintMethodQualityTable(
    const std::string& title,
    const std::vector<MethodRunResult>& runs) {
  TablePrinter table({"noise", "method", "precision", "recall", "f1"});
  for (const MethodRunResult& run : runs) {
    const DetectionMetrics avg = run.average();
    table.AddRow({TablePrinter::Num(run.noise_rate, 1), run.method,
                  TablePrinter::Num(avg.precision),
                  TablePrinter::Num(avg.recall), TablePrinter::Num(avg.f1)});
  }
  table.Print(title);
}

}  // namespace bench
}  // namespace enld

#endif  // ENLD_BENCH_BENCH_UTIL_H_
