// Reproduces Fig. 10: detection quality of the alternative sample-selection
// policies of Section V-D (Contrastive / Random / HC / LC / Entropy /
// Pseudo) on the CIFAR100-sim stream.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace enld;
  using namespace enld::bench;

  const SamplingPolicy policies[] = {
      SamplingPolicy::kContrastive, SamplingPolicy::kRandom,
      SamplingPolicy::kHighestConfidence, SamplingPolicy::kLeastConfidence,
      SamplingPolicy::kEntropy, SamplingPolicy::kPseudo};

  TablePrinter table({"noise", "policy", "precision", "recall", "f1"});
  std::vector<double> avg_f1(std::size(policies), 0.0);
  for (double noise : NoiseRates()) {
    const Workload workload = MakeWorkload(PaperDataset::kCifar100, noise);
    for (size_t p = 0; p < std::size(policies); ++p) {
      EnldConfig config = PaperEnldConfig(PaperDataset::kCifar100);
      config.policy = policies[p];
      EnldFramework detector(config);
      const MethodRunResult run = RunDetector(&detector, workload);
      const DetectionMetrics avg = run.average();
      avg_f1[p] += avg.f1 / NoiseRates().size();
      table.AddRow({TablePrinter::Num(noise, 1), run.method,
                    TablePrinter::Num(avg.precision),
                    TablePrinter::Num(avg.recall),
                    TablePrinter::Num(avg.f1)});
    }
  }
  table.Print("Fig. 10 — sampling-policy comparison (CIFAR100)");

  TablePrinter summary({"policy", "avg_f1"});
  for (size_t p = 0; p < std::size(policies); ++p) {
    summary.AddRow({SamplingPolicyName(policies[p]),
                    TablePrinter::Num(avg_f1[p])});
  }
  summary.Print("Fig. 10 summary — average f1 over noise rates");
  return 0;
}
