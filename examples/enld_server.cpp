// Wire-level serving front-end (docs/SERVING.md): binds the framed-socket
// RpcServer over a DataPlatform initialized from the same synthetic
// CIFAR-100-style workload as data_platform_stream, then serves detection
// requests until a client sends a shutdown frame (or the process is
// signalled). Pair with enld_load_client, which builds the identical
// workload and streams its incremental datasets over the wire — the
// printed per-request lines are byte-identical to the in-process example.
//
//   ./build/examples/enld_server [noise_rate] [flags]
//
//   --port=<n>             TCP port to bind on 127.0.0.1 (default 0 =
//                          ephemeral; the chosen port is printed as
//                          "serving on 127.0.0.1:<port>")
//   --datasets=<n>         workload stream length (default 12) — must
//                          match the client so both sides build the same
//                          data lake
//   --request_deadline=<s> default per-request service budget (0 = none);
//                          a request's wire deadline header overrides it
//   --queue_wait_budget=<s>  pipeline queue-wait budget; longer waits
//                          count as head-of-line blocked (docs/SERVING.md)
//   --batch_size=<n>       pipeline dispatcher batch size (default 4)
//   --max_connections=<n>  connections beyond this are shed with a
//                          retryable error frame (default 64)
//   --slow_request_seconds=<s>  log any detect request whose end-to-end
//                          wall time exceeds s to stderr, with its request
//                          id and stage breakdown (0 = off, the default)
//
// A live stats/health snapshot is served in-band on kStats frames: scrape
// it with `enld_cli stats 127.0.0.1:<port>` while the server runs
// (docs/OBSERVABILITY.md, "Live serving observability"). At shutdown the
// server prints a queue-pressure line plus per-connection request/error/
// byte totals to stderr.
//
// Wire fault sites rpc/delay, rpc/drop_frame, rpc/truncate_frame and
// rpc/corrupt_frame are armed via ENLD_FAULTS (docs/ROBUSTNESS.md); a fire
// summary is printed to stderr after shutdown. Pass
// --telemetry_out=report.json for the machine-readable serving report.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/faults.h"
#include "common/stopwatch.h"
#include "common/telemetry/report.h"
#include "data/workload.h"
#include "enld/platform.h"
#include "eval/paper_setup.h"
#include "rpc/server.h"

namespace {

std::string FlagValue(int argc, char** argv, const std::string& name,
                      const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace enld;
  const double noise_rate =
      argc > 1 && std::strncmp(argv[1], "--", 2) != 0 ? std::atof(argv[1])
                                                      : 0.2;
  const int port =
      std::atoi(FlagValue(argc, argv, "port", "0").c_str());
  const size_t num_datasets = static_cast<size_t>(
      std::atoi(FlagValue(argc, argv, "datasets", "12").c_str()));
  const double request_deadline =
      std::atof(FlagValue(argc, argv, "request_deadline", "0").c_str());
  const double queue_wait_budget =
      std::atof(FlagValue(argc, argv, "queue_wait_budget", "0").c_str());
  const size_t batch_size = static_cast<size_t>(
      std::atoi(FlagValue(argc, argv, "batch_size", "4").c_str()));
  const size_t max_connections = static_cast<size_t>(
      std::atoi(FlagValue(argc, argv, "max_connections", "64").c_str()));
  const double slow_request_seconds = std::atof(
      FlagValue(argc, argv, "slow_request_seconds", "0").c_str());

  telemetry::ResetTelemetry();

  // The same data lake the in-process example builds: the client rebuilds
  // it bit-for-bit from (noise_rate, datasets) and streams the incremental
  // half over the wire.
  WorkloadConfig workload_config = Cifar100WorkloadConfig(noise_rate);
  workload_config.stream.num_datasets = num_datasets == 0 ? 12 : num_datasets;
  const Workload workload = BuildWorkload(workload_config);
  std::printf("data lake: %zu inventory samples, %d classes, noise %.2f\n",
              workload.inventory.size(), workload.inventory.num_classes,
              noise_rate);

  DataPlatformConfig config;
  config.enld = PaperEnldConfig(PaperDataset::kCifar100);
  config.update_every = 9;
  config.min_update_samples = 1500;
  config.request_deadline_seconds = request_deadline;
  DataPlatform platform(config);

  Stopwatch setup;
  const Status init = platform.Initialize(workload.inventory);
  if (!init.ok()) {
    std::fprintf(stderr, "initialization failed: %s\n",
                 init.ToString().c_str());
    return 1;
  }
  std::printf("setup done in %.2fs (general model + P-tilde estimation)\n",
              setup.ElapsedSeconds());

  rpc::ServerConfig server_config;
  server_config.port = port;
  server_config.max_connections = max_connections;
  server_config.pipeline.batch_size = batch_size;
  server_config.pipeline.queue_wait_budget_seconds = queue_wait_budget;
  server_config.slow_request_seconds = slow_request_seconds;
  server_config.log_shutdown_summary = true;
  rpc::RpcServer server(&platform, server_config);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  // Drill scripts parse this line for the ephemeral port; flush so it is
  // visible before the first connection arrives.
  std::printf("serving on %s:%d\n", server_config.host.c_str(),
              server.port());
  std::fflush(stdout);

  server.WaitForShutdown();
  const Status stopped = server.Shutdown();
  if (!stopped.ok()) {
    std::fprintf(stderr, "shutdown: %s\n", stopped.ToString().c_str());
  }

  const rpc::RpcServer::Counters counters = server.counters();
  const PlatformStats& stats = platform.stats();
  std::printf(
      "served %llu request(s) over %llu connection(s): %llu response(s), "
      "%llu wire error(s), %llu dropped frame(s), %llu with wire "
      "deadline\n",
      static_cast<unsigned long long>(counters.requests),
      static_cast<unsigned long long>(counters.connections_accepted),
      static_cast<unsigned long long>(counters.responses),
      static_cast<unsigned long long>(counters.wire_errors),
      static_cast<unsigned long long>(counters.dropped_frames),
      static_cast<unsigned long long>(counters.deadline_propagated));
  std::printf("platform: %llu request(s), %llu model update(s)\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.model_updates));
  if (faults::Enabled()) {
    std::fprintf(stderr, "fault injection: %llu total fire(s)\n",
                 static_cast<unsigned long long>(faults::TotalFires()));
    for (const faults::FaultSiteStats& site : faults::Stats()) {
      std::fprintf(stderr, "  %s: %llu fired / %llu checked\n",
                   site.site.c_str(),
                   static_cast<unsigned long long>(site.fires),
                   static_cast<unsigned long long>(site.checks));
    }
  }

  telemetry::RunReport report = telemetry::CaptureRunReport();
  report.method = "ENLD-server";
  report.noise_rate = noise_rate;
  report.quality["requests"] = static_cast<double>(stats.requests);
  report.quality["wire_errors"] =
      static_cast<double>(counters.wire_errors);
  const std::string telemetry_path =
      telemetry::TelemetryOutPath(argc, argv);
  if (!telemetry_path.empty()) {
    const Status written =
        telemetry::WriteRunReport(report, telemetry_path);
    std::printf("telemetry report -> %s: %s\n", telemetry_path.c_str(),
                written.ToString().c_str());
    if (!written.ok()) return 1;
  }
  return 0;
}
