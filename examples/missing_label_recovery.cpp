// Section V-H: missing labels as a special case of noisy labels. A portion
// of an arriving dataset has no labels at all; ENLD assigns pseudo labels
// by per-step voting during fine-grained detection and still detects the
// noisy labels among the labeled portion.
//
//   ./build/examples/missing_label_recovery [missing_rate]

#include <cstdio>
#include <cstdlib>

#include "data/noise.h"
#include "data/workload.h"
#include "enld/framework.h"
#include "eval/metrics.h"
#include "eval/paper_setup.h"

int main(int argc, char** argv) {
  using namespace enld;
  const double missing_rate = argc > 1 ? std::atof(argv[1]) : 0.5;

  WorkloadConfig workload_config = Cifar100WorkloadConfig(0.2);
  workload_config.stream.num_datasets = 6;
  Workload workload = BuildWorkload(workload_config);

  // Strip labels from a fraction of every arriving dataset.
  Rng rng(2024);
  std::vector<std::vector<size_t>> masked;
  for (Dataset& d : workload.incremental) {
    masked.push_back(MaskMissingLabels(&d, missing_rate, rng));
  }
  std::printf("noise 0.2, missing-label rate %.0f%%\n\n",
              missing_rate * 100);

  EnldFramework enld(PaperEnldConfig(PaperDataset::kCifar100));
  enld.Setup(workload.inventory);

  double recovery_sum = 0.0;
  double detection_sum = 0.0;
  for (size_t i = 0; i < workload.incremental.size(); ++i) {
    const Dataset& d = workload.incremental[i];
    const DetectionResult result = enld.Detect(d);
    const double recovery =
        PseudoLabelAccuracy(d, result.recovered_labels, masked[i]);
    const DetectionMetrics detection =
        EvaluateDetection(d, result.noisy_indices);
    recovery_sum += recovery;
    detection_sum += detection.f1;
    std::printf(
        "dataset %zu: %3zu samples (%3zu unlabeled) -> pseudo-label "
        "accuracy %.3f, detection F1 %.3f\n",
        i, d.size(), masked[i].size(), recovery, detection.f1);
  }
  const double n = static_cast<double>(workload.incremental.size());
  std::printf("\naverages: pseudo-label accuracy %.4f, detection F1 %.4f\n",
              recovery_sum / n, detection_sum / n);
  return 0;
}
