// Load-generator client for the wire serving front-end (docs/SERVING.md):
// rebuilds the exact workload enld_server was started with, streams its
// incremental datasets to the server as framed detect requests, and prints
// the same per-request lines as the in-process data_platform_stream
// example — so a drill can diff "^request" lines between a network run
// (with wire faults armed server-side) and the sequential in-process path
// and assert they are byte-identical.
//
//   ./build/examples/enld_load_client [noise_rate] --port=<port> [flags]
//
//   --host=<ip>          server address (default 127.0.0.1)
//   --datasets=<n>       workload stream length (default 12) — must match
//                        the server
//   --connections=<n>    spread the stream round-robin over n connections
//                        (default 1). The stream stays a closed loop —
//                        request i+1 is sent only after response i — which
//                        is what keeps the output order-deterministic
//                        while still exercising n concurrent server-side
//                        connection handlers.
//   --deadline=<s>       wire deadline header per request (0 = none; the
//                        server's configured budget applies)
//   --retries=<n>        max attempts per request for retryable wire
//                        failures — CRC-damaged frames, dropped
//                        connections (default 8)
//   --shutdown           send a shutdown frame after the stream so the
//                        server drains and exits

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "data/workload.h"
#include "eval/metrics.h"
#include "rpc/client.h"

namespace {

std::string FlagValue(int argc, char** argv, const std::string& name,
                      const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

bool HasFlag(int argc, char** argv, const std::string& name) {
  const std::string bare = "--" + name;
  for (int i = 1; i < argc; ++i) {
    if (bare == argv[i]) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace enld;
  const double noise_rate =
      argc > 1 && std::strncmp(argv[1], "--", 2) != 0 ? std::atof(argv[1])
                                                      : 0.2;
  const int port = std::atoi(FlagValue(argc, argv, "port", "0").c_str());
  if (port <= 0) {
    std::fprintf(stderr, "--port=<server port> is required\n");
    return 2;
  }
  const std::string host = FlagValue(argc, argv, "host", "127.0.0.1");
  const size_t num_datasets = static_cast<size_t>(
      std::atoi(FlagValue(argc, argv, "datasets", "12").c_str()));
  const size_t num_connections = std::max<size_t>(
      1, static_cast<size_t>(
             std::atoi(FlagValue(argc, argv, "connections", "1").c_str())));
  const double deadline =
      std::atof(FlagValue(argc, argv, "deadline", "0").c_str());
  const size_t retries = std::max<size_t>(
      1, static_cast<size_t>(
             std::atoi(FlagValue(argc, argv, "retries", "8").c_str())));
  const bool send_shutdown = HasFlag(argc, argv, "shutdown");

  WorkloadConfig workload_config = Cifar100WorkloadConfig(noise_rate);
  workload_config.stream.num_datasets = num_datasets == 0 ? 12 : num_datasets;
  const Workload workload = BuildWorkload(workload_config);

  rpc::ClientConfig client_config;
  client_config.host = host;
  client_config.port = port;
  client_config.deadline_seconds = deadline;
  client_config.retry.max_attempts = retries;
  std::vector<std::unique_ptr<rpc::RpcClient>> clients;
  clients.reserve(num_connections);
  for (size_t c = 0; c < num_connections; ++c) {
    clients.push_back(std::make_unique<rpc::RpcClient>(client_config));
  }

  double f1_sum = 0.0;
  size_t served = 0;
  uint64_t updates_before = 0;
  for (size_t i = 0; i < workload.incremental.size(); ++i) {
    const Dataset& arriving = workload.incremental[i];
    rpc::RpcClient& client = *clients[i % num_connections];
    // Tag each logical request with a client-set id (1-based stream
    // position) — the server threads it through its audit records and the
    // stats ring, and echoes it in the response. Retries reuse the same id.
    const uint64_t request_id = static_cast<uint64_t>(i + 1);
    StatusOr<rpc::WireDetectResponse> response =
        client.Detect(arriving, /*deadline_seconds=*/-1.0, request_id);
    if (!response.ok()) {
      std::fprintf(stderr, "wire failure on request %zu: %s\n", i + 1,
                   response.status().ToString().c_str());
      return 1;
    }
    if (response->request_id != request_id) {
      std::fprintf(stderr,
                   "request %zu: server echoed request id %llu, expected "
                   "%llu\n",
                   i + 1,
                   static_cast<unsigned long long>(response->request_id),
                   static_cast<unsigned long long>(request_id));
      return 1;
    }
    if (!response->service_status.ok()) {
      std::fprintf(stderr, "request failed: %s\n",
                   response->service_status.ToString().c_str());
      continue;
    }
    std::vector<size_t> noisy(response->noisy_indices.begin(),
                              response->noisy_indices.end());
    const DetectionMetrics m = EvaluateDetection(arriving, noisy);
    f1_sum += m.f1;
    ++served;
    std::printf(
        "request %2zu: %3zu samples / %zu classes -> %2zu flagged noisy "
        "(F1 %.3f); clean bank %zu\n",
        i + 1, arriving.size(), arriving.ObservedLabelSet().size(),
        noisy.size(), m.f1,
        static_cast<size_t>(response->clean_bank_after));
    if (response->model_updates_after > updates_before) {
      std::printf("  -> automatic model update performed\n");
    }
    updates_before = response->model_updates_after;
  }

  if (served > 0) {
    std::printf("average detection F1 over this run: %.4f\n",
                f1_sum / served);
  }
  if (send_shutdown) {
    const Status stopped = clients[0]->SendShutdown();
    if (!stopped.ok()) {
      std::fprintf(stderr, "shutdown request failed: %s\n",
                   stopped.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
