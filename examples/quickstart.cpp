// Quickstart: stand up a small data lake, initialize ENLD, and detect the
// noisy labels of one arriving dataset.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Pass --snapshot_dir=<dir> to persist the platform after the run; a
// second invocation with the same flag restores it from disk and skips
// the (expensive) setup stage entirely. Pass --telemetry_out=report.json
// (or set ENLD_TELEMETRY) to also dump the machine-readable telemetry
// report of the run.

#include <cstdio>
#include <cstring>
#include <string>

#include "common/stopwatch.h"
#include "common/telemetry/report.h"
#include "data/workload.h"
#include "enld/platform.h"
#include "eval/metrics.h"
#include "eval/reporting.h"
#include "store/snapshot.h"

namespace {

std::string FlagValue(int argc, char** argv, const std::string& name,
                      const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace enld;
  const std::string snapshot_dir =
      FlagValue(argc, argv, "snapshot_dir", "");

  // A small CIFAR100-like task: 40 classes, pair-asymmetric noise at 20%.
  WorkloadConfig workload_config;
  workload_config.profile = Cifar100SimConfig();
  workload_config.profile.num_classes = 40;
  workload_config.profile.samples_per_class = 90;
  workload_config.noise_rate = 0.2;
  workload_config.stream.num_datasets = 4;
  workload_config.stream.min_classes_per_dataset = 8;
  workload_config.stream.max_classes_per_dataset = 8;
  const Workload workload = BuildWorkload(workload_config);

  std::printf("inventory: %zu samples, %d classes\n",
              workload.inventory.size(), workload.inventory.num_classes);

  // Stage 0: initialize the general model and the mislabeling probability
  // behind the DataPlatform façade — or restore all of it from a snapshot
  // written by an earlier run.
  DataPlatformConfig config;
  config.enld.general.train.epochs = 20;
  config.enld.iterations = 5;
  config.min_update_samples = 1;
  DataPlatform platform(config);

  bool resumed = false;
  if (!snapshot_dir.empty()) {
    const Status restored = platform.RestoreFromSnapshot(snapshot_dir);
    if (restored.ok()) {
      resumed = true;
      std::printf("restored platform from snapshot in %s (setup skipped)\n",
                  snapshot_dir.c_str());
    } else if (restored.code() != StatusCode::kNotFound) {
      std::fprintf(stderr, "snapshot restore failed: %s\n",
                   restored.ToString().c_str());
      return 1;
    }
  }
  if (!resumed) {
    Stopwatch setup;
    const Status init = platform.Initialize(workload.inventory);
    if (!init.ok()) {
      std::fprintf(stderr, "initialization failed: %s\n",
                   init.ToString().c_str());
      return 1;
    }
    std::printf("setup: %.2fs (general model + probability estimation)\n",
                setup.ElapsedSeconds());
  }

  // Stage 1: detect noisy labels in each arriving dataset.
  for (size_t i = 0; i < workload.incremental.size(); ++i) {
    const Dataset& arriving = workload.incremental[i];
    Stopwatch process;
    const StatusOr<DetectionResult> result = platform.Process(arriving);
    if (!result.ok()) {
      std::fprintf(stderr, "request failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const DetectionMetrics m =
        EvaluateDetection(arriving, result->noisy_indices);
    std::printf(
        "dataset %zu: %zu samples, detected %zu noisy "
        "(P=%.3f R=%.3f F1=%.3f) in %.2fs\n",
        i, arriving.size(), result->noisy_indices.size(), m.precision,
        m.recall, m.f1, process.ElapsedSeconds());
  }

  // Optional: refresh the general model from the clean inventory samples
  // accumulated across requests.
  std::printf("inventory samples selected clean: %zu\n",
              platform.framework().selected_clean_count());
  const Status update = platform.Update();
  std::printf("model update: %s\n", update.ToString().c_str());

  // Persist everything — the next run with the same --snapshot_dir picks
  // up this exact state.
  if (!snapshot_dir.empty()) {
    const Status saved = platform.SaveSnapshot(snapshot_dir);
    std::printf("snapshot -> %s: %s\n", snapshot_dir.c_str(),
                saved.ToString().c_str());
    if (!saved.ok()) return 1;
  }

  // What the run looked like from the inside: the telemetry subsystem has
  // been recording spans, counters and series throughout.
  const telemetry::RunReport report = telemetry::CaptureRunReport();
  std::printf("\n%s", TelemetrySummary(report).c_str());
  const std::string out_path = telemetry::TelemetryOutPath(argc, argv);
  if (!out_path.empty()) {
    const Status written = telemetry::WriteRunReport(report, out_path);
    std::printf("telemetry report -> %s: %s\n", out_path.c_str(),
                written.ToString().c_str());
  }
  return 0;
}
