// Quickstart: stand up a small data lake, initialize ENLD, and detect the
// noisy labels of one arriving dataset.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "common/stopwatch.h"
#include "data/workload.h"
#include "enld/framework.h"
#include "eval/metrics.h"

int main() {
  using namespace enld;

  // A small CIFAR100-like task: 40 classes, pair-asymmetric noise at 20%.
  WorkloadConfig workload_config;
  workload_config.profile = Cifar100SimConfig();
  workload_config.profile.num_classes = 40;
  workload_config.profile.samples_per_class = 90;
  workload_config.noise_rate = 0.2;
  workload_config.stream.num_datasets = 4;
  workload_config.stream.min_classes_per_dataset = 8;
  workload_config.stream.max_classes_per_dataset = 8;
  const Workload workload = BuildWorkload(workload_config);

  std::printf("inventory: %zu samples, %d classes\n",
              workload.inventory.size(), workload.inventory.num_classes);

  // Stage 0: initialize the general model and the mislabeling probability.
  EnldConfig config;
  config.general.train.epochs = 20;
  config.iterations = 5;
  EnldFramework enld(config);

  Stopwatch setup;
  enld.Setup(workload.inventory);
  std::printf("setup: %.2fs (general model + probability estimation)\n",
              setup.ElapsedSeconds());

  // Stage 1: detect noisy labels in each arriving dataset.
  for (size_t i = 0; i < workload.incremental.size(); ++i) {
    const Dataset& arriving = workload.incremental[i];
    Stopwatch process;
    const DetectionResult result = enld.Detect(arriving);
    const DetectionMetrics m =
        EvaluateDetection(arriving, result.noisy_indices);
    std::printf(
        "dataset %zu: %zu samples, detected %zu noisy "
        "(P=%.3f R=%.3f F1=%.3f) in %.2fs\n",
        i, arriving.size(), result.noisy_indices.size(), m.precision,
        m.recall, m.f1, process.ElapsedSeconds());
  }

  // Optional: refresh the general model from the clean inventory samples
  // accumulated across requests.
  std::printf("inventory samples selected clean: %zu\n",
              enld.selected_clean_count());
  const Status update = enld.UpdateModel();
  std::printf("model update: %s\n", update.ToString().c_str());
  return 0;
}
