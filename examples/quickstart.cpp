// Quickstart: stand up a small data lake, initialize ENLD, and detect the
// noisy labels of one arriving dataset.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Pass --telemetry_out=report.json (or set ENLD_TELEMETRY) to also dump
// the machine-readable telemetry report of the run.

#include <cstdio>
#include <string>

#include "common/stopwatch.h"
#include "common/telemetry/report.h"
#include "data/workload.h"
#include "enld/framework.h"
#include "eval/metrics.h"
#include "eval/reporting.h"

int main(int argc, char** argv) {
  using namespace enld;

  // A small CIFAR100-like task: 40 classes, pair-asymmetric noise at 20%.
  WorkloadConfig workload_config;
  workload_config.profile = Cifar100SimConfig();
  workload_config.profile.num_classes = 40;
  workload_config.profile.samples_per_class = 90;
  workload_config.noise_rate = 0.2;
  workload_config.stream.num_datasets = 4;
  workload_config.stream.min_classes_per_dataset = 8;
  workload_config.stream.max_classes_per_dataset = 8;
  const Workload workload = BuildWorkload(workload_config);

  std::printf("inventory: %zu samples, %d classes\n",
              workload.inventory.size(), workload.inventory.num_classes);

  // Stage 0: initialize the general model and the mislabeling probability.
  EnldConfig config;
  config.general.train.epochs = 20;
  config.iterations = 5;
  EnldFramework enld(config);

  Stopwatch setup;
  enld.Setup(workload.inventory);
  std::printf("setup: %.2fs (general model + probability estimation)\n",
              setup.ElapsedSeconds());

  // Stage 1: detect noisy labels in each arriving dataset.
  for (size_t i = 0; i < workload.incremental.size(); ++i) {
    const Dataset& arriving = workload.incremental[i];
    Stopwatch process;
    const DetectionResult result = enld.Detect(arriving);
    const DetectionMetrics m =
        EvaluateDetection(arriving, result.noisy_indices);
    std::printf(
        "dataset %zu: %zu samples, detected %zu noisy "
        "(P=%.3f R=%.3f F1=%.3f) in %.2fs\n",
        i, arriving.size(), result.noisy_indices.size(), m.precision,
        m.recall, m.f1, process.ElapsedSeconds());
  }

  // Optional: refresh the general model from the clean inventory samples
  // accumulated across requests.
  std::printf("inventory samples selected clean: %zu\n",
              enld.selected_clean_count());
  const Status update = enld.UpdateModel();
  std::printf("model update: %s\n", update.ToString().c_str());

  // What the run looked like from the inside: the telemetry subsystem has
  // been recording spans, counters and series throughout.
  const telemetry::RunReport report = telemetry::CaptureRunReport();
  std::printf("\n%s", TelemetrySummary(report).c_str());
  const std::string out_path = telemetry::TelemetryOutPath(argc, argv);
  if (!out_path.empty()) {
    const Status written = telemetry::WriteRunReport(report, out_path);
    std::printf("telemetry report -> %s: %s\n", out_path.c_str(),
                written.ToString().c_str());
  }
  return 0;
}
