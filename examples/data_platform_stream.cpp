// The paper's deployment story (Fig. 1): a data platform holding a large
// noisy inventory receives a continuous stream of incremental datasets.
// The DataPlatform façade validates each request, runs ENLD's fine-grained
// detection, accumulates clean inventory selections, and refreshes the
// general model automatically once enough clean samples are banked
// (Algorithm 4). The refreshed model is finally saved to disk.
//
//   ./build/examples/data_platform_stream [noise_rate]
//
// Durable-store flags (see docs/PERSISTENCE.md):
//   --snapshot_dir=<dir>  snapshot the platform after every request and,
//                         when the directory already holds a snapshot,
//                         resume the stream from it instead of re-running
//                         setup
//   --kill_after=<n>      simulate a crash: exit with code 3 after serving
//                         n requests in this run (snapshots written so
//                         far stay behind for the next run to resume from;
//                         sequential mode only)
//   --datasets=<n>        stream length (default 12)
//   --snapshot_keep=<n>   retain only the newest n snapshots (0 = all)
//
// Async pipeline flags (see docs/ARCHITECTURE.md):
//   --async               serve the stream through the batched request
//                         pipeline: requests are submitted up front and a
//                         dispatcher thread drains them in batches,
//                         overlapping snapshot writes with detection.
//                         Output is byte-identical to the sequential loop
//                         at any thread count.
//   --batch_size=<n>      dispatcher batch size in async mode (default 4)
//   --request_deadline=<s>  per-request budget in seconds; an over-budget
//                         request fails with DeadlineExceeded while the
//                         stream behind it keeps flowing (0 = no deadline)
//   --queue_wait_budget=<s>  separate budget for time spent waiting in the
//                         pipeline queue (docs/SERVING.md §5); requests
//                         waiting longer count as head-of-line blocked and
//                         a summary is printed to stderr (0 = fall back to
//                         the request deadline)
//
// A killed run resumed with the same flags produces byte-identical
// detections for the remaining requests — the snapshot carries the full
// model, P-tilde, clean-bank and RNG stream state.
//
// Pass --telemetry_out=report.json (or set ENLD_TELEMETRY) to dump the
// whole serving window — setup, every request's detect spans, automatic
// model updates — as one machine-readable telemetry report.
//
// Robustness hooks (see docs/ROBUSTNESS.md):
//   --quarantine_out=<path.json>  dump the platform's quarantine log (bad
//                                 samples rejected at admission) as JSON
//   --scrub_every=<n>             async mode: run a background integrity
//                                 scrub of --snapshot_dir every n
//                                 completed requests (off the request
//                                 path; findings summarized on stderr)
//   ENLD_FAULTS=<spec>            arm deterministic fault injection; a
//                                 per-site fire summary is printed to
//                                 stderr after the stream so chaos drills
//                                 can assert faults actually fired

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "common/faults.h"
#include "common/stopwatch.h"
#include "common/telemetry/report.h"
#include "data/workload.h"
#include "enld/pipeline.h"
#include "enld/platform.h"
#include "eval/metrics.h"
#include "eval/paper_setup.h"
#include "eval/reporting.h"
#include "nn/serialization.h"
#include "nn/trainer.h"
#include "store/quarantine.h"
#include "store/scrub.h"
#include "store/snapshot.h"

namespace {

std::string FlagValue(int argc, char** argv, const std::string& name,
                      const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

bool HasFlag(int argc, char** argv, const std::string& name) {
  const std::string bare = "--" + name;
  for (int i = 1; i < argc; ++i) {
    if (bare == argv[i]) return true;
  }
  return !FlagValue(argc, argv, name, "").empty();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace enld;
  const double noise_rate =
      argc > 1 && std::strncmp(argv[1], "--", 2) != 0 ? std::atof(argv[1])
                                                      : 0.2;
  const std::string snapshot_dir =
      FlagValue(argc, argv, "snapshot_dir", "");
  const size_t kill_after = static_cast<size_t>(
      std::atoi(FlagValue(argc, argv, "kill_after", "0").c_str()));
  const size_t num_datasets = static_cast<size_t>(
      std::atoi(FlagValue(argc, argv, "datasets", "12").c_str()));
  const std::string quarantine_out =
      FlagValue(argc, argv, "quarantine_out", "");
  const bool use_async = HasFlag(argc, argv, "async");
  const size_t batch_size = static_cast<size_t>(
      std::atoi(FlagValue(argc, argv, "batch_size", "4").c_str()));
  const double request_deadline =
      std::atof(FlagValue(argc, argv, "request_deadline", "0").c_str());
  const double queue_wait_budget =
      std::atof(FlagValue(argc, argv, "queue_wait_budget", "0").c_str());
  const size_t snapshot_keep = static_cast<size_t>(
      std::atoi(FlagValue(argc, argv, "snapshot_keep", "0").c_str()));
  const size_t scrub_every = static_cast<size_t>(
      std::atoi(FlagValue(argc, argv, "scrub_every", "0").c_str()));
  if (use_async && kill_after > 0) {
    std::fprintf(stderr,
                 "--kill_after is sequential-only (the async pipeline has "
                 "no per-request exit point); drop --async to use it\n");
    return 2;
  }

  // Unlike the eval harness, the platform serves requests directly, so the
  // example owns the telemetry scope: reset here, capture after the stream.
  telemetry::ResetTelemetry();

  WorkloadConfig workload_config = Cifar100WorkloadConfig(noise_rate);
  workload_config.stream.num_datasets = num_datasets == 0 ? 12 : num_datasets;
  const Workload workload = BuildWorkload(workload_config);
  std::printf("data lake: %zu inventory samples, %d classes, noise %.2f\n",
              workload.inventory.size(), workload.inventory.num_classes,
              noise_rate);

  // Platform policy: try a model refresh every 9 requests, but only once
  // at least 1500 clean inventory samples have been banked.
  DataPlatformConfig config;
  config.enld = PaperEnldConfig(PaperDataset::kCifar100);
  config.update_every = 9;
  config.min_update_samples = 1500;
  config.request_deadline_seconds = request_deadline;
  config.snapshot_keep_last = snapshot_keep;
  DataPlatform platform(config);

  // With a snapshot directory, an existing snapshot wins over a fresh
  // setup: the stream continues exactly where the previous run stopped.
  size_t start_request = 0;
  bool resumed = false;
  if (!snapshot_dir.empty()) {
    const Status restored = platform.RestoreFromSnapshot(snapshot_dir);
    if (restored.ok()) {
      resumed = true;
      start_request = static_cast<size_t>(platform.stats().requests);
      std::printf("resumed from snapshot in %s at request %zu\n",
                  snapshot_dir.c_str(), start_request);
    } else if (restored.code() != StatusCode::kNotFound) {
      std::fprintf(stderr, "snapshot restore failed: %s\n",
                   restored.ToString().c_str());
      return 1;
    }
  }

  if (!resumed) {
    Stopwatch setup;
    const Status init = platform.Initialize(workload.inventory);
    if (!init.ok()) {
      std::fprintf(stderr, "initialization failed: %s\n",
                   init.ToString().c_str());
      return 1;
    }
    std::printf(
        "setup done in %.2fs (general model + P-tilde estimation)\n\n",
        setup.ElapsedSeconds());
  }

  double f1_sum = 0.0;
  size_t served_this_run = 0;
  if (use_async) {
    // Batched async path: every remaining dataset is submitted up front
    // (Submit applies backpressure when the queue fills) and responses are
    // rendered in submission order from the per-response state snapshots —
    // never from the live platform, which the dispatcher keeps mutating.
    PipelineConfig pipeline_config;
    pipeline_config.batch_size = batch_size;
    pipeline_config.queue_wait_budget_seconds = queue_wait_budget;
    if (!snapshot_dir.empty()) {
      pipeline_config.snapshot_capture = [&platform, snapshot_dir] {
        return platform.BeginSnapshot(snapshot_dir);
      };
      // Background integrity scrub every N completed requests — runs on
      // the shared pool between snapshot writes, never on the request
      // path. Findings surface in the scrub counters printed below.
      if (scrub_every > 0) {
        pipeline_config.scrub_every = scrub_every;
        pipeline_config.scrub_hook =
            [snapshot_dir]() -> StatusOr<uint64_t> {
          StatusOr<store::ScrubReport> report =
              store::ScrubSnapshotStore(snapshot_dir);
          if (!report.ok()) return report.status();
          return static_cast<uint64_t>(report.value().findings.size());
        };
      }
    }
    RequestPipeline pipeline(&platform, pipeline_config);
    std::vector<std::future<PipelineResponse>> futures;
    futures.reserve(workload.incremental.size() - start_request);
    for (size_t i = start_request; i < workload.incremental.size(); ++i) {
      futures.push_back(pipeline.Submit(workload.incremental[i]));
    }
    uint64_t updates_before = platform.stats().model_updates;
    for (size_t f = 0; f < futures.size(); ++f) {
      const size_t i = start_request + f;
      const Dataset& arriving = workload.incremental[i];
      PipelineResponse response = futures[f].get();
      if (!response.result.ok()) {
        std::fprintf(stderr, "request failed: %s\n",
                     response.result.status().ToString().c_str());
        continue;
      }
      const DetectionMetrics m =
          EvaluateDetection(arriving, response.result->noisy_indices);
      f1_sum += m.f1;
      ++served_this_run;
      std::printf(
          "request %2zu: %3zu samples / %zu classes -> %2zu flagged noisy "
          "(F1 %.3f); clean bank %zu\n",
          i + 1, arriving.size(), arriving.ObservedLabelSet().size(),
          response.result->noisy_indices.size(), m.f1,
          response.clean_bank_after);
      if (response.stats_after.model_updates > updates_before) {
        std::printf("  -> automatic model update performed\n");
      }
      updates_before = response.stats_after.model_updates;
    }
    const Status drained = pipeline.Shutdown();
    if (!drained.ok()) {
      std::fprintf(stderr, "snapshot failed: %s\n",
                   drained.ToString().c_str());
      return 1;
    }
    // Head-of-line pressure summary on stderr (stdout stays byte-diffable
    // against the sequential loop): how many served requests burned their
    // whole queue-wait budget behind earlier work.
    const RequestPipeline::Counters pc = pipeline.counters();
    if (pc.hol_blocked > 0) {
      std::fprintf(stderr,
                   "queue pressure: %llu of %llu request(s) head-of-line "
                   "blocked past the %.3fs queue-wait budget (%llu shed)\n",
                   static_cast<unsigned long long>(pc.hol_blocked),
                   static_cast<unsigned long long>(pc.completed),
                   queue_wait_budget > 0.0 ? queue_wait_budget
                                           : request_deadline,
                   static_cast<unsigned long long>(pc.queue_deadline_drops));
    }
    if (pc.scrub_runs > 0) {
      std::fprintf(stderr,
                   "background scrub: %llu run(s), %llu finding(s)\n",
                   static_cast<unsigned long long>(pc.scrub_runs),
                   static_cast<unsigned long long>(pc.scrub_findings));
    }
  } else {
    for (size_t i = start_request; i < workload.incremental.size(); ++i) {
      const Dataset& arriving = workload.incremental[i];
      const uint64_t updates_before = platform.stats().model_updates;
      const StatusOr<DetectionResult> result = platform.Process(arriving);
      if (!result.ok()) {
        std::fprintf(stderr, "request failed: %s\n",
                     result.status().ToString().c_str());
        continue;
      }
      const DetectionMetrics m =
          EvaluateDetection(arriving, result->noisy_indices);
      f1_sum += m.f1;
      ++served_this_run;
      std::printf(
          "request %2zu: %3zu samples / %zu classes -> %2zu flagged noisy "
          "(F1 %.3f); clean bank %zu\n",
          i + 1, arriving.size(), arriving.ObservedLabelSet().size(),
          result->noisy_indices.size(), m.f1,
          platform.framework().selected_clean_count());
      if (platform.stats().model_updates > updates_before) {
        std::printf("  -> automatic model update performed\n");
      }
      if (!snapshot_dir.empty()) {
        const Status saved = platform.SaveSnapshot(snapshot_dir);
        if (!saved.ok()) {
          std::fprintf(stderr, "snapshot failed: %s\n",
                       saved.ToString().c_str());
          return 1;
        }
      }
      if (kill_after > 0 && served_this_run == kill_after &&
          i + 1 < workload.incremental.size()) {
        std::printf(
            "\nsimulated crash after %zu request(s); snapshot left in %s — "
            "rerun to resume\n",
            served_this_run, snapshot_dir.c_str());
        return 3;
      }
    }
  }

  const PlatformStats& stats = platform.stats();
  std::printf(
      "\nserved %lu requests (%lu samples, %lu flagged) in %.2fs; "
      "%lu model updates\n",
      static_cast<unsigned long>(stats.requests),
      static_cast<unsigned long>(stats.samples_processed),
      static_cast<unsigned long>(stats.samples_flagged_noisy),
      stats.total_process_seconds,
      static_cast<unsigned long>(stats.model_updates));
  if (stats.samples_quarantined > 0 || stats.requests_rejected > 0) {
    std::printf("admission: %lu sample(s) quarantined, %lu request(s) "
                "rejected\n",
                static_cast<unsigned long>(stats.samples_quarantined),
                static_cast<unsigned long>(stats.requests_rejected));
  }
  if (stats.requests_deadline_exceeded > 0) {
    std::printf("deadlines: %lu request(s) exceeded their %.3fs budget\n",
                static_cast<unsigned long>(stats.requests_deadline_exceeded),
                config.request_deadline_seconds);
  }
  if (!quarantine_out.empty()) {
    const Status written =
        store::WriteQuarantineJson(platform.quarantine(), quarantine_out);
    std::printf("quarantine log -> %s: %s\n", quarantine_out.c_str(),
                written.ToString().c_str());
    if (!written.ok()) return 1;
  }
  // Chaos drills diff "^request" lines on stdout; the fire summary goes
  // to stderr so faulted and fault-free runs stay comparable.
  if (faults::Enabled()) {
    std::fprintf(stderr, "fault injection: %llu total fire(s)\n",
                 static_cast<unsigned long long>(faults::TotalFires()));
    for (const faults::FaultSiteStats& site : faults::Stats()) {
      std::fprintf(stderr, "  %s: %llu fired / %llu checked\n",
                   site.site.c_str(),
                   static_cast<unsigned long long>(site.fires),
                   static_cast<unsigned long long>(site.checks));
    }
  }
  if (served_this_run > 0) {
    std::printf("average detection F1 over this run: %.4f\n",
                f1_sum / served_this_run);
  }

  double accuracy = 0.0;
  for (const Dataset& d : workload.incremental) {
    accuracy +=
        AccuracyAgainstTrue(platform.framework().general_model(), d);
  }
  std::printf("final general-model accuracy on arriving data: %.4f\n",
              accuracy / workload.incremental.size());

  // Persist the refreshed model for downstream consumers.
  const std::string model_path = "/tmp/enld_general_model.bin";
  const Status saved =
      SaveModel(*platform.framework().general_model(), model_path);
  std::printf("saved general model to %s: %s\n", model_path.c_str(),
              saved.ToString().c_str());

  telemetry::RunReport report = telemetry::CaptureRunReport();
  report.method = "ENLD-platform";
  report.noise_rate = noise_rate;
  if (served_this_run > 0) {
    report.quality["f1_avg"] = f1_sum / served_this_run;
  }
  report.quality["requests"] = static_cast<double>(stats.requests);
  report.quality["model_updates"] =
      static_cast<double>(stats.model_updates);
  std::printf("\n%s", TelemetrySummary(report).c_str());
  const std::string telemetry_path =
      telemetry::TelemetryOutPath(argc, argv);
  if (!telemetry_path.empty()) {
    const Status written =
        telemetry::WriteRunReport(report, telemetry_path);
    std::printf("telemetry report -> %s: %s\n", telemetry_path.c_str(),
                written.ToString().c_str());
    if (!written.ok()) return 1;
  }
  return 0;
}
