// The paper's deployment story (Fig. 1): a data platform holding a large
// noisy inventory receives a continuous stream of incremental datasets.
// The DataPlatform façade validates each request, runs ENLD's fine-grained
// detection, accumulates clean inventory selections, and refreshes the
// general model automatically once enough clean samples are banked
// (Algorithm 4). The refreshed model is finally saved to disk.
//
//   ./build/examples/data_platform_stream [noise_rate]
//
// Pass --telemetry_out=report.json (or set ENLD_TELEMETRY) to dump the
// whole serving window — setup, every request's detect spans, automatic
// model updates — as one machine-readable telemetry report.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/stopwatch.h"
#include "common/telemetry/report.h"
#include "data/workload.h"
#include "enld/platform.h"
#include "eval/metrics.h"
#include "eval/paper_setup.h"
#include "eval/reporting.h"
#include "nn/serialization.h"
#include "nn/trainer.h"

int main(int argc, char** argv) {
  using namespace enld;
  const double noise_rate =
      argc > 1 && std::strncmp(argv[1], "--", 2) != 0 ? std::atof(argv[1])
                                                      : 0.2;

  // Unlike the eval harness, the platform serves requests directly, so the
  // example owns the telemetry scope: reset here, capture after the stream.
  telemetry::ResetTelemetry();

  WorkloadConfig workload_config = Cifar100WorkloadConfig(noise_rate);
  workload_config.stream.num_datasets = 12;
  const Workload workload = BuildWorkload(workload_config);
  std::printf("data lake: %zu inventory samples, %d classes, noise %.2f\n",
              workload.inventory.size(), workload.inventory.num_classes,
              noise_rate);

  // Platform policy: try a model refresh every 9 requests, but only once
  // at least 1500 clean inventory samples have been banked.
  DataPlatformConfig config;
  config.enld = PaperEnldConfig(PaperDataset::kCifar100);
  config.update_every = 9;
  config.min_update_samples = 1500;
  DataPlatform platform(config);

  Stopwatch setup;
  const Status init = platform.Initialize(workload.inventory);
  if (!init.ok()) {
    std::fprintf(stderr, "initialization failed: %s\n",
                 init.ToString().c_str());
    return 1;
  }
  std::printf("setup done in %.2fs (general model + P-tilde estimation)\n\n",
              setup.ElapsedSeconds());

  double f1_sum = 0.0;
  for (size_t i = 0; i < workload.incremental.size(); ++i) {
    const Dataset& arriving = workload.incremental[i];
    const uint64_t updates_before = platform.stats().model_updates;
    const StatusOr<DetectionResult> result = platform.Process(arriving);
    if (!result.ok()) {
      std::fprintf(stderr, "request failed: %s\n",
                   result.status().ToString().c_str());
      continue;
    }
    const DetectionMetrics m =
        EvaluateDetection(arriving, result->noisy_indices);
    f1_sum += m.f1;
    std::printf(
        "request %2zu: %3zu samples / %zu classes -> %2zu flagged noisy "
        "(F1 %.3f); clean bank %zu\n",
        i + 1, arriving.size(), arriving.ObservedLabelSet().size(),
        result->noisy_indices.size(), m.f1,
        platform.framework().selected_clean_count());
    if (platform.stats().model_updates > updates_before) {
      std::printf("  -> automatic model update performed\n");
    }
  }

  const PlatformStats& stats = platform.stats();
  std::printf(
      "\nserved %lu requests (%lu samples, %lu flagged) in %.2fs; "
      "%lu model updates\n",
      static_cast<unsigned long>(stats.requests),
      static_cast<unsigned long>(stats.samples_processed),
      static_cast<unsigned long>(stats.samples_flagged_noisy),
      stats.total_process_seconds,
      static_cast<unsigned long>(stats.model_updates));
  std::printf("average detection F1 over the stream: %.4f\n",
              f1_sum / workload.incremental.size());

  double accuracy = 0.0;
  for (const Dataset& d : workload.incremental) {
    accuracy +=
        AccuracyAgainstTrue(platform.framework().general_model(), d);
  }
  std::printf("final general-model accuracy on arriving data: %.4f\n",
              accuracy / workload.incremental.size());

  // Persist the refreshed model for downstream consumers.
  const std::string model_path = "/tmp/enld_general_model.bin";
  const Status saved =
      SaveModel(*platform.framework().general_model(), model_path);
  std::printf("saved general model to %s: %s\n", model_path.c_str(),
              saved.ToString().c_str());

  telemetry::RunReport report = telemetry::CaptureRunReport();
  report.method = "ENLD-platform";
  report.noise_rate = noise_rate;
  report.quality["f1_avg"] = f1_sum / workload.incremental.size();
  report.quality["requests"] = static_cast<double>(stats.requests);
  report.quality["model_updates"] =
      static_cast<double>(stats.model_updates);
  std::printf("\n%s", TelemetrySummary(report).c_str());
  const std::string telemetry_path =
      telemetry::TelemetryOutPath(argc, argv);
  if (!telemetry_path.empty()) {
    const Status written =
        telemetry::WriteRunReport(report, telemetry_path);
    std::printf("telemetry report -> %s: %s\n", telemetry_path.c_str(),
                written.ToString().c_str());
    if (!written.ok()) return 1;
  }
  return 0;
}
