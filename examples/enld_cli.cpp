// Command-line driver: run any registered detector on any of the paper's
// synthetic tasks and print per-dataset and aggregate results, optionally
// exporting the workload to CSV. `enld_cli --help` enumerates the
// detector registry at runtime.
//
//   ./build/examples/enld_cli detect --dataset=cifar100 --detector=enld
//   ./build/examples/enld_cli detect --detector=probe --detector_opt \
//       sweep_points=64
//   ./build/examples/enld_cli detect --list_detectors
//
// Detection flags (`detect` subcommand, or flag-only invocation with the
// legacy --method= spelling):
//   --dataset=emnist|cifar100|tiny       task profile (default cifar100)
//   --noise=<0..1>                       pair-noise rate (default 0.2)
//   --detector=<registry key>            detector to run (default enld);
//                                        see --list_detectors for keys
//   --detector_opt k=v                   detector option (repeatable;
//                                        --detector_opt=k=v also works);
//                                        unknown keys / malformed values
//                                        are InvalidArgument errors
//   --list_detectors                     print every registered detector
//                                        with its option table and exit
//   --datasets=<n>                       stream length (default: paper's)
//   --export=<path.csv>                  also write the inventory as CSV
//   --telemetry_out=<path>               dump the run's telemetry report
//                                        (JSON, or CSV when path ends in
//                                        .csv); ENLD_TELEMETRY also works
//
// Durable-store subcommands (see docs/PERSISTENCE.md):
//   enld_cli ingest --out=<dir> [--dataset=...] [--noise=...]
//       [--rows_per_shard=<n>]
//     Materializes the task's inventory into <dir> as a sharded binary
//     dataset (manifest.json + shard-*.bin) and verifies it by loading
//     it back.
//   enld_cli snapshot --inventory=<dir> --snapshot_dir=<dir>
//       [--dataset=...]
//     Loads a sharded inventory, initializes a DataPlatform on it and
//     writes snapshot #1 into --snapshot_dir.
//   enld_cli resume --snapshot_dir=<dir> [--dataset=...] [--noise=...]
//       [--datasets=<n>]
//     Restores the platform from the latest snapshot and serves the
//     remaining requests of the task's stream, snapshotting after each.
//   enld_cli validate (--input=<path.csv> | --inventory=<dir>)
//       [--quarantine_out=<path.json>]
//     Runs per-sample admission checks (docs/ROBUSTNESS.md) on a dataset
//     without detection. CSV inputs load permissively so every bad cell is
//     reported instead of failing the load. Exit code 0 = all samples
//     admitted, 2 = some quarantined, 1 = hard error.
//
// Self-healing subcommands (docs/ROBUSTNESS.md §"Self-healing runbook"):
//   enld_cli repair <snapshot_dir> [--source=<dir>] [--dry_run]
//       [--allow_rollback] [--scrub_out=<path.json>]
//       [--repair_out=<path.json>]
//     Scrubs the whole snapshot lineage (per-section CRC walk) and heals
//     the snapshot CURRENT points at: damaged shards are rebuilt from
//     surviving sections, sibling snapshots, or the exact rows the
//     manifest names (--source adds a donor dataset directory); the
//     repaired snapshot publishes through the normal atomic staging path.
//     --dry_run plans without writing; --allow_rollback repoints CURRENT
//     at the newest intact snapshot when state.bin is unrepairable. Exit
//     code 0 = store clean or fully repaired (or dry-run plan complete),
//     4 = damage remains, 1 = hard error.
//   enld_cli replay <quarantine.json> (--input=<path.csv> |
//       --inventory=<dir>) [--snapshot_dir=<dir> [--dataset=...]]
//       [--request_id=<n>] [--replay_out=<path.json>]
//     Re-screens quarantined samples against corrected source data
//     (matched by sample id) through the normal admission path. With
//     --snapshot_dir, restores the platform, re-admits the survivors via
//     a real Process request stamped with --request_id, and snapshots the
//     result. Warns when the quarantine log was capacity-truncated. Exit
//     code 0 = every record readmitted, 2 = some still rejected or
//     missing from the source, 1 = hard error.
//
// Serving subcommand (see docs/OBSERVABILITY.md):
//   enld_cli stats <host:port> [--watch=<s>] [--retries=<n>] [--shutdown]
//     Scrapes a running enld_server's live stats/health document (kStats
//     frame) and prints the raw "enld-stats-v1" JSON to stdout. With
//     --watch=<s>, instead re-scrapes every s seconds and prints one
//     compact summary line per scrape until interrupted. --shutdown sends
//     a shutdown frame after the (final) scrape, so CI drills can collect
//     stats and stop the server in one invocation. Scrapes retry the same
//     retryable wire-failure class as detect requests.
//
// Robustness flags (ingest / snapshot / resume):
//   --max_retries=<n>        cap store IO retry attempts (default 5)
//   --strict_admission=1     reject whole requests containing any invalid
//                            sample instead of quarantining per sample
//   --request_deadline=<s>   per-request budget in seconds; requests over
//                            budget fail with DeadlineExceeded instead of
//                            stalling the stream (0 = no deadline)
//   --snapshot_keep=<n>      retain only the newest n snapshots after each
//                            save (0 = keep all). Like the admission
//                            knobs, both are outside the snapshot config
//                            fingerprint, so they may differ between the
//                            writer and the resumer.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "common/table.h"
#include "common/telemetry/report.h"
#include "data/serialization.h"
#include "detect/registry.h"
#include "enld/platform.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/paper_setup.h"
#include "eval/reporting.h"
#include "enld/admission.h"
#include "rpc/client.h"
#include "store/io.h"
#include "store/json.h"
#include "store/manifest.h"
#include "store/quarantine.h"
#include "store/repair.h"
#include "store/replay.h"
#include "store/scrub.h"
#include "store/snapshot.h"

namespace {

using namespace enld;

/// Returns the value of `--name=` in argv, or `fallback`.
std::string FlagValue(int argc, char** argv, const std::string& name,
                      const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

/// True when the bare flag `--name` is present.
bool HasFlag(int argc, char** argv, const std::string& name) {
  const std::string flag = "--" + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

/// Collects every `--detector_opt k=v` / `--detector_opt=k=v` pair.
/// Returns false (with a message on stderr) on a malformed flag; the
/// key/value semantics themselves are validated by the registry.
bool CollectDetectorOptions(int argc, char** argv,
                            detect::DetectorOptions* options) {
  for (int i = 1; i < argc; ++i) {
    std::string pair;
    if (std::strcmp(argv[i], "--detector_opt") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--detector_opt expects a k=v argument\n");
        return false;
      }
      pair = argv[++i];
    } else if (std::strncmp(argv[i], "--detector_opt=", 15) == 0) {
      pair = argv[i] + 15;
    } else {
      continue;
    }
    const size_t eq = pair.find('=');
    if (eq == std::string::npos || eq == 0) {
      std::fprintf(stderr, "bad --detector_opt '%s' (expected k=v)\n",
                   pair.c_str());
      return false;
    }
    (*options)[pair.substr(0, eq)] = pair.substr(eq + 1);
  }
  return true;
}

/// Enumerates the registry: one line per detector, plus its option table.
/// The listing is generated at runtime, so newly registered detectors show
/// up without touching the CLI.
void PrintDetectorList(FILE* out) {
  const std::vector<detect::DetectorInfo> detectors =
      detect::ListDetectors();
  std::fprintf(out, "registered detectors (%zu):\n", detectors.size());
  for (const detect::DetectorInfo& info : detectors) {
    std::fprintf(out, "  %-13s %-13s %s\n", info.key.c_str(),
                 info.display_name.c_str(), info.description.c_str());
    for (const detect::OptionSpec& option : info.options) {
      std::fprintf(out, "      %s=%s  %s\n", option.key.c_str(),
                   option.default_value.c_str(),
                   option.description.c_str());
    }
  }
}

/// `--help`: static usage plus the runtime detector enumeration.
int RunHelp() {
  std::printf(
      "enld_cli — noisy-label detection driver for the paper's tasks\n"
      "\n"
      "usage:\n"
      "  enld_cli detect [--dataset=emnist|cifar100|tiny] [--noise=<0..1>]\n"
      "      [--detector=<key>] [--detector_opt k=v]... [--datasets=<n>]\n"
      "      [--export=<path.csv>] [--telemetry_out=<path>]\n"
      "  enld_cli detect --list_detectors\n"
      "  enld_cli ingest --out=<dir> [--dataset=...] [--noise=...]\n"
      "  enld_cli snapshot --inventory=<dir> --snapshot_dir=<dir>\n"
      "  enld_cli resume --snapshot_dir=<dir> [--datasets=<n>]\n"
      "  enld_cli validate (--input=<path.csv> | --inventory=<dir>)\n"
      "  enld_cli repair <snapshot_dir> [--source=<dir>] [--dry_run]\n"
      "      [--allow_rollback] [--scrub_out=<json>] [--repair_out=<json>]\n"
      "  enld_cli replay <quarantine.json> (--input=<path.csv> |\n"
      "      --inventory=<dir>) [--snapshot_dir=<dir>] [--request_id=<n>]\n"
      "      [--replay_out=<json>]\n"
      "  enld_cli stats <host:port> [--watch=<s>] [--shutdown]\n"
      "\n"
      "Flag-only invocations run detection too (legacy --method=<key>\n"
      "spelling). Full flag reference: header comment of this file and\n"
      "docs/DETECTORS.md.\n"
      "\n");
  PrintDetectorList(stdout);
  return 0;
}

bool ParseDataset(const std::string& name, PaperDataset* out) {
  if (name == "emnist") {
    *out = PaperDataset::kEmnist;
  } else if (name == "cifar100") {
    *out = PaperDataset::kCifar100;
  } else if (name == "tiny") {
    *out = PaperDataset::kTinyImagenet;
  } else {
    return false;
  }
  return true;
}

/// The platform configuration the `snapshot` and `resume` subcommands
/// share. Both must build it identically — a snapshot only restores into a
/// platform whose config fingerprint matches the one that wrote it.
/// Admission knobs are deliberately outside the fingerprint, so
/// --strict_admission may differ between the writer and the resumer.
DataPlatformConfig MakePlatformConfig(int argc, char** argv,
                                      PaperDataset dataset) {
  DataPlatformConfig config;
  config.enld = PaperEnldConfig(dataset);
  const std::string strict = FlagValue(argc, argv, "strict_admission", "0");
  config.admission.strict = strict == "1" || strict == "true";
  // Serving knobs: also excluded from the fingerprint (they change how
  // requests are scheduled and how many snapshots are retained, never what
  // detection computes).
  config.request_deadline_seconds =
      std::atof(FlagValue(argc, argv, "request_deadline", "0").c_str());
  config.snapshot_keep_last = static_cast<size_t>(
      std::atoi(FlagValue(argc, argv, "snapshot_keep", "0").c_str()));
  return config;
}

/// Honors --max_retries by resizing the store-wide IO retry policy. Call
/// before any store traffic.
bool ApplyRetryFlag(int argc, char** argv) {
  const std::string flag = FlagValue(argc, argv, "max_retries", "");
  if (flag.empty()) return true;
  const int attempts = std::atoi(flag.c_str());
  if (attempts < 1) {
    std::fprintf(stderr, "--max_retries must be >= 1\n");
    return false;
  }
  store::DefaultIoRetryPolicy().max_attempts =
      static_cast<size_t>(attempts);
  return true;
}

/// `enld_cli ingest`: materialize the inventory as a sharded binary
/// dataset and prove the round trip by loading it back.
int RunIngest(int argc, char** argv) {
  const std::string out_dir = FlagValue(argc, argv, "out", "");
  if (out_dir.empty()) {
    std::fprintf(stderr, "ingest requires --out=<dir>\n");
    return 1;
  }
  if (!ApplyRetryFlag(argc, argv)) return 1;
  PaperDataset dataset = PaperDataset::kCifar100;
  if (!ParseDataset(FlagValue(argc, argv, "dataset", "cifar100"), &dataset)) {
    std::fprintf(stderr, "unknown --dataset\n");
    return 1;
  }
  const double noise =
      std::atof(FlagValue(argc, argv, "noise", "0.2").c_str());
  const size_t rows_per_shard = static_cast<size_t>(std::atoi(
      FlagValue(argc, argv, "rows_per_shard",
                std::to_string(store::kDefaultRowsPerShard))
          .c_str()));

  const Workload workload =
      BuildWorkload(PaperWorkloadConfig(dataset, noise));
  const Status saved = store::SaveDatasetSharded(
      workload.inventory, out_dir, "inventory", rows_per_shard);
  if (!saved.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n", saved.ToString().c_str());
    return 1;
  }

  const StatusOr<store::DatasetManifest> manifest =
      store::ReadDatasetManifest(out_dir);
  if (!manifest.ok()) {
    std::fprintf(stderr, "manifest read-back failed: %s\n",
                 manifest.status().ToString().c_str());
    return 1;
  }
  const StatusOr<Dataset> loaded = store::LoadDatasetSharded(out_dir);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load-back failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  uint64_t total_bytes = 0;
  for (const store::ShardEntry& shard : manifest->shards) {
    total_bytes += shard.bytes;
  }
  std::printf(
      "ingested %s inventory -> %s: %llu rows x %llu features, %d classes, "
      "%zu shard(s), %llu bytes; load-back OK\n",
      PaperDatasetName(dataset), out_dir.c_str(),
      static_cast<unsigned long long>(manifest->num_rows),
      static_cast<unsigned long long>(manifest->dim), manifest->num_classes,
      manifest->shards.size(),
      static_cast<unsigned long long>(total_bytes));
  return 0;
}

/// `enld_cli snapshot`: stand a platform up on a previously ingested
/// inventory and write the first snapshot.
int RunSnapshot(int argc, char** argv) {
  const std::string inventory_dir = FlagValue(argc, argv, "inventory", "");
  const std::string snapshot_dir = FlagValue(argc, argv, "snapshot_dir", "");
  if (inventory_dir.empty() || snapshot_dir.empty()) {
    std::fprintf(stderr,
                 "snapshot requires --inventory=<dir> --snapshot_dir=<dir>\n");
    return 1;
  }
  PaperDataset dataset = PaperDataset::kCifar100;
  if (!ParseDataset(FlagValue(argc, argv, "dataset", "cifar100"), &dataset)) {
    std::fprintf(stderr, "unknown --dataset\n");
    return 1;
  }
  if (!ApplyRetryFlag(argc, argv)) return 1;

  const StatusOr<Dataset> inventory =
      store::LoadDatasetSharded(inventory_dir);
  if (!inventory.ok()) {
    std::fprintf(stderr, "cannot load inventory: %s\n",
                 inventory.status().ToString().c_str());
    return 1;
  }

  DataPlatform platform(MakePlatformConfig(argc, argv, dataset));
  const Status init = platform.Initialize(inventory.value());
  if (!init.ok()) {
    std::fprintf(stderr, "initialization failed: %s\n",
                 init.ToString().c_str());
    return 1;
  }
  const Status saved = platform.SaveSnapshot(snapshot_dir);
  if (!saved.ok()) {
    std::fprintf(stderr, "snapshot failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  const store::SnapshotStore snapshots(snapshot_dir);
  const StatusOr<uint64_t> seq = snapshots.LatestSeq();
  std::printf("platform initialized on %zu samples; snapshot %llu -> %s\n",
              inventory.value().size(),
              static_cast<unsigned long long>(seq.ok() ? seq.value() : 0),
              snapshot_dir.c_str());
  return 0;
}

/// `enld_cli resume`: restore from the latest snapshot and serve the
/// remaining requests of the task's stream.
int RunResume(int argc, char** argv) {
  const std::string snapshot_dir = FlagValue(argc, argv, "snapshot_dir", "");
  if (snapshot_dir.empty()) {
    std::fprintf(stderr, "resume requires --snapshot_dir=<dir>\n");
    return 1;
  }
  PaperDataset dataset = PaperDataset::kCifar100;
  if (!ParseDataset(FlagValue(argc, argv, "dataset", "cifar100"), &dataset)) {
    std::fprintf(stderr, "unknown --dataset\n");
    return 1;
  }
  const double noise =
      std::atof(FlagValue(argc, argv, "noise", "0.2").c_str());
  if (!ApplyRetryFlag(argc, argv)) return 1;

  WorkloadConfig workload_config = PaperWorkloadConfig(dataset, noise);
  const std::string datasets_flag = FlagValue(argc, argv, "datasets", "");
  if (!datasets_flag.empty()) {
    workload_config.stream.num_datasets =
        static_cast<size_t>(std::atoi(datasets_flag.c_str()));
  }
  const Workload workload = BuildWorkload(workload_config);

  DataPlatform platform(MakePlatformConfig(argc, argv, dataset));
  const Status restored = platform.RestoreFromSnapshot(snapshot_dir);
  if (!restored.ok()) {
    std::fprintf(stderr, "restore failed: %s\n",
                 restored.ToString().c_str());
    return 1;
  }
  const size_t start = static_cast<size_t>(platform.stats().requests);
  std::printf("restored platform from %s at request %zu of %zu\n",
              snapshot_dir.c_str(), start, workload.incremental.size());

  for (size_t i = start; i < workload.incremental.size(); ++i) {
    const Dataset& arriving = workload.incremental[i];
    const StatusOr<DetectionResult> result = platform.Process(arriving);
    if (!result.ok()) {
      std::fprintf(stderr, "request failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const DetectionMetrics m =
        EvaluateDetection(arriving, result->noisy_indices);
    std::printf("request %2zu: %3zu samples -> %2zu flagged noisy (F1 %.3f)\n",
                i + 1, arriving.size(), result->noisy_indices.size(), m.f1);
    const Status saved = platform.SaveSnapshot(snapshot_dir);
    if (!saved.ok()) {
      std::fprintf(stderr, "snapshot failed: %s\n",
                   saved.ToString().c_str());
      return 1;
    }
  }
  const PlatformStats& stats = platform.stats();
  std::printf("stream complete: %lu requests served, %lu samples flagged\n",
              static_cast<unsigned long>(stats.requests),
              static_cast<unsigned long>(stats.samples_flagged_noisy));
  return 0;
}

/// `enld_cli validate`: admission checks without detection. Exit code 0
/// when every sample is admitted, 2 when any is quarantined, 1 on a hard
/// error (unreadable input, structural corruption).
int RunValidate(int argc, char** argv) {
  const std::string input = FlagValue(argc, argv, "input", "");
  const std::string inventory_dir = FlagValue(argc, argv, "inventory", "");
  const std::string quarantine_out =
      FlagValue(argc, argv, "quarantine_out", "");
  if (input.empty() == inventory_dir.empty()) {
    std::fprintf(stderr,
                 "validate requires exactly one of --input=<path.csv> or "
                 "--inventory=<dir>\n");
    return 1;
  }
  if (!ApplyRetryFlag(argc, argv)) return 1;

  Dataset dataset;
  std::string source;
  if (!input.empty()) {
    // Permissive load: bad cells arrive as NaN / out-of-range labels so
    // the screen below can name every offending row.
    CsvLoadOptions options;
    options.permissive = true;
    StatusOr<Dataset> loaded = LoadDatasetCsv(input, options);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", input.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    dataset = std::move(loaded).value();
    source = input;
  } else {
    StatusOr<Dataset> loaded = store::LoadDatasetSharded(inventory_dir);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", inventory_dir.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    dataset = std::move(loaded).value();
    source = inventory_dir;
  }

  AdmissionResult screen = ScreenDataset(dataset, 0);
  uint64_t by_reason[kNumRejectionReasons] = {0, 0, 0};
  QuarantineLog log(screen.rejected.size() + 1);
  for (QuarantineRecord& record : screen.rejected) {
    ++by_reason[static_cast<size_t>(record.reason)];
    log.Add(std::move(record));
  }

  std::printf("validate %s: %zu sample(s), %zu admitted, %zu quarantined\n",
              source.c_str(), dataset.size(), screen.admitted.size(),
              log.records().size());
  for (size_t r = 0; r < kNumRejectionReasons; ++r) {
    if (by_reason[r] == 0) continue;
    std::printf("  %s: %llu\n",
                RejectionReasonName(static_cast<RejectionReason>(r)),
                static_cast<unsigned long long>(by_reason[r]));
  }
  for (const QuarantineRecord& record : log.records()) {
    std::printf("  row %zu (id %llu): %s\n", record.row,
                static_cast<unsigned long long>(record.sample_id),
                record.detail.c_str());
  }
  if (!quarantine_out.empty()) {
    const Status written = store::WriteQuarantineJson(log, quarantine_out);
    if (!written.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", quarantine_out.c_str(),
                   written.ToString().c_str());
      return 1;
    }
    std::printf("quarantine log -> %s\n", quarantine_out.c_str());
  }
  return log.records().empty() ? 0 : 2;
}

/// `enld_cli repair`: scrub the snapshot lineage and heal the snapshot
/// CURRENT points at (docs/ROBUSTNESS.md §"Self-healing runbook"). Exit
/// code 0 = clean or repaired, 4 = damage remains, 1 = hard error.
int RunRepair(int argc, char** argv) {
  std::string snapshot_dir = FlagValue(argc, argv, "snapshot_dir", "");
  if (argc > 2 && argv[2][0] != '-') snapshot_dir = argv[2];
  if (snapshot_dir.empty()) {
    std::fprintf(stderr,
                 "repair requires <snapshot_dir> (or --snapshot_dir=)\n");
    return 1;
  }
  if (!ApplyRetryFlag(argc, argv)) return 1;

  store::RepairOptions options;
  options.source_dir = FlagValue(argc, argv, "source", "");
  options.dry_run = HasFlag(argc, argv, "dry_run");
  options.allow_rollback = HasFlag(argc, argv, "allow_rollback");

  const StatusOr<store::RepairReport> repaired =
      store::RepairSnapshotStore(snapshot_dir, options);
  if (!repaired.ok()) {
    std::fprintf(stderr, "repair failed: %s\n",
                 repaired.status().ToString().c_str());
    return 1;
  }
  const store::RepairReport& report = repaired.value();

  const std::string scrub_out = FlagValue(argc, argv, "scrub_out", "");
  if (!scrub_out.empty()) {
    const Status written = store::WriteScrubReportJson(report.scrub, scrub_out);
    if (!written.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", scrub_out.c_str(),
                   written.ToString().c_str());
      return 1;
    }
    std::printf("scrub report -> %s\n", scrub_out.c_str());
  }
  const std::string repair_out = FlagValue(argc, argv, "repair_out", "");
  if (!repair_out.empty()) {
    const Status written = store::WriteRepairReportJson(report, repair_out);
    if (!written.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", repair_out.c_str(),
                   written.ToString().c_str());
      return 1;
    }
    std::printf("repair report -> %s\n", repair_out.c_str());
  }

  std::printf(
      "scrub %s: %zu snapshot(s), %llu file(s), %llu section(s), "
      "%zu finding(s)\n",
      snapshot_dir.c_str(), report.scrub.scrubbed.size(),
      static_cast<unsigned long long>(report.scrub.files_checked),
      static_cast<unsigned long long>(report.scrub.sections_checked),
      report.scrub.findings.size());
  for (const store::ScrubFinding& finding : report.scrub.findings) {
    std::printf("  finding: %s %s %s (%s)\n", finding.file.c_str(),
                finding.section.c_str(), finding.reason.c_str(),
                finding.detail.c_str());
  }
  for (const store::RepairAction& action : report.actions) {
    if (action.source.empty()) {
      std::printf("  %s: %s via %s\n", report.dry_run ? "plan" : "repair",
                  action.file.c_str(), action.method.c_str());
    } else {
      std::printf("  %s: %s via %s from %s\n",
                  report.dry_run ? "plan" : "repair", action.file.c_str(),
                  action.method.c_str(), action.source.c_str());
    }
  }
  if (report.clean) {
    std::printf("store is clean; nothing to repair\n");
    return 0;
  }
  if (!report.failure.empty()) {
    std::fprintf(stderr, "store is NOT healed: %s\n", report.failure.c_str());
    return 4;
  }
  if (report.dry_run) {
    std::printf("dry run: %zu action(s) planned for %s; nothing written\n",
                report.actions.size(),
                store::SnapshotStore::DirName(report.target_seq).c_str());
    return 0;
  }
  std::printf("repaired %s -> published %s (%zu action(s))\n",
              store::SnapshotStore::DirName(report.target_seq).c_str(),
              store::SnapshotStore::DirName(report.published_seq).c_str(),
              report.actions.size());
  return 0;
}

/// `enld_cli replay`: re-screen quarantined samples against corrected
/// source data and re-admit the survivors. Exit code 0 = every record
/// readmitted, 2 = some still rejected or missing, 1 = hard error.
int RunReplay(int argc, char** argv) {
  std::string quarantine_path = FlagValue(argc, argv, "quarantine", "");
  if (argc > 2 && argv[2][0] != '-') quarantine_path = argv[2];
  if (quarantine_path.empty()) {
    std::fprintf(stderr,
                 "replay requires <quarantine.json> (or --quarantine=)\n");
    return 1;
  }
  const std::string input = FlagValue(argc, argv, "input", "");
  const std::string inventory_dir = FlagValue(argc, argv, "inventory", "");
  if (input.empty() == inventory_dir.empty()) {
    std::fprintf(stderr,
                 "replay requires exactly one of --input=<path.csv> or "
                 "--inventory=<dir> as the corrected source data\n");
    return 1;
  }
  if (!ApplyRetryFlag(argc, argv)) return 1;

  const StatusOr<store::QuarantineFile> log =
      store::ReadQuarantineJson(quarantine_path);
  if (!log.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", quarantine_path.c_str(),
                 log.status().ToString().c_str());
    return 1;
  }
  if (log.value().truncated) {
    std::fprintf(stderr,
                 "warning: %s is truncated (%llu quarantined, %zu recorded) "
                 "— dropped records cannot be replayed\n",
                 quarantine_path.c_str(),
                 static_cast<unsigned long long>(log.value().total),
                 log.value().records.size());
  }

  // The corrected source, loaded exactly like `validate` loads its input.
  Dataset source;
  std::string source_name;
  if (!input.empty()) {
    CsvLoadOptions options;
    options.permissive = true;
    StatusOr<Dataset> loaded = LoadDatasetCsv(input, options);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", input.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    source = std::move(loaded).value();
    source_name = input;
  } else {
    StatusOr<Dataset> loaded = store::LoadDatasetSharded(inventory_dir);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", inventory_dir.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    source = std::move(loaded).value();
    source_name = inventory_dir;
  }

  // With a snapshot directory, readmitted rows go through a real Process
  // request on the restored platform and the result is snapshotted.
  const std::string snapshot_dir = FlagValue(argc, argv, "snapshot_dir", "");
  std::unique_ptr<DataPlatform> platform;
  if (!snapshot_dir.empty()) {
    PaperDataset dataset = PaperDataset::kCifar100;
    if (!ParseDataset(FlagValue(argc, argv, "dataset", "cifar100"),
                      &dataset)) {
      std::fprintf(stderr, "unknown --dataset\n");
      return 1;
    }
    platform =
        std::make_unique<DataPlatform>(MakePlatformConfig(argc, argv, dataset));
    const Status restored = platform->RestoreFromSnapshot(snapshot_dir);
    if (!restored.ok()) {
      std::fprintf(stderr, "restore failed: %s\n",
                   restored.ToString().c_str());
      return 1;
    }
  }

  const uint64_t request_id = static_cast<uint64_t>(
      std::atoll(FlagValue(argc, argv, "request_id", "0").c_str()));
  const StatusOr<store::ReplayReport> replayed = store::ReplayQuarantine(
      log.value(), source, platform.get(), request_id);
  if (!replayed.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 replayed.status().ToString().c_str());
    return 1;
  }
  const store::ReplayReport& report = replayed.value();

  std::printf(
      "replay %s against %s: %llu record(s), %llu readmitted, %llu still "
      "rejected, %llu missing\n",
      quarantine_path.c_str(), source_name.c_str(),
      static_cast<unsigned long long>(report.records),
      static_cast<unsigned long long>(report.readmitted),
      static_cast<unsigned long long>(report.still_rejected),
      static_cast<unsigned long long>(report.missing));
  for (const store::ReplayOutcome& outcome : report.outcomes) {
    std::printf("  id %llu: %s (was %s%s%s)\n",
                static_cast<unsigned long long>(outcome.sample_id),
                outcome.verdict.c_str(), outcome.prior_reason.c_str(),
                outcome.reason.empty() ? "" : "; now ",
                outcome.reason.c_str());
  }
  if (report.processed) {
    if (report.process_status != "ok") {
      std::fprintf(stderr, "re-admission Process failed: %s\n",
                   report.process_status.c_str());
      return 1;
    }
    std::printf(
        "re-admitted %llu sample(s) via request_id %llu (%llu flagged "
        "noisy)\n",
        static_cast<unsigned long long>(report.readmitted),
        static_cast<unsigned long long>(report.request_id),
        static_cast<unsigned long long>(report.process_flagged_noisy));
    const Status saved = platform->SaveSnapshot(snapshot_dir);
    if (!saved.ok()) {
      std::fprintf(stderr, "snapshot failed: %s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("snapshot updated in %s\n", snapshot_dir.c_str());
  }

  const std::string replay_out = FlagValue(argc, argv, "replay_out", "");
  if (!replay_out.empty()) {
    const Status written = store::WriteReplayReportJson(report, replay_out);
    if (!written.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", replay_out.c_str(),
                   written.ToString().c_str());
      return 1;
    }
    std::printf("replay report -> %s\n", replay_out.c_str());
  }
  if (report.records == 0) {
    std::printf("quarantine log holds no records; nothing to replay\n");
    return 0;
  }
  return report.still_rejected == 0 && report.missing == 0 ? 0 : 2;
}

/// Digs `path` (dot-separated keys) out of a parsed stats document;
/// returns fallback when any step is missing or non-numeric.
double StatsNumber(const store::JsonValue& doc, const std::string& path,
                   double fallback) {
  const store::JsonValue* node = &doc;
  size_t start = 0;
  while (start <= path.size()) {
    const size_t dot = path.find('.', start);
    const std::string key = path.substr(
        start, dot == std::string::npos ? std::string::npos : dot - start);
    node = node->Find(key);
    if (node == nullptr) return fallback;
    if (dot == std::string::npos) break;
    start = dot + 1;
  }
  return node->is_number() ? node->AsNumber() : fallback;
}

/// `enld_cli stats`: scrape a running server's live stats document.
int RunStats(int argc, char** argv) {
  if (argc < 3 || argv[2][0] == '-') {
    std::fprintf(stderr, "stats requires <host:port> as its first argument\n");
    return 1;
  }
  const std::string target = argv[2];
  const size_t colon = target.rfind(':');
  const int port =
      colon == std::string::npos ? 0 : std::atoi(target.c_str() + colon + 1);
  if (colon == std::string::npos || port <= 0) {
    std::fprintf(stderr, "bad stats target '%s' (expected host:port)\n",
                 target.c_str());
    return 1;
  }
  const double watch_seconds =
      std::atof(FlagValue(argc, argv, "watch", "0").c_str());
  const size_t retries = static_cast<size_t>(
      std::atoi(FlagValue(argc, argv, "retries", "8").c_str()));
  bool send_shutdown = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shutdown") == 0) send_shutdown = true;
  }

  rpc::ClientConfig client_config;
  client_config.host = target.substr(0, colon);
  client_config.port = port;
  client_config.retry.max_attempts = retries < 1 ? 1 : retries;
  rpc::RpcClient client(client_config);

  while (true) {
    const StatusOr<std::string> stats = client.Stats();
    if (!stats.ok()) {
      std::fprintf(stderr, "stats scrape failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    if (watch_seconds <= 0.0) {
      // One-shot: the raw document, ready for redirection into a file and
      // validation with tools/check_stats.py.
      std::printf("%s\n", stats.value().c_str());
      break;
    }
    const StatusOr<store::JsonValue> doc =
        store::JsonValue::Parse(stats.value());
    if (!doc.ok()) {
      std::fprintf(stderr, "stats document unparseable: %s\n",
                   doc.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "up %7.1fs  req %6.0f  resp %6.0f  wire_err %4.0f  queue %3.0f  "
        "e2e p50 %.4fs p99 %.4fs\n",
        StatsNumber(*doc, "uptime_seconds", 0),
        StatsNumber(*doc, "server.requests", 0),
        StatsNumber(*doc, "server.responses", 0),
        StatsNumber(*doc, "server.wire_errors", 0),
        StatsNumber(*doc, "pipeline.queue_depth", 0),
        StatsNumber(*doc,
                    "metrics.histograms.rpc/e2e_seconds.quantiles.p50", 0),
        StatsNumber(*doc,
                    "metrics.histograms.rpc/e2e_seconds.quantiles.p99", 0));
    std::fflush(stdout);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<int>(watch_seconds * 1000)));
  }

  if (send_shutdown) {
    const Status stopped = client.SendShutdown();
    if (!stopped.ok()) {
      std::fprintf(stderr, "shutdown request failed: %s\n",
                   stopped.ToString().c_str());
      return 1;
    }
  }
  return 0;
}

/// `enld_cli detect` (also the flag-only invocation): run one registry
/// detector over a task's stream and report per-dataset and aggregate
/// quality.
int RunDetect(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list_detectors") == 0) {
      PrintDetectorList(stdout);
      return 0;
    }
  }

  const std::string dataset_name =
      FlagValue(argc, argv, "dataset", "cifar100");
  const double noise =
      std::atof(FlagValue(argc, argv, "noise", "0.2").c_str());
  // --detector= is the registry spelling; --method= the legacy one.
  const std::string method = FlagValue(
      argc, argv, "detector", FlagValue(argc, argv, "method", "enld"));
  const std::string export_path = FlagValue(argc, argv, "export", "");
  detect::DetectorOptions detector_options;
  if (!CollectDetectorOptions(argc, argv, &detector_options)) return 1;

  PaperDataset dataset = PaperDataset::kCifar100;
  if (dataset_name == "emnist") {
    dataset = PaperDataset::kEmnist;
  } else if (dataset_name == "tiny") {
    dataset = PaperDataset::kTinyImagenet;
  } else if (dataset_name != "cifar100") {
    std::fprintf(stderr, "unknown --dataset=%s\n", dataset_name.c_str());
    return 1;
  }
  if (noise < 0.0 || noise >= 1.0) {
    std::fprintf(stderr, "--noise must be in [0, 1)\n");
    return 1;
  }

  WorkloadConfig workload_config = PaperWorkloadConfig(dataset, noise);
  const std::string datasets_flag = FlagValue(argc, argv, "datasets", "");
  if (!datasets_flag.empty()) {
    workload_config.stream.num_datasets =
        static_cast<size_t>(std::atoi(datasets_flag.c_str()));
  }
  const Workload workload = BuildWorkload(workload_config);

  if (!export_path.empty()) {
    const Status saved = SaveDatasetCsv(workload.inventory, export_path);
    std::printf("export inventory to %s: %s\n", export_path.c_str(),
                saved.ToString().c_str());
  }

  StatusOr<std::unique_ptr<NoisyLabelDetector>> created =
      detect::CreateDetector(method, detector_options,
                             PaperDetectorContext(dataset));
  if (!created.ok()) {
    // Typed registry errors: unknown detector, unknown option key,
    // malformed value — each names the valid alternatives.
    std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<NoisyLabelDetector> detector = std::move(created).value();

  std::printf("%s / %s / noise %.2f — %zu inventory samples, %zu arriving "
              "datasets\n",
              PaperDatasetName(dataset), detector->name().c_str(), noise,
              workload.inventory.size(), workload.incremental.size());

  const MethodRunResult run = RunDetector(detector.get(), workload);
  TablePrinter table({"dataset", "samples", "noisy_detected", "precision",
                      "recall", "f1", "seconds"});
  for (size_t i = 0; i < run.per_dataset.size(); ++i) {
    const DetectionMetrics& m = run.per_dataset[i];
    table.AddRow({std::to_string(i),
                  std::to_string(workload.incremental[i].size()),
                  std::to_string(m.detected), TablePrinter::Num(m.precision),
                  TablePrinter::Num(m.recall), TablePrinter::Num(m.f1),
                  TablePrinter::Num(run.process_seconds[i], 3)});
  }
  table.Print("per-dataset results");

  const DetectionMetrics avg = run.average();
  std::printf(
      "\naverage: P=%.4f R=%.4f F1=%.4f | setup %.2fs, avg process %.3fs\n",
      avg.precision, avg.recall, avg.f1, run.setup_seconds,
      run.average_process_seconds());

  std::printf("\n%s", TelemetrySummary(run.telemetry).c_str());
  const std::string telemetry_path =
      telemetry::TelemetryOutPath(argc, argv);
  if (!telemetry_path.empty()) {
    const Status written = WriteRunTelemetry(run, telemetry_path);
    std::printf("telemetry report -> %s: %s\n", telemetry_path.c_str(),
                written.ToString().c_str());
    if (!written.ok()) return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      return RunHelp();
    }
  }
  // Subcommand dispatch: a bare first argument selects a workflow;
  // flag-style arguments fall through to the detection driver.
  if (argc > 1 && argv[1][0] != '-') {
    const std::string subcommand = argv[1];
    if (subcommand == "detect") return RunDetect(argc, argv);
    if (subcommand == "ingest") return RunIngest(argc, argv);
    if (subcommand == "snapshot") return RunSnapshot(argc, argv);
    if (subcommand == "resume") return RunResume(argc, argv);
    if (subcommand == "validate") return RunValidate(argc, argv);
    if (subcommand == "repair") return RunRepair(argc, argv);
    if (subcommand == "replay") return RunReplay(argc, argv);
    if (subcommand == "stats") return RunStats(argc, argv);
    if (subcommand == "help") return RunHelp();
    std::fprintf(stderr,
                 "unknown subcommand '%s' (expected detect, ingest, "
                 "snapshot, resume, validate, repair, replay or stats)\n",
                 subcommand.c_str());
    return 1;
  }
  return RunDetect(argc, argv);
}
