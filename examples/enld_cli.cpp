// Command-line driver: run any detection method on any of the paper's
// synthetic tasks and print per-dataset and aggregate results, optionally
// exporting the workload to CSV.
//
//   ./build/examples/enld_cli --dataset=cifar100 --noise=0.2 --method=enld
//
// Flags:
//   --dataset=emnist|cifar100|tiny       task profile (default cifar100)
//   --noise=<0..1>                       pair-noise rate (default 0.2)
//   --method=enld|default|cl1|cl2|topofilter|o2u|coteaching|incv
//   --datasets=<n>                       stream length (default: paper's)
//   --export=<path.csv>                  also write the inventory as CSV
//   --telemetry_out=<path>               dump the run's telemetry report
//                                        (JSON, or CSV when path ends in
//                                        .csv); ENLD_TELEMETRY also works

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "baselines/co_teaching.h"
#include "baselines/confident_learning.h"
#include "baselines/default_detector.h"
#include "baselines/incv.h"
#include "baselines/o2u.h"
#include "baselines/topofilter.h"
#include "common/table.h"
#include "common/telemetry/report.h"
#include "data/serialization.h"
#include "enld/framework.h"
#include "eval/experiment.h"
#include "eval/paper_setup.h"
#include "eval/reporting.h"

namespace {

using namespace enld;

/// Returns the value of `--name=` in argv, or `fallback`.
std::string FlagValue(int argc, char** argv, const std::string& name,
                      const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

std::unique_ptr<NoisyLabelDetector> MakeDetector(const std::string& method,
                                                 PaperDataset dataset) {
  const GeneralModelConfig general = PaperGeneralConfig(dataset);
  if (method == "enld") {
    return std::make_unique<EnldFramework>(PaperEnldConfig(dataset));
  }
  if (method == "default") {
    return std::make_unique<DefaultDetector>(general);
  }
  if (method == "cl1") {
    return std::make_unique<ConfidentLearningDetector>(
        general, ClVariant::kPruneByClass);
  }
  if (method == "cl2") {
    return std::make_unique<ConfidentLearningDetector>(
        general, ClVariant::kPruneByNoiseRate);
  }
  if (method == "topofilter") {
    return std::make_unique<TopofilterDetector>(
        PaperTopofilterConfig(dataset));
  }
  if (method == "o2u") return std::make_unique<O2UDetector>(O2UConfig());
  if (method == "coteaching") {
    return std::make_unique<CoTeachingDetector>(CoTeachingConfig());
  }
  if (method == "incv") return std::make_unique<IncvDetector>(IncvConfig());
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dataset_name =
      FlagValue(argc, argv, "dataset", "cifar100");
  const double noise =
      std::atof(FlagValue(argc, argv, "noise", "0.2").c_str());
  const std::string method = FlagValue(argc, argv, "method", "enld");
  const std::string export_path = FlagValue(argc, argv, "export", "");

  PaperDataset dataset = PaperDataset::kCifar100;
  if (dataset_name == "emnist") {
    dataset = PaperDataset::kEmnist;
  } else if (dataset_name == "tiny") {
    dataset = PaperDataset::kTinyImagenet;
  } else if (dataset_name != "cifar100") {
    std::fprintf(stderr, "unknown --dataset=%s\n", dataset_name.c_str());
    return 1;
  }
  if (noise < 0.0 || noise >= 1.0) {
    std::fprintf(stderr, "--noise must be in [0, 1)\n");
    return 1;
  }

  WorkloadConfig workload_config = PaperWorkloadConfig(dataset, noise);
  const std::string datasets_flag = FlagValue(argc, argv, "datasets", "");
  if (!datasets_flag.empty()) {
    workload_config.stream.num_datasets =
        static_cast<size_t>(std::atoi(datasets_flag.c_str()));
  }
  const Workload workload = BuildWorkload(workload_config);

  if (!export_path.empty()) {
    const Status saved = SaveDatasetCsv(workload.inventory, export_path);
    std::printf("export inventory to %s: %s\n", export_path.c_str(),
                saved.ToString().c_str());
  }

  auto detector = MakeDetector(method, dataset);
  if (detector == nullptr) {
    std::fprintf(stderr, "unknown --method=%s\n", method.c_str());
    return 1;
  }

  std::printf("%s / %s / noise %.2f — %zu inventory samples, %zu arriving "
              "datasets\n",
              PaperDatasetName(dataset), detector->name().c_str(), noise,
              workload.inventory.size(), workload.incremental.size());

  const MethodRunResult run = RunDetector(detector.get(), workload);
  TablePrinter table({"dataset", "samples", "noisy_detected", "precision",
                      "recall", "f1", "seconds"});
  for (size_t i = 0; i < run.per_dataset.size(); ++i) {
    const DetectionMetrics& m = run.per_dataset[i];
    table.AddRow({std::to_string(i),
                  std::to_string(workload.incremental[i].size()),
                  std::to_string(m.detected), TablePrinter::Num(m.precision),
                  TablePrinter::Num(m.recall), TablePrinter::Num(m.f1),
                  TablePrinter::Num(run.process_seconds[i], 3)});
  }
  table.Print("per-dataset results");

  const DetectionMetrics avg = run.average();
  std::printf(
      "\naverage: P=%.4f R=%.4f F1=%.4f | setup %.2fs, avg process %.3fs\n",
      avg.precision, avg.recall, avg.f1, run.setup_seconds,
      run.average_process_seconds());

  std::printf("\n%s", TelemetrySummary(run.telemetry).c_str());
  const std::string telemetry_path =
      telemetry::TelemetryOutPath(argc, argv);
  if (!telemetry_path.empty()) {
    const Status written = WriteRunTelemetry(run, telemetry_path);
    std::printf("telemetry report -> %s: %s\n", telemetry_path.c_str(),
                written.ToString().c_str());
    if (!written.ok()) return 1;
  }
  return 0;
}
