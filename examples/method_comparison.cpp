// Runs every detection method on the same incremental stream and prints a
// comparison table — a miniature of the paper's Fig. 5 (quality) and
// Fig. 8 (setup/process time).
//
//   ./build/examples/method_comparison [noise_rate]

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "baselines/confident_learning.h"
#include "baselines/default_detector.h"
#include "baselines/topofilter.h"
#include "common/table.h"
#include "data/workload.h"
#include "enld/framework.h"
#include "eval/experiment.h"
#include "eval/paper_setup.h"

int main(int argc, char** argv) {
  using namespace enld;
  const double noise_rate = argc > 1 ? std::atof(argv[1]) : 0.2;

  WorkloadConfig workload_config = Cifar100WorkloadConfig(noise_rate);
  workload_config.stream.num_datasets = 8;
  const Workload workload = BuildWorkload(workload_config);
  std::printf(
      "inventory %zu samples / %d classes, %zu incremental datasets, "
      "noise %.1f\n",
      workload.inventory.size(), workload.inventory.num_classes,
      workload.incremental.size(), noise_rate);

  const GeneralModelConfig general =
      PaperGeneralConfig(PaperDataset::kCifar100);
  std::vector<std::unique_ptr<NoisyLabelDetector>> detectors;
  detectors.push_back(std::make_unique<DefaultDetector>(general));
  detectors.push_back(std::make_unique<ConfidentLearningDetector>(
      general, ClVariant::kPruneByClass));
  detectors.push_back(std::make_unique<ConfidentLearningDetector>(
      general, ClVariant::kPruneByNoiseRate));
  detectors.push_back(std::make_unique<TopofilterDetector>(
      PaperTopofilterConfig(PaperDataset::kCifar100)));
  detectors.push_back(std::make_unique<EnldFramework>(
      PaperEnldConfig(PaperDataset::kCifar100)));

  TablePrinter table({"method", "precision", "recall", "f1", "setup_s",
                      "avg_process_s"});
  for (auto& detector : detectors) {
    const MethodRunResult run = RunDetector(detector.get(), workload);
    const DetectionMetrics avg = run.average();
    table.AddRow({run.method, TablePrinter::Num(avg.precision),
                  TablePrinter::Num(avg.recall), TablePrinter::Num(avg.f1),
                  TablePrinter::Num(run.setup_seconds, 2),
                  TablePrinter::Num(run.average_process_seconds(), 3)});
  }
  table.Print("method comparison");
  return 0;
}
