#include "knn/class_index.h"

#include "common/check.h"
#include "common/parallel.h"
#include "common/telemetry/metrics.h"
#include "common/telemetry/trace.h"

namespace enld {

ClassKnnIndex::ClassKnnIndex(const Matrix& features,
                             const std::vector<int>& labels,
                             const std::vector<size_t>& rows,
                             int num_classes) {
  ENLD_CHECK_GT(num_classes, 0);
  ENLD_CHECK_EQ(features.rows(), labels.size());
  ENLD_TRACE_SPAN("knn/build_class_index");
  telemetry::MetricsRegistry::Global()
      .GetCounter("knn/points_indexed")
      ->Add(rows.size());
  std::vector<std::vector<size_t>> by_class(num_classes);
  for (size_t r : rows) {
    ENLD_CHECK_LT(r, features.rows());
    const int y = labels[r];
    ENLD_CHECK_GE(y, 0);
    ENLD_CHECK_LT(y, num_classes);
    by_class[y].push_back(r);
  }
  trees_.resize(num_classes);
  class_sizes_.resize(num_classes, 0);
  // Per-class trees are independent, so they build in parallel; each build
  // depends only on its own point set, making the result thread-count
  // invariant.
  ParallelFor(0, static_cast<size_t>(num_classes), 1,
              [&](size_t lo, size_t hi) {
                for (size_t c = lo; c < hi; ++c) {
                  class_sizes_[c] = by_class[c].size();
                  if (!by_class[c].empty()) {
                    trees_[c] = std::make_unique<KdTree>(features, by_class[c]);
                  }
                }
              });
}

size_t ClassKnnIndex::ClassSize(int label) const {
  ENLD_CHECK_GE(label, 0);
  ENLD_CHECK_LT(label, num_classes());
  return class_sizes_[label];
}

std::vector<Neighbor> ClassKnnIndex::Nearest(int label, const float* query,
                                             size_t k) const {
  ENLD_CHECK_GE(label, 0);
  ENLD_CHECK_LT(label, num_classes());
  if (trees_[label] == nullptr) return {};
  return trees_[label]->Nearest(query, k);
}

std::vector<std::vector<Neighbor>> ClassKnnIndex::NearestBatch(
    const std::vector<int>& query_labels, const Matrix& queries,
    const std::vector<size_t>& query_rows, size_t k) const {
  ENLD_CHECK_EQ(query_labels.size(), query_rows.size());
  telemetry::MetricsRegistry::Global()
      .GetCounter("knn/batch_queries")
      ->Add(query_rows.size());
  std::vector<std::vector<Neighbor>> results(query_rows.size());
  ParallelFor(0, query_rows.size(), kBatchGrain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      results[i] = Nearest(query_labels[i], queries.Row(query_rows[i]), k);
    }
  });
  return results;
}

}  // namespace enld
