#include "knn/kdtree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/distance.h"
#include "common/parallel.h"
#include "common/telemetry/metrics.h"

namespace enld {

namespace {

/// Max-heap on NeighborBefore: the worst current neighbour (farthest, then
/// largest index among equals) sits at the front and is popped first.
bool HeapCmp(const Neighbor& a, const Neighbor& b) {
  return NeighborBefore(a, b);
}

void HeapPush(std::vector<Neighbor>& heap, Neighbor n, size_t k) {
  if (heap.size() < k) {
    heap.push_back(n);
    std::push_heap(heap.begin(), heap.end(), HeapCmp);
  } else if (NeighborBefore(n, heap.front())) {
    std::pop_heap(heap.begin(), heap.end(), HeapCmp);
    heap.back() = n;
    std::push_heap(heap.begin(), heap.end(), HeapCmp);
  }
}

}  // namespace

KdTree::KdTree(const Matrix& points, const std::vector<size_t>& row_indices)
    : dim_(points.cols()), count_(row_indices.size()) {
  points_.resize(count_ * dim_);
  original_ = row_indices;
  order_.resize(count_);
  for (size_t i = 0; i < count_; ++i) {
    order_[i] = i;
    const float* src = points.Row(row_indices[i]);
    std::copy(src, src + dim_, points_.data() + i * dim_);
  }
  if (count_ > 0) {
    nodes_.reserve(2 * count_ / kLeafSize + 2);
    Build(0, count_);
    PackLeaves();
  }
  // Build cost counters; exact integers, so identical at any thread count
  // (per-class builds run in parallel but index the same point sets).
  auto& registry = telemetry::MetricsRegistry::Global();
  registry.GetCounter("knn/trees_built")->Increment();
  registry.GetCounter("knn/tree_points")->Add(count_);
  registry.GetCounter("knn/tree_nodes")->Add(nodes_.size());
}

KdTree::KdTree(const Matrix& points)
    : KdTree(points, [&] {
        std::vector<size_t> all(points.rows());
        for (size_t i = 0; i < all.size(); ++i) all[i] = i;
        return all;
      }()) {}

int KdTree::Build(size_t begin, size_t end) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  if (end - begin <= kLeafSize) {
    Node& node = nodes_[node_id];
    node.is_leaf = true;
    node.begin = begin;
    node.end = end;
    return node_id;
  }

  // Split axis: dimension with the largest value spread in this range.
  size_t best_axis = 0;
  float best_spread = -1.0f;
  for (size_t d = 0; d < dim_; ++d) {
    float lo = std::numeric_limits<float>::max();
    float hi = std::numeric_limits<float>::lowest();
    for (size_t i = begin; i < end; ++i) {
      const float v = points_[order_[i] * dim_ + d];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi - lo > best_spread) {
      best_spread = hi - lo;
      best_axis = d;
    }
  }
  if (best_spread <= 0.0f) {
    // All points identical in every dimension; keep as one leaf.
    Node& node = nodes_[node_id];
    node.is_leaf = true;
    node.begin = begin;
    node.end = end;
    return node_id;
  }

  const size_t mid = begin + (end - begin) / 2;
  std::nth_element(order_.begin() + begin, order_.begin() + mid,
                   order_.begin() + end, [&](size_t a, size_t b) {
                     return points_[a * dim_ + best_axis] <
                            points_[b * dim_ + best_axis];
                   });
  const float split_value = points_[order_[mid] * dim_ + best_axis];

  // Fill the node fields after recursion: nodes_ may reallocate.
  const int left = Build(begin, mid);
  const int right = Build(mid, end);
  Node& node = nodes_[node_id];
  node.axis = best_axis;
  node.split = split_value;
  node.left = left;
  node.right = right;
  return node_id;
}

void KdTree::PackLeaves() {
  // One pass to size the arena, one to pack. order_ is final after Build,
  // so the leaf blocks can alias its [begin, end) ranges directly.
  size_t total = 0;
  scratch_size_ = 0;
  for (const Node& node : nodes_) {
    if (!node.is_leaf) continue;
    const size_t stride = PaddedLaneCount(node.end - node.begin);
    total += stride * dim_;
    scratch_size_ = std::max(scratch_size_, stride);
  }
  leaf_soa_.resize(total);
  size_t offset = 0;
  for (Node& node : nodes_) {
    if (!node.is_leaf) continue;
    const size_t n = node.end - node.begin;
    const size_t stride = PaddedLaneCount(n);
    node.soa_offset = offset;
    PackSoaBlock(points_.data(), dim_, order_.data() + node.begin, n, stride,
                 leaf_soa_.data() + offset);
    offset += stride * dim_;
  }
}

void KdTree::Search(int node_id, const float* query,
                    std::vector<Neighbor>& heap, size_t k,
                    float* scratch) const {
  const Node& node = nodes_[node_id];
  if (node.is_leaf) {
    const size_t n = node.end - node.begin;
    BatchedSquaredDistances(leaf_soa_.data() + node.soa_offset,
                            PaddedLaneCount(n), n, dim_, query, scratch);
    for (size_t i = 0; i < n; ++i) {
      HeapPush(heap, Neighbor{original_[order_[node.begin + i]], scratch[i]},
               k);
    }
    return;
  }

  const float delta = query[node.axis] - node.split;
  const int near = delta < 0.0f ? node.left : node.right;
  const int far = delta < 0.0f ? node.right : node.left;
  Search(near, query, heap, k, scratch);
  // <= rather than <: a far-side point at exactly the current worst
  // distance can still win its tie on index, so it must be visited for the
  // NeighborBefore order to hold.
  if (heap.size() < k ||
      delta * delta <= heap.front().distance_squared) {
    Search(far, query, heap, k, scratch);
  }
}

std::vector<Neighbor> KdTree::Nearest(const float* query, size_t k) const {
  ENLD_CHECK_GT(k, 0u);
  // Sharded atomic add: safe and exact from inside NearestBatch workers.
  static telemetry::Counter* queries =
      telemetry::MetricsRegistry::Global().GetCounter("knn/queries");
  queries->Increment();
  std::vector<Neighbor> heap;
  if (count_ == 0) return heap;
  heap.reserve(std::min(k, count_));
  std::vector<float> scratch(scratch_size_);
  Search(0, query, heap, k, scratch.data());
  std::sort_heap(heap.begin(), heap.end(), HeapCmp);
  return heap;
}

std::vector<Neighbor> KdTree::Nearest(const std::vector<float>& query,
                                      size_t k) const {
  ENLD_CHECK_EQ(query.size(), dim_);
  return Nearest(query.data(), k);
}

std::vector<std::vector<Neighbor>> KdTree::NearestBatch(
    const Matrix& queries, const std::vector<size_t>& query_rows,
    size_t k) const {
  ENLD_CHECK_EQ(queries.cols(), dim_);
  std::vector<std::vector<Neighbor>> results(query_rows.size());
  ParallelFor(0, query_rows.size(), kQueryGrain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      results[i] = Nearest(queries.Row(query_rows[i]), k);
    }
  });
  return results;
}

std::vector<std::vector<Neighbor>> KdTree::NearestBatch(const Matrix& queries,
                                                        size_t k) const {
  std::vector<size_t> rows(queries.rows());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  return NearestBatch(queries, rows, k);
}

std::vector<Neighbor> BruteForceNearest(const Matrix& points,
                                        const std::vector<size_t>& row_indices,
                                        const float* query, size_t k) {
  ENLD_CHECK_GT(k, 0u);
  std::vector<Neighbor> heap;
  heap.reserve(std::min(k, row_indices.size()));
  // Pack candidate rows into SoA chunks and run the batched kernel — the
  // same code path (and bitwise the same distances) as KD-tree leaf scans.
  constexpr size_t kChunk = 1024;
  const size_t dim = points.cols();
  const size_t chunk = std::min(kChunk, std::max<size_t>(row_indices.size(), 1));
  const size_t stride = PaddedLaneCount(chunk);
  std::vector<float> soa(stride * dim);
  std::vector<float> dist(chunk);
  for (size_t base = 0; base < row_indices.size(); base += chunk) {
    const size_t n = std::min(chunk, row_indices.size() - base);
    PackSoaBlock(points.data(), dim, row_indices.data() + base, n, stride,
                 soa.data());
    BatchedSquaredDistances(soa.data(), stride, n, dim, query, dist.data());
    for (size_t i = 0; i < n; ++i) {
      HeapPush(heap, Neighbor{row_indices[base + i], dist[i]}, k);
    }
  }
  std::sort_heap(heap.begin(), heap.end(), HeapCmp);
  return heap;
}

}  // namespace enld
