#ifndef ENLD_KNN_KDTREE_H_
#define ENLD_KNN_KDTREE_H_

#include <cstddef>
#include <vector>

#include "common/matrix.h"

namespace enld {

/// Result of a nearest-neighbour query: index into the indexed point set
/// plus the squared Euclidean distance.
struct Neighbor {
  size_t index;
  float distance_squared;
};

/// Total order on neighbour candidates: nearer first, ties broken by the
/// smaller original index. Both KdTree and BruteForceNearest rank by this
/// order, so they return identical results (indices included) even on
/// duplicate-heavy point sets, and results never depend on scan order.
inline bool NeighborBefore(const Neighbor& a, const Neighbor& b) {
  if (a.distance_squared != b.distance_squared) {
    return a.distance_squared < b.distance_squared;
  }
  return a.index < b.index;
}

/// Static KD-tree over a set of points (one per row of the source matrix),
/// used by contrastive sampling to make repeated k-nearest queries cheap
/// (Section IV-D "Implementation": O(k |A| log |H'|) instead of
/// O(c |A| |H'|)). The tree copies its points; rebuilding after the feature
/// space moves (each fine-tuning iteration) is the intended usage.
///
/// Leaf points are additionally packed into contiguous SoA blocks at build
/// time so leaf scans run through the batched distance kernel
/// (common/distance.h) instead of a scalar per-point loop.
class KdTree {
 public:
  /// Builds a tree over the given rows of `points`. If `row_indices` is
  /// empty the tree is empty. Splits on the axis of maximum spread at the
  /// median.
  KdTree(const Matrix& points, const std::vector<size_t>& row_indices);

  /// Builds over all rows of `points`.
  explicit KdTree(const Matrix& points);

  /// Number of indexed points.
  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Returns up to `k` nearest neighbours of `query` (length = point dim),
  /// ordered by NeighborBefore — increasing distance, ties by increasing
  /// index. Indices refer to the row indices the tree was built with.
  std::vector<Neighbor> Nearest(const float* query, size_t k) const;
  std::vector<Neighbor> Nearest(const std::vector<float>& query,
                                size_t k) const;

  /// Batched queries: result[i] == Nearest(queries.Row(query_rows[i]), k).
  /// Queries run in parallel on the global pool; each query is independent,
  /// so results are identical at any thread count.
  std::vector<std::vector<Neighbor>> NearestBatch(
      const Matrix& queries, const std::vector<size_t>& query_rows,
      size_t k) const;

  /// Batched queries over every row of `queries`.
  std::vector<std::vector<Neighbor>> NearestBatch(const Matrix& queries,
                                                  size_t k) const;

 private:
  struct Node {
    int left = -1;
    int right = -1;
    size_t axis = 0;
    float split = 0.0f;
    // Leaf payload: range [begin, end) into order_, plus the offset of the
    // leaf's SoA block in leaf_soa_ (stride = PaddedLaneCount(end - begin)).
    size_t begin = 0;
    size_t end = 0;
    size_t soa_offset = 0;
    bool is_leaf = false;
  };

  int Build(size_t begin, size_t end);
  void PackLeaves();
  void Search(int node_id, const float* query, std::vector<Neighbor>& heap,
              size_t k, float* scratch) const;

  size_t dim_ = 0;
  size_t count_ = 0;
  std::vector<float> points_;        // count_ x dim_, row-major.
  std::vector<size_t> original_;     // per local point: source row index.
  std::vector<size_t> order_;        // permutation of local points.
  std::vector<Node> nodes_;
  std::vector<float> leaf_soa_;      // all leaves, dimension-major blocks.
  /// Per-query scratch size: the largest padded leaf point count. The
  /// degenerate all-identical-spread case keeps whole ranges as one leaf,
  /// so this can exceed kLeafSize.
  size_t scratch_size_ = 0;
  static constexpr size_t kLeafSize = 16;
  /// Queries per parallel chunk in NearestBatch.
  static constexpr size_t kQueryGrain = 16;
};

/// Brute-force k-nearest reference (exact), used to validate the KD-tree
/// and as a fallback in tests. Ranks by NeighborBefore, so the result is
/// identical to KdTree::Nearest over the same rows.
std::vector<Neighbor> BruteForceNearest(const Matrix& points,
                                        const std::vector<size_t>& row_indices,
                                        const float* query, size_t k);

}  // namespace enld

#endif  // ENLD_KNN_KDTREE_H_
