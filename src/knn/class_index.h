#ifndef ENLD_KNN_CLASS_INDEX_H_
#define ENLD_KNN_CLASS_INDEX_H_

#include <memory>
#include <vector>

#include "common/matrix.h"
#include "knn/kdtree.h"

namespace enld {

/// One KD-tree per class label, the structure the paper builds "for each
/// category in H" so contrastive sampling can repeatedly answer
/// class-constrained k-nearest queries.
///
/// Indices returned by queries are *rows of the feature matrix* the index
/// was built from, so callers can map them straight back to samples.
class ClassKnnIndex {
 public:
  /// Builds per-class trees. `labels[r]` assigns feature row `r` to a class
  /// in [0, num_classes); rows listed in `rows` are indexed, others ignored.
  ClassKnnIndex(const Matrix& features, const std::vector<int>& labels,
                const std::vector<size_t>& rows, int num_classes);

  /// Number of indexed rows in class `label`.
  size_t ClassSize(int label) const;

  /// True if class `label` has at least one indexed row.
  bool HasClass(int label) const { return ClassSize(label) > 0; }

  /// Up to `k` nearest indexed rows of class `label` to `query`, ordered by
  /// increasing distance. Empty if the class has no indexed rows.
  std::vector<Neighbor> Nearest(int label, const float* query,
                                size_t k) const;

  /// Batched class-constrained queries, run in parallel on the global pool:
  /// result[i] == Nearest(query_labels[i], queries.Row(query_rows[i]), k).
  /// This is the batched form of the paper's per-ambiguous-sample k-nearest
  /// lookups (Algorithm 2); each query is independent, so results are
  /// identical at any thread count.
  std::vector<std::vector<Neighbor>> NearestBatch(
      const std::vector<int>& query_labels, const Matrix& queries,
      const std::vector<size_t>& query_rows, size_t k) const;

  int num_classes() const { return static_cast<int>(trees_.size()); }

 private:
  std::vector<std::unique_ptr<KdTree>> trees_;
  std::vector<size_t> class_sizes_;
  /// Queries per parallel chunk in NearestBatch.
  static constexpr size_t kBatchGrain = 16;
};

}  // namespace enld

#endif  // ENLD_KNN_CLASS_INDEX_H_
