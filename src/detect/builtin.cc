// Registration of every built-in detector. Adding a detector to the
// library means adding one Register call here (docs/DETECTORS.md walks
// through it); everything downstream — enld_cli, the bench matrix, the
// platform — picks it up by name automatically.

#include <memory>
#include <mutex>
#include <utility>

#include "baselines/co_teaching.h"
#include "baselines/confident_learning.h"
#include "baselines/default_detector.h"
#include "baselines/incv.h"
#include "baselines/o2u.h"
#include "baselines/topofilter.h"
#include "common/check.h"
#include "detect/longremix.h"
#include "detect/pls.h"
#include "detect/probe.h"
#include "detect/registry.h"
#include "enld/framework.h"

namespace enld {
namespace detect {
namespace {

using Created = StatusOr<std::unique_ptr<NoisyLabelDetector>>;

OptionSpec IntOpt(const std::string& key, const std::string& default_value,
                  const std::string& description) {
  return {key, OptionType::kInt, default_value, description, {}};
}

OptionSpec DoubleOpt(const std::string& key,
                     const std::string& default_value,
                     const std::string& description) {
  return {key, OptionType::kDouble, default_value, description, {}};
}

OptionSpec BoolOpt(const std::string& key, const std::string& default_value,
                   const std::string& description) {
  return {key, OptionType::kBool, default_value, description, {}};
}

OptionSpec SeedOpt(const std::string& default_value) {
  return IntOpt("seed", default_value, "base RNG seed");
}

void Must(const Status& status) { ENLD_CHECK(status.ok()); }

/// Pretrain-family detectors (Default, CL-1, CL-2, PLS) share the general
/// model's training knobs.
GeneralModelConfig GeneralFromOptions(const DetectorContext& context,
                                      const ParsedOptions& options) {
  GeneralModelConfig general = context.general;
  general.train.epochs = options.GetSize("epochs", general.train.epochs);
  general.seed = options.GetUInt64("seed", general.seed);
  return general;
}

void RegisterPretrainFamily(DetectorRegistry& registry) {
  const std::vector<OptionSpec> general_options = {
      IntOpt("epochs", "9", "general-model training epochs"),
      SeedOpt("97"),
  };
  Must(registry.Register(
      {"default", "Default",
       "train the general model once on the inventory; a sample is noisy "
       "iff the prediction disagrees with its observed label",
       general_options},
      [](const DetectorContext& context, const ParsedOptions& options)
          -> Created {
        return std::unique_ptr<NoisyLabelDetector>(
            std::make_unique<DefaultDetector>(
                GeneralFromOptions(context, options)));
      }));
  const auto cl_factory = [](ClVariant variant) {
    return [variant](const DetectorContext& context,
                     const ParsedOptions& options) -> Created {
      return std::unique_ptr<NoisyLabelDetector>(
          std::make_unique<ConfidentLearningDetector>(
              GeneralFromOptions(context, options), variant));
    };
  };
  Must(registry.Register(
      {"cl1", "CL-1",
       "Confident Learning, prune-by-class: remove each class's least "
       "self-confident samples by estimated off-diagonal mass",
       general_options},
      cl_factory(ClVariant::kPruneByClass)));
  Must(registry.Register(
      {"cl2", "CL-2",
       "Confident Learning, prune-by-noise-rate: per off-diagonal cell, "
       "remove the largest-margin samples proportional to the confident "
       "joint",
       general_options},
      cl_factory(ClVariant::kPruneByNoiseRate)));
  Must(registry.Register(
      {"pls", "PLS",
       "two-stage selection: per-class self-confidence split, then a copy "
       "of the general model fine-tuned on the high-confidence side "
       "re-judges the rest",
       {IntOpt("epochs", "9", "general-model training epochs"),
        IntOpt("refine_epochs", "2",
               "stage-2 fine-tune epochs on the high-confidence split"),
        DoubleOpt("confidence_margin", "1.0",
                  "multiple of the class-mean self-confidence a sample "
                  "must reach to join the high-confidence split"),
        SeedOpt("811")}},
      [](const DetectorContext& context, const ParsedOptions& options)
          -> Created {
        PlsConfig config;
        config.general = context.general;
        config.general.train.epochs =
            options.GetSize("epochs", config.general.train.epochs);
        config.refine_epochs =
            options.GetSize("refine_epochs", config.refine_epochs);
        config.confidence_margin =
            options.GetDouble("confidence_margin", config.confidence_margin);
        config.seed = options.GetUInt64("seed", config.seed);
        return std::unique_ptr<NoisyLabelDetector>(
            std::make_unique<PlsDetector>(config));
      }));
}

void RegisterPerRequestFamily(DetectorRegistry& registry) {
  Must(registry.Register(
      {"topofilter", "Topofilter",
       "per-request training + latent-space kNN graph; the largest "
       "connected component per class is clean",
       {IntOpt("epochs", "16", "per-request training epochs"),
        IntOpt("graph_k", "4", "k of the latent-space kNN graph"),
        IntOpt("checkpoints", "3",
               "training checkpoints voting on the clean set"),
        BoolOpt("mutual_knn", "true",
                "use the mutual-kNN variant of the graph"),
        DoubleOpt("component_keep_ratio", "1.0",
                  "keep components at least this fraction of the largest"),
        SeedOpt("131")}},
      [](const DetectorContext& context, const ParsedOptions& options)
          -> Created {
        TopofilterConfig config = context.topofilter;
        config.train.epochs = options.GetSize("epochs", config.train.epochs);
        config.graph_k = options.GetSize("graph_k", config.graph_k);
        config.checkpoints =
            options.GetSize("checkpoints", config.checkpoints);
        config.mutual_knn = options.GetBool("mutual_knn", config.mutual_knn);
        config.component_keep_ratio = options.GetDouble(
            "component_keep_ratio", config.component_keep_ratio);
        config.seed = options.GetUInt64("seed", config.seed);
        return std::unique_ptr<NoisyLabelDetector>(
            std::make_unique<TopofilterDetector>(config));
      }));
  Must(registry.Register(
      {"o2u", "O2U-Net",
       "cyclical-learning-rate loss tracking; the high mean-loss cluster "
       "is noisy",
       {IntOpt("cycles", "3", "cyclical learning-rate rounds"),
        IntOpt("epochs", "3", "epochs per cycle"),
        IntOpt("batch_size", "64", "minibatch size"),
        SeedOpt("509")}},
      [](const DetectorContext&, const ParsedOptions& options) -> Created {
        O2UConfig config;
        config.cycles = options.GetSize("cycles", config.cycles);
        config.epochs_per_cycle =
            options.GetSize("epochs", config.epochs_per_cycle);
        config.batch_size = options.GetSize("batch_size", config.batch_size);
        config.seed = options.GetUInt64("seed", config.seed);
        return std::unique_ptr<NoisyLabelDetector>(
            std::make_unique<O2UDetector>(config));
      }));
  Must(registry.Register(
      {"coteaching", "Co-teaching",
       "two peer networks exchange small-loss samples; both must disagree "
       "with a label to flag it",
       {IntOpt("epochs", "8", "training epochs"),
        IntOpt("anneal_epochs", "6",
               "epochs over which the kept-fraction anneals"),
        DoubleOpt("forget_rate", "-1",
                  "fraction dropped as noisy; negative = self-estimate"),
        SeedOpt("613")}},
      [](const DetectorContext&, const ParsedOptions& options) -> Created {
        CoTeachingConfig config;
        config.epochs = options.GetSize("epochs", config.epochs);
        config.anneal_epochs =
            options.GetSize("anneal_epochs", config.anneal_epochs);
        config.forget_rate =
            options.GetDouble("forget_rate", config.forget_rate);
        config.seed = options.GetUInt64("seed", config.seed);
        return std::unique_ptr<NoisyLabelDetector>(
            std::make_unique<CoTeachingDetector>(config));
      }));
  Must(registry.Register(
      {"incv", "INCV",
       "iterative noisy cross-validation: two half-models keep the "
       "samples they agree with",
       {IntOpt("iterations", "2", "cross-validation refinement rounds"),
        IntOpt("epochs", "5", "epochs per half-model"),
        SeedOpt("719")}},
      [](const DetectorContext&, const ParsedOptions& options) -> Created {
        IncvConfig config;
        config.iterations = options.GetSize("iterations", config.iterations);
        config.train.epochs = options.GetSize("epochs", config.train.epochs);
        config.seed = options.GetUInt64("seed", config.seed);
        return std::unique_ptr<NoisyLabelDetector>(
            std::make_unique<IncvDetector>(config));
      }));
  Must(registry.Register(
      {"probe", "Probe-Rank",
       "loss-trajectory ranking with a between-class-variance threshold "
       "sweep instead of a fixed cut",
       {IntOpt("epochs", "9", "probe training epochs on the inventory"),
        IntOpt("checkpoints", "3",
               "trailing per-epoch weight snapshots averaged into the "
               "trajectory score"),
        IntOpt("sweep_points", "32", "candidate thresholds in the sweep"),
        SeedOpt("97")}},
      [](const DetectorContext& context, const ParsedOptions& options)
          -> Created {
        ProbeConfig config;
        config.general = context.general;
        config.general.train.epochs =
            options.GetSize("epochs", config.general.train.epochs);
        config.checkpoints =
            options.GetSize("checkpoints", config.checkpoints);
        config.sweep_points =
            options.GetSize("sweep_points", config.sweep_points);
        config.general.seed =
            options.GetUInt64("seed", config.general.seed);
        return std::unique_ptr<NoisyLabelDetector>(
            std::make_unique<ProbeDetector>(config));
      }));
  Must(registry.Register(
      {"longremix", "LongReMix",
       "high-confidence seed (agreement + small loss) expanded by "
       "fine-tune rounds; never-admitted samples are noisy",
       {IntOpt("epochs", "9", "general-model training epochs"),
        IntOpt("iterations", "2", "seed expansion rounds"),
        IntOpt("refine_epochs", "2", "fine-tune epochs per round"),
        DoubleOpt("seed_fraction", "0.2",
                  "per-class lowest-loss fallback seed fraction"),
        SeedOpt("1013")}},
      [](const DetectorContext& context, const ParsedOptions& options)
          -> Created {
        LongRemixConfig config;
        config.general = context.general;
        config.general.train.epochs =
            options.GetSize("epochs", config.general.train.epochs);
        config.iterations = options.GetSize("iterations", config.iterations);
        config.refine_epochs =
            options.GetSize("refine_epochs", config.refine_epochs);
        config.seed_fraction =
            options.GetDouble("seed_fraction", config.seed_fraction);
        config.seed = options.GetUInt64("seed", config.seed);
        return std::unique_ptr<NoisyLabelDetector>(
            std::make_unique<LongRemixDetector>(config));
      }));
}

void RegisterEnldFamily(DetectorRegistry& registry) {
  const std::vector<OptionSpec> enld_options = {
      IntOpt("iterations", "5", "fine-grained training iterations t"),
      IntOpt("steps", "5", "steps s per iteration"),
      IntOpt("contrastive_k", "3", "contrastive samples per ambiguous one"),
      IntOpt("warmup_epochs", "2",
             "warm-up epochs on the initial contrastive set"),
      SeedOpt("1234"),
  };
  const auto enld_factory = [](SamplingPolicy policy) {
    return [policy](const DetectorContext& context,
                    const ParsedOptions& options) -> Created {
      EnldConfig config = context.enld;
      config.policy = policy;
      config.iterations = options.GetSize("iterations", config.iterations);
      config.steps_per_iteration =
          options.GetSize("steps", config.steps_per_iteration);
      config.contrastive_k =
          options.GetSize("contrastive_k", config.contrastive_k);
      config.warmup_epochs =
          options.GetSize("warmup_epochs", config.warmup_epochs);
      config.seed = options.GetUInt64("seed", config.seed);
      return std::unique_ptr<NoisyLabelDetector>(
          std::make_unique<EnldFramework>(config));
    };
  };
  const std::vector<std::pair<SamplingPolicy, const char*>> policies = {
      {SamplingPolicy::kContrastive,
       "the paper's framework: contrastive sampling + iterative "
       "fine-grained detection (Algorithms 1-3)"},
      {SamplingPolicy::kRandom,
       "ENLD with uniform-random sampling in place of contrastive "
       "(Section V-D)"},
      {SamplingPolicy::kHighestConfidence,
       "ENLD sampling the highest-confidence candidates (Section V-D)"},
      {SamplingPolicy::kLeastConfidence,
       "ENLD sampling the least-confidence candidates (Section V-D)"},
      {SamplingPolicy::kEntropy,
       "ENLD sampling the highest-entropy candidates (Section V-D)"},
      {SamplingPolicy::kPseudo,
       "ENLD with pseudo-labels from the model's argmax (Section V-D)"},
  };
  for (const auto& [policy, description] : policies) {
    Must(registry.Register({SamplingPolicyKey(policy),
                            SamplingPolicyName(policy), description,
                            enld_options},
                           enld_factory(policy)));
  }
}

}  // namespace

void RegisterBuiltinDetectors() {
  static std::once_flag once;
  std::call_once(once, [] {
    DetectorRegistry& registry = DetectorRegistry::Global();
    RegisterPretrainFamily(registry);
    RegisterPerRequestFamily(registry);
    RegisterEnldFamily(registry);
  });
}

}  // namespace detect
}  // namespace enld
