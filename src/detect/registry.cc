#include "detect/registry.h"

#include <cctype>
#include <cstdlib>
#include <mutex>
#include <utility>

#include "common/check.h"

namespace enld {
namespace detect {
namespace {

/// True when `value` parses completely as the declared type.
bool ValueParses(OptionType type, const std::string& value) {
  if (value.empty()) return false;
  switch (type) {
    case OptionType::kInt: {
      char* end = nullptr;
      const long long parsed = std::strtoll(value.c_str(), &end, 10);
      return end == value.c_str() + value.size() && parsed >= 0;
    }
    case OptionType::kDouble: {
      char* end = nullptr;
      (void)std::strtod(value.c_str(), &end);
      return end == value.c_str() + value.size();
    }
    case OptionType::kBool:
      return value == "true" || value == "false" || value == "1" ||
             value == "0";
    case OptionType::kString:
      return true;
  }
  return false;
}

std::string JoinKeys(const std::vector<OptionSpec>& options) {
  std::string out;
  for (const OptionSpec& spec : options) {
    if (!out.empty()) out += ", ";
    out += spec.key;
  }
  return out.empty() ? "(none)" : out;
}

std::string JoinAllowed(const std::vector<std::string>& allowed) {
  std::string out;
  for (const std::string& value : allowed) {
    if (!out.empty()) out += "|";
    out += value;
  }
  return out;
}

/// Canonical keys are the values name() returns: lowercase alphanumerics
/// with internal dashes ("enld-random").
bool IsCanonicalKey(const std::string& key) {
  if (key.empty()) return false;
  for (char c : key) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (!(std::islower(u) || std::isdigit(u) || c == '-')) return false;
  }
  return key.front() != '-' && key.back() != '-';
}

}  // namespace

const char* OptionTypeName(OptionType type) {
  switch (type) {
    case OptionType::kInt:
      return "int";
    case OptionType::kDouble:
      return "double";
    case OptionType::kBool:
      return "bool";
    case OptionType::kString:
      return "string";
  }
  return "unknown";
}

bool ParsedOptions::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

size_t ParsedOptions::GetSize(const std::string& key, size_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return static_cast<size_t>(std::strtoull(it->second.c_str(), nullptr, 10));
}

int ParsedOptions::GetInt(const std::string& key, int fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return static_cast<int>(std::strtol(it->second.c_str(), nullptr, 10));
}

uint64_t ParsedOptions::GetUInt64(const std::string& key,
                                  uint64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtoull(it->second.c_str(), nullptr, 10);
}

double ParsedOptions::GetDouble(const std::string& key,
                                double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool ParsedOptions::GetBool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1";
}

std::string ParsedOptions::GetString(const std::string& key,
                                     const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

DetectorRegistry& DetectorRegistry::Global() {
  static DetectorRegistry* instance = new DetectorRegistry();
  return *instance;
}

Status DetectorRegistry::Register(DetectorInfo info,
                                  DetectorFactory factory) {
  if (!IsCanonicalKey(info.key)) {
    return Status::InvalidArgument(
        "detector key '" + info.key +
        "' is not canonical (lowercase alphanumerics and internal dashes)");
  }
  if (factory == nullptr) {
    return Status::InvalidArgument("detector '" + info.key +
                                   "' registered without a factory");
  }
  if (entries_.count(info.key) > 0) {
    return Status::InvalidArgument("detector '" + info.key +
                                   "' is already registered");
  }
  for (size_t i = 0; i < info.options.size(); ++i) {
    for (size_t j = i + 1; j < info.options.size(); ++j) {
      if (info.options[i].key == info.options[j].key) {
        return Status::InvalidArgument(
            "detector '" + info.key + "' declares option '" +
            info.options[i].key + "' twice");
      }
    }
  }
  const std::string key = info.key;
  entries_.emplace(key, Entry{std::move(info), std::move(factory)});
  return Status::OK();
}

StatusOr<std::unique_ptr<NoisyLabelDetector>> DetectorRegistry::Create(
    const std::string& key, const DetectorOptions& options,
    const DetectorContext& context) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    std::string known;
    for (const auto& [registered, entry] : entries_) {
      (void)entry;
      if (!known.empty()) known += ", ";
      known += registered;
    }
    return Status::InvalidArgument("unknown detector '" + key +
                                   "'; registered: " + known);
  }
  const Entry& entry = it->second;

  ParsedOptions parsed;
  for (const auto& [option_key, value] : options) {
    const OptionSpec* spec = nullptr;
    for (const OptionSpec& candidate : entry.info.options) {
      if (candidate.key == option_key) {
        spec = &candidate;
        break;
      }
    }
    if (spec == nullptr) {
      return Status::InvalidArgument(
          "unknown option '" + option_key + "' for detector '" + key +
          "'; valid options: " + JoinKeys(entry.info.options));
    }
    if (!ValueParses(spec->type, value)) {
      return Status::InvalidArgument(
          "option '" + option_key + "' of detector '" + key +
          "' expects a " + std::string(OptionTypeName(spec->type)) +
          ", got '" + value + "'");
    }
    if (!spec->allowed.empty()) {
      bool found = false;
      for (const std::string& allowed : spec->allowed) {
        if (value == allowed) {
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::InvalidArgument(
            "option '" + option_key + "' of detector '" + key +
            "' must be one of " + JoinAllowed(spec->allowed) + ", got '" +
            value + "'");
      }
    }
    parsed.values_[option_key] = value;
  }

  StatusOr<std::unique_ptr<NoisyLabelDetector>> detector =
      entry.factory(context, parsed);
  if (detector.ok()) {
    // The registry contract: the key IS the detector's canonical name.
    ENLD_CHECK((*detector)->name() == key);
  }
  return detector;
}

std::vector<DetectorInfo> DetectorRegistry::List() const {
  std::vector<DetectorInfo> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    (void)key;
    out.push_back(entry.info);
  }
  return out;  // std::map iteration => sorted by key.
}

const DetectorInfo* DetectorRegistry::Find(const std::string& key) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second.info;
}

StatusOr<std::unique_ptr<NoisyLabelDetector>> CreateDetector(
    const std::string& key, const DetectorOptions& options,
    const DetectorContext& context) {
  RegisterBuiltinDetectors();
  return DetectorRegistry::Global().Create(key, options, context);
}

std::vector<DetectorInfo> ListDetectors() {
  RegisterBuiltinDetectors();
  return DetectorRegistry::Global().List();
}

const DetectorInfo* FindDetector(const std::string& key) {
  RegisterBuiltinDetectors();
  return DetectorRegistry::Global().Find(key);
}

}  // namespace detect
}  // namespace enld
