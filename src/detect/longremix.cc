#include "detect/longremix.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"
#include "nn/loss.h"
#include "nn/trainer.h"

namespace enld {

void LongRemixDetector::Setup(const Dataset& inventory) {
  general_ = InitGeneralModel(inventory, config_.general);
  request_counter_ = 0;
}

DetectionResult LongRemixDetector::Detect(const Dataset& incremental) {
  ENLD_CHECK(general_.model != nullptr);  // Setup must run first.
  ++request_counter_;
  Rng rng(config_.seed + request_counter_);

  std::vector<size_t> labeled;
  for (size_t i = 0; i < incremental.size(); ++i) {
    if (incremental.observed_labels[i] != kMissingLabel) labeled.push_back(i);
  }
  DetectionResult result;
  if (labeled.empty()) return result;

  Matrix logits;
  general_.model->Forward(incremental.features, &logits);
  const std::vector<double> losses =
      PerSampleCrossEntropy(logits, incremental.observed_labels);
  std::vector<int> predicted = general_.model->Predict(incremental.features);

  // High-confidence seed: the general model agrees with the observed
  // label AND the loss lands in the small-loss cluster.
  std::vector<double> labeled_losses;
  labeled_losses.reserve(labeled.size());
  for (size_t i : labeled) labeled_losses.push_back(losses[i]);
  const double loss_cut = TwoMeansThreshold(labeled_losses);
  std::vector<uint8_t> admitted(incremental.size(), 0);
  for (size_t i : labeled) {
    if (predicted[i] == incremental.observed_labels[i] &&
        losses[i] <= loss_cut) {
      admitted[i] = 1;
    }
  }

  // Per-class fallback: a class whose seed came out empty gets its
  // lowest-loss `seed_fraction` instead, so expansion can reach it at all.
  for (int label : incremental.ObservedLabelSet()) {
    std::vector<size_t> members;
    bool has_seed = false;
    for (size_t i : labeled) {
      if (incremental.observed_labels[i] != label) continue;
      members.push_back(i);
      if (admitted[i]) has_seed = true;
    }
    if (has_seed || members.empty()) continue;
    const size_t take = std::max<size_t>(
        1, static_cast<size_t>(
               std::ceil(config_.seed_fraction * members.size())));
    std::partial_sort(members.begin(),
                      members.begin() + std::min(take, members.size()),
                      members.end(), [&](size_t a, size_t b) {
                        return losses[a] < losses[b];
                      });
    for (size_t j = 0; j < std::min(take, members.size()); ++j) {
      admitted[members[j]] = 1;
    }
  }

  // Expansion rounds: fine-tune a copy of the general model on the
  // current seed, then admit samples it now agrees with. Monotone —
  // nothing is evicted. The copy keeps the inventory-trained general
  // model untouched for later requests.
  MlpModel refined(general_.model->layer_dims(), rng);
  refined.SetWeights(general_.model->GetWeights());
  for (size_t round = 0; round < config_.iterations; ++round) {
    std::vector<size_t> seed_positions;
    for (size_t i : labeled) {
      if (admitted[i]) seed_positions.push_back(i);
    }
    if (seed_positions.empty() || seed_positions.size() == labeled.size()) {
      break;
    }
    if (config_.refine_epochs > 0) {
      const Dataset seed_set = incremental.Subset(seed_positions);
      TrainConfig refine;
      refine.epochs = config_.refine_epochs;
      refine.batch_size = config_.general.train.batch_size;
      refine.sgd.learning_rate =
          config_.general.train.sgd.learning_rate * 0.2;
      refine.sgd.weight_decay = config_.general.train.sgd.weight_decay;
      refine.seed = rng.NextUInt64();
      TrainModel(&refined, seed_set, /*validation=*/nullptr, refine);
    }
    const std::vector<int> updated = refined.Predict(incremental.features);
    for (size_t i : labeled) {
      if (!admitted[i] && updated[i] == incremental.observed_labels[i]) {
        admitted[i] = 1;
      }
    }
  }

  for (size_t i : labeled) {
    if (admitted[i]) {
      result.clean_indices.push_back(i);
    } else {
      result.noisy_indices.push_back(i);
    }
  }
  return result;
}

}  // namespace enld
