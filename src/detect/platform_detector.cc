#include "detect/platform_detector.h"

#include <memory>
#include <utility>

#include "common/check.h"

namespace enld {
namespace detect {

Status ConfigurePlatformDetector(DataPlatform* platform,
                                 const DetectorContext& context) {
  ENLD_CHECK(platform != nullptr);
  const DataPlatformConfig& config = platform->config();
  if (config.detector == "enld") {
    if (!config.detector_options.empty()) {
      return Status::InvalidArgument(
          "detector_options apply to registry-created detectors; configure "
          "the built-in 'enld' detector via DataPlatformConfig::enld");
    }
    return Status::OK();
  }
  StatusOr<std::unique_ptr<NoisyLabelDetector>> detector =
      CreateDetector(config.detector, config.detector_options, context);
  if (!detector.ok()) return detector.status();
  return platform->InstallDetector(std::move(detector.value()));
}

}  // namespace detect
}  // namespace enld
