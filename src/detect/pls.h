#ifndef ENLD_DETECT_PLS_H_
#define ENLD_DETECT_PLS_H_

#include <string>

#include "baselines/detector.h"
#include "nn/general_model.h"

namespace enld {

/// Configuration of the PLS-style two-stage detector (after "Pseudo-Label
/// Selection", arXiv:2210.04578, adapted to the incremental setting).
struct PlsConfig {
  /// Stage-0 general model shared with Default / CL / ENLD.
  GeneralModelConfig general;
  /// Fine-tune epochs of the stage-2 refinement on the high-confidence
  /// split.
  size_t refine_epochs = 2;
  /// A sample is high-confidence when its self-confidence reaches this
  /// multiple of its observed class's mean self-confidence (1.0 = the
  /// class-mean rule).
  double confidence_margin = 1.0;
  uint64_t seed = 811;
};

/// PLS: two-stage selection. Stage 1 splits the arriving dataset by the
/// general model's *self-confidence* M(x, θ)[ỹ] against a per-class mean
/// threshold — the high side is trusted as (almost) surely clean. Stage 2
/// fine-tunes a copy of θ on exactly that high-confidence split and
/// re-judges the low side with the refined model: a low-confidence sample
/// is clean iff the refined model agrees with its observed label.
///
/// Like CL it reuses the pretrained θ (cheap per request); unlike CL the
/// final verdict comes from a model adapted to the arriving distribution.
class PlsDetector : public NoisyLabelDetector {
 public:
  explicit PlsDetector(const PlsConfig& config) : config_(config) {}

  void Setup(const Dataset& inventory) override;
  DetectionResult Detect(const Dataset& incremental) override;
  std::string name() const override { return "pls"; }
  std::string display_name() const override { return "PLS"; }

 private:
  PlsConfig config_;
  GeneralModel general_;
  uint64_t request_counter_ = 0;
};

}  // namespace enld

#endif  // ENLD_DETECT_PLS_H_
