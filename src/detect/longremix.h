#ifndef ENLD_DETECT_LONGREMIX_H_
#define ENLD_DETECT_LONGREMIX_H_

#include <string>

#include "baselines/detector.h"
#include "nn/general_model.h"

namespace enld {

/// Configuration of the LongReMix-style high-confidence-seed detector.
struct LongRemixConfig {
  /// Backbone and training schedule of the inventory model the seed rule
  /// judges against (the registry context supplies the paper's
  /// task-calibrated general settings).
  GeneralModelConfig general;
  /// Per-observed-class fallback seed size (fraction of the class's
  /// samples, lowest loss first) when the loss/agreement rule yields an
  /// empty seed for that class.
  double seed_fraction = 0.2;
  /// Expansion rounds: fine-tune on the seed, then admit newly-agreeing
  /// samples.
  size_t iterations = 2;
  /// Fine-tune epochs per expansion round (at 0.2x the general-model
  /// learning rate).
  size_t refine_epochs = 2;
  /// Seeds the per-request refinement RNG.
  uint64_t seed = 1013;
};

/// LongReMix-style detection (after Cordeiro et al. 2023's two-stage
/// "high-confidence seed then expand" scheme): judge D against a general
/// model trained once on the inventory, seed a high-confidence clean set
/// with the samples the model agrees with at small loss (per-class
/// lowest-loss fallback so no observed class starts empty), then
/// alternately fine-tune a copy of the model on the seed and admit
/// samples it newly agrees with. D-samples never admitted across all
/// rounds are flagged noisy.
///
/// The conservative counterpoint to threshold detectors: precision comes
/// from seeding strictly, recall from the expansion rounds.
class LongRemixDetector : public NoisyLabelDetector {
 public:
  explicit LongRemixDetector(const LongRemixConfig& config)
      : config_(config) {}

  void Setup(const Dataset& inventory) override;
  DetectionResult Detect(const Dataset& incremental) override;
  std::string name() const override { return "longremix"; }
  std::string display_name() const override { return "LongReMix"; }

 private:
  LongRemixConfig config_;
  GeneralModel general_;
  uint64_t request_counter_ = 0;
};

}  // namespace enld

#endif  // ENLD_DETECT_LONGREMIX_H_
