#ifndef ENLD_DETECT_REGISTRY_H_
#define ENLD_DETECT_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/detector.h"
#include "baselines/topofilter.h"
#include "common/status.h"
#include "enld/config.h"
#include "nn/general_model.h"

namespace enld {
namespace detect {

/// Raw detector options as they arrive from a CLI flag, a config file or a
/// bench sweep: string key -> string value, e.g. {{"epochs","5"}}.
/// Validation and typing happen inside DetectorRegistry::Create.
using DetectorOptions = std::map<std::string, std::string>;

/// Value type an option is parsed as.
enum class OptionType {
  kInt,     // Non-negative integer.
  kDouble,  // Floating point.
  kBool,    // "true"/"false"/"1"/"0".
  kString,  // Free-form, optionally restricted by `allowed`.
};

/// Stable name of an option type ("int", "double", "bool", "string") —
/// used in error messages and docs/DETECTORS.md tables.
const char* OptionTypeName(OptionType type);

/// Declaration of one option a detector accepts. Options always *override*
/// a field of the detector's config; when absent, the config's value (from
/// DetectorContext or the config struct's default) stays in effect —
/// `default_value` documents that effective default.
struct OptionSpec {
  std::string key;
  OptionType type = OptionType::kString;
  /// The effective value when the option is not provided (documentation;
  /// shown by --list_detectors and DETECTORS.md).
  std::string default_value;
  std::string description;
  /// Non-empty => the value must be one of these (enum-style options).
  std::vector<std::string> allowed;
};

/// Everything the registry knows about one detector.
struct DetectorInfo {
  /// Canonical lowercase key — identical to the created detector's name().
  std::string key;
  /// Human-readable name — identical to the detector's display_name().
  std::string display_name;
  /// One-line description for --list_detectors and DETECTORS.md.
  std::string description;
  std::vector<OptionSpec> options;
};

/// Calibrated base configurations a factory starts from before applying
/// option overrides. Default-constructed context = the library's default
/// configs (what the unit tests use); PaperDetectorContext (eval/) returns
/// the per-task calibrated setups the benches use.
struct DetectorContext {
  GeneralModelConfig general;
  EnldConfig enld;
  TopofilterConfig topofilter;
};

/// Options after validation against a detector's OptionSpec list: every
/// present key is known and its value parses as the declared type. Getters
/// return the caller's fallback when the option was not provided — the
/// "options override a config field" contract.
class ParsedOptions {
 public:
  bool Has(const std::string& key) const;
  size_t GetSize(const std::string& key, size_t fallback) const;
  int GetInt(const std::string& key, int fallback) const;
  uint64_t GetUInt64(const std::string& key, uint64_t fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;

 private:
  friend class DetectorRegistry;
  DetectorOptions values_;
};

/// A factory builds a configured detector from the context plus validated
/// options. Factories may still fail (e.g. inconsistent option combination)
/// by returning a non-OK status.
using DetectorFactory =
    std::function<StatusOr<std::unique_ptr<NoisyLabelDetector>>(
        const DetectorContext& context, const ParsedOptions& options)>;

/// String-keyed detector factory registry (the Desbordante
/// CreateAndLoadPrimitive idiom): every detector in the library is
/// registered here under its canonical key, and everything that consumes
/// detectors — enld_cli, the bench matrix, the platform — creates them by
/// name with a typed option map.
///
/// Thread-compatible: registration happens once at startup (RegisterBuiltin
/// runs under a once_flag); concurrent Create/List afterwards are safe
/// because the table is no longer mutated.
class DetectorRegistry {
 public:
  /// The process-wide registry. Does NOT register the built-in detectors;
  /// use the free functions below (CreateDetector / ListDetectors /
  /// FindDetector), which do, unless you are writing registration tests.
  static DetectorRegistry& Global();

  /// Registers a detector. InvalidArgument when the key is empty, not
  /// lowercase-canonical, already taken, or an option key repeats.
  Status Register(DetectorInfo info, DetectorFactory factory);

  /// Creates a detector by key. InvalidArgument with a descriptive message
  /// when the key is unknown, an option key is not declared by the
  /// detector, or an option value does not parse as its declared type (or
  /// is outside its allowed set).
  StatusOr<std::unique_ptr<NoisyLabelDetector>> Create(
      const std::string& key, const DetectorOptions& options = {},
      const DetectorContext& context = {}) const;

  /// All registered detectors, sorted by key.
  std::vector<DetectorInfo> List() const;

  /// Info for one key; nullptr when unknown.
  const DetectorInfo* Find(const std::string& key) const;

 private:
  struct Entry {
    DetectorInfo info;
    DetectorFactory factory;
  };
  std::map<std::string, Entry> entries_;
};

/// Registers every built-in detector (Default, CL-1/2, Topofilter, O2U,
/// Co-teaching, INCV, the ENLD policy variants, PLS, Probe, LongReMix)
/// into the global registry. Idempotent; called automatically by the
/// convenience functions below.
void RegisterBuiltinDetectors();

/// Creates a detector from the global registry (built-ins registered on
/// first use). The primary entry point:
///   auto detector = detect::CreateDetector("topofilter",
///                                          {{"epochs", "5"}});
///   if (!detector.ok()) { ... detector.status() ... }
StatusOr<std::unique_ptr<NoisyLabelDetector>> CreateDetector(
    const std::string& key, const DetectorOptions& options = {},
    const DetectorContext& context = {});

/// All registered detectors, sorted by key (built-ins registered first).
std::vector<DetectorInfo> ListDetectors();

/// Info for one key from the global registry; nullptr when unknown.
const DetectorInfo* FindDetector(const std::string& key);

}  // namespace detect
}  // namespace enld

#endif  // ENLD_DETECT_REGISTRY_H_
