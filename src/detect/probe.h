#ifndef ENLD_DETECT_PROBE_H_
#define ENLD_DETECT_PROBE_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/detector.h"
#include "nn/general_model.h"

namespace enld {

/// Configuration of the loss-trajectory probe-ranking detector.
struct ProbeConfig {
  /// Backbone and training schedule of the inventory probe (the registry
  /// context supplies the paper's task-calibrated general settings).
  GeneralModelConfig general;
  /// Trailing per-epoch weight checkpoints kept from probe training; each
  /// arriving sample's loss is averaged across them to form its
  /// trajectory score.
  size_t checkpoints = 3;
  /// Candidate split positions evaluated by the threshold sweep over the
  /// ranked mean losses.
  size_t sweep_points = 32;
};

/// Probe ranking: train a probe on the inventory, keeping the weights of
/// the last `checkpoints` epochs, then score every arriving D-sample by
/// its *mean* cross-entropy across those checkpoints (mislabeled samples
/// stay hard across the trajectory; a single final snapshot is noisier).
/// Instead of a fixed cut, the detector sweeps `sweep_points` candidate
/// thresholds over the ranked losses and keeps the one maximizing the
/// between-class variance (Otsu's criterion) — a noise-rate-free split
/// that adapts to each arriving dataset.
///
/// The O2U family's loss-tracking signal with a sweep in place of
/// 2-means; the two disagree exactly when the loss histogram is skewed,
/// which is what the detector matrix surfaces.
class ProbeDetector : public NoisyLabelDetector {
 public:
  explicit ProbeDetector(const ProbeConfig& config) : config_(config) {}

  void Setup(const Dataset& inventory) override;
  DetectionResult Detect(const Dataset& incremental) override;
  std::string name() const override { return "probe"; }
  std::string display_name() const override { return "Probe-Rank"; }

 private:
  ProbeConfig config_;
  std::unique_ptr<MlpModel> probe_;
  /// Weight snapshots of the last `checkpoints` training epochs, oldest
  /// first (the last entry is the final trained state).
  std::vector<std::vector<float>> checkpoints_;
};

}  // namespace enld

#endif  // ENLD_DETECT_PROBE_H_
