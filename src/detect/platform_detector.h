#ifndef ENLD_DETECT_PLATFORM_DETECTOR_H_
#define ENLD_DETECT_PLATFORM_DETECTOR_H_

#include "common/status.h"
#include "detect/registry.h"
#include "enld/platform.h"

namespace enld {
namespace detect {

/// Resolves the platform's configured detector
/// (DataPlatformConfig::detector + detector_options) through the registry
/// and installs the instance. Call between constructing the platform and
/// Initialize:
///
///   DataPlatformConfig config;
///   config.detector = "topofilter";
///   config.detector_options = {{"epochs", "5"}};
///   DataPlatform platform(config);
///   ENLD_RETURN_IF_ERROR(detect::ConfigurePlatformDetector(&platform));
///   ENLD_RETURN_IF_ERROR(platform.Initialize(inventory));
///
/// For the built-in "enld" key this is a no-op as long as detector_options
/// is empty (the framework is configured via DataPlatformConfig::enld);
/// options on "enld" are an InvalidArgument. Lives in enld_detect — the
/// platform itself stays registry-free, exactly like the
/// DataPlatform::SaveSnapshot / enld_store link seam.
Status ConfigurePlatformDetector(DataPlatform* platform,
                                 const DetectorContext& context = {});

}  // namespace detect
}  // namespace enld

#endif  // ENLD_DETECT_PLATFORM_DETECTOR_H_
