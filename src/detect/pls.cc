#include "detect/pls.h"

#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "nn/trainer.h"

namespace enld {

void PlsDetector::Setup(const Dataset& inventory) {
  general_ = InitGeneralModel(inventory, config_.general);
  request_counter_ = 0;
}

DetectionResult PlsDetector::Detect(const Dataset& incremental) {
  ENLD_CHECK(general_.model != nullptr);  // Setup must run first.
  ++request_counter_;

  DetectionResult result;
  const std::vector<size_t> missing = incremental.MissingLabelIndices();
  std::vector<size_t> labeled;
  labeled.reserve(incremental.size() - missing.size());
  for (size_t i = 0; i < incremental.size(); ++i) {
    if (incremental.observed_labels[i] != kMissingLabel) labeled.push_back(i);
  }
  if (labeled.empty()) return result;

  // Stage 1: split by self-confidence against the per-class mean. The high
  // side is the trusted seed; only the low side goes to stage 2.
  const Matrix probs = general_.model->Probabilities(incremental.features);
  std::vector<double> self_conf(incremental.size(), 0.0);
  std::vector<double> class_sum(incremental.num_classes, 0.0);
  std::vector<size_t> class_count(incremental.num_classes, 0);
  for (size_t i : labeled) {
    const int y = incremental.observed_labels[i];
    self_conf[i] = static_cast<double>(probs.Row(i)[y]);
    class_sum[y] += self_conf[i];
    ++class_count[y];
  }
  std::vector<uint8_t> high(incremental.size(), 0);
  std::vector<size_t> high_positions;
  for (size_t i : labeled) {
    const int y = incremental.observed_labels[i];
    const double mean = class_sum[y] / static_cast<double>(class_count[y]);
    if (self_conf[i] >= config_.confidence_margin * mean) {
      high[i] = 1;
      high_positions.push_back(i);
    }
  }

  // Stage 2: refine a copy of θ on the high-confidence split, then re-judge
  // the low side with the refined model. When the split is empty (or
  // refinement is disabled) the unrefined θ judges instead.
  Rng model_rng(config_.seed + request_counter_);
  MlpModel refined(general_.model->layer_dims(), model_rng);
  refined.SetWeights(general_.model->GetWeights());
  if (!high_positions.empty() && config_.refine_epochs > 0) {
    const Dataset seed_set = incremental.Subset(high_positions);
    TrainConfig refine;
    refine.epochs = config_.refine_epochs;
    refine.batch_size = 64;
    refine.sgd.learning_rate = 0.01;
    refine.sgd.momentum = 0.9;
    refine.seed = config_.seed + request_counter_;
    TrainModel(&refined, seed_set, /*validation=*/nullptr, refine);
  }

  const std::vector<int> predicted = refined.Predict(incremental.features);
  for (size_t i : labeled) {
    if (high[i] || predicted[i] == incremental.observed_labels[i]) {
      result.clean_indices.push_back(i);
    } else {
      result.noisy_indices.push_back(i);
    }
  }
  return result;
}

}  // namespace enld
