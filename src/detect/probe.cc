#include "detect/probe.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "nn/loss.h"
#include "nn/trainer.h"

namespace enld {
namespace {

/// Otsu's criterion over 1-D values: the split (among `points` quantile
/// positions of the sorted values) maximizing w0 * w1 * (mu0 - mu1)^2.
/// Quantile candidates — rather than an evenly spaced grid over
/// [min, max] — keep the sweep meaningful for the right-skewed loss
/// distributions training produces, where a grid would spend most
/// candidates inside the empty tail gap. Returns the midpoint of the
/// range when the values are degenerate.
double BetweenClassVarianceThreshold(const std::vector<double>& values,
                                     size_t points) {
  ENLD_CHECK(!values.empty());
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const size_t n = sorted.size();
  if (sorted.front() >= sorted.back() || points < 2 || n < 2) {
    return (sorted.front() + sorted.back()) / 2.0;
  }

  // Prefix sums make each candidate split O(1).
  std::vector<double> prefix(n + 1, 0.0);
  for (size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + sorted[i];

  double best_threshold = (sorted.front() + sorted.back()) / 2.0;
  double best_score = -1.0;
  for (size_t p = 1; p < points; ++p) {
    // Split below the p-th `points`-quantile: low cluster = sorted[0..k).
    const size_t k = std::max<size_t>(1, std::min(n - 1, p * n / points));
    if (sorted[k - 1] >= sorted[k]) continue;  // No separating midpoint.
    const double w0 = static_cast<double>(k) / n;
    const double w1 = 1.0 - w0;
    const double mu0 = prefix[k] / k;
    const double mu1 = (prefix[n] - prefix[k]) / (n - k);
    const double score = w0 * w1 * (mu1 - mu0) * (mu1 - mu0);
    if (score > best_score) {
      best_score = score;
      best_threshold = (sorted[k - 1] + sorted[k]) / 2.0;
    }
  }
  return best_threshold;
}

}  // namespace

void ProbeDetector::Setup(const Dataset& inventory) {
  ENLD_CHECK(!inventory.empty());
  const size_t total = std::max<size_t>(1, config_.general.train.epochs);
  const size_t tracked =
      std::min(std::max<size_t>(1, config_.checkpoints), total);

  Rng rng(config_.general.seed);
  probe_ = MakeBackboneModel(config_.general.backbone, inventory.dim(),
                             inventory.num_classes, rng);
  checkpoints_.clear();
  // Epoch-at-a-time training so the trailing epochs can be snapshotted.
  // lr_decay_per_epoch is applied manually across the single-epoch calls.
  TrainConfig step = config_.general.train;
  step.epochs = 1;
  for (size_t epoch = 0; epoch < total; ++epoch) {
    step.seed = rng.NextUInt64();
    TrainModel(probe_.get(), inventory, /*validation=*/nullptr, step);
    step.sgd.learning_rate *= step.lr_decay_per_epoch;
    if (epoch + tracked >= total) checkpoints_.push_back(probe_->GetWeights());
  }
}

DetectionResult ProbeDetector::Detect(const Dataset& incremental) {
  ENLD_CHECK(probe_ != nullptr);  // Setup must run first.
  ENLD_CHECK(!checkpoints_.empty());

  // Trajectory score: mean loss across the checkpoint snapshots.
  std::vector<double> tracked(incremental.size(), 0.0);
  for (const std::vector<float>& weights : checkpoints_) {
    probe_->SetWeights(weights);
    Matrix logits;
    probe_->Forward(incremental.features, &logits);
    const std::vector<double> losses =
        PerSampleCrossEntropy(logits, incremental.observed_labels);
    for (size_t i = 0; i < incremental.size(); ++i) tracked[i] += losses[i];
  }
  // Leave the probe in its final trained state for the next request.
  probe_->SetWeights(checkpoints_.back());

  std::vector<size_t> labeled;
  std::vector<double> mean_losses;
  for (size_t i = 0; i < incremental.size(); ++i) {
    if (incremental.observed_labels[i] == kMissingLabel) continue;
    labeled.push_back(i);
    mean_losses.push_back(tracked[i] /
                          static_cast<double>(checkpoints_.size()));
  }

  DetectionResult result;
  if (labeled.empty()) return result;
  const double threshold =
      BetweenClassVarianceThreshold(mean_losses, config_.sweep_points);
  for (size_t j = 0; j < labeled.size(); ++j) {
    if (mean_losses[j] > threshold) {
      result.noisy_indices.push_back(labeled[j]);
    } else {
      result.clean_indices.push_back(labeled[j]);
    }
  }
  return result;
}

}  // namespace enld
