#include "rpc/stats.h"

#include <cstdio>
#include <utility>

#include "rpc/frame.h"
#include "store/json.h"

namespace enld {
namespace rpc {

namespace {

store::JsonValue U64(uint64_t v) {
  return store::JsonValue::Number(static_cast<double>(v));
}

std::string HexFingerprint(uint64_t fingerprint) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buffer;
}

store::JsonValue HistogramJson(const telemetry::HistogramSnapshot& h) {
  store::JsonValue out = store::JsonValue::Object();
  out.Set("count", U64(h.count));
  out.Set("sum", store::JsonValue::Number(h.sum));
  store::JsonValue bounds = store::JsonValue::Array();
  for (double b : h.upper_bounds) {
    bounds.items().push_back(store::JsonValue::Number(b));
  }
  out.Set("upper_bounds", std::move(bounds));
  store::JsonValue buckets = store::JsonValue::Array();
  for (uint64_t c : h.bucket_counts) {
    buckets.items().push_back(U64(c));
  }
  out.Set("bucket_counts", std::move(buckets));
  store::JsonValue quantiles = store::JsonValue::Object();
  quantiles.Set("p50",
                store::JsonValue::Number(telemetry::HistogramQuantile(h, 0.5)));
  quantiles.Set("p90",
                store::JsonValue::Number(telemetry::HistogramQuantile(h, 0.9)));
  quantiles.Set(
      "p99", store::JsonValue::Number(telemetry::HistogramQuantile(h, 0.99)));
  out.Set("quantiles", std::move(quantiles));
  return out;
}

}  // namespace

std::string RenderStatsJson(const StatsInfo& info) {
  store::JsonValue doc = store::JsonValue::Object();
  doc.Set("schema", store::JsonValue::String("enld-stats-v1"));
  doc.Set("uptime_seconds", store::JsonValue::Number(info.uptime_seconds));

  store::JsonValue build = store::JsonValue::Object();
  build.Set("frame_version", U64(kFrameVersion));
  build.Set("frame_header_bytes", U64(kFrameHeaderBytes));
  build.Set("config_fingerprint",
            store::JsonValue::String(HexFingerprint(info.config_fingerprint)));
  doc.Set("build", std::move(build));

  store::JsonValue server = store::JsonValue::Object();
  server.Set("connections_accepted", U64(info.connections_accepted));
  server.Set("connections_rejected", U64(info.connections_rejected));
  server.Set("connections_active", U64(info.connections_active));
  server.Set("requests", U64(info.requests));
  server.Set("responses", U64(info.responses));
  server.Set("wire_errors", U64(info.wire_errors));
  server.Set("dropped_frames", U64(info.dropped_frames));
  server.Set("deadline_propagated", U64(info.deadline_propagated));
  server.Set("stats_served", U64(info.stats_served));
  doc.Set("server", std::move(server));

  store::JsonValue pipeline = store::JsonValue::Object();
  pipeline.Set("submitted", U64(info.pipeline.submitted));
  pipeline.Set("completed", U64(info.pipeline.completed));
  pipeline.Set("batches", U64(info.pipeline.batches));
  pipeline.Set("largest_batch", U64(info.pipeline.largest_batch));
  pipeline.Set("queue_deadline_drops", U64(info.pipeline.queue_deadline_drops));
  pipeline.Set("hol_blocked", U64(info.pipeline.hol_blocked));
  pipeline.Set("snapshot_writes", U64(info.pipeline.snapshot_writes));
  pipeline.Set("scrub_runs", U64(info.pipeline.scrub_runs));
  pipeline.Set("scrub_findings", U64(info.pipeline.scrub_findings));
  pipeline.Set("queue_depth", U64(info.queue_depth));
  doc.Set("pipeline", std::move(pipeline));

  store::JsonValue recent = store::JsonValue::Array();
  for (const RequestRecord& record : info.recent_requests) {
    store::JsonValue entry = store::JsonValue::Object();
    entry.Set("sequence", U64(record.sequence));
    entry.Set("request_id", U64(record.request_id));
    entry.Set("status", store::JsonValue::String(StatusCodeName(record.status)));
    entry.Set("queue_seconds", store::JsonValue::Number(record.queue_seconds));
    entry.Set("admission_seconds",
              store::JsonValue::Number(record.admission_seconds));
    entry.Set("detect_seconds",
              store::JsonValue::Number(record.detect_seconds));
    entry.Set("process_seconds",
              store::JsonValue::Number(record.process_seconds));
    recent.items().push_back(std::move(entry));
  }
  doc.Set("recent_requests", std::move(recent));

  store::JsonValue metrics = store::JsonValue::Object();
  store::JsonValue counters = store::JsonValue::Object();
  for (const auto& [name, value] : info.metrics.counters) {
    counters.Set(name, U64(value));
  }
  metrics.Set("counters", std::move(counters));
  store::JsonValue gauges = store::JsonValue::Object();
  for (const auto& [name, value] : info.metrics.gauges) {
    gauges.Set(name, store::JsonValue::Number(value));
  }
  metrics.Set("gauges", std::move(gauges));
  store::JsonValue histograms = store::JsonValue::Object();
  for (const auto& [name, snapshot] : info.metrics.histograms) {
    histograms.Set(name, HistogramJson(snapshot));
  }
  metrics.Set("histograms", std::move(histograms));
  doc.Set("metrics", std::move(metrics));

  return doc.ToString();
}

}  // namespace rpc
}  // namespace enld
