#ifndef ENLD_RPC_MESSAGE_H_
#define ENLD_RPC_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace enld {
namespace rpc {

/// Frame payload bodies of the serving protocol (docs/SERVING.md §2).
///
/// A detect request ships the arriving Dataset in the store's shard byte
/// format (store/shard.h) — the exact CRC'd columnar encoding snapshots
/// use on disk, so the wire inherits its per-section checksums and its
/// byte-for-byte round-trip guarantee for free.
///
/// A detect response carries the service Status plus the detection verdict
/// and the post-request platform state a remote caller needs to render the
/// request without ever reading the live platform: indices always refer to
/// rows of the dataset as sent (the admission remapping already happened
/// server-side). Bodies travel inside CRC'd frames, so truncation here
/// means an encoder bug, not wire damage: decode failures are
/// InvalidArgument.

/// Encodes the arriving dataset as a detect-request payload.
std::string EncodeDetectRequest(const Dataset& dataset);

/// Decodes a detect-request payload back into a Dataset, re-validating
/// every section CRC and the column invariants.
StatusOr<Dataset> DecodeDetectRequest(const std::string& payload);

/// Everything a remote caller learns about one completed request.
struct WireDetectResponse {
  /// Pipeline submission sequence on the server (1-based) — the identity
  /// used in server-side audit trails; distinct from the frame sequence,
  /// which the client chose.
  uint64_t server_sequence = 0;
  /// The client-set request id, echoed back after the full
  /// frame → pipeline → platform round trip (0 when the client set none).
  /// Matching it against the id sent proves the observability thread is
  /// intact, not just the frame-header echo.
  uint64_t request_id = 0;
  /// The service-level outcome: OK, InvalidArgument (bad request),
  /// DeadlineExceeded (budget blown), FailedPrecondition (shutting down)…
  /// The detection fields below are meaningful only when this is OK.
  Status service_status = Status::OK();
  std::vector<uint32_t> noisy_indices;
  std::vector<uint32_t> clean_indices;
  /// Recovered labels for missing-label samples, parallel to the request
  /// dataset (kMissingLabel where not applicable); empty when the request
  /// had no missing labels.
  std::vector<int32_t> recovered_labels;
  /// framework().selected_clean_count() right after this request.
  uint64_t clean_bank_after = 0;
  /// stats().model_updates right after this request.
  uint64_t model_updates_after = 0;
  /// stats().requests right after this request.
  uint64_t requests_after = 0;
  /// Server-side queue wait and service time for this request.
  double queue_seconds = 0.0;
  double process_seconds = 0.0;
};

std::string EncodeDetectResponse(const WireDetectResponse& response);
StatusOr<WireDetectResponse> DecodeDetectResponse(const std::string& payload);

/// Body of a kError frame: a bare Status describing a wire/protocol-level
/// failure (decode failure, server overload, injected wire fault).
/// Retryable codes (kUnavailable) tell the client to resend; anything else
/// is a hard protocol error.
std::string EncodeErrorBody(const Status& status);
/// Parses the carried Status into `*carried`; the return value reports the
/// decode itself (InvalidArgument on a malformed body).
Status DecodeErrorBody(const std::string& payload, Status* carried);

}  // namespace rpc
}  // namespace enld

#endif  // ENLD_RPC_MESSAGE_H_
