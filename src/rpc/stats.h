#ifndef ENLD_RPC_STATS_H_
#define ENLD_RPC_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/telemetry/metrics.h"
#include "enld/pipeline.h"

namespace enld {
namespace rpc {

/// The "enld-stats-v1" live stats/health document served on kStats frames
/// (docs/OBSERVABILITY.md, "Live serving observability"). RpcServer fills
/// a StatsInfo off the request path — no pipeline Submit, so a stats scrape
/// never perturbs the detection stream — and RenderStatsJson turns it into
/// deterministic JSON: object keys are written in a fixed order, metric
/// names come from the registry's sorted snapshot, and every number goes
/// through the JSON model's single round-trippable formatter, so two
/// identical states always produce identical bytes.

struct StatsInfo {
  double uptime_seconds = 0.0;
  /// FNV-1a fingerprint of the serving platform's DataPlatformConfig — the
  /// same fingerprint snapshots embed (store/snapshot.h), so an operator
  /// can tell at a glance whether this server would accept a given
  /// snapshot lineage.
  uint64_t config_fingerprint = 0;

  // Serving counters (RpcServer::Counters plus the live gauge).
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;
  uint64_t connections_active = 0;
  uint64_t requests = 0;
  uint64_t responses = 0;
  uint64_t wire_errors = 0;
  uint64_t dropped_frames = 0;
  uint64_t deadline_propagated = 0;
  uint64_t stats_served = 0;

  // Pipeline state behind the server.
  RequestPipeline::Counters pipeline;
  uint64_t queue_depth = 0;
  std::vector<RequestRecord> recent_requests;  ///< oldest first

  /// Full metrics registry. Series are omitted from the rendered document
  /// (append-only and unbounded — they belong in the end-of-run report,
  /// not a live endpoint polled in a loop).
  telemetry::MetricsSnapshot metrics;
};

/// Renders the document. Histograms additionally carry deterministic
/// p50/p90/p99 readouts (telemetry::HistogramQuantile) under "quantiles".
std::string RenderStatsJson(const StatsInfo& info);

}  // namespace rpc
}  // namespace enld

#endif  // ENLD_RPC_STATS_H_
