#include "rpc/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "rpc/net.h"

namespace enld {
namespace rpc {

RpcClient::RpcClient(ClientConfig config) : config_(std::move(config)) {}

RpcClient::~RpcClient() { Disconnect(); }

Status RpcClient::Connect() {
  if (fd_ >= 0) return Status::OK();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(std::string("socket() failed: ") +
                               std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad numeric IPv4 host '" + config_.host +
                                   "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status = Status::Unavailable(
        "connect(" + config_.host + ":" + std::to_string(config_.port) +
        ") failed: " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  fd_ = fd;
  return Status::OK();
}

void RpcClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<Frame> RpcClient::AwaitReply(uint64_t sequence) {
  while (true) {
    StatusOr<Frame> read = ReadFrame(fd_);
    if (!read.ok()) {
      // Any failure to read the paired reply — including a clean close
      // (the server's drop_frame behavior) — leaves this connection
      // useless: close it and report the retryable class so the caller's
      // policy reconnects and resends.
      Disconnect();
      if (read.status().code() == StatusCode::kNotFound) {
        return Status::Unavailable("connection closed awaiting reply");
      }
      return read.status();
    }
    Frame frame = std::move(*read);
    if (frame.header.type == FrameType::kError) {
      Status carried;
      const Status decoded = DecodeErrorBody(frame.payload, &carried);
      if (!decoded.ok()) {
        Disconnect();
        return decoded;
      }
      // A pre-dispatch wire error (CRC mismatch, overload): the connection
      // is still framed correctly, so keep it for the resend.
      if (carried.ok()) carried = Status::Unavailable("empty error frame");
      return carried;
    }
    if (frame.header.sequence != sequence) {
      // A reply for a request we no longer care about (e.g. one whose
      // error we already consumed) — with one in-flight request this means
      // the stream slipped; resync by reconnecting.
      Disconnect();
      return Status::Unavailable("out-of-order reply; resynchronizing");
    }
    return frame;
  }
}

StatusOr<WireDetectResponse> RpcClient::DetectOnce(
    const std::string& request_payload, double deadline_seconds,
    uint64_t request_id) {
  ENLD_RETURN_IF_ERROR(Connect());

  FrameHeader header;
  header.type = FrameType::kDetectRequest;
  header.sequence = ++next_sequence_;
  header.request_id = request_id;
  header.deadline_seconds = deadline_seconds;
  Status written = WriteFrame(fd_, header, request_payload);
  if (!written.ok()) {
    Disconnect();
    return written;
  }

  StatusOr<Frame> reply = AwaitReply(header.sequence);
  if (!reply.ok()) return reply.status();
  if (reply->header.type != FrameType::kDetectResponse) {
    Disconnect();
    return Status::InvalidArgument("unexpected frame type in reply");
  }
  return DecodeDetectResponse(reply->payload);
}

StatusOr<WireDetectResponse> RpcClient::Detect(const Dataset& dataset,
                                               double deadline_seconds,
                                               uint64_t request_id) {
  const double deadline =
      deadline_seconds < 0.0 ? config_.deadline_seconds : deadline_seconds;
  // Encoded once: every resend ships byte-identical request bytes; the
  // request id is likewise constant across attempts so the server-side
  // trace stitches retries of one logical request together.
  const std::string payload = EncodeDetectRequest(dataset);
  return RetryWithBackoffOr<WireDetectResponse>(
      config_.retry, "rpc detect",
      [&]() -> StatusOr<WireDetectResponse> {
        return DetectOnce(payload, deadline, request_id);
      });
}

StatusOr<std::string> RpcClient::StatsOnce() {
  ENLD_RETURN_IF_ERROR(Connect());
  FrameHeader header;
  header.type = FrameType::kStats;
  header.sequence = ++next_sequence_;
  Status written = WriteFrame(fd_, header, "");
  if (!written.ok()) {
    Disconnect();
    return written;
  }
  StatusOr<Frame> reply = AwaitReply(header.sequence);
  if (!reply.ok()) return reply.status();
  if (reply->header.type != FrameType::kStatsResponse) {
    Disconnect();
    return Status::InvalidArgument("unexpected frame type in stats reply");
  }
  return std::move(reply->payload);
}

StatusOr<std::string> RpcClient::Stats() {
  return RetryWithBackoffOr<std::string>(
      config_.retry, "rpc stats",
      [&]() -> StatusOr<std::string> { return StatsOnce(); });
}

Status RpcClient::SendShutdown() {
  ENLD_RETURN_IF_ERROR(Connect());
  FrameHeader header;
  header.type = FrameType::kShutdown;
  header.sequence = ++next_sequence_;
  ENLD_RETURN_IF_ERROR(WriteFrame(fd_, header, ""));
  StatusOr<Frame> reply = AwaitReply(header.sequence);
  if (!reply.ok()) return reply.status();
  if (reply->header.type != FrameType::kShutdownAck) {
    return Status::InvalidArgument("expected shutdown ack");
  }
  return Status::OK();
}

}  // namespace rpc
}  // namespace enld
