#include "rpc/frame.h"

#include <cstring>

#include "common/telemetry/metrics.h"
#include "store/io.h"

namespace enld {
namespace rpc {

namespace {

void CountCrcFailure() {
  telemetry::MetricsRegistry::Global()
      .GetCounter("rpc/crc_failures")
      ->Increment();
}

}  // namespace

bool IsKnownFrameType(uint8_t type) {
  switch (static_cast<FrameType>(type)) {
    case FrameType::kDetectRequest:
    case FrameType::kDetectResponse:
    case FrameType::kError:
    case FrameType::kShutdown:
    case FrameType::kShutdownAck:
    case FrameType::kStats:
    case FrameType::kStatsResponse:
      return true;
  }
  return false;
}

std::string EncodeFrame(const FrameHeader& header,
                        const std::string& payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  store::PutBytes(&out, kFrameMagic, 8);
  store::PutU32(&out, kFrameByteOrderTag);
  store::PutU8(&out, kFrameVersion);
  store::PutU8(&out, static_cast<uint8_t>(header.type));
  store::PutU64(&out, header.sequence);
  store::PutU64(&out, header.request_id);
  store::PutF64(&out, header.deadline_seconds);
  store::PutU64(&out, payload.size());
  store::PutU32(&out, store::Crc32(out.data(), out.size()));
  store::PutU32(&out, store::Crc32(payload));
  out.append(payload);
  return out;
}

std::string EncodeFrameV1(const FrameHeader& header,
                          const std::string& payload) {
  std::string out;
  out.reserve(kFrameHeaderBytesV1 + payload.size());
  store::PutBytes(&out, kFrameMagic, 8);
  store::PutU32(&out, kFrameByteOrderTag);
  store::PutU8(&out, kFrameVersionV1);
  store::PutU8(&out, static_cast<uint8_t>(header.type));
  store::PutU64(&out, header.sequence);
  store::PutF64(&out, header.deadline_seconds);
  store::PutU64(&out, payload.size());
  store::PutU32(&out, store::Crc32(out.data(), out.size()));
  store::PutU32(&out, store::Crc32(payload));
  out.append(payload);
  return out;
}

StatusOr<FrameHeader> DecodeFrameHeader(const std::string& prefix) {
  if (prefix.size() < kFrameHeaderBytesV1) {
    return Status::Unavailable(
        "truncated frame header: got " + std::to_string(prefix.size()) +
        " byte(s), want at least " + std::to_string(kFrameHeaderBytesV1));
  }
  if (std::memcmp(prefix.data(), kFrameMagic, 8) != 0) {
    return Status::InvalidArgument("bad frame magic (not an ENLD frame)");
  }
  // The version byte (offset 12) is peeked before the CRC check only to
  // pick the layout (prefix length + CRC span); it is not trusted until
  // the CRC over that layout passes. A corrupted version byte selects the
  // wrong CRC span, the mismatch reads as wire damage, and the peer
  // retries — never a protocol violation from a flipped bit.
  const uint8_t version_byte = static_cast<uint8_t>(prefix[12]);
  const bool v1_layout = (version_byte == kFrameVersionV1);
  const size_t header_bytes = FrameHeaderBytesForVersion(version_byte);
  if (prefix.size() < header_bytes) {
    return Status::Unavailable(
        "truncated frame header: got " + std::to_string(prefix.size()) +
        " byte(s), version " + std::to_string(version_byte) + " needs " +
        std::to_string(header_bytes));
  }
  store::BinaryReader reader(prefix);
  reader.Skip(8);  // magic, just compared
  uint32_t tag = 0;
  uint8_t version = 0, type = 0;
  uint64_t sequence = 0, request_id = 0, payload_size = 0;
  double deadline = 0.0;
  uint32_t header_crc = 0, payload_crc = 0;
  reader.ReadU32(&tag);
  reader.ReadU8(&version);
  reader.ReadU8(&type);
  reader.ReadU64(&sequence);
  if (!v1_layout) reader.ReadU64(&request_id);
  reader.ReadF64(&deadline);
  reader.ReadU64(&payload_size);
  reader.ReadU32(&header_crc);
  reader.ReadU32(&payload_crc);
  if (tag != kFrameByteOrderTag) {
    return Status::InvalidArgument("frame written with a foreign byte order");
  }
  // The header CRC is checked before version/type/length are trusted: a
  // flipped bit in any of them must read as wire damage (retryable), not
  // as a protocol violation.
  const uint32_t actual_crc = store::Crc32(prefix.data(), header_bytes - 8);
  if (actual_crc != header_crc) {
    CountCrcFailure();
    return Status::Unavailable("frame header CRC mismatch");
  }
  if (version != kFrameVersion && version != kFrameVersionV1) {
    return Status::InvalidArgument("unsupported frame version " +
                                   std::to_string(version));
  }
  if (!IsKnownFrameType(type)) {
    return Status::InvalidArgument("unknown frame type " +
                                   std::to_string(type));
  }
  if (payload_size > kMaxFramePayloadBytes) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(payload_size) +
        " bytes exceeds the " + std::to_string(kMaxFramePayloadBytes) +
        "-byte limit");
  }
  FrameHeader header;
  header.type = static_cast<FrameType>(type);
  header.sequence = sequence;
  header.request_id = request_id;
  header.deadline_seconds = deadline;
  header.payload_size = payload_size;
  header.payload_crc = payload_crc;
  header.version = version;
  return header;
}

Status VerifyFramePayload(const FrameHeader& header,
                          const std::string& payload) {
  if (payload.size() != header.payload_size) {
    return Status::Unavailable(
        "truncated frame payload: got " + std::to_string(payload.size()) +
        " byte(s), header declares " + std::to_string(header.payload_size));
  }
  if (store::Crc32(payload) != header.payload_crc) {
    CountCrcFailure();
    return Status::Unavailable("frame payload CRC mismatch");
  }
  return Status::OK();
}

StatusOr<Frame> DecodeFrame(const std::string& buffer) {
  StatusOr<FrameHeader> header = DecodeFrameHeader(buffer);
  if (!header.ok()) return header.status();
  const size_t header_bytes = FrameHeaderBytesForVersion(header->version);
  const size_t total = header_bytes + header->payload_size;
  if (buffer.size() < total) {
    return Status::Unavailable(
        "truncated frame payload: buffer holds " +
        std::to_string(buffer.size() - header_bytes) +
        " byte(s), header declares " + std::to_string(header->payload_size));
  }
  if (buffer.size() > total) {
    return Status::InvalidArgument(
        std::to_string(buffer.size() - total) +
        " trailing byte(s) after the frame payload");
  }
  Frame frame;
  frame.header = *header;
  frame.payload = buffer.substr(header_bytes);
  ENLD_RETURN_IF_ERROR(VerifyFramePayload(frame.header, frame.payload));
  return frame;
}

}  // namespace rpc
}  // namespace enld
