#include "rpc/message.h"

#include <utility>

#include "store/io.h"
#include "store/shard.h"

namespace enld {
namespace rpc {

namespace {

void PutStatus(std::string* out, const Status& status) {
  store::PutU32(out, static_cast<uint32_t>(status.code()));
  store::PutU32(out, static_cast<uint32_t>(status.message().size()));
  store::PutBytes(out, status.message().data(), status.message().size());
}

bool ReadStatus(store::BinaryReader* reader, Status* status) {
  uint32_t code = 0, length = 0;
  if (!reader->ReadU32(&code) || !reader->ReadU32(&length)) return false;
  std::string message;
  if (!reader->ReadBytes(length, &message)) return false;
  *status = Status(static_cast<StatusCode>(code), std::move(message));
  return true;
}

void PutU32Vector(std::string* out, const std::vector<uint32_t>& values) {
  store::PutU64(out, values.size());
  for (uint32_t v : values) store::PutU32(out, v);
}

bool ReadU32Vector(store::BinaryReader* reader,
                   std::vector<uint32_t>* values) {
  uint64_t count = 0;
  if (!reader->ReadU64(&count)) return false;
  if (count > reader->remaining() / 4) return false;  // cheap size sanity
  values->resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    if (!reader->ReadU32(&(*values)[i])) return false;
  }
  return true;
}

Status Malformed(const std::string& what) {
  return Status::InvalidArgument("malformed " + what +
                                 " body (truncated or inconsistent)");
}

}  // namespace

std::string EncodeDetectRequest(const Dataset& dataset) {
  return store::EncodeDatasetShard(dataset);
}

StatusOr<Dataset> DecodeDetectRequest(const std::string& payload) {
  return store::DecodeDatasetShard(payload);
}

std::string EncodeDetectResponse(const WireDetectResponse& response) {
  std::string out;
  store::PutU64(&out, response.server_sequence);
  store::PutU64(&out, response.request_id);
  PutStatus(&out, response.service_status);
  PutU32Vector(&out, response.noisy_indices);
  PutU32Vector(&out, response.clean_indices);
  store::PutU64(&out, response.recovered_labels.size());
  for (int32_t label : response.recovered_labels) {
    store::PutI32(&out, label);
  }
  store::PutU64(&out, response.clean_bank_after);
  store::PutU64(&out, response.model_updates_after);
  store::PutU64(&out, response.requests_after);
  store::PutF64(&out, response.queue_seconds);
  store::PutF64(&out, response.process_seconds);
  return out;
}

StatusOr<WireDetectResponse> DecodeDetectResponse(
    const std::string& payload) {
  store::BinaryReader reader(payload);
  WireDetectResponse response;
  if (!reader.ReadU64(&response.server_sequence) ||
      !reader.ReadU64(&response.request_id) ||
      !ReadStatus(&reader, &response.service_status) ||
      !ReadU32Vector(&reader, &response.noisy_indices) ||
      !ReadU32Vector(&reader, &response.clean_indices)) {
    return Malformed("detect-response");
  }
  uint64_t recovered = 0;
  if (!reader.ReadU64(&recovered) ||
      recovered > reader.remaining() / 4) {
    return Malformed("detect-response");
  }
  response.recovered_labels.resize(recovered);
  for (uint64_t i = 0; i < recovered; ++i) {
    if (!reader.ReadI32(&response.recovered_labels[i])) {
      return Malformed("detect-response");
    }
  }
  if (!reader.ReadU64(&response.clean_bank_after) ||
      !reader.ReadU64(&response.model_updates_after) ||
      !reader.ReadU64(&response.requests_after) ||
      !reader.ReadF64(&response.queue_seconds) ||
      !reader.ReadF64(&response.process_seconds) ||
      reader.remaining() != 0) {
    return Malformed("detect-response");
  }
  return response;
}

std::string EncodeErrorBody(const Status& status) {
  std::string out;
  PutStatus(&out, status);
  return out;
}

Status DecodeErrorBody(const std::string& payload, Status* carried) {
  store::BinaryReader reader(payload);
  if (!ReadStatus(&reader, carried) || reader.remaining() != 0) {
    return Malformed("error");
  }
  return Status::OK();
}

}  // namespace rpc
}  // namespace enld
