#ifndef ENLD_RPC_SERVER_H_
#define ENLD_RPC_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "enld/pipeline.h"
#include "rpc/frame.h"

namespace enld {
namespace rpc {

/// The wire-level serving front-end (docs/SERVING.md): a framed TCP
/// socket server putting `RequestPipeline` — and through it one
/// `DataPlatform` — on the network.
///
/// Shape: one accept thread, one handler thread per connection, one
/// shared RequestPipeline. Each handler reads one frame, dispatches it,
/// and writes the reply before reading the next — a closed loop per
/// connection, so responses on a connection always arrive in that
/// connection's request order. Concurrency comes from multiple
/// connections; the pipeline's single dispatcher still serializes
/// platform access, preserving the byte-identical-to-sequential
/// determinism contract.
///
/// Backpressure composes end to end: the pipeline's bounded queue blocks
/// `Submit`, which blocks the handler, which stops reading its socket,
/// which fills the kernel receive buffer, which blocks the remote
/// producer — no layer buffers unboundedly.
///
/// Deadline propagation: a request frame's deadline header (seconds)
/// overrides the platform's request_deadline_seconds for that request
/// only, via `SubmitOptions::deadline_seconds` (0 on the wire = no
/// deadline requested = server default applies).
///
/// Wire fault sites (docs/ROBUSTNESS.md §1), all checked between reading
/// a request frame and interpreting it — before the pipeline is touched,
/// so a client retry never re-executes detection and chaos-drill output
/// stays byte-identical to a fault-free run:
///
///   rpc/delay           stalls the request ~20 ms (latency site)
///   rpc/drop_frame      drops the request and closes the connection
///   rpc/truncate_frame  truncates the received payload (CRC then fails)
///   rpc/corrupt_frame   flips one payload byte (CRC then fails)
///
/// Telemetry: rpc/connections, rpc/requests, rpc/responses,
/// rpc/wire_errors, rpc/deadline_propagated, rpc/bytes_read,
/// rpc/bytes_written, rpc/crc_failures.
struct ServerConfig {
  /// Numeric IPv4 address to bind; loopback by default.
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back with port()).
  int port = 0;
  int listen_backlog = 64;
  /// Connections beyond this are accepted and immediately closed with a
  /// kError(Unavailable) frame — overload shedding at the front door.
  size_t max_connections = 64;
  /// Configuration of the RequestPipeline the server fronts (queue
  /// capacity, batching, shedding, snapshot hook).
  PipelineConfig pipeline;
  /// Detect requests whose end-to-end wall time (frame fully read →
  /// response written) exceeds this many seconds are logged to stderr with
  /// their request id and stage breakdown. 0 disables the log.
  double slow_request_seconds = 0.0;
  /// Print the queue-pressure line and per-connection totals (requests,
  /// errors, bytes) to stderr when the server shuts down — what serving
  /// drills grep. Off by default so tests stay quiet.
  bool log_shutdown_summary = false;
};

class RpcServer {
 public:
  /// `platform` must be initialized and outlive the server.
  RpcServer(DataPlatform* platform, ServerConfig config);
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Binds, listens and starts the accept loop. Fails with Unavailable on
  /// socket errors (port in use, …). Call at most once.
  Status Start();

  /// The bound TCP port (after Start); useful with `port = 0`.
  int port() const { return port_; }

  /// Blocks until a kShutdown frame arrives or Shutdown() is called.
  void WaitForShutdown();

  /// Stops accepting, unblocks every connection, joins all threads and
  /// drains the pipeline. Idempotent; returns the pipeline's deferred
  /// snapshot status. Also run by the destructor.
  Status Shutdown();

  /// Monotonic serving counters (also exported as rpc/* telemetry).
  struct Counters {
    uint64_t connections_accepted = 0;
    uint64_t connections_rejected = 0;  ///< over max_connections
    uint64_t requests = 0;              ///< detect requests dispatched
    uint64_t responses = 0;             ///< detect responses written
    uint64_t wire_errors = 0;           ///< kError frames written
    uint64_t dropped_frames = 0;        ///< rpc/drop_frame fires
    uint64_t deadline_propagated = 0;   ///< requests with a wire deadline
    uint64_t stats_served = 0;          ///< kStats snapshots written
  };
  Counters counters() const;

  /// Lifetime totals of one finished connection, for the shutdown summary
  /// and post-hoc inspection.
  struct ConnectionSummary {
    uint64_t id = 0;             ///< 1-based accept order
    uint64_t requests = 0;       ///< detect requests dispatched
    uint64_t responses = 0;      ///< detect responses written
    uint64_t errors = 0;         ///< kError frames written
    uint64_t bytes_read = 0;     ///< frame bytes received
    uint64_t bytes_written = 0;  ///< frame bytes sent
  };
  /// Summaries of closed connections, oldest first (bounded: the most
  /// recent kMaxConnectionSummaries are retained).
  std::vector<ConnectionSummary> connection_summaries() const;

  /// Builds the "enld-stats-v1" document (rpc/stats.h) from live state —
  /// the same bytes a kStats frame returns. Callable any time between
  /// Start and Shutdown, off the request path.
  std::string BuildStatsJson() const;

  /// Closed-connection summaries retained for connection_summaries().
  static constexpr size_t kMaxConnectionSummaries = 1024;

 private:
  void AcceptLoop();
  void ServeConnection(int fd, uint64_t connection_id);
  /// Handles one verified detect-request frame on `fd`. `received` started
  /// when the frame was fully read — its elapsed time at response write is
  /// the request's end-to-end serving latency.
  Status ServeDetect(int fd, const Frame& frame, const Stopwatch& received,
                     ConnectionSummary* conn);
  /// Replies to a kStats frame with the rendered stats document.
  Status ServeStats(int fd, const Frame& frame, ConnectionSummary* conn);
  Status SendError(int fd, uint64_t sequence, const Status& error,
                   ConnectionSummary* conn);
  void RequestShutdown();

  DataPlatform* platform_;
  ServerConfig config_;
  std::unique_ptr<RequestPipeline> pipeline_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;

  mutable std::mutex mu_;
  std::condition_variable shutdown_cv_;
  bool stopping_ = false;
  bool started_ = false;
  std::set<int> connection_fds_;
  std::vector<std::thread> connection_threads_;
  Counters counters_;
  std::deque<ConnectionSummary> finished_connections_;  ///< guarded by mu_
  bool summary_logged_ = false;  ///< guarded by mu_; print once
  Stopwatch uptime_;             ///< restarted by Start()
};

}  // namespace rpc
}  // namespace enld

#endif  // ENLD_RPC_SERVER_H_
