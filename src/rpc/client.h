#ifndef ENLD_RPC_CLIENT_H_
#define ENLD_RPC_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/retry.h"
#include "common/status.h"
#include "data/dataset.h"
#include "rpc/frame.h"
#include "rpc/message.h"

namespace enld {
namespace rpc {

struct ClientConfig {
  /// Numeric IPv4 address of the server.
  std::string host = "127.0.0.1";
  int port = 0;
  /// Wire deadline header attached to every request, in seconds; 0 sends
  /// no deadline (the server's configured budget applies). Overridable per
  /// call.
  double deadline_seconds = 0.0;
  /// Governs resends of wire-damaged requests (Unavailable responses,
  /// dropped connections). Protocol and service errors pass through
  /// without a retry.
  RetryPolicy retry;
};

/// Blocking client of the wire serving protocol (docs/SERVING.md): one
/// connection, one in-flight request at a time.
///
/// Detect is safe to retry because the server applies every wire fault —
/// and reports every wire error — *before* the request reaches the
/// pipeline: a resend can never make the platform process the same dataset
/// twice. The client therefore retries exactly the retryable class
/// (Unavailable: CRC-failure error frames, torn connections, overload
/// shedding) under the shared RetryPolicy machinery, reconnecting first
/// when the connection died.
class RpcClient {
 public:
  explicit RpcClient(ClientConfig config);
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Opens the connection (also done lazily by the first call).
  Status Connect();

  /// Sends one detection request and waits for its response.
  /// `deadline_seconds` < 0 uses the config's wire deadline; 0 sends none;
  /// positive overrides for this call. `request_id` is the caller's opaque
  /// trace tag (frame header v2): it is constant across retries — only the
  /// sequence re-increments per wire attempt — so every attempt of one
  /// logical request carries the same id, and the server echoes it in the
  /// response header and WireDetectResponse. 0 means untagged. The returned
  /// response's service_status may itself be an error (e.g.
  /// kDeadlineExceeded) — that is the server's verdict on the request,
  /// delivered intact; only wire-level failures surface as this function's
  /// own error status.
  StatusOr<WireDetectResponse> Detect(const Dataset& dataset,
                                      double deadline_seconds = -1.0,
                                      uint64_t request_id = 0);

  /// Fetches the server's live "enld-stats-v1" JSON document (kStats
  /// frame). Retries the same retryable class as Detect — a stats scrape is
  /// read-only, so resending is always safe.
  StatusOr<std::string> Stats();

  /// Asks the server to drain and stop; resolves when the ack arrives.
  Status SendShutdown();

  /// Closes the connection (reopened on demand by the next call).
  void Disconnect();

 private:
  /// One wire attempt: connect if needed, send, await the paired reply.
  StatusOr<WireDetectResponse> DetectOnce(const std::string& request_payload,
                                          double deadline_seconds,
                                          uint64_t request_id);
  /// One kStats wire attempt.
  StatusOr<std::string> StatsOnce();
  /// Reads frames until one echoes `sequence`; decodes kError bodies into
  /// their carried Status. Closes the connection on transport damage so
  /// the next attempt starts clean.
  StatusOr<Frame> AwaitReply(uint64_t sequence);

  ClientConfig config_;
  int fd_ = -1;
  uint64_t next_sequence_ = 0;
};

}  // namespace rpc
}  // namespace enld

#endif  // ENLD_RPC_CLIENT_H_
