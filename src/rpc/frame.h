#ifndef ENLD_RPC_FRAME_H_
#define ENLD_RPC_FRAME_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace enld {
namespace rpc {

/// Wire-level frame codec of the serving front-end (docs/SERVING.md).
///
/// Every message on an ENLD serving connection is one length-prefixed
/// binary frame, built from the same little-endian + CRC32 primitives as
/// the durable store (store/io.h), so the bytes are host-independent and
/// every kind of wire damage is caught by a checksum before any payload is
/// interpreted:
///
///   offset size field                         (frame version 2)
///   0      8    magic "ENLDRPC1"
///   8      4    byte-order tag 0x01020304
///   12     1    frame version (2)
///   13     1    frame type (FrameType)
///   14     8    sequence number (echoed in the response)
///   22     8    request id (client-set, echoed; 0 = unset)
///   30     8    deadline header, f64 seconds (0 = none; requests only)
///   38     8    payload byte length
///   46     4    CRC32 over bytes [0, 46)   (header CRC)
///   50     4    CRC32 over the payload     (payload CRC)
///   54     n    payload
///
/// Version 1 frames (PR 6 peers) carry no request-id field: sequence is
/// followed directly by the deadline at offset 22, the payload length at
/// 30, and the header CRC over [0, 38) at 38 (46-byte prefix total). The
/// decoder accepts both versions — the version byte selects the layout,
/// and the header CRC is still verified before the version is trusted, so
/// a flipped version bit reads as retryable wire damage, never as a
/// protocol violation. v1 frames decode with request_id = 0. EncodeFrame
/// always emits version 2; EncodeFrameV1 exists for compatibility tests
/// and legacy peers.
///
/// Error contract (mirrors the store's, split by retryability):
///
/// * `InvalidArgument` — protocol violations that resending cannot fix:
///   bad magic, foreign byte order, unknown version or frame type, a
///   declared payload length over kMaxFramePayloadBytes. The peer is
///   confused or hostile; the connection should be closed.
/// * `Unavailable` — wire damage that a resend repairs: a buffer shorter
///   than one header, a payload shorter than the header declares, or a
///   header/payload CRC mismatch. CRC mismatches additionally count the
///   "rpc/crc_failures" telemetry counter. Clients retry these under the
///   same RetryPolicy machinery the store uses for flaky disks.

inline constexpr char kFrameMagic[] = "ENLDRPC1";  ///< 8 bytes on the wire.
inline constexpr uint32_t kFrameByteOrderTag = 0x01020304;
inline constexpr uint8_t kFrameVersion = 2;
inline constexpr uint8_t kFrameVersionV1 = 1;
/// Byte length of the version-2 frame prefix (everything before the
/// payload). Version-1 prefixes are kFrameHeaderBytesV1 long; use
/// FrameHeaderBytesForVersion when handling a decoded frame generically.
inline constexpr size_t kFrameHeaderBytes = 54;
inline constexpr size_t kFrameHeaderBytesV1 = 46;

/// Prefix length implied by a (trusted) version byte. Unknown versions map
/// to the current layout; the decoder rejects them after the CRC check.
inline constexpr size_t FrameHeaderBytesForVersion(uint8_t version) {
  return version == kFrameVersionV1 ? kFrameHeaderBytesV1 : kFrameHeaderBytes;
}
/// Upper bound on a declared payload length; anything larger is rejected
/// as InvalidArgument before any allocation happens.
inline constexpr uint64_t kMaxFramePayloadBytes = 64ull << 20;  // 64 MiB

enum class FrameType : uint8_t {
  /// Payload: one Dataset in the store's shard byte format.
  kDetectRequest = 1,
  /// Payload: a WireDetectResponse body (message.h).
  kDetectResponse = 2,
  /// Payload: a Status body — wire/protocol-level failure (message.h).
  kError = 3,
  /// Empty payload: ask the server to drain and stop.
  kShutdown = 4,
  /// Empty payload: acknowledges kShutdown before the server stops.
  kShutdownAck = 5,
  /// Empty payload: ask the server for a live stats/health snapshot.
  /// Served off the request path — never enters the pipeline queue.
  kStats = 6,
  /// Payload: the deterministic "enld-stats-v1" JSON document
  /// (docs/OBSERVABILITY.md).
  kStatsResponse = 7,
};

/// True for the FrameType values this build understands.
bool IsKnownFrameType(uint8_t type);

struct FrameHeader {
  FrameType type = FrameType::kError;
  /// Caller-chosen request identity, echoed verbatim in the response so a
  /// client can pair frames without trusting arrival order.
  uint64_t sequence = 0;
  /// Client-set observability identity, echoed in the response and carried
  /// through pipeline, platform, and audit records (docs/OBSERVABILITY.md).
  /// Unlike `sequence` it stays constant across retries of one logical
  /// request. 0 = unset (and what every v1 frame decodes to).
  uint64_t request_id = 0;
  /// Per-request service-deadline header in seconds; 0 = no deadline
  /// requested (the server's configured default applies). Meaningful on
  /// request frames only.
  double deadline_seconds = 0.0;
  /// Declared payload byte length (filled by DecodeFrameHeader).
  uint64_t payload_size = 0;
  /// Declared payload CRC32 (filled by DecodeFrameHeader; EncodeFrame
  /// computes it from the payload).
  uint32_t payload_crc = 0;
  /// Wire version the frame was decoded from (filled by DecodeFrameHeader;
  /// ignored by EncodeFrame, which always writes kFrameVersion).
  uint8_t version = kFrameVersion;
};

struct Frame {
  FrameHeader header;
  std::string payload;
};

/// Serializes one complete frame (header CRC and payload CRC computed
/// here; `header.payload_size`/`payload_crc`/`version` inputs are ignored).
std::string EncodeFrame(const FrameHeader& header, const std::string& payload);

/// Serializes a version-1 frame (46-byte prefix, no request-id field).
/// `header.request_id` is dropped on the floor — exactly what a PR 6 peer
/// would send. Kept for compatibility tests and mixed-fleet rollouts.
std::string EncodeFrameV1(const FrameHeader& header,
                          const std::string& payload);

/// Validates and parses the frame prefix. `prefix` must hold at least
/// kFrameHeaderBytesV1 bytes — the version byte then selects the layout
/// (v2 prefixes need kFrameHeaderBytes). See the error contract above.
StatusOr<FrameHeader> DecodeFrameHeader(const std::string& prefix);

/// Checks `payload` against the declared length and CRC of `header`.
/// Unavailable on truncation or checksum mismatch.
Status VerifyFramePayload(const FrameHeader& header,
                          const std::string& payload);

/// Whole-buffer decode: header + payload verification in one call.
/// Exactly DecodeFrameHeader + VerifyFramePayload over a fully buffered
/// frame; trailing bytes beyond the declared payload are rejected as
/// InvalidArgument (frames are never concatenated inside one buffer here).
StatusOr<Frame> DecodeFrame(const std::string& buffer);

}  // namespace rpc
}  // namespace enld

#endif  // ENLD_RPC_FRAME_H_
