#ifndef ENLD_RPC_FRAME_H_
#define ENLD_RPC_FRAME_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace enld {
namespace rpc {

/// Wire-level frame codec of the serving front-end (docs/SERVING.md).
///
/// Every message on an ENLD serving connection is one length-prefixed
/// binary frame, built from the same little-endian + CRC32 primitives as
/// the durable store (store/io.h), so the bytes are host-independent and
/// every kind of wire damage is caught by a checksum before any payload is
/// interpreted:
///
///   offset size field
///   0      8    magic "ENLDRPC1"
///   8      4    byte-order tag 0x01020304
///   12     1    frame version (1)
///   13     1    frame type (FrameType)
///   14     8    sequence number (echoed in the response)
///   22     8    deadline header, f64 seconds (0 = none; requests only)
///   30     8    payload byte length
///   38     4    CRC32 over bytes [0, 38)   (header CRC)
///   42     4    CRC32 over the payload     (payload CRC)
///   46     n    payload
///
/// Error contract (mirrors the store's, split by retryability):
///
/// * `InvalidArgument` — protocol violations that resending cannot fix:
///   bad magic, foreign byte order, unknown version or frame type, a
///   declared payload length over kMaxFramePayloadBytes. The peer is
///   confused or hostile; the connection should be closed.
/// * `Unavailable` — wire damage that a resend repairs: a buffer shorter
///   than one header, a payload shorter than the header declares, or a
///   header/payload CRC mismatch. CRC mismatches additionally count the
///   "rpc/crc_failures" telemetry counter. Clients retry these under the
///   same RetryPolicy machinery the store uses for flaky disks.

inline constexpr char kFrameMagic[] = "ENLDRPC1";  ///< 8 bytes on the wire.
inline constexpr uint32_t kFrameByteOrderTag = 0x01020304;
inline constexpr uint8_t kFrameVersion = 1;
/// Fixed byte length of the frame prefix (everything before the payload).
inline constexpr size_t kFrameHeaderBytes = 46;
/// Upper bound on a declared payload length; anything larger is rejected
/// as InvalidArgument before any allocation happens.
inline constexpr uint64_t kMaxFramePayloadBytes = 64ull << 20;  // 64 MiB

enum class FrameType : uint8_t {
  /// Payload: one Dataset in the store's shard byte format.
  kDetectRequest = 1,
  /// Payload: a WireDetectResponse body (message.h).
  kDetectResponse = 2,
  /// Payload: a Status body — wire/protocol-level failure (message.h).
  kError = 3,
  /// Empty payload: ask the server to drain and stop.
  kShutdown = 4,
  /// Empty payload: acknowledges kShutdown before the server stops.
  kShutdownAck = 5,
};

/// True for the FrameType values this build understands.
bool IsKnownFrameType(uint8_t type);

struct FrameHeader {
  FrameType type = FrameType::kError;
  /// Caller-chosen request identity, echoed verbatim in the response so a
  /// client can pair frames without trusting arrival order.
  uint64_t sequence = 0;
  /// Per-request service-deadline header in seconds; 0 = no deadline
  /// requested (the server's configured default applies). Meaningful on
  /// request frames only.
  double deadline_seconds = 0.0;
  /// Declared payload byte length (filled by DecodeFrameHeader).
  uint64_t payload_size = 0;
  /// Declared payload CRC32 (filled by DecodeFrameHeader; EncodeFrame
  /// computes it from the payload).
  uint32_t payload_crc = 0;
};

struct Frame {
  FrameHeader header;
  std::string payload;
};

/// Serializes one complete frame (header CRC and payload CRC computed
/// here; `header.payload_size`/`payload_crc` inputs are ignored).
std::string EncodeFrame(const FrameHeader& header, const std::string& payload);

/// Validates and parses the fixed-size frame prefix. `prefix` must hold at
/// least kFrameHeaderBytes; see the error contract above.
StatusOr<FrameHeader> DecodeFrameHeader(const std::string& prefix);

/// Checks `payload` against the declared length and CRC of `header`.
/// Unavailable on truncation or checksum mismatch.
Status VerifyFramePayload(const FrameHeader& header,
                          const std::string& payload);

/// Whole-buffer decode: header + payload verification in one call.
/// Exactly DecodeFrameHeader + VerifyFramePayload over a fully buffered
/// frame; trailing bytes beyond the declared payload are rejected as
/// InvalidArgument (frames are never concatenated inside one buffer here).
StatusOr<Frame> DecodeFrame(const std::string& buffer);

}  // namespace rpc
}  // namespace enld

#endif  // ENLD_RPC_FRAME_H_
