#include "rpc/net.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/types.h>

#include "common/telemetry/metrics.h"

namespace enld {
namespace rpc {

namespace {

struct NetMetrics {
  telemetry::Counter* bytes_read;
  telemetry::Counter* bytes_written;

  static const NetMetrics& Get() {
    static const NetMetrics m = [] {
      auto& registry = telemetry::MetricsRegistry::Global();
      return NetMetrics{registry.GetCounter("rpc/bytes_read"),
                        registry.GetCounter("rpc/bytes_written")};
    }();
    return m;
  }
};

}  // namespace

Status ReadExact(int fd, size_t size, std::string* out) {
  out->resize(size);
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::recv(fd, out->data() + done, size - done, 0);
    if (n == 0) {
      out->resize(done);
      if (done == 0) return Status::NotFound("connection closed");
      return Status::Unavailable(
          "connection closed mid-read after " + std::to_string(done) +
          " of " + std::to_string(size) + " byte(s)");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      out->resize(done);
      return Status::Unavailable(std::string("socket read failed: ") +
                                 std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  NetMetrics::Get().bytes_read->Add(size);
  return Status::OK();
}

Status WriteAll(int fd, const std::string& data) {
  size_t done = 0;
  while (done < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + done, data.size() - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("socket write failed: ") +
                                 std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  NetMetrics::Get().bytes_written->Add(data.size());
  return Status::OK();
}

StatusOr<Frame> ReadFrameRaw(int fd) {
  // Read the short (v1-sized) prefix first, peek the version byte, then
  // pull in the rest of a longer prefix. A v1 frame whose version byte was
  // damaged into something longer desyncs the stream here; the CRC check
  // fails, the connection closes, and the client resends after reconnect —
  // the same recovery path as any other torn frame.
  std::string prefix;
  ENLD_RETURN_IF_ERROR(ReadExact(fd, kFrameHeaderBytesV1, &prefix));
  const size_t header_bytes =
      FrameHeaderBytesForVersion(static_cast<uint8_t>(prefix[12]));
  if (header_bytes > prefix.size()) {
    std::string rest;
    const Status read = ReadExact(fd, header_bytes - prefix.size(), &rest);
    if (!read.ok()) {
      if (read.code() == StatusCode::kNotFound) {
        return Status::Unavailable("connection closed mid-frame");
      }
      return read;
    }
    prefix.append(rest);
  }
  StatusOr<FrameHeader> header = DecodeFrameHeader(prefix);
  if (!header.ok()) return header.status();
  Frame frame;
  frame.header = *header;
  if (header->payload_size > 0) {
    const Status read = ReadExact(fd, header->payload_size, &frame.payload);
    if (!read.ok()) {
      // A close between header and payload is a torn frame, not a clean
      // end-of-stream: keep it in the retryable class.
      if (read.code() == StatusCode::kNotFound) {
        return Status::Unavailable("connection closed mid-frame");
      }
      return read;
    }
  }
  return frame;
}

StatusOr<Frame> ReadFrame(int fd) {
  StatusOr<Frame> frame = ReadFrameRaw(fd);
  if (!frame.ok()) return frame.status();
  ENLD_RETURN_IF_ERROR(VerifyFramePayload(frame->header, frame->payload));
  return frame;
}

Status WriteFrame(int fd, const FrameHeader& header,
                  const std::string& payload) {
  return WriteAll(fd, EncodeFrame(header, payload));
}

}  // namespace rpc
}  // namespace enld
