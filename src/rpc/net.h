#ifndef ENLD_RPC_NET_H_
#define ENLD_RPC_NET_H_

#include <string>

#include "common/status.h"
#include "rpc/frame.h"

namespace enld {
namespace rpc {

/// Blocking socket I/O shared by the server and the client. All traffic is
/// counted into the telemetry registry ("rpc/bytes_read",
/// "rpc/bytes_written"), mirroring the store's byte accounting.
///
/// Error contract: a peer that closes cleanly *between* frames surfaces as
/// NotFound ("connection closed") so the server's per-connection loop can
/// tell a finished client from a damaged one; every other transport
/// failure — mid-read EOF, ECONNRESET, EPIPE, short writes — is
/// Unavailable, the retryable class.

/// Reads exactly `size` bytes into `*out` (resized). NotFound on a clean
/// EOF before the first byte, Unavailable on mid-read EOF or a socket
/// error.
Status ReadExact(int fd, size_t size, std::string* out);

/// Writes all of `data` (EPIPE suppressed via MSG_NOSIGNAL; surfaces as
/// Unavailable instead of killing the process).
Status WriteAll(int fd, const std::string& data);

/// Reads one frame without verifying the payload checksum: fixed prefix,
/// header validation, then the declared payload bytes. The caller runs
/// VerifyFramePayload — the server injects wire faults between the raw
/// read and the verification, which is what keeps an injected corruption
/// indistinguishable from a real one.
StatusOr<Frame> ReadFrameRaw(int fd);

/// ReadFrameRaw + VerifyFramePayload.
StatusOr<Frame> ReadFrame(int fd);

/// Encodes and writes one complete frame.
Status WriteFrame(int fd, const FrameHeader& header,
                  const std::string& payload);

}  // namespace rpc
}  // namespace enld

#endif  // ENLD_RPC_NET_H_
