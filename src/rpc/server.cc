#include "rpc/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <thread>
#include <utility>

#include "common/faults.h"
#include "common/telemetry/metrics.h"
#include "rpc/message.h"
#include "rpc/net.h"
#include "rpc/stats.h"
#include "store/snapshot.h"

namespace enld {
namespace rpc {

namespace {

struct ServerMetrics {
  telemetry::Counter* connections;
  telemetry::Counter* requests;
  telemetry::Counter* responses;
  telemetry::Counter* wire_errors;
  telemetry::Counter* deadline_propagated;
  telemetry::Counter* stats_served;
  /// End-to-end serving latency per dispatched detect request: frame fully
  /// read → response write finished. Observed exactly once per dispatched
  /// request, so its count equals the rpc/requests counter.
  telemetry::Histogram* e2e_seconds;

  static const ServerMetrics& Get() {
    static const ServerMetrics m = [] {
      auto& registry = telemetry::MetricsRegistry::Global();
      return ServerMetrics{
          registry.GetCounter("rpc/connections"),
          registry.GetCounter("rpc/requests"),
          registry.GetCounter("rpc/responses"),
          registry.GetCounter("rpc/wire_errors"),
          registry.GetCounter("rpc/deadline_propagated"),
          registry.GetCounter("rpc/stats_served"),
          registry.GetHistogram("rpc/e2e_seconds",
                                telemetry::LogScaleBuckets())};
    }();
    return m;
  }
};

/// How long one rpc/delay fire stalls a request — long enough to be
/// visible in latency percentiles, short enough for chaos drills.
constexpr auto kInjectedDelay = std::chrono::milliseconds(20);

/// Applies the armed wire faults to a just-read request frame, before the
/// payload checksum is verified or the frame is interpreted. Returns false
/// when the connection must be closed without a reply (drop). Truncation
/// and corruption damage the buffered payload; the regular verification
/// path then reports them exactly as it would report real wire damage.
bool ApplyWireFaults(Frame* frame, bool* dropped) {
  *dropped = false;
  if (!faults::Enabled()) return true;
  if (faults::ShouldFail("rpc/delay")) {
    std::this_thread::sleep_for(kInjectedDelay);
  }
  if (faults::ShouldFail("rpc/drop_frame")) {
    *dropped = true;
    return false;
  }
  if (faults::ShouldFail("rpc/truncate_frame")) {
    frame->payload.resize(frame->payload.size() / 2);
  }
  if (faults::ShouldFail("rpc/corrupt_frame")) {
    if (!frame->payload.empty()) {
      frame->payload[frame->payload.size() / 2] ^= 0x40;
    } else {
      // Nothing to corrupt in the payload: damage the declared checksum
      // instead, so the fire is still observable as a CRC mismatch.
      frame->header.payload_crc ^= 0x1;
    }
  }
  return true;
}

}  // namespace

RpcServer::RpcServer(DataPlatform* platform, ServerConfig config)
    : platform_(platform), config_(std::move(config)) {}

RpcServer::~RpcServer() { Shutdown(); }

Status RpcServer::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) {
      return Status::FailedPrecondition("server already started");
    }
    started_ = true;
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Unavailable(std::string("socket() failed: ") +
                               std::strerror(errno));
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable,
               sizeof(enable));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad numeric IPv4 host '" + config_.host +
                                   "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const Status status = Status::Unavailable(
        "bind(" + config_.host + ":" + std::to_string(config_.port) +
        ") failed: " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, config_.listen_backlog) != 0) {
    const Status status = Status::Unavailable(
        std::string("listen() failed: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  pipeline_ = std::make_unique<RequestPipeline>(platform_, config_.pipeline);
  uptime_.Restart();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void RpcServer::AcceptLoop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        if (fd >= 0) ::close(fd);
        return;
      }
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // listen socket gone; Shutdown is tearing us down
      }
      if (connection_fds_.size() >= config_.max_connections) {
        // Front-door shedding: tell the client the server is saturated
        // (retryable) instead of letting it queue invisibly in the
        // backlog.
        ++counters_.connections_rejected;
        FrameHeader header;
        header.type = FrameType::kError;
        WriteFrame(fd, header,
                   EncodeErrorBody(Status::Unavailable(
                       "server at max_connections; retry later")));
        ::close(fd);
        continue;
      }
      ++counters_.connections_accepted;
      const uint64_t connection_id = counters_.connections_accepted;
      connection_fds_.insert(fd);
      connection_threads_.emplace_back(
          [this, fd, connection_id] { ServeConnection(fd, connection_id); });
    }
    ServerMetrics::Get().connections->Increment();
  }
}

Status RpcServer::SendError(int fd, uint64_t sequence, const Status& error,
                            ConnectionSummary* conn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.wire_errors;
  }
  ServerMetrics::Get().wire_errors->Increment();
  if (conn != nullptr) ++conn->errors;
  FrameHeader header;
  header.type = FrameType::kError;
  header.sequence = sequence;
  const std::string body = EncodeErrorBody(error);
  const Status written = WriteFrame(fd, header, body);
  if (written.ok() && conn != nullptr) {
    conn->bytes_written += kFrameHeaderBytes + body.size();
  }
  return written;
}

Status RpcServer::ServeDetect(int fd, const Frame& frame,
                              const Stopwatch& received,
                              ConnectionSummary* conn) {
  StatusOr<Dataset> dataset = DecodeDetectRequest(frame.payload);
  if (!dataset.ok()) {
    // The frame survived its CRC, so this is a malformed shard payload —
    // a client bug, not wire damage. Non-retryable error frame.
    return SendError(fd, frame.header.sequence, dataset.status(), conn);
  }

  SubmitOptions options;
  options.request_id = frame.header.request_id;
  if (frame.header.deadline_seconds > 0.0) {
    options.deadline_seconds = frame.header.deadline_seconds;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.deadline_propagated;
    }
    ServerMetrics::Get().deadline_propagated->Increment();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.requests;
  }
  ServerMetrics::Get().requests->Increment();
  ++conn->requests;

  // Closed loop per connection: block here until the dispatcher finishes
  // this request. The pipeline's bounded queue is what pushes back on a
  // flood of connections.
  std::future<PipelineResponse> future =
      pipeline_->Submit(std::move(*dataset), options);
  PipelineResponse response = future.get();

  WireDetectResponse wire;
  wire.server_sequence = response.sequence;
  wire.request_id = response.request_id;
  wire.service_status = response.result.status();
  if (response.result.ok()) {
    const DetectionResult& result = *response.result;
    wire.noisy_indices.assign(result.noisy_indices.begin(),
                              result.noisy_indices.end());
    wire.clean_indices.assign(result.clean_indices.begin(),
                              result.clean_indices.end());
    wire.recovered_labels.assign(result.recovered_labels.begin(),
                                 result.recovered_labels.end());
  }
  wire.clean_bank_after = response.clean_bank_after;
  wire.model_updates_after = response.stats_after.model_updates;
  wire.requests_after = response.stats_after.requests;
  wire.queue_seconds = response.queue_seconds;
  wire.process_seconds = response.process_seconds;

  FrameHeader header;
  header.type = FrameType::kDetectResponse;
  header.sequence = frame.header.sequence;
  header.request_id = frame.header.request_id;
  const std::string body = EncodeDetectResponse(wire);
  const Status written = WriteFrame(fd, header, body);
  if (written.ok()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.responses;
    }
    ServerMetrics::Get().responses->Increment();
    ++conn->responses;
    conn->bytes_written += kFrameHeaderBytes + body.size();
  }

  // End-to-end latency: frame fully read through the response write — the
  // injected rpc/delay stall, queue wait, detection and the write itself
  // all show up in the percentiles. Observed once per dispatched request,
  // write failure or not, so the histogram count matches rpc/requests.
  const double e2e = received.ElapsedSeconds();
  ServerMetrics::Get().e2e_seconds->Observe(e2e);
  if (config_.slow_request_seconds > 0.0 &&
      e2e > config_.slow_request_seconds) {
    std::fprintf(
        stderr,
        "[enld_server] slow request: id=%llu seq=%llu e2e=%.3fs "
        "queue=%.3fs admission=%.3fs detect=%.3fs status=%s\n",
        static_cast<unsigned long long>(response.request_id),
        static_cast<unsigned long long>(response.sequence), e2e,
        response.queue_seconds, response.admission_seconds,
        response.detect_seconds,
        StatusCodeName(response.result.status().code()));
  }
  return written;
}

Status RpcServer::ServeStats(int fd, const Frame& frame,
                             ConnectionSummary* conn) {
  const std::string body = BuildStatsJson();
  FrameHeader header;
  header.type = FrameType::kStatsResponse;
  header.sequence = frame.header.sequence;
  header.request_id = frame.header.request_id;
  const Status written = WriteFrame(fd, header, body);
  if (written.ok()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.stats_served;
    }
    ServerMetrics::Get().stats_served->Increment();
    conn->bytes_written += kFrameHeaderBytes + body.size();
  }
  return written;
}

std::string RpcServer::BuildStatsJson() const {
  StatsInfo info;
  info.uptime_seconds = uptime_.ElapsedSeconds();
  info.config_fingerprint = store::FingerprintConfig(platform_->config());
  {
    std::lock_guard<std::mutex> lock(mu_);
    info.connections_accepted = counters_.connections_accepted;
    info.connections_rejected = counters_.connections_rejected;
    info.connections_active = connection_fds_.size();
    info.requests = counters_.requests;
    info.responses = counters_.responses;
    info.wire_errors = counters_.wire_errors;
    info.dropped_frames = counters_.dropped_frames;
    info.deadline_propagated = counters_.deadline_propagated;
    info.stats_served = counters_.stats_served;
  }
  if (pipeline_ != nullptr) {
    info.pipeline = pipeline_->counters();
    info.queue_depth = pipeline_->queue_depth();
    info.recent_requests = pipeline_->RecentRequests();
  }
  info.metrics = telemetry::MetricsRegistry::Global().Snapshot();
  return RenderStatsJson(info);
}

void RpcServer::ServeConnection(int fd, uint64_t connection_id) {
  ConnectionSummary conn;
  conn.id = connection_id;
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) break;
    }
    StatusOr<Frame> read = ReadFrameRaw(fd);
    if (!read.ok()) {
      if (read.status().code() == StatusCode::kNotFound) break;  // clean EOF
      if (read.status().code() == StatusCode::kUnavailable) break;  // torn
      // Protocol violation (bad magic/version/oversized): tell the peer
      // why, then hang up — the stream cannot be resynchronized.
      SendError(fd, 0, read.status(), &conn);
      break;
    }
    Frame frame = std::move(*read);
    // The end-to-end clock starts the moment the frame is fully read, so
    // injected wire stalls and everything downstream count toward it.
    Stopwatch received;
    conn.bytes_read += FrameHeaderBytesForVersion(frame.header.version) +
                       frame.header.payload_size;

    bool dropped = false;
    if (!ApplyWireFaults(&frame, &dropped)) {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.dropped_frames;
      break;  // injected drop: close without a reply, like a dead link
    }

    const Status payload_ok =
        VerifyFramePayload(frame.header, frame.payload);
    if (!payload_ok.ok()) {
      // Wire damage (real or injected): retryable error frame; framing is
      // intact (we read the declared byte count), so keep the connection.
      if (!SendError(fd, frame.header.sequence, payload_ok, &conn).ok()) {
        break;
      }
      continue;
    }

    if (frame.header.type == FrameType::kShutdown) {
      FrameHeader ack;
      ack.type = FrameType::kShutdownAck;
      ack.sequence = frame.header.sequence;
      if (WriteFrame(fd, ack, "").ok()) {
        conn.bytes_written += kFrameHeaderBytes;
      }
      RequestShutdown();
      break;
    }
    if (frame.header.type == FrameType::kStats) {
      // Served inline on the handler thread, never submitted to the
      // pipeline: a stats scrape must not perturb (or wait behind) the
      // deterministic detection stream.
      if (!ServeStats(fd, frame, &conn).ok()) break;
      continue;
    }
    if (frame.header.type != FrameType::kDetectRequest) {
      if (!SendError(fd, frame.header.sequence,
                     Status::InvalidArgument(
                         "frame type not servable by this endpoint"),
                     &conn)
               .ok()) {
        break;
      }
      continue;
    }
    if (!ServeDetect(fd, frame, received, &conn).ok()) break;
  }

  ::close(fd);
  std::lock_guard<std::mutex> lock(mu_);
  connection_fds_.erase(fd);
  finished_connections_.push_back(conn);
  while (finished_connections_.size() > kMaxConnectionSummaries) {
    finished_connections_.pop_front();
  }
}

void RpcServer::WaitForShutdown() {
  std::unique_lock<std::mutex> lock(mu_);
  shutdown_cv_.wait(lock, [this] { return stopping_; });
}

void RpcServer::RequestShutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  stopping_ = true;
  shutdown_cv_.notify_all();
}

Status RpcServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return Status::OK();
    stopping_ = true;
    shutdown_cv_.notify_all();
  }

  if (listen_fd_ >= 0) {
    // Closing the listen socket unblocks accept(); the loop then sees
    // stopping_ and exits.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  {
    // Unblock handlers parked in recv(); they close their own fds.
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    handlers.swap(connection_threads_);
  }
  for (std::thread& handler : handlers) {
    if (handler.joinable()) handler.join();
  }

  if (config_.log_shutdown_summary) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!summary_logged_) {
      summary_logged_ = true;
      if (pipeline_ != nullptr) {
        const RequestPipeline::Counters pc = pipeline_->counters();
        std::fprintf(stderr,
                     "[enld_server] queue pressure: completed=%llu "
                     "hol_blocked=%llu deadline_drops=%llu\n",
                     static_cast<unsigned long long>(pc.completed),
                     static_cast<unsigned long long>(pc.hol_blocked),
                     static_cast<unsigned long long>(pc.queue_deadline_drops));
      }
      for (const ConnectionSummary& conn : finished_connections_) {
        std::fprintf(
            stderr,
            "[enld_server] conn %llu: requests=%llu responses=%llu "
            "errors=%llu bytes_read=%llu bytes_written=%llu\n",
            static_cast<unsigned long long>(conn.id),
            static_cast<unsigned long long>(conn.requests),
            static_cast<unsigned long long>(conn.responses),
            static_cast<unsigned long long>(conn.errors),
            static_cast<unsigned long long>(conn.bytes_read),
            static_cast<unsigned long long>(conn.bytes_written));
      }
    }
  }

  if (pipeline_ == nullptr) return Status::OK();
  return pipeline_->Shutdown();
}

RpcServer::Counters RpcServer::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::vector<RpcServer::ConnectionSummary> RpcServer::connection_summaries()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<ConnectionSummary>(finished_connections_.begin(),
                                        finished_connections_.end());
}

}  // namespace rpc
}  // namespace enld
