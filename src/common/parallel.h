#ifndef ENLD_COMMON_PARALLEL_H_
#define ENLD_COMMON_PARALLEL_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace enld {

/// Shared parallelism substrate: a lazily-initialized global thread pool
/// plus deterministic loop/reduction helpers built on it.
///
/// Thread count resolution (first use wins):
///   1. SetParallelThreads(n), if called before the first parallel call;
///   2. the ENLD_THREADS environment variable, if set to a positive integer;
///   3. std::thread::hardware_concurrency().
/// A count of 1 runs every loop inline on the caller's thread — the exact
/// legacy sequential path, with no pool, no tasks and no synchronization.
///
/// Determinism contract: chunk boundaries depend only on (begin, end,
/// grain), never on the thread count, and ParallelReduce combines partials
/// in chunk order on the calling thread. Call sites in this library only
/// parallelize work whose per-element floating-point operation order is
/// unchanged by chunking (row-independent kernels, per-query searches) or
/// whose accumulation is exact (integer counts), so results are
/// bit-identical at any thread count, including the sequential path.

/// Number of threads parallel loops may use (>= 1).
size_t ParallelThreadCount();

/// Reconfigures the global pool to `threads` workers; 0 restores the
/// ENLD_THREADS / hardware default. Tears down and rebuilds the pool, so it
/// must not race with in-flight parallel loops. Intended for benchmarks and
/// tests that sweep thread counts inside one process.
void SetParallelThreads(size_t threads);

/// Schedules one standalone task on the shared pool and returns without
/// waiting for it. With a sequential configuration (thread count 1) — or
/// when called from inside a pool worker, where enqueueing could deadlock
/// a saturated pool — the task runs inline before the call returns, which
/// is the exact sequential ordering. Callers that need completion or a
/// result wrap the task in a promise/future pair. Used by the request
/// pipeline (src/enld/pipeline.*) to overlap store IO with detection.
void ParallelEnqueue(std::function<void()> task);

/// Runs `fn(chunk_begin, chunk_end)` over consecutive chunks of [begin,
/// end), each at most `grain` long (grain 0 is treated as 1). Chunks may
/// execute concurrently and in any order; the call returns after every
/// chunk has finished. The first exception thrown by `fn` is rethrown on
/// the calling thread (remaining chunks are abandoned). Nested calls from
/// inside a chunk run inline — safe, sequential.
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn);

/// Deterministic chunked reduction: `map(chunk_begin, chunk_end)` produces
/// one partial per chunk, and `combine(acc, partial)` folds the partials
/// *in chunk order* on the calling thread. Because the chunk decomposition
/// depends only on `grain`, the result is identical at any thread count.
template <typename T, typename MapFn, typename CombineFn>
T ParallelReduce(size_t begin, size_t end, size_t grain, T init,
                 const MapFn& map, const CombineFn& combine) {
  if (end <= begin) return init;
  const size_t g = grain == 0 ? 1 : grain;
  const size_t chunks = (end - begin + g - 1) / g;
  std::vector<T> partials(chunks);
  ParallelFor(0, chunks, 1, [&](size_t cb, size_t ce) {
    for (size_t c = cb; c < ce; ++c) {
      const size_t lo = begin + c * g;
      const size_t hi = std::min(end, lo + g);
      partials[c] = map(lo, hi);
    }
  });
  T acc = std::move(init);
  for (size_t c = 0; c < chunks; ++c) {
    acc = combine(std::move(acc), std::move(partials[c]));
  }
  return acc;
}

}  // namespace enld

#endif  // ENLD_COMMON_PARALLEL_H_
