#include "common/logging.h"

#include <cstring>

namespace enld {

namespace {
LogLevel g_log_level = LogLevel::kInfo;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarning:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level = level; }
LogLevel GetLogLevel() { return g_log_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= g_log_level), level_(level) {
  if (enabled_) {
    stream_ << "[" << LevelTag(level_) << " " << Basename(file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) std::cerr << stream_.str() << std::endl;
}

}  // namespace internal
}  // namespace enld
