#include "common/logging.h"

#include <atomic>
#include <cstring>
#include <mutex>

namespace enld {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

/// Serializes stderr emission so lines from concurrent threads never
/// interleave mid-line.
std::mutex& EmitMutex() {
  static std::mutex* mu = new std::mutex();  // Leaked: outlives exit races.
  return *mu;
}

/// Small dense per-thread id for the [tid] log field (thread::id values
/// are opaque and unwieldy in logs).
int ThisThreadLogId() {
  static std::atomic<int> next{0};
  thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarning:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(level, std::memory_order_relaxed);
}
LogLevel GetLogLevel() {
  return g_log_level.load(std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()), level_(level) {
  if (enabled_) {
    stream_ << "[" << LevelTag(level_) << " t" << ThisThreadLogId() << " "
            << Basename(file) << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    const std::string line = stream_.str();
    std::lock_guard<std::mutex> lock(EmitMutex());
    std::cerr << line << std::flush;
  }
}

}  // namespace internal
}  // namespace enld
