#ifndef ENLD_COMMON_DISTANCE_H_
#define ENLD_COMMON_DISTANCE_H_

#include <cstddef>
#include <vector>

namespace enld {

/// Batched squared-distance kernels over SoA point blocks — the shared
/// substrate under KD-tree leaf scans and brute-force KNN
/// (docs/ARCHITECTURE.md, "Distance kernel layer").
///
/// Points are stored dimension-major ("structure of arrays"): a block of
/// `count` points of dimension `dim` occupies `dim * stride` floats with
/// coordinate d of point i at `data[d * stride + i]`, where
/// `stride = PaddedLaneCount(count)`. Padding lanes are zero-filled so the
/// kernels can always read full 8-wide groups.
///
/// Bit-identity contract: for every point, every backend accumulates
/// `(p[d] - q[d])^2` over dimensions in index order into a single fp32
/// accumulator — exactly what the scalar reference `SquaredDistance` does.
/// The AVX2 path uses separate multiply and add (no FMA), and this
/// translation unit is compiled with `-ffp-contract=off` so the compiler
/// cannot contract the generic path either. Results are therefore bitwise
/// identical across backends, builds, and machines.

/// Lane width of the batched kernels: candidates are processed in groups
/// of 8 (one AVX2 register of floats, or one 8-wide unrolled accumulator
/// bank in the generic fallback).
inline constexpr size_t kDistanceLanes = 8;

/// Rounds `n` up to a multiple of kDistanceLanes (0 stays 0).
inline size_t PaddedLaneCount(size_t n) {
  return (n + kDistanceLanes - 1) / kDistanceLanes * kDistanceLanes;
}

/// Scalar reference: squared L2 distance between `a` and `b`, accumulated
/// over dimensions in index order. The batched kernels compute exactly
/// this value (bitwise) for each point.
float SquaredDistance(const float* a, const float* b, size_t dim);

/// Packs `count` rows of a row-major `src` matrix (`src_cols` floats per
/// row; row r starts at `src + r * src_cols`) into an SoA block at `dst`:
/// `dst[d * stride + i] = src[rows[i] * src_cols + d]`. `dst` must hold
/// `src_cols * stride` floats; padding lanes `[count, stride)` of every
/// dimension are zero-filled. Requires `stride >= PaddedLaneCount(count)`.
void PackSoaBlock(const float* src, size_t src_cols, const size_t* rows,
                  size_t count, size_t stride, float* dst);

/// Squared distances from `query` (length `dim`) to all `count` points of
/// an SoA block: `out[i] = SquaredDistance(point_i, query, dim)` bitwise.
/// Dispatches to the best available backend (see SetDistanceKernelBackend).
void BatchedSquaredDistances(const float* soa, size_t stride, size_t count,
                             size_t dim, const float* query, float* out);

/// Name of the backend the next BatchedSquaredDistances call will use:
/// "avx2" or "generic".
const char* DistanceKernelBackend();

/// Forces a backend ("avx2", "generic", or "auto" to re-run detection,
/// honouring the ENLD_DISTANCE_KERNEL env var). Returns false — leaving
/// the current backend unchanged — if the request is unknown or the
/// backend is unavailable on this CPU. Test/bench seam; not thread-safe
/// against in-flight queries.
bool SetDistanceKernelBackend(const char* name);

}  // namespace enld

#endif  // ENLD_COMMON_DISTANCE_H_
