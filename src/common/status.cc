#include "common/status.h"

namespace enld {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace enld
