#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace enld {

void OnlineStats::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double TwoMeansThreshold(const std::vector<double>& values) {
  ENLD_CHECK(!values.empty());
  double lo = values[0];
  double hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (lo == hi) return lo;

  // Lloyd iterations on the line, initialized at the extremes.
  double c_low = lo;
  double c_high = hi;
  for (int iter = 0; iter < 50; ++iter) {
    double sum_low = 0.0, sum_high = 0.0;
    size_t n_low = 0, n_high = 0;
    const double boundary = 0.5 * (c_low + c_high);
    for (double v : values) {
      if (v <= boundary) {
        sum_low += v;
        ++n_low;
      } else {
        sum_high += v;
        ++n_high;
      }
    }
    if (n_low == 0 || n_high == 0) break;
    const double new_low = sum_low / static_cast<double>(n_low);
    const double new_high = sum_high / static_cast<double>(n_high);
    if (new_low == c_low && new_high == c_high) break;
    c_low = new_low;
    c_high = new_high;
  }
  return 0.5 * (c_low + c_high);
}

}  // namespace enld
