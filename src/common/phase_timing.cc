#include "common/phase_timing.h"

namespace enld {

PhaseTimings& PhaseTimings::Global() {
  static PhaseTimings* instance = new PhaseTimings();
  return *instance;
}

void PhaseTimings::Add(const std::string& phase, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : entries_) {
    if (entry.first == phase) {
      entry.second += seconds;
      return;
    }
  }
  entries_.emplace_back(phase, seconds);
}

void PhaseTimings::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

std::vector<std::pair<std::string, double>> PhaseTimings::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

}  // namespace enld
