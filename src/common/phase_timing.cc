#include "common/phase_timing.h"

namespace enld {

PhaseTimings& PhaseTimings::Global() {
  static PhaseTimings* instance = new PhaseTimings();
  return *instance;
}

void PhaseTimings::Add(const std::string& phase, double seconds) {
  telemetry::TraceTree::Global().AddFlat(phase, seconds);
}

void PhaseTimings::Reset() { telemetry::TraceTree::Global().Reset(); }

std::vector<std::pair<std::string, double>> PhaseTimings::Snapshot() const {
  return telemetry::TraceTree::Global().FlattenByName();
}

}  // namespace enld
