#ifndef ENLD_COMMON_FAULTS_H_
#define ENLD_COMMON_FAULTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace enld {
namespace faults {

/// Deterministic, site-keyed fault injection (docs/ROBUSTNESS.md).
///
/// Every IO or protocol step that can fail in production declares a named
/// *fault site* and calls `Check("store/write_file")` before doing the real
/// work. When the site is armed, Check consults a per-site deterministic Rng
/// (seeded from the site name and the global fault seed, never from wall
/// clock) and returns `Status::Unavailable` with the configured probability.
/// Unarmed sites cost one relaxed atomic load.
///
/// Sites are armed programmatically with `ArmSite` or via the environment:
///
///   ENLD_FAULTS=site:prob[:max_fires[:burst_limit[:skip_checks]]],...
///   ENLD_FAULTS_SEED=<uint64>        (optional, default 0)
///
/// e.g. `ENLD_FAULTS="store/read_file:0.05,store/rename:1.0:1:1:3"` fires
/// read faults at p=0.05 forever, and exactly one rename fault on the 4th
/// rename check. Fields:
///
///   prob         probability in [0,1] that an eligible check fires
///   max_fires    stop firing after this many faults (0 = unlimited)
///   burst_limit  max consecutive fires at one site before a forced success
///                (default 3); keeps retried operations convergent as long
///                as the retry policy allows more attempts than the burst
///   skip_checks  number of initial checks that never fire (default 0);
///                used to build crash-point matrices ("fail the k-th write")
///
/// Determinism: the per-site Rng sequence is fixed by (site, seed) and is
/// consumed once per check in program order at that site. Sites must
/// therefore only be checked from deterministic call sequences (e.g. inside
/// serial IO paths, or per-shard loops whose per-iteration check count is
/// fixed) for runs to be reproducible across thread counts.
struct FaultSiteStats {
  std::string site;
  double probability = 0.0;
  uint64_t checks = 0;      ///< times Check/ShouldFail consulted this site
  uint64_t fires = 0;       ///< times the site returned a fault
  uint64_t max_fires = 0;   ///< 0 = unlimited
  uint64_t burst_limit = 0; ///< 0 = unlimited consecutive fires
  uint64_t skip_checks = 0;
};

/// Parses an ENLD_FAULTS-grammar spec and arms every site in it, replacing
/// the current configuration. An empty spec clears all sites. Returns
/// InvalidArgument naming the bad entry on malformed input.
Status Configure(const std::string& spec, uint64_t seed = 0);

/// Arms (or re-arms) a single site programmatically.
void ArmSite(const std::string& site, double probability,
             uint64_t max_fires = 0, uint64_t burst_limit = 3,
             uint64_t skip_checks = 0);

/// Disarms all sites and resets their counters.
void Clear();

/// True if any site is armed. The fast path for instrumented code.
bool Enabled();

/// Consults the registry: returns true if an armed matching site decides
/// this check fires. Always returns false when nothing is armed.
bool ShouldFail(const std::string& site);

/// Convenience wrapper: Status::Unavailable("injected fault at <site>") if
/// ShouldFail(site), OK otherwise. Instrumented code does
/// `ENLD_RETURN_IF_ERROR(faults::Check("store/read_file"));`.
Status Check(const std::string& site);

/// Snapshot of every armed site's configuration and counters, sorted by
/// site name (deterministic for logging/tests).
std::vector<FaultSiteStats> Stats();

/// Total faults fired across all sites since the last Clear/Configure.
uint64_t TotalFires();

}  // namespace faults
}  // namespace enld

#endif  // ENLD_COMMON_FAULTS_H_
