#ifndef ENLD_COMMON_MATRIX_H_
#define ENLD_COMMON_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/check.h"

namespace enld {

/// Dense row-major float matrix. The single numeric container used across
/// the library: datasets store one sample per row, network layers store
/// weights, activations are (batch x units) matrices.
///
/// Deliberately minimal — the operations the NN and KNN substrates need and
/// nothing more. All shape violations are programming errors and abort via
/// ENLD_CHECK.
class Matrix {
 public:
  /// An empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// A rows x cols matrix initialized to `fill`.
  Matrix(size_t rows, size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& At(size_t r, size_t c) {
    ENLD_CHECK_LT(r, rows_);
    ENLD_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  float At(size_t r, size_t c) const {
    ENLD_CHECK_LT(r, rows_);
    ENLD_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  /// Unchecked element access for inner loops.
  float& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Pointer to the start of row `r`.
  float* Row(size_t r) {
    ENLD_CHECK_LT(r, rows_);
    return data_.data() + r * cols_;
  }
  const float* Row(size_t r) const {
    ENLD_CHECK_LT(r, rows_);
    return data_.data() + r * cols_;
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Copies row `r` into a new vector.
  std::vector<float> RowVector(size_t r) const;

  /// Returns a new matrix containing the selected rows, in order.
  Matrix SelectRows(const std::vector<size_t>& indices) const;

  /// Sets every element to `value`.
  void Fill(float value);

  /// Resizes to rows x cols, zero-filled (previous contents discarded).
  void Reset(size_t rows, size_t cols);

  /// this += other (same shape).
  void Add(const Matrix& other);

  /// this += scale * other (same shape).
  void AddScaled(const Matrix& other, float scale);

  /// this *= scale.
  void Scale(float scale);

  /// Transpose into a new matrix.
  Matrix Transposed() const;

  /// Frobenius norm.
  float FrobeniusNorm() const;

  /// Squared Euclidean distance between row `r` and the `cols()`-length
  /// vector `v`.
  float RowDistanceSquared(size_t r, const float* v) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<float> data_;
};

/// out = a * b. Shapes: (m x k) * (k x n) -> (m x n). `out` is resized.
void MatMul(const Matrix& a, const Matrix& b, Matrix* out);

/// out = a * b^T. Shapes: (m x k) * (n x k)^T -> (m x n). `out` is resized.
void MatMulBt(const Matrix& a, const Matrix& b, Matrix* out);

/// out = a^T * b. Shapes: (k x m)^T * (k x n) -> (m x n). `out` is resized.
void MatMulAt(const Matrix& a, const Matrix& b, Matrix* out);

/// Adds the `cols()`-length row vector `bias` to every row of `m`.
void AddRowBroadcast(Matrix* m, const std::vector<float>& bias);

/// Sums the rows of `m` into a `cols()`-length vector.
std::vector<float> ColumnSums(const Matrix& m);

/// Row-wise softmax, written to `out` (resized to match `logits`).
/// Numerically stable (max subtraction).
void SoftmaxRows(const Matrix& logits, Matrix* out);

/// Index of the maximum element of row `r`.
size_t ArgMaxRow(const Matrix& m, size_t r);

}  // namespace enld

#endif  // ENLD_COMMON_MATRIX_H_
