#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/check.h"

namespace enld {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  ENLD_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  ENLD_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::ToString(const std::string& title) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  if (!title.empty()) out << "== " << title << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << "  ";
      out << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  emit_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c > 0 ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TablePrinter::ToCsv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void TablePrinter::Print(const std::string& title) const {
  std::fputs(ToString(title).c_str(), stdout);
  std::fflush(stdout);
}

}  // namespace enld
