#include "common/distance.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define ENLD_DISTANCE_X86 1
#endif

namespace enld {

namespace {

using KernelFn = void (*)(const float* soa, size_t stride, size_t count,
                          size_t dim, const float* query, float* out);

/// Plain-C++ fallback: 8 independent fp32 accumulators, one per lane,
/// each summing (p[d] - q[d])^2 over dimensions in index order — the same
/// operation sequence per lane as the AVX2 path (and as SquaredDistance),
/// so results match bitwise. The TU is built with -ffp-contract=off so
/// the compiler cannot fuse the mul+add into FMA here but not there.
void GenericKernel(const float* soa, size_t stride, size_t count, size_t dim,
                   const float* query, float* out) {
  for (size_t base = 0; base < count; base += kDistanceLanes) {
    float acc[kDistanceLanes] = {0.0f};
    for (size_t d = 0; d < dim; ++d) {
      const float q = query[d];
      const float* row = soa + d * stride + base;
      for (size_t lane = 0; lane < kDistanceLanes; ++lane) {
        const float diff = row[lane] - q;
        acc[lane] += diff * diff;
      }
    }
    const size_t n = std::min(kDistanceLanes, count - base);
    for (size_t lane = 0; lane < n; ++lane) out[base + lane] = acc[lane];
  }
}

#ifdef ENLD_DISTANCE_X86
/// AVX2 path. Deliberately no FMA (separate _mm256_mul_ps + _mm256_add_ps):
/// each lane performs the identical fp32 sequence as GenericKernel, so the
/// two backends agree bitwise and runtime dispatch never changes results.
__attribute__((target("avx2"))) void Avx2Kernel(const float* soa,
                                                size_t stride, size_t count,
                                                size_t dim, const float* query,
                                                float* out) {
  for (size_t base = 0; base < count; base += kDistanceLanes) {
    __m256 acc = _mm256_setzero_ps();
    for (size_t d = 0; d < dim; ++d) {
      const __m256 q = _mm256_set1_ps(query[d]);
      const __m256 p = _mm256_loadu_ps(soa + d * stride + base);
      const __m256 diff = _mm256_sub_ps(p, q);
      acc = _mm256_add_ps(acc, _mm256_mul_ps(diff, diff));
    }
    const size_t n = std::min(kDistanceLanes, count - base);
    if (n == kDistanceLanes) {
      _mm256_storeu_ps(out + base, acc);
    } else {
      float lanes[kDistanceLanes];
      _mm256_storeu_ps(lanes, acc);
      std::memcpy(out + base, lanes, n * sizeof(float));
    }
  }
}

bool Avx2Available() { return __builtin_cpu_supports("avx2") != 0; }
#else
bool Avx2Available() { return false; }
#endif

struct Backend {
  KernelFn fn;
  const char* name;
};

Backend DetectBackend() {
  const char* env = std::getenv("ENLD_DISTANCE_KERNEL");
  if (env != nullptr && std::strcmp(env, "generic") == 0) {
    return {GenericKernel, "generic"};
  }
#ifdef ENLD_DISTANCE_X86
  if (Avx2Available()) return {Avx2Kernel, "avx2"};
#endif
  return {GenericKernel, "generic"};
}

Backend& ActiveBackend() {
  static Backend backend = DetectBackend();
  return backend;
}

}  // namespace

float SquaredDistance(const float* a, const float* b, size_t dim) {
  float dist = 0.0f;
  for (size_t d = 0; d < dim; ++d) {
    const float diff = a[d] - b[d];
    dist += diff * diff;
  }
  return dist;
}

void PackSoaBlock(const float* src, size_t src_cols, const size_t* rows,
                  size_t count, size_t stride, float* dst) {
  for (size_t d = 0; d < src_cols; ++d) {
    float* lane = dst + d * stride;
    for (size_t i = 0; i < count; ++i) lane[i] = src[rows[i] * src_cols + d];
    std::fill(lane + count, lane + stride, 0.0f);
  }
}

void BatchedSquaredDistances(const float* soa, size_t stride, size_t count,
                             size_t dim, const float* query, float* out) {
  if (count == 0) return;
  ActiveBackend().fn(soa, stride, count, dim, query, out);
}

const char* DistanceKernelBackend() { return ActiveBackend().name; }

bool SetDistanceKernelBackend(const char* name) {
  if (name == nullptr) return false;
  if (std::strcmp(name, "generic") == 0) {
    ActiveBackend() = {GenericKernel, "generic"};
    return true;
  }
  if (std::strcmp(name, "avx2") == 0) {
#ifdef ENLD_DISTANCE_X86
    if (Avx2Available()) {
      ActiveBackend() = {Avx2Kernel, "avx2"};
      return true;
    }
#endif
    return false;
  }
  if (std::strcmp(name, "auto") == 0) {
    ActiveBackend() = DetectBackend();
    return true;
  }
  return false;
}

}  // namespace enld
