#ifndef ENLD_COMMON_CHECK_H_
#define ENLD_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Invariant checks for programming errors. Unlike Status, a failed check
// aborts the process: it indicates a bug in the library or its caller, not a
// recoverable condition. The macros stay enabled in release builds because
// every experiment in this repository depends on the checked invariants.

#define ENLD_CHECK(cond)                                                 \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "ENLD_CHECK failed at %s:%d: %s\n", __FILE__, \
                   __LINE__, #cond);                                     \
      std::abort();                                                      \
    }                                                                    \
  } while (false)

#define ENLD_CHECK_OP(a, b, op)                                            \
  do {                                                                     \
    if (!((a)op(b))) {                                                     \
      std::fprintf(stderr,                                                 \
                   "ENLD_CHECK failed at %s:%d: %s %s %s (%.17g vs %.17g)" \
                   "\n",                                                   \
                   __FILE__, __LINE__, #a, #op, #b,                        \
                   static_cast<double>(a), static_cast<double>(b));        \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

#define ENLD_CHECK_EQ(a, b) ENLD_CHECK_OP(a, b, ==)
#define ENLD_CHECK_NE(a, b) ENLD_CHECK_OP(a, b, !=)
#define ENLD_CHECK_LT(a, b) ENLD_CHECK_OP(a, b, <)
#define ENLD_CHECK_LE(a, b) ENLD_CHECK_OP(a, b, <=)
#define ENLD_CHECK_GT(a, b) ENLD_CHECK_OP(a, b, >)
#define ENLD_CHECK_GE(a, b) ENLD_CHECK_OP(a, b, >=)

/// Aborts if `status_expr` evaluates to a non-OK Status.
#define ENLD_CHECK_OK(status_expr)                                        \
  do {                                                                    \
    ::enld::Status _enld_chk = (status_expr);                             \
    if (!_enld_chk.ok()) {                                                \
      std::fprintf(stderr, "ENLD_CHECK_OK failed at %s:%d: %s\n",         \
                   __FILE__, __LINE__, _enld_chk.ToString().c_str());     \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#endif  // ENLD_COMMON_CHECK_H_
