#ifndef ENLD_COMMON_LOGGING_H_
#define ENLD_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace enld {

/// Log severities, lowest to highest.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum severity; messages below it are dropped.
/// Defaults to kInfo. Both accessors are atomic, so the level can be
/// changed while pool workers are logging.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it to stderr on destruction. Each
/// line carries a [tid] field (small per-thread id), and the emit itself
/// is serialized so concurrent ENLD_LOG lines from pool workers never
/// interleave mid-line.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace enld

#define ENLD_LOG(severity)                                         \
  ::enld::internal::LogMessage(::enld::LogLevel::k##severity,      \
                               __FILE__, __LINE__)

#endif  // ENLD_COMMON_LOGGING_H_
