#ifndef ENLD_COMMON_TABLE_H_
#define ENLD_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace enld {

/// Builds aligned plain-text tables. All benchmark binaries print their
/// paper-figure reproductions through this so output is uniform and easy to
/// diff against EXPERIMENTS.md.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` decimal places.
  static std::string Num(double value, int precision = 4);

  /// Renders the table with a title line, header rule and aligned columns.
  std::string ToString(const std::string& title = "") const;

  /// Renders as comma-separated values (header row first).
  std::string ToCsv() const;

  /// Prints ToString(title) to stdout.
  void Print(const std::string& title = "") const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace enld

#endif  // ENLD_COMMON_TABLE_H_
