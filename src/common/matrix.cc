#include "common/matrix.h"

#include <algorithm>
#include <cmath>

namespace enld {

std::vector<float> Matrix::RowVector(size_t r) const {
  ENLD_CHECK_LT(r, rows_);
  const float* p = Row(r);
  return std::vector<float>(p, p + cols_);
}

Matrix Matrix::SelectRows(const std::vector<size_t>& indices) const {
  Matrix out(indices.size(), cols_);
  for (size_t i = 0; i < indices.size(); ++i) {
    const float* src = Row(indices[i]);
    std::copy(src, src + cols_, out.Row(i));
  }
  return out;
}

void Matrix::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::Reset(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0f);
}

void Matrix::Add(const Matrix& other) {
  ENLD_CHECK_EQ(rows_, other.rows_);
  ENLD_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::AddScaled(const Matrix& other, float scale) {
  ENLD_CHECK_EQ(rows_, other.rows_);
  ENLD_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * other.data_[i];
  }
}

void Matrix::Scale(float scale) {
  for (float& v : data_) v *= scale;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    const float* src = Row(r);
    for (size_t c = 0; c < cols_; ++c) out(c, r) = src[c];
  }
  return out;
}

float Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (float v : data_) sum += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(sum));
}

float Matrix::RowDistanceSquared(size_t r, const float* v) const {
  const float* p = Row(r);
  float sum = 0.0f;
  for (size_t c = 0; c < cols_; ++c) {
    const float d = p[c] - v[c];
    sum += d * d;
  }
  return sum;
}

void MatMul(const Matrix& a, const Matrix& b, Matrix* out) {
  ENLD_CHECK_EQ(a.cols(), b.rows());
  out->Reset(a.rows(), b.cols());
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  // i-k-j loop order: streams through b and out rows sequentially, which the
  // compiler auto-vectorizes well; adequate for the matrix sizes used here.
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a.Row(i);
    float* orow = out->Row(i);
    for (size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b.Row(kk);
      for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void MatMulBt(const Matrix& a, const Matrix& b, Matrix* out) {
  ENLD_CHECK_EQ(a.cols(), b.cols());
  out->Reset(a.rows(), b.rows());
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a.Row(i);
    float* orow = out->Row(i);
    for (size_t j = 0; j < n; ++j) {
      const float* brow = b.Row(j);
      float sum = 0.0f;
      for (size_t kk = 0; kk < k; ++kk) sum += arow[kk] * brow[kk];
      orow[j] = sum;
    }
  }
}

void MatMulAt(const Matrix& a, const Matrix& b, Matrix* out) {
  ENLD_CHECK_EQ(a.rows(), b.rows());
  out->Reset(a.cols(), b.cols());
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  for (size_t kk = 0; kk < k; ++kk) {
    const float* arow = a.Row(kk);
    const float* brow = b.Row(kk);
    for (size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* orow = out->Row(i);
      for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void AddRowBroadcast(Matrix* m, const std::vector<float>& bias) {
  ENLD_CHECK_EQ(m->cols(), bias.size());
  for (size_t r = 0; r < m->rows(); ++r) {
    float* row = m->Row(r);
    for (size_t c = 0; c < m->cols(); ++c) row[c] += bias[c];
  }
}

std::vector<float> ColumnSums(const Matrix& m) {
  std::vector<float> sums(m.cols(), 0.0f);
  for (size_t r = 0; r < m.rows(); ++r) {
    const float* row = m.Row(r);
    for (size_t c = 0; c < m.cols(); ++c) sums[c] += row[c];
  }
  return sums;
}

void SoftmaxRows(const Matrix& logits, Matrix* out) {
  out->Reset(logits.rows(), logits.cols());
  for (size_t r = 0; r < logits.rows(); ++r) {
    const float* in = logits.Row(r);
    float* o = out->Row(r);
    float maxv = in[0];
    for (size_t c = 1; c < logits.cols(); ++c) maxv = std::max(maxv, in[c]);
    float sum = 0.0f;
    for (size_t c = 0; c < logits.cols(); ++c) {
      o[c] = std::exp(in[c] - maxv);
      sum += o[c];
    }
    const float inv = 1.0f / sum;
    for (size_t c = 0; c < logits.cols(); ++c) o[c] *= inv;
  }
}

size_t ArgMaxRow(const Matrix& m, size_t r) {
  ENLD_CHECK_GT(m.cols(), 0u);
  const float* row = m.Row(r);
  size_t best = 0;
  for (size_t c = 1; c < m.cols(); ++c) {
    if (row[c] > row[best]) best = c;
  }
  return best;
}

}  // namespace enld
