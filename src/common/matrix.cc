#include "common/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"

namespace enld {

namespace {

/// Kernels below this many scalar ops run sequentially: the loop is cheaper
/// than waking the pool. Thresholds only pick the execution path — every
/// parallel kernel here computes each output element with the same
/// floating-point operation order as the sequential loop, so results are
/// bit-identical at any thread count.
constexpr size_t kMinParallelWork = size_t{1} << 15;

/// Target scalar ops per chunk when splitting a row range.
constexpr size_t kChunkWork = size_t{1} << 14;

size_t RowGrain(size_t row_cost) {
  if (row_cost == 0) row_cost = 1;
  const size_t grain = kChunkWork / row_cost;
  return grain == 0 ? 1 : grain;
}

}  // namespace

std::vector<float> Matrix::RowVector(size_t r) const {
  ENLD_CHECK_LT(r, rows_);
  const float* p = Row(r);
  return std::vector<float>(p, p + cols_);
}

Matrix Matrix::SelectRows(const std::vector<size_t>& indices) const {
  Matrix out(indices.size(), cols_);
  for (size_t i = 0; i < indices.size(); ++i) {
    const float* src = Row(indices[i]);
    std::copy(src, src + cols_, out.Row(i));
  }
  return out;
}

void Matrix::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::Reset(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0f);
}

void Matrix::Add(const Matrix& other) {
  ENLD_CHECK_EQ(rows_, other.rows_);
  ENLD_CHECK_EQ(cols_, other.cols_);
  if (data_.size() < kMinParallelWork) {
    for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
    return;
  }
  ParallelFor(0, data_.size(), kChunkWork, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) data_[i] += other.data_[i];
  });
}

void Matrix::AddScaled(const Matrix& other, float scale) {
  ENLD_CHECK_EQ(rows_, other.rows_);
  ENLD_CHECK_EQ(cols_, other.cols_);
  if (data_.size() < kMinParallelWork) {
    for (size_t i = 0; i < data_.size(); ++i) {
      data_[i] += scale * other.data_[i];
    }
    return;
  }
  ParallelFor(0, data_.size(), kChunkWork, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) data_[i] += scale * other.data_[i];
  });
}

void Matrix::Scale(float scale) {
  for (float& v : data_) v *= scale;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    const float* src = Row(r);
    for (size_t c = 0; c < cols_; ++c) out(c, r) = src[c];
  }
  return out;
}

float Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (float v : data_) sum += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(sum));
}

float Matrix::RowDistanceSquared(size_t r, const float* v) const {
  const float* p = Row(r);
  float sum = 0.0f;
  for (size_t c = 0; c < cols_; ++c) {
    const float d = p[c] - v[c];
    sum += d * d;
  }
  return sum;
}

void MatMul(const Matrix& a, const Matrix& b, Matrix* out) {
  ENLD_CHECK_EQ(a.cols(), b.rows());
  out->Reset(a.rows(), b.cols());
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  // i-k-j loop order: streams through b and out rows sequentially, which the
  // compiler auto-vectorizes well; adequate for the matrix sizes used here.
  // Output rows are independent, so the row range splits across threads
  // without changing any per-element accumulation order.
  auto rows = [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const float* arow = a.Row(i);
      float* orow = out->Row(i);
      for (size_t kk = 0; kk < k; ++kk) {
        // No zero-skip fast path: skipping av == 0 would drop 0 * inf and
        // 0 * nan contributions (silently un-poisoning non-finite inputs)
        // and puts a branch in the way of vectorizing the j loop.
        const float av = arow[kk];
        const float* brow = b.Row(kk);
        for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
      }
    }
  };
  if (m * k * n < kMinParallelWork) {
    rows(0, m);
  } else {
    ParallelFor(0, m, RowGrain(k * n), rows);
  }
}

void MatMulBt(const Matrix& a, const Matrix& b, Matrix* out) {
  ENLD_CHECK_EQ(a.cols(), b.cols());
  out->Reset(a.rows(), b.rows());
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  auto rows = [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const float* arow = a.Row(i);
      float* orow = out->Row(i);
      for (size_t j = 0; j < n; ++j) {
        const float* brow = b.Row(j);
        float sum = 0.0f;
        for (size_t kk = 0; kk < k; ++kk) sum += arow[kk] * brow[kk];
        orow[j] = sum;
      }
    }
  };
  if (m * k * n < kMinParallelWork) {
    rows(0, m);
  } else {
    ParallelFor(0, m, RowGrain(k * n), rows);
  }
}

void MatMulAt(const Matrix& a, const Matrix& b, Matrix* out) {
  ENLD_CHECK_EQ(a.rows(), b.rows());
  out->Reset(a.cols(), b.cols());
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  if (k * m * n < kMinParallelWork) {
    // kk-outer order streams a and b; best cache behaviour sequentially.
    for (size_t kk = 0; kk < k; ++kk) {
      const float* arow = a.Row(kk);
      const float* brow = b.Row(kk);
      for (size_t i = 0; i < m; ++i) {
        const float av = arow[i];
        if (av == 0.0f) continue;
        float* orow = out->Row(i);
        for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
      }
    }
    return;
  }
  // Parallel variant: output rows (columns of a) are independent when i is
  // the outer loop. For each (i, j) the kk accumulation order is unchanged,
  // so this is bit-identical to the sequential kk-outer order above.
  ParallelFor(0, m, RowGrain(k * n), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      float* orow = out->Row(i);
      for (size_t kk = 0; kk < k; ++kk) {
        const float av = a(kk, i);
        if (av == 0.0f) continue;
        const float* brow = b.Row(kk);
        for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
      }
    }
  });
}

void AddRowBroadcast(Matrix* m, const std::vector<float>& bias) {
  ENLD_CHECK_EQ(m->cols(), bias.size());
  for (size_t r = 0; r < m->rows(); ++r) {
    float* row = m->Row(r);
    for (size_t c = 0; c < m->cols(); ++c) row[c] += bias[c];
  }
}

std::vector<float> ColumnSums(const Matrix& m) {
  std::vector<float> sums(m.cols(), 0.0f);
  for (size_t r = 0; r < m.rows(); ++r) {
    const float* row = m.Row(r);
    for (size_t c = 0; c < m.cols(); ++c) sums[c] += row[c];
  }
  return sums;
}

void SoftmaxRows(const Matrix& logits, Matrix* out) {
  out->Reset(logits.rows(), logits.cols());
  auto rows = [&](size_t lo, size_t hi) {
    for (size_t r = lo; r < hi; ++r) {
      const float* in = logits.Row(r);
      float* o = out->Row(r);
      float maxv = in[0];
      for (size_t c = 1; c < logits.cols(); ++c) maxv = std::max(maxv, in[c]);
      float sum = 0.0f;
      for (size_t c = 0; c < logits.cols(); ++c) {
        o[c] = std::exp(in[c] - maxv);
        sum += o[c];
      }
      const float inv = 1.0f / sum;
      for (size_t c = 0; c < logits.cols(); ++c) o[c] *= inv;
    }
  };
  if (logits.size() < kMinParallelWork) {
    rows(0, logits.rows());
  } else {
    ParallelFor(0, logits.rows(), RowGrain(logits.cols() * 4), rows);
  }
}

size_t ArgMaxRow(const Matrix& m, size_t r) {
  ENLD_CHECK_GT(m.cols(), 0u);
  const float* row = m.Row(r);
  size_t best = 0;
  for (size_t c = 1; c < m.cols(); ++c) {
    if (row[c] > row[best]) best = c;
  }
  return best;
}

}  // namespace enld
