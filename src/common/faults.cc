#include "common/faults.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include "common/rng.h"
#include "common/telemetry/metrics.h"

namespace enld {
namespace faults {

namespace {

// FNV-1a over the site name; combined with the user seed so different
// sites armed at the same probability draw independent fire sequences.
uint64_t HashSite(const std::string& site) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : site) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

struct SiteState {
  double probability = 0.0;
  uint64_t max_fires = 0;
  uint64_t burst_limit = 3;
  uint64_t skip_checks = 0;
  uint64_t checks = 0;
  uint64_t fires = 0;
  uint64_t consecutive_fires = 0;
  Rng rng;

  SiteState() : rng(0) {}
};

struct Registry {
  std::mutex mu;
  std::map<std::string, SiteState> sites;
  uint64_t seed = 0;
  uint64_t total_fires = 0;
  bool env_loaded = false;
};

// `enabled` is the lock-free fast path consulted by every instrumented
// call site; the mutex only guards the (rare) armed path.
std::atomic<bool> g_enabled{false};
std::atomic<bool> g_env_checked{false};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

void ArmSiteLocked(Registry& reg, const std::string& site, double probability,
                   uint64_t max_fires, uint64_t burst_limit,
                   uint64_t skip_checks) {
  SiteState state;
  state.probability = probability;
  state.max_fires = max_fires;
  state.burst_limit = burst_limit;
  state.skip_checks = skip_checks;
  state.rng = Rng(HashSite(site) ^ reg.seed);
  reg.sites[site] = state;
}

Status ConfigureLocked(Registry& reg, const std::string& spec, uint64_t seed) {
  reg.sites.clear();
  reg.seed = seed;
  reg.total_fires = 0;

  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;

    // site:prob[:max_fires[:burst_limit[:skip_checks]]]
    std::vector<std::string> fields;
    size_t fpos = 0;
    while (true) {
      size_t fend = entry.find(':', fpos);
      if (fend == std::string::npos) {
        fields.push_back(entry.substr(fpos));
        break;
      }
      fields.push_back(entry.substr(fpos, fend - fpos));
      fpos = fend + 1;
    }
    if (fields.size() < 2 || fields.size() > 5 || fields[0].empty()) {
      return Status::InvalidArgument("malformed ENLD_FAULTS entry '" + entry +
                                     "' (want site:prob[:max_fires[:burst[:"
                                     "skip]]])");
    }
    char* parse_end = nullptr;
    double prob = std::strtod(fields[1].c_str(), &parse_end);
    if (parse_end == fields[1].c_str() || *parse_end != '\0' || prob < 0.0 ||
        prob > 1.0) {
      return Status::InvalidArgument("bad probability '" + fields[1] +
                                     "' in ENLD_FAULTS entry '" + entry +
                                     "' (want a value in [0,1])");
    }
    uint64_t nums[3] = {0, 3, 0};  // max_fires, burst_limit, skip_checks
    for (size_t i = 2; i < fields.size(); ++i) {
      parse_end = nullptr;
      unsigned long long v = std::strtoull(fields[i].c_str(), &parse_end, 10);
      if (parse_end == fields[i].c_str() || *parse_end != '\0') {
        return Status::InvalidArgument("bad integer '" + fields[i] +
                                       "' in ENLD_FAULTS entry '" + entry +
                                       "'");
      }
      nums[i - 2] = static_cast<uint64_t>(v);
    }
    ArmSiteLocked(reg, fields[0], prob, nums[0], nums[1], nums[2]);
  }

  g_enabled.store(!reg.sites.empty(), std::memory_order_release);
  return Status::OK();
}

// Reads ENLD_FAULTS / ENLD_FAULTS_SEED once, the first time any fault API
// is touched. A malformed env spec aborts loudly rather than silently
// running without the faults the operator asked for.
void MaybeLoadEnv() {
  if (g_env_checked.load(std::memory_order_acquire)) return;
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  if (reg.env_loaded) return;
  reg.env_loaded = true;
  const char* spec = std::getenv("ENLD_FAULTS");
  if (spec != nullptr && spec[0] != '\0') {
    uint64_t seed = 0;
    if (const char* seed_env = std::getenv("ENLD_FAULTS_SEED")) {
      seed = std::strtoull(seed_env, nullptr, 10);
    }
    Status status = ConfigureLocked(reg, spec, seed);
    if (!status.ok()) {
      std::fprintf(stderr, "ENLD_FAULTS: %s\n", status.ToString().c_str());
      std::abort();
    }
  }
  g_env_checked.store(true, std::memory_order_release);
}

void CountFire(const std::string& site) {
  telemetry::MetricsRegistry::Global().GetCounter("faults/fired")->Increment();
  telemetry::MetricsRegistry::Global().GetCounter("faults/" + site)
      ->Increment();
}

}  // namespace

Status Configure(const std::string& spec, uint64_t seed) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.env_loaded = true;  // programmatic config overrides the env
  g_env_checked.store(true, std::memory_order_release);
  return ConfigureLocked(reg, spec, seed);
}

void ArmSite(const std::string& site, double probability, uint64_t max_fires,
             uint64_t burst_limit, uint64_t skip_checks) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.env_loaded = true;
  g_env_checked.store(true, std::memory_order_release);
  ArmSiteLocked(reg, site, probability, max_fires, burst_limit, skip_checks);
  g_enabled.store(true, std::memory_order_release);
}

void Clear() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.env_loaded = true;
  g_env_checked.store(true, std::memory_order_release);
  reg.sites.clear();
  reg.total_fires = 0;
  g_enabled.store(false, std::memory_order_release);
}

bool Enabled() {
  MaybeLoadEnv();
  return g_enabled.load(std::memory_order_acquire);
}

bool ShouldFail(const std::string& site) {
  MaybeLoadEnv();
  if (!g_enabled.load(std::memory_order_acquire)) return false;
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.sites.find(site);
  if (it == reg.sites.end()) return false;
  SiteState& s = it->second;
  s.checks++;
  if (s.checks <= s.skip_checks) return false;
  if (s.max_fires > 0 && s.fires >= s.max_fires) return false;
  if (s.burst_limit > 0 && s.consecutive_fires >= s.burst_limit) {
    // Forced success: guarantees a retry loop with more attempts than the
    // burst limit always converges, which is what makes the chaos drill's
    // output byte-identical to a fault-free run.
    s.consecutive_fires = 0;
    s.rng.Uniform();  // keep the draw sequence aligned with check order
    return false;
  }
  if (s.rng.Uniform() >= s.probability) {
    s.consecutive_fires = 0;
    return false;
  }
  s.fires++;
  s.consecutive_fires++;
  reg.total_fires++;
  CountFire(site);
  return true;
}

Status Check(const std::string& site) {
  if (ShouldFail(site)) {
    return Status::Unavailable("injected fault at " + site);
  }
  return Status::OK();
}

std::vector<FaultSiteStats> Stats() {
  MaybeLoadEnv();
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<FaultSiteStats> out;
  out.reserve(reg.sites.size());
  for (const auto& [site, s] : reg.sites) {
    FaultSiteStats stats;
    stats.site = site;
    stats.probability = s.probability;
    stats.checks = s.checks;
    stats.fires = s.fires;
    stats.max_fires = s.max_fires;
    stats.burst_limit = s.burst_limit;
    stats.skip_checks = s.skip_checks;
    out.push_back(std::move(stats));
  }
  return out;
}

uint64_t TotalFires() {
  MaybeLoadEnv();
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  return reg.total_fires;
}

}  // namespace faults
}  // namespace enld
