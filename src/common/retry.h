#ifndef ENLD_COMMON_RETRY_H_
#define ENLD_COMMON_RETRY_H_

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <utility>

#include "common/status.h"

namespace enld {

class Rng;

/// Exponential backoff with deterministic jitter (docs/ROBUSTNESS.md).
///
/// Retries are only attempted on codes `IsRetryableStatus` accepts
/// (kUnavailable, and kInternal for flaky low-level IO); typed logical
/// errors — NotFound, InvalidArgument, FailedPrecondition — pass straight
/// through so callers still see them after transient noise is absorbed.
///
/// Jitter is drawn from a caller-supplied `Rng` (never from wall clock or
/// a global generator) so that a retried run is bit-for-bit reproducible.
/// With no Rng the backoff is the plain exponential schedule.
struct RetryPolicy {
  size_t max_attempts = 5;               ///< total tries, not re-tries
  double initial_backoff_seconds = 0.001;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 0.050;
  double jitter_fraction = 0.5;          ///< +/- fraction of the base delay
  double deadline_seconds = 0.0;         ///< 0 = no deadline; total budget

  /// Convenience: a policy that runs the operation exactly once.
  static RetryPolicy NoRetry() {
    RetryPolicy p;
    p.max_attempts = 1;
    return p;
  }
};

/// True for transient codes worth retrying: kUnavailable (injected faults,
/// flaky IO) and kInternal (short read/write errors from the OS).
bool IsRetryableStatus(const Status& status);

/// Runs `op` until it succeeds, returns a non-retryable status, or the
/// policy is exhausted (attempts or deadline). The returned status is the
/// last one `op` produced, with an attempt-count note appended when the
/// policy gave up on a retryable error. `what` names the operation in that
/// note. `rng` (optional) supplies deterministic jitter.
Status RetryWithBackoff(const RetryPolicy& policy, const std::string& what,
                        const std::function<Status()>& op,
                        Rng* rng = nullptr);

/// StatusOr-returning variant: stashes the value of the last successful
/// attempt and otherwise behaves exactly like RetryWithBackoff.
template <typename T>
StatusOr<T> RetryWithBackoffOr(const RetryPolicy& policy,
                               const std::string& what,
                               const std::function<StatusOr<T>()>& op,
                               Rng* rng = nullptr) {
  std::optional<T> value;
  Status status = RetryWithBackoff(
      policy, what,
      [&]() -> Status {
        StatusOr<T> result = op();
        if (!result.ok()) return result.status();
        value = std::move(result).value();
        return Status::OK();
      },
      rng);
  if (!status.ok()) return status;
  return std::move(*value);
}

}  // namespace enld

#endif  // ENLD_COMMON_RETRY_H_
