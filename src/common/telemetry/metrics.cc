#include "common/telemetry/metrics.h"

#include "common/check.h"

namespace enld {
namespace telemetry {

namespace {

/// Pins each thread to one shard; consecutive threads spread round-robin.
size_t ThisThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kCounterShards;
  return shard;
}

void AtomicAddDouble(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

void Counter::Add(uint64_t delta) {
  shards_[ThisThreadShard()].value.fetch_add(delta,
                                             std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      buckets_(upper_bounds_.size() + 1) {
  for (size_t i = 1; i < upper_bounds_.size(); ++i) {
    ENLD_CHECK_GT(upper_bounds_[i], upper_bounds_[i - 1]);
  }
}

void Histogram::Observe(double value) {
  if (!(value >= 0.0)) {  // Rejects NaN and negatives in one comparison.
    static Counter* invalid =
        MetricsRegistry::Global().GetCounter("telemetry/invalid_observations");
    invalid->Increment();
    return;
  }
  size_t bucket = upper_bounds_.size();  // Overflow unless a bound fits.
  for (size_t i = 0; i < upper_bounds_.size(); ++i) {
    if (value <= upper_bounds_[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].Increment();
  count_.Increment();
  AtomicAddDouble(sum_, value);
}

void Histogram::Reset() {
  for (Counter& b : buckets_) b.Reset();
  count_.Reset();
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> LogScaleBuckets(double min_bound, double max_bound,
                                    double factor) {
  ENLD_CHECK_GT(min_bound, 0.0);
  ENLD_CHECK_GT(max_bound, min_bound);
  ENLD_CHECK_GT(factor, 1.0);
  std::vector<double> bounds;
  for (double b = min_bound; b <= max_bound; b *= factor) {
    bounds.push_back(b);
  }
  if (bounds.back() < max_bound) bounds.push_back(max_bound);
  return bounds;
}

double HistogramQuantile(const HistogramSnapshot& snapshot, double q) {
  if (snapshot.count == 0 || snapshot.upper_bounds.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation, 1-based: ceil(q * count), at least 1.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(snapshot.count));
  if (static_cast<double>(rank) < q * static_cast<double>(snapshot.count)) {
    ++rank;
  }
  if (rank < 1) rank = 1;
  if (rank > snapshot.count) rank = snapshot.count;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < snapshot.bucket_counts.size(); ++i) {
    const uint64_t in_bucket = snapshot.bucket_counts[i];
    if (rank > cumulative + in_bucket) {
      cumulative += in_bucket;
      continue;
    }
    if (i >= snapshot.upper_bounds.size()) {
      // Overflow bucket: no upper edge to interpolate toward.
      return snapshot.upper_bounds.back();
    }
    const double lower = (i == 0) ? 0.0 : snapshot.upper_bounds[i - 1];
    const double upper = snapshot.upper_bounds[i];
    const double position =
        static_cast<double>(rank - cumulative) / static_cast<double>(in_bucket);
    return lower + position * (upper - lower);
  }
  return snapshot.upper_bounds.back();  // Inconsistent counts; stay bounded.
}

void Series::Append(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  values_.push_back(v);
}

std::vector<double> Series::Values() const {
  std::lock_guard<std::mutex> lock(mu_);
  return values_;
}

void Series::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  values_.clear();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* instance =
      new MetricsRegistry();  // Leaked: outlives exit races.
  return *instance;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return slot.get();
}

Series* MetricsRegistry::GetSeries(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = series_[name];
  if (slot == nullptr) slot = std::make_unique<Series>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  for (const auto& [name, counter] : counters_) {
    out.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    out.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.upper_bounds = histogram->upper_bounds();
    h.bucket_counts.resize(h.upper_bounds.size() + 1);
    for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
      h.bucket_counts[i] = histogram->BucketCount(i);
    }
    h.count = histogram->TotalCount();
    h.sum = histogram->Sum();
    out.histograms[name] = std::move(h);
  }
  for (const auto& [name, series] : series_) {
    out.series[name] = series->Values();
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
  for (auto& [name, series] : series_) series->Reset();
}

}  // namespace telemetry
}  // namespace enld
