#include "common/telemetry/report.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/parallel.h"

namespace enld {
namespace telemetry {

namespace {

/// Fixed shortest-round-trip formatting so identical values serialize
/// identically across runs and platforms with IEEE doubles.
std::string JsonNumber(double v) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void SpanToJson(const SpanSnapshot& span, std::ostringstream& out) {
  out << "{\"name\":" << JsonString(span.name) << ",\"count\":" << span.count
      << ",\"total_seconds\":" << JsonNumber(span.total_seconds);
  if (!span.stats.empty()) {
    out << ",\"stats\":{";
    bool first = true;
    for (const auto& [name, value] : span.stats) {
      if (!first) out << ",";
      first = false;
      out << JsonString(name) << ":" << JsonNumber(value);
    }
    out << "}";
  }
  if (!span.children.empty()) {
    out << ",\"children\":[";
    for (size_t i = 0; i < span.children.size(); ++i) {
      if (i > 0) out << ",";
      SpanToJson(span.children[i], out);
    }
    out << "]";
  }
  out << "}";
}

void SpanToCsv(const SpanSnapshot& span, const std::string& prefix,
               std::ostringstream& out) {
  const std::string path =
      prefix.empty() ? span.name : prefix + ">" + span.name;
  out << "span," << path << "," << JsonNumber(span.total_seconds) << "\n";
  out << "span_count," << path << "," << span.count << "\n";
  for (const auto& [name, value] : span.stats) {
    out << "span_stat," << path << "." << name << "," << JsonNumber(value)
        << "\n";
  }
  for (const SpanSnapshot& child : span.children) {
    SpanToCsv(child, path, out);
  }
}

Status WriteStringToFile(const std::string& content,
                         const std::string& path) {
  FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  const size_t written =
      std::fwrite(content.data(), 1, content.size(), file);
  std::fclose(file);
  if (written != content.size()) {
    return Status::Internal("short write: " + path);
  }
  return Status::OK();
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

RunReport CaptureRunReport() {
  RunReport report;
  report.threads = ParallelThreadCount();
  report.spans = TraceTree::Global().Snapshot();
  report.metrics = MetricsRegistry::Global().Snapshot();
  return report;
}

void ResetTelemetry() {
  TraceTree::Global().Reset();
  MetricsRegistry::Global().Reset();
}

std::string RunReportToJson(const RunReport& report) {
  std::ostringstream out;
  out << "{\"schema\":" << JsonString(report.schema)
      << ",\"method\":" << JsonString(report.method)
      << ",\"noise_rate\":" << JsonNumber(report.noise_rate)
      << ",\"threads\":" << report.threads;

  out << ",\"spans\":";
  SpanToJson(report.spans, out);

  out << ",\"metrics\":{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : report.metrics.counters) {
    if (!first) out << ",";
    first = false;
    out << JsonString(name) << ":" << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : report.metrics.gauges) {
    if (!first) out << ",";
    first = false;
    out << JsonString(name) << ":" << JsonNumber(value);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : report.metrics.histograms) {
    if (!first) out << ",";
    first = false;
    out << JsonString(name) << ":{\"upper_bounds\":[";
    for (size_t i = 0; i < h.upper_bounds.size(); ++i) {
      if (i > 0) out << ",";
      out << JsonNumber(h.upper_bounds[i]);
    }
    out << "],\"bucket_counts\":[";
    for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
      if (i > 0) out << ",";
      out << h.bucket_counts[i];
    }
    out << "],\"count\":" << h.count << ",\"sum\":" << JsonNumber(h.sum)
        << "}";
  }
  out << "},\"series\":{";
  first = true;
  for (const auto& [name, values] : report.metrics.series) {
    if (!first) out << ",";
    first = false;
    out << JsonString(name) << ":[";
    for (size_t i = 0; i < values.size(); ++i) {
      if (i > 0) out << ",";
      out << JsonNumber(values[i]);
    }
    out << "]";
  }
  out << "}}";

  out << ",\"quality\":{";
  first = true;
  for (const auto& [name, value] : report.quality) {
    if (!first) out << ",";
    first = false;
    out << JsonString(name) << ":" << JsonNumber(value);
  }
  out << "}}";
  return out.str();
}

std::string RunReportToCsv(const RunReport& report) {
  std::ostringstream out;
  out << "kind,name,value\n";
  out << "meta,schema," << report.schema << "\n";
  out << "meta,method," << report.method << "\n";
  out << "meta,noise_rate," << JsonNumber(report.noise_rate) << "\n";
  out << "meta,threads," << report.threads << "\n";
  SpanToCsv(report.spans, "", out);
  for (const auto& [name, value] : report.metrics.counters) {
    out << "counter," << name << "," << value << "\n";
  }
  for (const auto& [name, value] : report.metrics.gauges) {
    out << "gauge," << name << "," << JsonNumber(value) << "\n";
  }
  for (const auto& [name, h] : report.metrics.histograms) {
    for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
      out << "histogram," << name << "[le="
          << (i < h.upper_bounds.size() ? JsonNumber(h.upper_bounds[i])
                                        : std::string("inf"))
          << "]," << h.bucket_counts[i] << "\n";
    }
    out << "histogram," << name << "[count]," << h.count << "\n";
    out << "histogram," << name << "[sum]," << JsonNumber(h.sum) << "\n";
  }
  for (const auto& [name, values] : report.metrics.series) {
    for (size_t i = 0; i < values.size(); ++i) {
      out << "series," << name << "[" << i << "]," << JsonNumber(values[i])
          << "\n";
    }
  }
  for (const auto& [name, value] : report.quality) {
    out << "quality," << name << "," << JsonNumber(value) << "\n";
  }
  return out.str();
}

Status WriteRunReport(const RunReport& report, const std::string& path) {
  const std::string content =
      EndsWith(path, ".csv") ? RunReportToCsv(report)
                             : RunReportToJson(report);
  return WriteStringToFile(content, path);
}

std::string TelemetryOutPath(int argc, char** argv) {
  const char* prefix = "--telemetry_out=";
  const size_t prefix_len = std::strlen(prefix);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix, prefix_len) == 0) {
      return std::string(argv[i] + prefix_len);
    }
  }
  const char* env = std::getenv("ENLD_TELEMETRY");
  return env != nullptr ? std::string(env) : std::string();
}

bool IsCostMetric(const std::string& name) {
  if (name.rfind("pool/", 0) == 0) return true;
  return EndsWith(name, "_us") || EndsWith(name, "_seconds");
}

MetricsSnapshot DeterministicView(const MetricsSnapshot& snapshot) {
  MetricsSnapshot out;
  for (const auto& [name, value] : snapshot.counters) {
    if (!IsCostMetric(name)) out.counters[name] = value;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    if (!IsCostMetric(name)) out.gauges[name] = value;
  }
  for (const auto& [name, value] : snapshot.histograms) {
    if (!IsCostMetric(name)) out.histograms[name] = value;
  }
  for (const auto& [name, value] : snapshot.series) {
    if (!IsCostMetric(name)) out.series[name] = value;
  }
  return out;
}

}  // namespace telemetry
}  // namespace enld
