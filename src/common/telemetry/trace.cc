#include "common/telemetry/trace.h"

#include <algorithm>

namespace enld {
namespace telemetry {

struct TraceTree::Node {
  std::string name;
  uint64_t count = 0;
  double total_seconds = 0.0;
  std::map<std::string, double> stats;
  std::vector<std::unique_ptr<Node>> children;  // First-entry order.

  Node* FindOrCreateChild(const std::string& child_name) {
    for (auto& child : children) {
      if (child->name == child_name) return child.get();
    }
    children.push_back(std::make_unique<Node>());
    children.back()->name = child_name;
    return children.back().get();
  }
};

namespace {

/// Innermost active span of this thread; null outside any span (then new
/// spans attach to the root).
thread_local TraceTree::Node* tls_current_span = nullptr;

void SnapshotNode(const TraceTree::Node& node, SpanSnapshot* out) {
  out->name = node.name;
  out->count = node.count;
  out->total_seconds = node.total_seconds;
  out->stats = node.stats;
  out->children.resize(node.children.size());
  for (size_t i = 0; i < node.children.size(); ++i) {
    SnapshotNode(*node.children[i], &out->children[i]);
  }
}

void FlattenNode(const TraceTree::Node& node,
                 std::vector<std::pair<std::string, double>>* out) {
  for (const auto& child : node.children) {
    bool found = false;
    for (auto& entry : *out) {
      if (entry.first == child->name) {
        entry.second += child->total_seconds;
        found = true;
        break;
      }
    }
    if (!found) out->emplace_back(child->name, child->total_seconds);
    FlattenNode(*child, out);
  }
}

}  // namespace

const SpanSnapshot* SpanSnapshot::Child(const std::string& child_name) const {
  for (const SpanSnapshot& child : children) {
    if (child.name == child_name) return &child;
  }
  return nullptr;
}

size_t SpanSnapshot::Depth() const {
  size_t depth = 0;
  for (const SpanSnapshot& child : children) {
    depth = std::max(depth, child.Depth() + 1);
  }
  return depth;
}

TraceTree::TraceTree() : root_(std::make_unique<Node>()) {
  root_->name = "run";
}

TraceTree& TraceTree::Global() {
  static TraceTree* instance = new TraceTree();  // Leaked: outlives exit.
  return *instance;
}

SpanSnapshot TraceTree::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  SpanSnapshot out;
  SnapshotNode(*root_, &out);
  return out;
}

void TraceTree::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  root_ = std::make_unique<Node>();
  root_->name = "run";
}

void TraceTree::AddFlat(const std::string& name, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  Node* node = root_->FindOrCreateChild(name);
  node->count += 1;
  node->total_seconds += seconds;
}

std::vector<std::pair<std::string, double>> TraceTree::FlattenByName() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  FlattenNode(*root_, &out);
  return out;
}

ScopedSpan::ScopedSpan(std::string name) {
  TraceTree& tree = TraceTree::Global();
  std::lock_guard<std::mutex> lock(tree.mu_);
  TraceTree::Node* parent =
      tls_current_span != nullptr ? tls_current_span : tree.root_.get();
  TraceTree::Node* node = parent->FindOrCreateChild(name);
  node->count += 1;
  previous_ = tls_current_span;
  tls_current_span = node;
  node_ = node;
}

ScopedSpan::~ScopedSpan() {
  const double elapsed = watch_.ElapsedSeconds();
  TraceTree& tree = TraceTree::Global();
  std::lock_guard<std::mutex> lock(tree.mu_);
  static_cast<TraceTree::Node*>(node_)->total_seconds += elapsed;
  tls_current_span = static_cast<TraceTree::Node*>(previous_);
}

void ScopedSpan::AddStat(const std::string& stat, double delta) {
  TraceTree& tree = TraceTree::Global();
  std::lock_guard<std::mutex> lock(tree.mu_);
  static_cast<TraceTree::Node*>(node_)->stats[stat] += delta;
}

void CurrentSpanStat(const std::string& stat, double delta) {
  TraceTree& tree = TraceTree::Global();
  std::lock_guard<std::mutex> lock(tree.mu_);
  if (tls_current_span != nullptr) tls_current_span->stats[stat] += delta;
}

}  // namespace telemetry
}  // namespace enld
