#ifndef ENLD_COMMON_TELEMETRY_METRICS_H_
#define ENLD_COMMON_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace enld {
namespace telemetry {

/// Process-wide metrics layer: named counters, gauges, fixed-bucket
/// histograms and append-only series, owned by a global registry.
///
/// Recording is designed to be safe and cheap from inside ParallelFor
/// bodies: counters and histogram buckets are sharded std::atomic cells
/// (no lock on the record path), so concurrent increments never contend on
/// one cache line and integer accumulation is exact — metric *values* are
/// identical at any ENLD_THREADS setting as long as the recorded work is.
/// Gauges and series are meant for sequential regions (per-iteration
/// bookkeeping); series appends take a mutex and preserve append order.
///
/// Naming conventions (see docs/OBSERVABILITY.md): "area/metric" paths,
/// e.g. "detect/votes_cast". Cost/timing metrics — excluded from the
/// cross-thread determinism contract — live under the "pool/" prefix or
/// carry a "_us" / "_seconds" suffix.

/// Number of independent atomic shards per counter. A thread is pinned to
/// one shard for its lifetime; reads sum all shards.
inline constexpr size_t kCounterShards = 16;

/// Monotonic integer counter. Add/Increment are lock-free and exact under
/// concurrency; Value() is a racy-but-complete sum (exact once all writers
/// finished).
class Counter {
 public:
  void Add(uint64_t delta);
  void Increment() { Add(1); }
  uint64_t Value() const;
  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  Shard shards_[kCounterShards];
};

/// Last-write-wins double value. Set from sequential regions.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with <=-semantics: an observation lands in the
/// first bucket whose upper bound is >= the value, or in the implicit
/// overflow bucket. Bucket counts are Counters (exact under concurrency);
/// the running sum is a CAS-add double, exact when observations are
/// integer-valued or recorded sequentially.
///
/// Observations must be finite and >= 0 (latencies, sizes, counts). NaN
/// and negative values are dropped — they would otherwise land in an
/// arbitrary bucket — and counted under "telemetry/invalid_observations".
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double value);

  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  /// i in [0, upper_bounds().size()]; the last index is the overflow bucket.
  uint64_t BucketCount(size_t i) const { return buckets_[i].Value(); }
  uint64_t TotalCount() const { return count_.Value(); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::vector<double> upper_bounds_;       // Ascending.
  std::vector<Counter> buckets_;           // upper_bounds_.size() + 1.
  Counter count_;
  std::atomic<double> sum_{0.0};
};

/// Append-only sequence of doubles, e.g. one value per fine-grained
/// iteration. Appends are mutex-guarded and keep order, so series written
/// from sequential regions are deterministic.
class Series {
 public:
  void Append(double v);
  std::vector<double> Values() const;
  void Reset();

 private:
  mutable std::mutex mu_;
  std::vector<double> values_;
};

/// Value-type copy of one histogram, for reports.
struct HistogramSnapshot {
  std::vector<double> upper_bounds;
  std::vector<uint64_t> bucket_counts;  // upper_bounds.size() + 1 (overflow last).
  uint64_t count = 0;
  double sum = 0.0;
};

/// Geometric bucket ladder for latency histograms: min_bound, then
/// min_bound * factor^k while <= max_bound, with max_bound appended if the
/// ladder stops short of it. Bounds are strictly ascending; with the
/// defaults (10 us .. 128 s, factor 2) the ladder is 24 buckets wide.
std::vector<double> LogScaleBuckets(double min_bound = 1e-5,
                                    double max_bound = 128.0,
                                    double factor = 2.0);

/// Deterministic quantile estimate from bucket counts. q in [0, 1]; the
/// rank-ceil(q * count) observation's bucket is located and the value is
/// linearly interpolated inside it (bucket 0 interpolates from 0). The
/// overflow bucket reports the last finite bound — the histogram cannot
/// know how far past it the tail reached. Empty histogram -> 0.0. Depends
/// only on snapshot contents, so identical bucket counts give identical
/// quantiles on every run and thread count.
double HistogramQuantile(const HistogramSnapshot& snapshot, double q);

/// Value-type copy of the whole registry; map keys give deterministic
/// (sorted) serialization order.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  std::map<std::string, std::vector<double>> series;
};

/// Name -> metric map. Get* registers on first use and returns a stable
/// pointer (metrics are never erased); hot call sites should cache it:
///
///   static Counter* queries =
///       MetricsRegistry::Global().GetCounter("knn/queries");
///   queries->Increment();
///
/// Reset() zeroes every value but keeps registrations (and pointers) valid.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `upper_bounds` is consulted only on first registration of `name`.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> upper_bounds);
  Series* GetSeries(const std::string& name);

  MetricsSnapshot Snapshot() const;
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<Series>> series_;
};

}  // namespace telemetry
}  // namespace enld

#endif  // ENLD_COMMON_TELEMETRY_METRICS_H_
