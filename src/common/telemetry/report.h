#ifndef ENLD_COMMON_TELEMETRY_REPORT_H_
#define ENLD_COMMON_TELEMETRY_REPORT_H_

#include <map>
#include <string>

#include "common/status.h"
#include "common/telemetry/metrics.h"
#include "common/telemetry/trace.h"

namespace enld {
namespace telemetry {

/// Machine-readable capture of one run: the aggregated span tree, the full
/// metrics registry and a flat quality section (detection F1 etc., attached
/// by eval/). Serialized deterministically — map keys are sorted, span
/// children keep first-entry order, doubles use a fixed format — so two
/// runs with identical seeds diff cleanly (timings aside).
struct RunReport {
  std::string schema = "enld-telemetry-v1";
  std::string method;       // Detector name, when produced by RunDetector.
  double noise_rate = 0.0;
  size_t threads = 1;       // ParallelThreadCount() at capture time.
  SpanSnapshot spans;       // Root node "run".
  MetricsSnapshot metrics;
  std::map<std::string, double> quality;
};

/// Snapshots the global trace tree and metrics registry. Caller fills the
/// method / noise_rate / threads / quality fields.
RunReport CaptureRunReport();

/// Resets the global trace tree and metrics registry (start of a run).
void ResetTelemetry();

std::string RunReportToJson(const RunReport& report);

/// Flat `kind,name,value` rows: spans (path joined with '>'), counters,
/// gauges, histogram buckets and series points.
std::string RunReportToCsv(const RunReport& report);

/// Writes CSV when `path` ends in ".csv", JSON otherwise.
Status WriteRunReport(const RunReport& report, const std::string& path);

/// Resolves where to write a run report: the `--telemetry_out=PATH` flag
/// if present in argv, else the ENLD_TELEMETRY environment variable, else
/// "" (don't write).
std::string TelemetryOutPath(int argc, char** argv);

/// True for cost/timing metrics that are exempt from the cross-thread
/// determinism contract: names under "pool/" or ending in "_us" /
/// "_seconds". Everything else must be bit-identical at any ENLD_THREADS.
bool IsCostMetric(const std::string& name);

/// Copy of `snapshot` with cost metrics removed — the part that must be
/// identical across thread counts. Used by tests and the CI validator.
MetricsSnapshot DeterministicView(const MetricsSnapshot& snapshot);

}  // namespace telemetry
}  // namespace enld

#endif  // ENLD_COMMON_TELEMETRY_REPORT_H_
