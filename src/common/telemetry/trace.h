#ifndef ENLD_COMMON_TELEMETRY_TRACE_H_
#define ENLD_COMMON_TELEMETRY_TRACE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/stopwatch.h"

namespace enld {
namespace telemetry {

/// Hierarchical trace spans: `ENLD_TRACE_SPAN("detect/iteration")` opens a
/// span nested under the innermost span active on the current thread and
/// accumulates (entry count, total wall-clock seconds, named stats) into a
/// process-wide aggregated tree. Repeated entries of the same name under
/// the same parent merge into one node, so a loop that opens
/// "detect/iteration" t times yields one node with count == t.
///
/// Spans are coarse by design — one per pipeline phase, iteration or
/// training call, never per element — so enter/exit takes a global mutex
/// without measurable contention. Spans opened on a thread with no active
/// span (e.g. a pool worker) attach to the root. Code running inside
/// ParallelFor bodies should record into MetricsRegistry counters instead.
///
/// TraceTree::Reset() must not race active spans; the experiment runner
/// resets between detector runs, when no instrumented code is on the stack.

/// Value-type copy of one aggregated span node.
struct SpanSnapshot {
  std::string name;
  uint64_t count = 0;
  double total_seconds = 0.0;   // Includes time spent in children.
  std::map<std::string, double> stats;  // Per-span counters.
  std::vector<SpanSnapshot> children;   // First-entry order.

  /// Child with `name`, or nullptr. Convenience for benches/tests.
  const SpanSnapshot* Child(const std::string& child_name) const;
  /// Maximum depth below this node (0 for a leaf).
  size_t Depth() const;
};

class TraceTree {
 public:
  struct Node;  // Implementation detail, public for internal helpers.

  static TraceTree& Global();

  /// Copies the aggregated tree; the root is a synthetic node named "run"
  /// with zero time whose children are the top-level spans.
  SpanSnapshot Snapshot() const;

  /// Drops every node. Must not be called while spans are active.
  void Reset();

  /// Flat accumulation into a root-level span named `name` (count +1,
  /// total += seconds). Backs the PhaseTimings compatibility shim:
  /// find-or-create under the lock, so concurrent first use of one name
  /// cannot create duplicate entries.
  void AddFlat(const std::string& name, double seconds);

  /// Pre-order walk summing total_seconds by span *name* (not path), in
  /// first-seen order. This reproduces the flat PhaseTimings view: a span
  /// named "detect/sampling" contributes the same key whether it sits under
  /// "detect" or under "detect/iteration".
  std::vector<std::pair<std::string, double>> FlattenByName() const;

 private:
  friend class ScopedSpan;
  friend void CurrentSpanStat(const std::string& stat, double delta);
  TraceTree();

  mutable std::mutex mu_;
  std::unique_ptr<Node> root_;
};

/// RAII span handle; use via ENLD_TRACE_SPAN.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Adds `delta` to this span's named stat (e.g. items processed).
  void AddStat(const std::string& stat, double delta);

 private:
  void* node_;       // TraceTree::Node*
  void* previous_;   // The span this one suspended on this thread.
  Stopwatch watch_;
};

/// Adds to the innermost active span of the calling thread; drops the stat
/// when no span is active (e.g. un-instrumented call paths in tests).
void CurrentSpanStat(const std::string& stat, double delta);

}  // namespace telemetry
}  // namespace enld

#define ENLD_TELEMETRY_CONCAT_INNER(a, b) a##b
#define ENLD_TELEMETRY_CONCAT(a, b) ENLD_TELEMETRY_CONCAT_INNER(a, b)

/// Opens a span for the rest of the enclosing scope.
#define ENLD_TRACE_SPAN(name)                                       \
  ::enld::telemetry::ScopedSpan ENLD_TELEMETRY_CONCAT(enld_span_,   \
                                                      __LINE__)(name)

#endif  // ENLD_COMMON_TELEMETRY_TRACE_H_
