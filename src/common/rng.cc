#include "common/rng.h"

#include <cmath>

namespace enld {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::NextUInt64() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(NextUInt64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  ENLD_CHECK_LE(lo, hi);
  return lo + (hi - lo) * Uniform();
}

size_t Rng::UniformInt(size_t n) {
  ENLD_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t v;
  do {
    v = NextUInt64();
  } while (v >= limit);
  return static_cast<size_t>(v % n);
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1;
  do {
    u1 = Uniform();
  } while (u1 <= 0.0);
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

size_t Rng::Discrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    ENLD_CHECK_GE(w, 0.0);
    total += w;
  }
  ENLD_CHECK_GT(total, 0.0);
  double target = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  // Floating-point slack: fall back to the last positive weight.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

double Rng::BetaSymmetric(double alpha) {
  ENLD_CHECK_GT(alpha, 0.0);
  // Beta(a, a) via two Gamma(a, 1) draws (Marsaglia–Tsang with boost for
  // a < 1).
  auto gamma = [this](double a) {
    double boost = 1.0;
    if (a < 1.0) {
      // Gamma(a) = Gamma(a + 1) * U^{1/a}.
      boost = std::pow(std::max(Uniform(), 1e-300), 1.0 / a);
      a += 1.0;
    }
    const double d = a - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    while (true) {
      double x = Gaussian();
      double v = 1.0 + c * x;
      if (v <= 0.0) continue;
      v = v * v * v;
      const double u = Uniform();
      if (u < 1.0 - 0.0331 * x * x * x * x) return boost * d * v;
      if (u > 0.0 &&
          std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
        return boost * d * v;
      }
    }
  };
  const double g1 = gamma(alpha);
  const double g2 = gamma(alpha);
  const double denom = g1 + g2;
  if (denom <= 0.0) return 0.5;
  return g1 / denom;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t count) {
  ENLD_CHECK_LE(count, n);
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;
  // Partial Fisher–Yates: only the first `count` positions are needed.
  for (size_t i = 0; i < count; ++i) {
    size_t j = i + UniformInt(n - i);
    std::swap(indices[i], indices[j]);
  }
  indices.resize(count);
  return indices;
}

Rng Rng::Fork() { return Rng(NextUInt64() ^ 0xa5a5a5a55a5a5a5aULL); }

RngState Rng::GetState() const {
  RngState out;
  for (size_t i = 0; i < 4; ++i) out.state[i] = state_[i];
  out.cached_gaussian = cached_gaussian_;
  out.has_cached_gaussian = has_cached_gaussian_;
  return out;
}

void Rng::SetState(const RngState& state) {
  ENLD_CHECK((state.state[0] | state.state[1] | state.state[2] |
              state.state[3]) != 0);
  for (size_t i = 0; i < 4; ++i) state_[i] = state.state[i];
  cached_gaussian_ = state.cached_gaussian;
  has_cached_gaussian_ = state.has_cached_gaussian;
}

}  // namespace enld
