#ifndef ENLD_COMMON_STATUS_H_
#define ENLD_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace enld {

/// Error categories used across the library. Modeled after the RocksDB /
/// Arrow status idiom: recoverable failures are returned, never thrown.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kFailedPrecondition = 3,
  kOutOfRange = 4,
  kInternal = 5,
  /// A transient failure (injected fault, flaky IO) that is expected to
  /// succeed if retried; the only code RetryWithBackoff treats as
  /// always-retryable.
  kUnavailable = 6,
  /// The request exceeded its per-request deadline budget and was dropped
  /// so the stream behind it keeps flowing. Not retryable: the caller
  /// decides whether to resubmit with a larger budget.
  kDeadlineExceeded = 7,
};

/// Stable CamelCase name of a code ("OK", "InvalidArgument", ...) — used
/// in Status::ToString and in the serving stats JSON.
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value. Functions that can fail for
/// reasons the caller should handle return `Status` (or `StatusOr<T>`);
/// programming errors are caught with the `ENLD_CHECK` macros instead.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: k must be positive".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Returns early from the enclosing function if `expr` is a non-OK Status.
#define ENLD_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::enld::Status _enld_status = (expr);            \
    if (!_enld_status.ok()) return _enld_status;     \
  } while (false)

/// A value-or-error pair. Intentionally minimal: callers must test `ok()`
/// before dereferencing.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value or from an error status keeps call
  /// sites terse (`return value;` / `return Status::InvalidArgument(...)`).
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace enld

#endif  // ENLD_COMMON_STATUS_H_
