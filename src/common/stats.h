#ifndef ENLD_COMMON_STATS_H_
#define ENLD_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace enld {

/// Streaming mean / variance accumulator (Welford). Used wherever the
/// experiment harness reports a quantity averaged over incremental
/// datasets.
class OnlineStats {
 public:
  /// Adds one observation.
  void Add(double value);

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample (Bessel-corrected, n-1) variance; 0 for fewer than 2
  /// observations. The harness averages over small numbers of incremental
  /// datasets, where the population divisor would understate spread.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Splits 1-D values into a low and a high cluster with 1-D 2-means
/// (Lloyd's algorithm on the line) and returns the midpoint between the
/// final cluster centers. Used by the loss-tracking baselines to separate
/// small-loss (clean) from large-loss (noisy) samples without a noise-rate
/// prior. Returns the single value when all inputs are equal; requires a
/// non-empty input.
double TwoMeansThreshold(const std::vector<double>& values);

}  // namespace enld

#endif  // ENLD_COMMON_STATS_H_
