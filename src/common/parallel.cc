#include "common/parallel.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "common/telemetry/metrics.h"

namespace enld {

namespace {

/// Set inside pool workers so nested parallel loops degrade to inline
/// execution instead of deadlocking on a saturated pool.
thread_local bool tls_in_pool_worker = false;

/// Pool attribution metrics ("pool/*" is cost-only: task counts and times
/// depend on the thread count by nature and are exempt from the
/// determinism contract). Pointers cached once; recording is lock-free.
struct PoolMetrics {
  telemetry::Counter* tasks;
  telemetry::Counter* queue_wait_us;
  telemetry::Counter* execute_us;

  static const PoolMetrics& Get() {
    static const PoolMetrics m = [] {
      auto& registry = telemetry::MetricsRegistry::Global();
      return PoolMetrics{registry.GetCounter("pool/tasks"),
                         registry.GetCounter("pool/queue_wait_us"),
                         registry.GetCounter("pool/execute_us")};
    }();
    return m;
  }
};

class ThreadPool {
 public:
  explicit ThreadPool(size_t threads) {
    workers_.reserve(threads);
    for (size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  size_t size() const { return workers_.size(); }

  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back({std::move(task), Clock::now()});
    }
    cv_.notify_one();
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct QueuedTask {
    std::function<void()> fn;
    Clock::time_point enqueued;
  };

  static uint64_t ElapsedMicros(Clock::time_point since,
                                Clock::time_point until) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(until - since)
            .count());
  }

  void WorkerLoop() {
    tls_in_pool_worker = true;
    const PoolMetrics& metrics = PoolMetrics::Get();
    while (true) {
      QueuedTask task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (stop_ && queue_.empty()) return;
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      const Clock::time_point started = Clock::now();
      metrics.tasks->Increment();
      metrics.queue_wait_us->Add(ElapsedMicros(task.enqueued, started));
      task.fn();
      metrics.execute_us->Add(ElapsedMicros(started, Clock::now()));
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<QueuedTask> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

size_t DefaultThreadCount() {
  const char* env = std::getenv("ENLD_THREADS");
  if (env != nullptr) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

struct PoolState {
  std::mutex mu;
  std::unique_ptr<ThreadPool> pool;
  size_t requested = 0;  // 0 = resolve from ENLD_THREADS / hardware.
  bool initialized = false;
  size_t active_threads = 1;
};

PoolState& State() {
  static PoolState* state = new PoolState();  // Leaked: outlives exit races.
  return *state;
}

/// Returns the pool, creating it on first use. nullptr means "run inline"
/// (configured thread count <= 1).
ThreadPool* GetPool() {
  PoolState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (!state.initialized) {
    const size_t threads =
        state.requested > 0 ? state.requested : DefaultThreadCount();
    state.active_threads = threads < 1 ? 1 : threads;
    if (state.active_threads > 1) {
      state.pool = std::make_unique<ThreadPool>(state.active_threads);
    }
    state.initialized = true;
  }
  return state.pool.get();
}

/// Shared state of one ParallelFor call. Owns a copy of the loop body so a
/// straggler helper task dequeued after the loop already finished only
/// touches this (shared_ptr-kept) struct, never the caller's stack. Every
/// claimed chunk executes exactly once, even after an exception; the first
/// exception is stored and rethrown by the caller once all chunks finished.
struct LoopState {
  LoopState(size_t begin_in, size_t end_in, size_t grain_in, size_t chunks_in,
            std::function<void(size_t, size_t)> fn_in)
      : begin(begin_in),
        end(end_in),
        grain(grain_in),
        chunks(chunks_in),
        fn(std::move(fn_in)) {}

  const size_t begin;
  const size_t end;
  const size_t grain;
  const size_t chunks;
  const std::function<void(size_t, size_t)> fn;

  std::atomic<size_t> next{0};
  std::mutex mu;
  std::condition_variable done_cv;
  size_t completed = 0;
  std::exception_ptr error;

  /// Claims and runs chunks until none remain. Called by the submitting
  /// thread and by pool workers alike.
  void Drain() {
    while (true) {
      const size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      const size_t lo = begin + c * grain;
      const size_t hi = std::min(end, lo + grain);
      try {
        fn(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (error == nullptr) error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mu);
      if (++completed == chunks) done_cv.notify_all();
    }
  }
};

}  // namespace

size_t ParallelThreadCount() {
  GetPool();  // Force initialization.
  PoolState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.active_threads;
}

void SetParallelThreads(size_t threads) {
  PoolState& state = State();
  std::unique_ptr<ThreadPool> old;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    old = std::move(state.pool);  // Destroyed below, outside the lock.
    state.requested = threads;
    state.initialized = false;
    state.active_threads = 1;
  }
  old.reset();  // Joins the previous workers.
}

void ParallelEnqueue(std::function<void()> task) {
  ThreadPool* pool = GetPool();
  if (pool == nullptr || tls_in_pool_worker) {
    task();
    return;
  }
  pool->Submit(std::move(task));
}

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn) {
  if (end <= begin) return;
  const size_t g = grain == 0 ? 1 : grain;
  const size_t chunks = (end - begin + g - 1) / g;

  // Loop/chunk counts depend only on (begin, end, grain) and on how often
  // call sites run — both thread-count invariant — so these counters are
  // part of the deterministic metric set, unlike pool/*.
  static telemetry::Counter* loops =
      telemetry::MetricsRegistry::Global().GetCounter("parallel/loops");
  static telemetry::Counter* chunk_counter =
      telemetry::MetricsRegistry::Global().GetCounter("parallel/chunks");
  loops->Increment();
  chunk_counter->Add(chunks);

  ThreadPool* pool = GetPool();
  if (pool == nullptr || chunks <= 1 || tls_in_pool_worker) {
    // Sequential path: same chunk decomposition, caller's thread only.
    for (size_t c = 0; c < chunks; ++c) {
      const size_t lo = begin + c * g;
      const size_t hi = std::min(end, lo + g);
      fn(lo, hi);
    }
    return;
  }

  auto loop = std::make_shared<LoopState>(begin, end, g, chunks, fn);
  // The caller is one executor; enlist at most chunks-1 helpers.
  const size_t helpers = std::min(pool->size(), chunks - 1);
  for (size_t i = 0; i < helpers; ++i) {
    pool->Submit([loop] { loop->Drain(); });
  }
  loop->Drain();

  std::unique_lock<std::mutex> lock(loop->mu);
  loop->done_cv.wait(lock, [&] { return loop->completed == loop->chunks; });
  if (loop->error != nullptr) std::rethrow_exception(loop->error);
}

}  // namespace enld
