#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/rng.h"
#include "common/telemetry/metrics.h"

namespace enld {

bool IsRetryableStatus(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kInternal;
}

Status RetryWithBackoff(const RetryPolicy& policy, const std::string& what,
                        const std::function<Status()>& op, Rng* rng) {
  const size_t max_attempts = std::max<size_t>(1, policy.max_attempts);
  const auto start = std::chrono::steady_clock::now();
  double backoff = policy.initial_backoff_seconds;
  Status last = Status::OK();

  for (size_t attempt = 1; attempt <= max_attempts; ++attempt) {
    last = op();
    if (last.ok()) return last;
    if (!IsRetryableStatus(last)) return last;

    telemetry::MetricsRegistry::Global()
        .GetCounter("retry/transient_failures")
        ->Increment();
    if (attempt == max_attempts) break;

    double delay = std::min(backoff, policy.max_backoff_seconds);
    if (rng != nullptr && policy.jitter_fraction > 0.0) {
      // Deterministic jitter: one Uniform draw per sleep, so a retried run
      // replays the identical schedule from the same Rng state.
      double jitter = rng->Uniform(-policy.jitter_fraction,
                                   policy.jitter_fraction);
      delay = std::max(0.0, delay * (1.0 + jitter));
    }

    // The deadline gates the delay actually slept — capped and jittered —
    // not the raw exponential value, which can exceed max_backoff_seconds
    // by orders of magnitude and would abort retries the budget still
    // affords.
    if (policy.deadline_seconds > 0.0) {
      double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (elapsed + delay > policy.deadline_seconds) {
        return Status(last.code(),
                      last.message() + " (retry deadline of " +
                          std::to_string(policy.deadline_seconds) +
                          "s exceeded after " + std::to_string(attempt) +
                          " attempt(s) of " + what + ")");
      }
    }

    if (delay > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    }
    // Clamp the exponential schedule at its cap: an uncapped product
    // overflows to +inf on long retry loops, which would poison both the
    // deadline arithmetic and any later delay computation.
    backoff = std::min(backoff * policy.backoff_multiplier,
                       policy.max_backoff_seconds);
    telemetry::MetricsRegistry::Global().GetCounter("retry/backoffs")
        ->Increment();
  }

  telemetry::MetricsRegistry::Global().GetCounter("retry/exhausted")
      ->Increment();
  return Status(last.code(),
                last.message() + " (gave up after " +
                    std::to_string(max_attempts) + " attempt(s) of " + what +
                    ")");
}

}  // namespace enld
