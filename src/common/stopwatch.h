#ifndef ENLD_COMMON_STOPWATCH_H_
#define ENLD_COMMON_STOPWATCH_H_

#include <chrono>

namespace enld {

/// Wall-clock stopwatch used for the paper's setup-time / process-time
/// measurements (Fig. 8, Fig. 12).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace enld

#endif  // ENLD_COMMON_STOPWATCH_H_
