#ifndef ENLD_COMMON_RNG_H_
#define ENLD_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace enld {

/// The complete serializable state of an Rng stream. Capturing and later
/// restoring it resumes the stream at exactly the same point — the durable
/// store persists this so a restored service replays the identical random
/// sequence it would have drawn had it never stopped.
struct RngState {
  uint64_t state[4] = {0, 0, 0, 0};
  double cached_gaussian = 0.0;
  bool has_cached_gaussian = false;
};

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// splitmix64). Every stochastic component in the library draws from an
/// explicitly passed `Rng` so that experiments are reproducible bit-for-bit
/// from a single seed. Copyable; `Fork()` derives an independent stream.
class Rng {
 public:
  /// Seeds the generator. Two Rngs constructed with the same seed produce
  /// identical streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Returns the next raw 64-bit value.
  uint64_t NextUInt64();

  /// Returns a double uniformly distributed in [0, 1).
  double Uniform();

  /// Returns a double uniformly distributed in [lo, hi).
  double Uniform(double lo, double hi);

  /// Returns an integer uniformly distributed in [0, n). Requires n > 0.
  size_t UniformInt(size_t n);

  /// Returns a standard normal variate (Box–Muller, cached pair).
  double Gaussian();

  /// Returns a normal variate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Returns true with probability p.
  bool Bernoulli(double p);

  /// Draws an index in [0, weights.size()) with probability proportional to
  /// `weights[i]`. Requires at least one strictly positive weight.
  size_t Discrete(const std::vector<double>& weights);

  /// Draws a Beta(alpha, alpha) variate (used by mixup). Requires alpha > 0.
  double BetaSymmetric(double alpha);

  /// Fisher–Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = UniformInt(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Samples `count` distinct indices from [0, n) in random order.
  /// Requires count <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t count);

  /// Derives an independent generator (distinct stream) from this one.
  Rng Fork();

  /// Copies out the full stream state (xoshiro words + Box–Muller cache).
  RngState GetState() const;

  /// Restores a state captured with GetState. Requires a state with at
  /// least one non-zero xoshiro word (the all-zero state is degenerate).
  void SetState(const RngState& state);

 private:
  uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace enld

#endif  // ENLD_COMMON_RNG_H_
