#ifndef ENLD_COMMON_PHASE_TIMING_H_
#define ENLD_COMMON_PHASE_TIMING_H_

#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/stopwatch.h"

namespace enld {

/// Process-wide accumulator of per-phase wall-clock time, keyed by phase
/// name. Detection code records into it via ScopedPhaseTimer; the
/// experiment runner snapshots it per detector run so benches (Fig. 8) can
/// print where the time goes — setup vs fine-tune vs sampling vs voting —
/// and how the split reacts to ENLD_THREADS.
///
/// Recording is mutex-guarded (phases are coarse: a handful of entries,
/// recorded from sequential regions, never from inside parallel loops).
class PhaseTimings {
 public:
  static PhaseTimings& Global();

  /// Adds `seconds` to `phase`, creating the entry on first use.
  void Add(const std::string& phase, double seconds);

  /// Drops all entries.
  void Reset();

  /// Entries in first-recorded order.
  std::vector<std::pair<std::string, double>> Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, double>> entries_;
};

/// Adds the elapsed lifetime of this object to a phase on destruction.
class ScopedPhaseTimer {
 public:
  explicit ScopedPhaseTimer(std::string phase) : phase_(std::move(phase)) {}
  ~ScopedPhaseTimer() {
    PhaseTimings::Global().Add(phase_, watch_.ElapsedSeconds());
  }
  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  std::string phase_;
  Stopwatch watch_;
};

}  // namespace enld

#endif  // ENLD_COMMON_PHASE_TIMING_H_
