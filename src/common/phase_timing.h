#ifndef ENLD_COMMON_PHASE_TIMING_H_
#define ENLD_COMMON_PHASE_TIMING_H_

#include <string>
#include <utility>
#include <vector>

#include "common/telemetry/trace.h"

namespace enld {

/// Compatibility shim over the telemetry span tree
/// (common/telemetry/trace.h), which superseded the old flat mutex-guarded
/// map. Existing call sites keep working: Add/ScopedPhaseTimer record into
/// the global TraceTree, and Snapshot() returns the flat by-name view
/// (span totals summed by name across the tree, first-seen pre-order).
/// New code should use ENLD_TRACE_SPAN / telemetry::TraceTree directly —
/// spans nest, carry per-span stats, and serialize into run reports.
class PhaseTimings {
 public:
  static PhaseTimings& Global();

  /// Adds `seconds` to the root-level span `phase`. Find-or-create happens
  /// under the tree lock, keyed by name, so concurrent first use of one
  /// phase name yields exactly one entry.
  void Add(const std::string& phase, double seconds);

  /// Resets the whole span tree.
  void Reset();

  /// Flat (name, seconds) view of the span tree. Parent spans include the
  /// time of their children, like the wall-clock scopes they are.
  std::vector<std::pair<std::string, double>> Snapshot() const;
};

/// Adds the elapsed lifetime of this object to a phase on destruction.
/// Now a trace span: nests under any enclosing span and shows up in run
/// reports with its full hierarchy.
class ScopedPhaseTimer {
 public:
  explicit ScopedPhaseTimer(std::string phase) : span_(std::move(phase)) {}
  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  telemetry::ScopedSpan span_;
};

}  // namespace enld

#endif  // ENLD_COMMON_PHASE_TIMING_H_
