#include "eval/paper_setup.h"

namespace enld {

const char* PaperDatasetName(PaperDataset dataset) {
  switch (dataset) {
    case PaperDataset::kEmnist:
      return "EMNIST";
    case PaperDataset::kCifar100:
      return "CIFAR100";
    case PaperDataset::kTinyImagenet:
      return "Tiny-Imagenet";
  }
  return "unknown";
}

WorkloadConfig PaperWorkloadConfig(PaperDataset dataset, double noise_rate) {
  switch (dataset) {
    case PaperDataset::kEmnist:
      return EmnistWorkloadConfig(noise_rate);
    case PaperDataset::kCifar100:
      return Cifar100WorkloadConfig(noise_rate);
    case PaperDataset::kTinyImagenet:
      return TinyImagenetWorkloadConfig(noise_rate);
  }
  return Cifar100WorkloadConfig(noise_rate);
}

GeneralModelConfig PaperGeneralConfig(PaperDataset dataset) {
  GeneralModelConfig config;
  (void)dataset;  // One shared schedule, as in the paper.
  return config;
}

EnldConfig PaperEnldConfig(PaperDataset dataset) {
  EnldConfig config;
  config.general = PaperGeneralConfig(dataset);
  switch (dataset) {
    case PaperDataset::kEmnist:
      config.iterations = 5;  // Paper: t = 5 for EMNIST.
      config.finetune.sgd.learning_rate = 0.001;
      break;
    case PaperDataset::kCifar100:
      config.iterations = 5;  // Paper: t = 17, scaled down with the data.
      config.finetune.sgd.learning_rate = 0.002;
      break;
    case PaperDataset::kTinyImagenet:
      config.iterations = 8;  // Paper: t = 17, scaled down with the data.
      config.finetune.sgd.learning_rate = 0.002;
      break;
  }
  return config;
}

TopofilterConfig PaperTopofilterConfig(PaperDataset dataset) {
  TopofilterConfig config;
  (void)dataset;  // One shared configuration across tasks.
  return config;
}

detect::DetectorContext PaperDetectorContext(PaperDataset dataset) {
  detect::DetectorContext context;
  context.general = PaperGeneralConfig(dataset);
  context.enld = PaperEnldConfig(dataset);
  context.topofilter = PaperTopofilterConfig(dataset);
  return context;
}

}  // namespace enld
