#include "eval/reporting.h"

#include <cstdio>
#include <sstream>

namespace enld {

std::string MethodRunsToCsv(const std::vector<MethodRunResult>& runs) {
  std::ostringstream out;
  out << "method,noise,dataset,precision,recall,f1,process_seconds\n";
  char buffer[160];
  for (const MethodRunResult& run : runs) {
    std::snprintf(buffer, sizeof(buffer), "%s,%.3f,setup,,,,%.6f\n",
                  run.method.c_str(), run.noise_rate, run.setup_seconds);
    out << buffer;
    for (size_t i = 0; i < run.per_dataset.size(); ++i) {
      const DetectionMetrics& m = run.per_dataset[i];
      const double seconds =
          i < run.process_seconds.size() ? run.process_seconds[i] : 0.0;
      std::snprintf(buffer, sizeof(buffer),
                    "%s,%.3f,%zu,%.6f,%.6f,%.6f,%.6f\n", run.method.c_str(),
                    run.noise_rate, i, m.precision, m.recall, m.f1,
                    seconds);
      out << buffer;
    }
  }
  return out.str();
}

namespace {

Status WriteStringToFile(const std::string& content,
                         const std::string& path) {
  FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), file);
  std::fclose(file);
  if (written != content.size()) {
    return Status::Internal("short write: " + path);
  }
  return Status::OK();
}

}  // namespace

Status WriteMethodRunsCsv(const std::vector<MethodRunResult>& runs,
                          const std::string& path) {
  return WriteStringToFile(MethodRunsToCsv(runs), path);
}

std::string PhaseTimingsToCsv(const std::vector<MethodRunResult>& runs) {
  std::ostringstream out;
  out << "method,noise,phase,seconds\n";
  char buffer[192];
  for (const MethodRunResult& run : runs) {
    for (const auto& [phase, seconds] : run.phase_seconds) {
      std::snprintf(buffer, sizeof(buffer), "%s,%.3f,%s,%.6f\n",
                    run.method.c_str(), run.noise_rate, phase.c_str(),
                    seconds);
      out << buffer;
    }
  }
  return out.str();
}

Status WritePhaseTimingsCsv(const std::vector<MethodRunResult>& runs,
                            const std::string& path) {
  return WriteStringToFile(PhaseTimingsToCsv(runs), path);
}

Status WriteRunTelemetry(const MethodRunResult& run,
                         const std::string& path) {
  return telemetry::WriteRunReport(run.telemetry, path);
}

std::string TelemetrySummary(const telemetry::RunReport& report) {
  std::ostringstream out;
  char buffer[256];

  std::snprintf(buffer, sizeof(buffer),
                "telemetry: %zu counters, %zu histograms, %zu series; span "
                "tree depth %zu (dump with --telemetry_out=PATH or "
                "ENLD_TELEMETRY=PATH)\n",
                report.metrics.counters.size(),
                report.metrics.histograms.size(),
                report.metrics.series.size(), report.spans.Depth());
  out << buffer;

  out << "time split:";
  bool first = true;
  for (const telemetry::SpanSnapshot& top : report.spans.children) {
    std::snprintf(buffer, sizeof(buffer), "%s %s %.2fs",
                  first ? "" : " |", top.name.c_str(), top.total_seconds);
    out << buffer;
    first = false;
    // One level of detail under the heaviest phases.
    for (const telemetry::SpanSnapshot& child : top.children) {
      std::snprintf(buffer, sizeof(buffer), " (%s %.2fs)",
                    child.name.c_str(), child.total_seconds);
      out << buffer;
    }
  }
  out << "\n";

  const auto clean = report.metrics.series.find("detect/clean_size");
  out << "detect:";
  if (clean != report.metrics.series.end() && !clean->second.empty()) {
    std::snprintf(buffer, sizeof(buffer),
                  " clean-set %.0f -> %.0f over %zu iteration points;",
                  clean->second.front(), clean->second.back(),
                  clean->second.size());
    out << buffer;
  }
  const auto queries = report.metrics.counters.find("knn/queries");
  const auto steps = report.metrics.counters.find("train/steps");
  std::snprintf(
      buffer, sizeof(buffer), " %llu knn queries, %llu train steps\n",
      static_cast<unsigned long long>(
          queries != report.metrics.counters.end() ? queries->second : 0),
      static_cast<unsigned long long>(
          steps != report.metrics.counters.end() ? steps->second : 0));
  out << buffer;
  return out.str();
}

}  // namespace enld
