#include "eval/metrics.h"

#include <algorithm>

#include "common/check.h"

namespace enld {

DetectionMetrics EvaluateDetection(
    const Dataset& dataset, const std::vector<size_t>& detected_noisy) {
  std::vector<bool> truth(dataset.size(), false);
  size_t actual = 0;
  for (size_t pos : dataset.GroundTruthNoisyIndices()) {
    truth[pos] = true;
    ++actual;
  }

  size_t tp = 0;
  for (size_t pos : detected_noisy) {
    ENLD_CHECK_LT(pos, dataset.size());
    if (truth[pos]) ++tp;
  }

  DetectionMetrics m;
  m.true_positives = tp;
  m.detected = detected_noisy.size();
  m.actual_noisy = actual;
  if (m.detected == 0 && m.actual_noisy == 0) {
    m.precision = m.recall = m.f1 = 1.0;
    return m;
  }
  m.precision = m.detected == 0
                    ? 0.0
                    : static_cast<double>(tp) / static_cast<double>(m.detected);
  m.recall = m.actual_noisy == 0 ? 0.0
                                 : static_cast<double>(tp) /
                                       static_cast<double>(m.actual_noisy);
  m.f1 = (m.precision + m.recall) > 0.0
             ? 2.0 * m.precision * m.recall / (m.precision + m.recall)
             : 0.0;
  return m;
}

DetectionMetrics AverageMetrics(const std::vector<DetectionMetrics>& all) {
  DetectionMetrics avg;
  if (all.empty()) return avg;
  for (const DetectionMetrics& m : all) {
    avg.precision += m.precision;
    avg.recall += m.recall;
    avg.f1 += m.f1;
    avg.true_positives += m.true_positives;
    avg.detected += m.detected;
    avg.actual_noisy += m.actual_noisy;
  }
  const double n = static_cast<double>(all.size());
  avg.precision /= n;
  avg.recall /= n;
  avg.f1 /= n;
  return avg;
}

std::vector<DetectionMetrics> PerObservedClassMetrics(
    const Dataset& dataset, const std::vector<size_t>& detected_noisy) {
  const int classes = dataset.num_classes;
  std::vector<std::vector<size_t>> detected_by_class(classes);
  for (size_t pos : detected_noisy) {
    ENLD_CHECK_LT(pos, dataset.size());
    const int y = dataset.observed_labels[pos];
    if (y != kMissingLabel) detected_by_class[y].push_back(pos);
  }

  std::vector<DetectionMetrics> out(classes);
  for (int c = 0; c < classes; ++c) {
    const std::vector<size_t> members = dataset.IndicesWithObservedLabel(c);
    if (members.empty()) continue;
    const Dataset class_view = dataset.Subset(members);
    // Map global detected positions into the class view's positions.
    std::vector<size_t> local;
    for (size_t pos : detected_by_class[c]) {
      for (size_t j = 0; j < members.size(); ++j) {
        if (members[j] == pos) {
          local.push_back(j);
          break;
        }
      }
    }
    out[c] = EvaluateDetection(class_view, local);
  }
  return out;
}

double PseudoLabelAccuracy(const Dataset& dataset,
                           const std::vector<int>& recovered,
                           const std::vector<size_t>& missing_positions) {
  if (missing_positions.empty()) return 0.0;
  size_t correct = 0;
  for (size_t pos : missing_positions) {
    ENLD_CHECK_LT(pos, dataset.size());
    if (pos < recovered.size() &&
        recovered[pos] == dataset.true_labels[pos]) {
      ++correct;
    }
  }
  return static_cast<double>(correct) /
         static_cast<double>(missing_positions.size());
}

}  // namespace enld
