#ifndef ENLD_EVAL_REPORTING_H_
#define ENLD_EVAL_REPORTING_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "eval/experiment.h"

namespace enld {

/// Renders method runs as a CSV string with one row per (method, dataset):
/// `method,noise,dataset,precision,recall,f1,process_seconds` plus a
/// `setup` row per method. Used to feed external plotting.
std::string MethodRunsToCsv(const std::vector<MethodRunResult>& runs);

/// Writes MethodRunsToCsv(runs) to a file.
Status WriteMethodRunsCsv(const std::vector<MethodRunResult>& runs,
                          const std::string& path);

/// Renders the per-phase wall-clock breakdown captured by RunDetector as
/// `method,noise,phase,seconds` rows (one per recorded phase, in recording
/// order). Methods without phase instrumentation contribute no rows. Feeds
/// the Fig. 8 before/after timing comparison across ENLD_THREADS settings.
std::string PhaseTimingsToCsv(const std::vector<MethodRunResult>& runs);

/// Writes PhaseTimingsToCsv(runs) to a file.
Status WritePhaseTimingsCsv(const std::vector<MethodRunResult>& runs,
                            const std::string& path);

/// Writes `run.telemetry` — the machine-readable run report with span
/// tree, metrics and quality — to `path` (CSV when the path ends in
/// ".csv", JSON otherwise).
Status WriteRunTelemetry(const MethodRunResult& run, const std::string& path);

/// Three-line human summary of a telemetry report: registry size and span
/// depth, the wall-clock split across top-level spans, and the detector's
/// clean-set trajectory with work counters. Used by examples so the
/// instrumentation is visible without opening the JSON.
std::string TelemetrySummary(const telemetry::RunReport& report);

}  // namespace enld

#endif  // ENLD_EVAL_REPORTING_H_
