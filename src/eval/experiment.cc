#include "eval/experiment.h"

#include "common/check.h"
#include "common/phase_timing.h"
#include "common/stopwatch.h"
#include "common/telemetry/metrics.h"
#include "common/telemetry/trace.h"

namespace enld {

double MethodRunResult::average_process_seconds() const {
  if (process_seconds.empty()) return 0.0;
  double total = 0.0;
  for (double s : process_seconds) total += s;
  return total / static_cast<double>(process_seconds.size());
}

MethodRunResult RunDetector(NoisyLabelDetector* detector,
                            const Workload& workload, bool keep_raw) {
  ENLD_CHECK(detector != nullptr);
  MethodRunResult out;
  out.method = detector->name();
  out.method_display = detector->display_name();
  out.noise_rate = workload.config.noise_rate;

  // One telemetry scope per detector run: spans, counters and series
  // accumulated below describe exactly this run, and the capture at the
  // end becomes the machine-readable run report.
  telemetry::ResetTelemetry();
  auto& registry = telemetry::MetricsRegistry::Global();
  {
    // Every run's spans nest under one "detector/<key>" root labeled with
    // the canonical detector key, so a report always carries per-detector
    // span totals — even for detectors whose internals open no spans of
    // their own. Closed before the capture below (Reset/Snapshot must not
    // race an active span).
    telemetry::ScopedSpan run_span("detector/" + out.method);
    Stopwatch setup_timer;
    detector->Setup(workload.inventory);
    out.setup_seconds = setup_timer.ElapsedSeconds();

    telemetry::Series* f1_series = registry.GetSeries("eval/f1");
    telemetry::Series* precision_series =
        registry.GetSeries("eval/precision");
    telemetry::Series* recall_series = registry.GetSeries("eval/recall");
    out.process_seconds.reserve(workload.incremental.size());
    out.per_dataset.reserve(workload.incremental.size());
    for (const Dataset& incremental : workload.incremental) {
      Stopwatch process_timer;
      DetectionResult result = detector->Detect(incremental);
      out.process_seconds.push_back(process_timer.ElapsedSeconds());
      out.per_dataset.push_back(
          EvaluateDetection(incremental, result.noisy_indices));
      const DetectionMetrics& m = out.per_dataset.back();
      f1_series->Append(m.f1);
      precision_series->Append(m.precision);
      recall_series->Append(m.recall);
      if (keep_raw) out.raw_results.push_back(std::move(result));
    }
  }
  out.phase_seconds = PhaseTimings::Global().Snapshot();

  out.telemetry = telemetry::CaptureRunReport();
  out.telemetry.method = out.method;
  out.telemetry.noise_rate = out.noise_rate;
  const DetectionMetrics avg = out.average();
  out.telemetry.quality["precision_avg"] = avg.precision;
  out.telemetry.quality["recall_avg"] = avg.recall;
  out.telemetry.quality["f1_avg"] = avg.f1;
  out.telemetry.quality["datasets"] =
      static_cast<double>(workload.incremental.size());
  out.telemetry.quality["setup_seconds"] = out.setup_seconds;
  out.telemetry.quality["avg_process_seconds"] =
      out.average_process_seconds();
  return out;
}

}  // namespace enld
