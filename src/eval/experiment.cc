#include "eval/experiment.h"

#include "common/check.h"
#include "common/phase_timing.h"
#include "common/stopwatch.h"

namespace enld {

double MethodRunResult::average_process_seconds() const {
  if (process_seconds.empty()) return 0.0;
  double total = 0.0;
  for (double s : process_seconds) total += s;
  return total / static_cast<double>(process_seconds.size());
}

MethodRunResult RunDetector(NoisyLabelDetector* detector,
                            const Workload& workload, bool keep_raw) {
  ENLD_CHECK(detector != nullptr);
  MethodRunResult out;
  out.method = detector->name();
  out.noise_rate = workload.config.noise_rate;

  PhaseTimings::Global().Reset();
  Stopwatch setup_timer;
  detector->Setup(workload.inventory);
  out.setup_seconds = setup_timer.ElapsedSeconds();

  out.process_seconds.reserve(workload.incremental.size());
  out.per_dataset.reserve(workload.incremental.size());
  for (const Dataset& incremental : workload.incremental) {
    Stopwatch process_timer;
    DetectionResult result = detector->Detect(incremental);
    out.process_seconds.push_back(process_timer.ElapsedSeconds());
    out.per_dataset.push_back(
        EvaluateDetection(incremental, result.noisy_indices));
    if (keep_raw) out.raw_results.push_back(std::move(result));
  }
  out.phase_seconds = PhaseTimings::Global().Snapshot();
  return out;
}

}  // namespace enld
