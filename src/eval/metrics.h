#ifndef ENLD_EVAL_METRICS_H_
#define ENLD_EVAL_METRICS_H_

#include <vector>

#include "baselines/detector.h"
#include "data/dataset.h"

namespace enld {

/// Precision / recall / F1 of a detected noisy set against ground truth
/// (Section V-A3).
struct DetectionMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  /// Raw counts for diagnostics.
  size_t true_positives = 0;
  size_t detected = 0;
  size_t actual_noisy = 0;
};

/// Computes metrics of `detected_noisy` (positions into `dataset`) against
/// the dataset's ground-truth noisy set. Conventions: empty detected set
/// with an empty ground-truth set scores precision = recall = f1 = 1.
DetectionMetrics EvaluateDetection(const Dataset& dataset,
                                   const std::vector<size_t>& detected_noisy);

/// Element-wise mean of a list of metrics (macro average over incremental
/// datasets, the paper's reporting unit). Empty input -> zeros.
DetectionMetrics AverageMetrics(const std::vector<DetectionMetrics>& all);

/// Accuracy of recovered labels against true labels over the missing-label
/// positions (micro-averaged multi-class F1 == accuracy) — Section V-H.
/// `recovered` is parallel to the dataset (kMissingLabel = unrecovered,
/// which counts as wrong). Returns 0 when no positions are given.
double PseudoLabelAccuracy(const Dataset& dataset,
                           const std::vector<int>& recovered,
                           const std::vector<size_t>& missing_positions);

/// Detection metrics restricted to samples with a given *observed* label —
/// diagnostic for class-conditional failure modes. Entry c covers the
/// samples observed as class c; classes with no samples get zero metrics
/// with actual_noisy == detected == 0.
std::vector<DetectionMetrics> PerObservedClassMetrics(
    const Dataset& dataset, const std::vector<size_t>& detected_noisy);

}  // namespace enld

#endif  // ENLD_EVAL_METRICS_H_
