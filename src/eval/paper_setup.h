#ifndef ENLD_EVAL_PAPER_SETUP_H_
#define ENLD_EVAL_PAPER_SETUP_H_

#include "baselines/confident_learning.h"
#include "baselines/topofilter.h"
#include "data/workload.h"
#include "detect/registry.h"
#include "enld/config.h"

namespace enld {

/// The three evaluation tasks of Section V-A1 (our scaled synthetic
/// stand-ins; see DESIGN.md §2).
enum class PaperDataset {
  kEmnist,
  kCifar100,
  kTinyImagenet,
};

/// Display name matching the paper ("EMNIST", "CIFAR100", "Tiny-Imagenet").
const char* PaperDatasetName(PaperDataset dataset);

/// Workload (profile + stream shape + noise) for a task — the scaled
/// equivalent of the paper's data split of Section V-A1.
WorkloadConfig PaperWorkloadConfig(PaperDataset dataset, double noise_rate);

/// General-model initialization shared by Default / CL / ENLD (identical
/// setup cost, as in the paper's Fig. 8 accounting).
GeneralModelConfig PaperGeneralConfig(PaperDataset dataset);

/// Calibrated ENLD configuration per task. Follows the paper's
/// hyperparameters (k = 3, s = 5, warm-up 2) with iteration counts and
/// fine-tune learning rates scaled to this repository's substrate
/// (the paper uses t = 5 for EMNIST and t = 17 for CIFAR100 /
/// Tiny-ImageNet at full scale).
EnldConfig PaperEnldConfig(PaperDataset dataset);

/// Calibrated Topofilter configuration per task.
TopofilterConfig PaperTopofilterConfig(PaperDataset dataset);

/// The per-task base configurations bundled for the detector registry:
/// detect::CreateDetector(key, options, PaperDetectorContext(dataset))
/// builds any registered detector calibrated the way the paper benches run
/// it (a registry-driven MakeAllDetectors).
detect::DetectorContext PaperDetectorContext(PaperDataset dataset);

}  // namespace enld

#endif  // ENLD_EVAL_PAPER_SETUP_H_
