#ifndef ENLD_EVAL_EXPERIMENT_H_
#define ENLD_EVAL_EXPERIMENT_H_

#include <string>
#include <utility>
#include <vector>

#include "baselines/detector.h"
#include "common/telemetry/report.h"
#include "data/workload.h"
#include "eval/metrics.h"

namespace enld {

/// Everything measured while running one detector over one workload's
/// incremental stream: the paper's per-dataset metrics plus the
/// setup-time / process-time split of Fig. 8.
struct MethodRunResult {
  /// Canonical lowercase detector key (detector->name()); the value used
  /// in bench report columns and the telemetry method label.
  std::string method;
  /// Human-readable detector name (detector->display_name()), for
  /// figure-style headers.
  std::string method_display;
  double noise_rate = 0.0;
  double setup_seconds = 0.0;
  std::vector<double> process_seconds;     // Per incremental dataset.
  std::vector<DetectionMetrics> per_dataset;
  std::vector<DetectionResult> raw_results;  // Parallel to per_dataset.
  /// Flat wall-clock view per span name (setup/*, detect/* ...), derived
  /// from the telemetry span tree. Kept for callers that predate
  /// `telemetry`; parent spans include their children's time.
  std::vector<std::pair<std::string, double>> phase_seconds;
  /// Full telemetry capture of this run: hierarchical span tree, metrics
  /// registry, and quality section (detection P/R/F1 and the timing
  /// headline), serializable via telemetry::WriteRunReport.
  telemetry::RunReport telemetry;

  /// Macro average over incremental datasets.
  DetectionMetrics average() const { return AverageMetrics(per_dataset); }
  /// Mean per-dataset process time in seconds.
  double average_process_seconds() const;
};

/// Runs `detector` through Setup(inventory) and Detect() over every
/// incremental dataset of the workload, timing both phases and scoring
/// detections against ground truth. `keep_raw` retains each
/// DetectionResult (needed by trajectory figures; off by default to save
/// memory).
MethodRunResult RunDetector(NoisyLabelDetector* detector,
                            const Workload& workload, bool keep_raw = false);

}  // namespace enld

#endif  // ENLD_EVAL_EXPERIMENT_H_
