#ifndef ENLD_DATA_SYNTHETIC_H_
#define ENLD_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace enld {

/// Parameters of the synthetic Gaussian-mixture dataset generator that
/// stands in for the paper's image datasets (see DESIGN.md §2).
///
/// Each class c gets a prototype vector; prototypes of adjacent classes
/// (c, c+1) are correlated with coefficient `adjacent_correlation`, so the
/// pair-asymmetric noise used in the paper corrupts labels between classes
/// that are also close in feature space — the realistic hard case. Each
/// class additionally splits into `subclusters_per_class` modes so that
/// graph-based filtering (Topofilter) sees multi-modal class manifolds.
struct SyntheticConfig {
  /// Human-readable name, e.g. "emnist-sim".
  std::string name = "synthetic";
  int num_classes = 10;
  size_t samples_per_class = 100;
  size_t feature_dim = 32;
  /// Norm of class prototypes; larger = easier task.
  double class_separation = 6.0;
  /// Correlation between the prototypes of classes c and c+1 in [0, 1).
  double adjacent_correlation = 0.35;
  /// Number of Gaussian modes per class (>= 1).
  int subclusters_per_class = 2;
  /// Distance of each mode center from the class prototype.
  double subcluster_spread = 1.5;
  /// Within-mode standard deviation per dimension.
  double sample_stddev = 1.0;
  /// Norm of the random per-mode offset applied to *incremental* data —
  /// the paper's "changing data distribution" of newly arriving datasets
  /// (Section I): arriving samples come from drifted variants of the
  /// inventory's modes. 0 disables the shift.
  double incremental_domain_shift = 0.0;
  uint64_t seed = 7;
};

/// The latent geometry samples are drawn from: one prototype per class and
/// `subclusters_per_class` mode centers around it.
struct ClassGeometry {
  /// class -> prototype vector (length = feature_dim).
  std::vector<std::vector<double>> prototypes;
  /// class -> mode -> center vector.
  std::vector<std::vector<std::vector<double>>> centers;

  int num_classes() const { return static_cast<int>(prototypes.size()); }
  size_t dim() const {
    return prototypes.empty() ? 0 : prototypes.front().size();
  }
};

/// Builds the class geometry for `config` (deterministic given
/// config.seed-derived `rng`).
ClassGeometry MakeClassGeometry(const SyntheticConfig& config, Rng& rng);

/// Returns a copy of `geometry` with every mode center displaced by a
/// random offset of norm `shift` — the drifted distribution incremental
/// data is drawn from.
ClassGeometry ShiftGeometry(const ClassGeometry& geometry, double shift,
                            Rng& rng);

/// Draws `samples_per_class` samples per class around the geometry's mode
/// centers with the given per-dimension standard deviation. Observed ==
/// true labels (apply noise separately); sample order is shuffled.
Dataset SampleFromGeometry(const ClassGeometry& geometry,
                           size_t samples_per_class, double sample_stddev,
                           Rng& rng, uint64_t first_id = 0);

/// Generates a clean dataset (observed == true labels) from `config`:
/// MakeClassGeometry + SampleFromGeometry with a config-seeded Rng.
/// The domain shift is not applied here (it only affects workloads'
/// incremental pools).
Dataset GenerateSynthetic(const SyntheticConfig& config);

/// Profile emulating EMNIST-letters: 26 classes, well separated (the
/// "simple task" of the paper — confidence-only baselines still do well).
SyntheticConfig EmnistSimConfig();

/// Profile emulating CIFAR100: 100 classes with moderate overlap.
SyntheticConfig Cifar100SimConfig();

/// Profile emulating Tiny-ImageNet: 200 classes with heavy overlap (the
/// "complex task" where pretrain-only baselines degrade most).
SyntheticConfig TinyImagenetSimConfig();

}  // namespace enld

#endif  // ENLD_DATA_SYNTHETIC_H_
