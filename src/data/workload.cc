#include "data/workload.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace enld {

Workload BuildWorkload(const WorkloadConfig& config) {
  ENLD_CHECK_GE(config.noise_rate, 0.0);
  ENLD_CHECK_LT(config.noise_rate, 1.0);
  ENLD_CHECK_GT(config.inventory_fraction, 0.0);
  ENLD_CHECK_LT(config.inventory_fraction, 1.0);

  Rng geometry_rng(config.profile.seed);
  const ClassGeometry geometry =
      MakeClassGeometry(config.profile, geometry_rng);

  Rng rng(config.seed);

  // Inventory and the incremental pool are drawn separately: the pool comes
  // from a *drifted* copy of the geometry (the paper's changing data
  // distribution of arriving datasets). The 2:1 ratio is expressed through
  // per-class sample counts.
  const size_t inventory_per_class = std::max<size_t>(
      1, static_cast<size_t>(std::lround(config.inventory_fraction *
                                         static_cast<double>(
                                             config.profile.samples_per_class))));
  const size_t incremental_per_class = std::max<size_t>(
      1, config.profile.samples_per_class - inventory_per_class);

  Workload out;
  out.config = config;
  out.inventory = SampleFromGeometry(geometry, inventory_per_class,
                                     config.profile.sample_stddev, rng,
                                     /*first_id=*/0);

  const ClassGeometry drifted = ShiftGeometry(
      geometry, config.profile.incremental_domain_shift, rng);
  Dataset pool = SampleFromGeometry(drifted, incremental_per_class,
                                    config.profile.sample_stddev, rng,
                                    /*first_id=*/out.inventory.size());

  // Both the inventory and arriving data are corrupted by the same label
  // transition matrix (Section III-A).
  out.transition = TransitionMatrix::PairAsymmetric(
      config.profile.num_classes, config.noise_rate);
  ApplyLabelNoise(&out.inventory, out.transition, rng);
  ApplyLabelNoise(&pool, out.transition, rng);

  out.incremental = BuildIncrementalDatasets(pool, config.stream, rng);
  return out;
}

WorkloadConfig EmnistWorkloadConfig(double noise_rate) {
  WorkloadConfig config;
  config.profile = EmnistSimConfig();
  config.noise_rate = noise_rate;
  config.stream.num_datasets = 10;
  config.stream.min_classes_per_dataset = 5;
  config.stream.max_classes_per_dataset = 6;
  config.stream.min_take_fraction = 0.2;
  config.stream.max_take_fraction = 0.45;
  config.seed = 11'000 + static_cast<uint64_t>(noise_rate * 1000);
  return config;
}

WorkloadConfig Cifar100WorkloadConfig(double noise_rate) {
  WorkloadConfig config;
  config.profile = Cifar100SimConfig();
  config.noise_rate = noise_rate;
  config.stream.num_datasets = 20;
  config.stream.min_classes_per_dataset = 10;
  config.stream.max_classes_per_dataset = 10;
  // Arriving datasets are small relative to the inventory (the data-lake
  // premise that drives the paper's efficiency comparison).
  config.stream.min_take_fraction = 0.2;
  config.stream.max_take_fraction = 0.45;
  config.seed = 22'000 + static_cast<uint64_t>(noise_rate * 1000);
  return config;
}

WorkloadConfig TinyImagenetWorkloadConfig(double noise_rate) {
  WorkloadConfig config;
  config.profile = TinyImagenetSimConfig();
  config.noise_rate = noise_rate;
  config.stream.num_datasets = 20;
  config.stream.min_classes_per_dataset = 20;
  config.stream.max_classes_per_dataset = 20;
  config.stream.min_take_fraction = 0.2;
  config.stream.max_take_fraction = 0.45;
  config.seed = 33'000 + static_cast<uint64_t>(noise_rate * 1000);
  return config;
}

}  // namespace enld
