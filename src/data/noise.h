#ifndef ENLD_DATA_NOISE_H_
#define ENLD_DATA_NOISE_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"
#include "data/synthetic.h"

namespace enld {

/// Label transition matrix T with T[i][j] = P(ỹ = j | y* = i) — the noise
/// model of Section III-A. Rows are probability distributions.
class TransitionMatrix {
 public:
  /// The identity (no-noise) matrix for `num_classes` classes.
  static TransitionMatrix Identity(int num_classes);

  /// Pair-asymmetric noise (Section V-A2): T[i][i] = 1 - eta and
  /// T[i][(i+1) mod C] = eta. Requires eta in [0, 1].
  static TransitionMatrix PairAsymmetric(int num_classes, double eta);

  /// Symmetric (uniform) noise: T[i][i] = 1 - eta, remaining mass spread
  /// evenly over the other classes. Requires eta in [0, 1].
  static TransitionMatrix Symmetric(int num_classes, double eta);

  /// Builds from explicit rows; fails unless every row is a probability
  /// distribution (non-negative, sums to 1 within tolerance).
  static StatusOr<TransitionMatrix> FromRows(
      std::vector<std::vector<double>> rows);

  int num_classes() const { return static_cast<int>(rows_.size()); }

  /// P(ỹ = observed | y* = true_label).
  double At(int true_label, int observed) const;

  /// Draws an observed label for a sample with the given true label.
  int SampleObserved(int true_label, Rng& rng) const;

  /// True iff every row sums to 1 within `tolerance` with non-negative
  /// entries.
  bool IsRowStochastic(double tolerance = 1e-9) const;

  /// Overall expected noise rate when classes are balanced:
  /// mean over i of (1 - T[i][i]).
  double ExpectedNoiseRate() const;

 private:
  explicit TransitionMatrix(std::vector<std::vector<double>> rows)
      : rows_(std::move(rows)) {}

  std::vector<std::vector<double>> rows_;
};

/// Corrupts `dataset->observed_labels` in place by sampling each observed
/// label from T given the sample's true label. True labels are untouched.
/// Returns the number of labels actually flipped.
size_t ApplyLabelNoise(Dataset* dataset, const TransitionMatrix& transition,
                       Rng& rng);

/// Marks a uniformly random fraction `missing_rate` of samples as missing
/// (observed label <- kMissingLabel). Returns the indices masked.
std::vector<size_t> MaskMissingLabels(Dataset* dataset, double missing_rate,
                                      Rng& rng);

/// Instance-dependent noise (extension beyond the paper's pair model,
/// after Chen et al. 2021 [10]): a sample's mislabeling probability grows
/// as it approaches another class's prototype, and the wrong label is that
/// nearest other class. Flip scores exp(-margin / temperature) are
/// rescaled so the *average* flip probability equals `eta` (individual
/// probabilities are capped at 0.95). Returns the number of flips.
size_t ApplyInstanceDependentNoise(Dataset* dataset,
                                   const ClassGeometry& geometry,
                                   double eta, double temperature,
                                   Rng& rng);

}  // namespace enld

#endif  // ENLD_DATA_NOISE_H_
