#include "data/split.h"

#include <algorithm>
#include <deque>

#include "common/check.h"

namespace enld {

InventorySplit SplitInventoryIncremental(const Dataset& source,
                                         double inventory_fraction,
                                         Rng& rng) {
  ENLD_CHECK_GT(inventory_fraction, 0.0);
  ENLD_CHECK_LT(inventory_fraction, 1.0);
  ENLD_CHECK_GT(source.size(), 1u);

  std::vector<size_t> perm(source.size());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  rng.Shuffle(perm);

  const size_t inventory_count = std::max<size_t>(
      1, static_cast<size_t>(inventory_fraction *
                             static_cast<double>(source.size())));
  std::vector<size_t> inv(perm.begin(), perm.begin() + inventory_count);
  std::vector<size_t> inc(perm.begin() + inventory_count, perm.end());
  ENLD_CHECK(!inc.empty());

  InventorySplit out;
  out.inventory = source.Subset(inv);
  out.incremental_pool = source.Subset(inc);
  return out;
}

TrainCandidateSplit SplitTrainCandidate(const Dataset& inventory, Rng& rng) {
  ENLD_CHECK_GT(inventory.size(), 1u);
  std::vector<size_t> perm(inventory.size());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  rng.Shuffle(perm);
  const size_t half = inventory.size() / 2;
  std::vector<size_t> train(perm.begin(), perm.begin() + half);
  std::vector<size_t> candidate(perm.begin() + half, perm.end());
  TrainCandidateSplit out;
  out.train = inventory.Subset(train);
  out.candidate = inventory.Subset(candidate);
  return out;
}

std::vector<Dataset> BuildIncrementalDatasets(
    const Dataset& pool, const IncrementalStreamConfig& config, Rng& rng) {
  ENLD_CHECK_GT(config.num_datasets, 0u);
  ENLD_CHECK_GE(config.min_classes_per_dataset, 1);
  ENLD_CHECK_GE(config.max_classes_per_dataset,
                config.min_classes_per_dataset);
  ENLD_CHECK_GT(config.min_take_fraction, 0.0);
  ENLD_CHECK_LE(config.max_take_fraction, 1.0);
  ENLD_CHECK_LE(config.min_take_fraction, config.max_take_fraction);

  // Group the pool's remaining sample positions by observed label (the
  // platform carves arriving datasets by the labels it can see).
  std::vector<std::vector<size_t>> remaining(pool.num_classes);
  for (size_t i = 0; i < pool.size(); ++i) {
    const int y = pool.observed_labels[i];
    if (y != kMissingLabel) remaining[y].push_back(i);
  }
  for (auto& bucket : remaining) rng.Shuffle(bucket);

  // Round-robin over a shuffled class order so every class appears in the
  // stream before any class repeats.
  std::vector<int> class_order;
  for (int c = 0; c < pool.num_classes; ++c) {
    if (!remaining[c].empty()) class_order.push_back(c);
  }
  ENLD_CHECK(!class_order.empty());
  rng.Shuffle(class_order);
  size_t cursor = 0;
  auto next_class_with_samples = [&]() -> int {
    for (size_t tries = 0; tries < class_order.size(); ++tries) {
      const int c = class_order[cursor];
      cursor = (cursor + 1) % class_order.size();
      if (!remaining[c].empty()) return c;
    }
    return -1;
  };

  std::vector<Dataset> datasets;
  datasets.reserve(config.num_datasets);
  for (size_t d = 0; d < config.num_datasets; ++d) {
    const int span = config.max_classes_per_dataset -
                     config.min_classes_per_dataset + 1;
    const int want_classes = config.min_classes_per_dataset +
                             static_cast<int>(rng.UniformInt(span));
    std::vector<size_t> members;
    std::vector<bool> used(pool.num_classes, false);
    for (int taken = 0; taken < want_classes;) {
      const int c = next_class_with_samples();
      if (c < 0) break;  // Pool exhausted.
      if (used[c]) {
        // All remaining classes may be used already for this dataset; give
        // up on distinctness rather than loop forever.
        bool any_unused = false;
        for (int cc = 0; cc < pool.num_classes; ++cc) {
          if (!remaining[cc].empty() && !used[cc]) {
            any_unused = true;
            break;
          }
        }
        if (!any_unused) break;
        continue;
      }
      used[c] = true;
      ++taken;
      auto& bucket = remaining[c];
      const double frac =
          rng.Uniform(config.min_take_fraction, config.max_take_fraction);
      size_t take = static_cast<size_t>(frac *
                                        static_cast<double>(bucket.size()));
      take = std::max<size_t>(1, std::min(take, bucket.size()));
      for (size_t i = 0; i < take; ++i) {
        members.push_back(bucket.back());
        bucket.pop_back();
      }
    }
    if (members.empty()) break;  // Pool exhausted; emit what we have.
    rng.Shuffle(members);
    datasets.push_back(pool.Subset(members));
  }
  ENLD_CHECK(!datasets.empty());
  return datasets;
}

}  // namespace enld
