#include "data/synthetic.h"

#include <cmath>
#include <vector>

#include "common/check.h"

namespace enld {

namespace {

/// Draws a random unit vector of length `dim`.
std::vector<double> RandomUnit(size_t dim, Rng& rng) {
  std::vector<double> v(dim);
  double norm = 0.0;
  do {
    norm = 0.0;
    for (auto& x : v) {
      x = rng.Gaussian();
      norm += x * x;
    }
  } while (norm == 0.0);
  norm = std::sqrt(norm);
  for (auto& x : v) x /= norm;
  return v;
}

}  // namespace

ClassGeometry MakeClassGeometry(const SyntheticConfig& config, Rng& rng) {
  ENLD_CHECK_GT(config.num_classes, 0);
  ENLD_CHECK_GT(config.feature_dim, 0u);
  ENLD_CHECK_GE(config.subclusters_per_class, 1);
  ENLD_CHECK_GE(config.adjacent_correlation, 0.0);
  ENLD_CHECK_LT(config.adjacent_correlation, 1.0);

  const size_t dim = config.feature_dim;
  const int classes = config.num_classes;
  const double rho = config.adjacent_correlation;

  ClassGeometry geometry;

  // Class prototypes: a correlated chain so classes c and c+1 are
  // feature-space neighbours (matching pair-asymmetric noise confusions).
  geometry.prototypes.resize(classes);
  geometry.prototypes[0] = RandomUnit(dim, rng);
  for (int c = 1; c < classes; ++c) {
    std::vector<double> fresh = RandomUnit(dim, rng);
    std::vector<double> mixed(dim);
    double norm = 0.0;
    for (size_t d = 0; d < dim; ++d) {
      mixed[d] = rho * geometry.prototypes[c - 1][d] +
                 std::sqrt(1.0 - rho * rho) * fresh[d];
      norm += mixed[d] * mixed[d];
    }
    norm = std::sqrt(norm);
    ENLD_CHECK_GT(norm, 0.0);
    for (auto& x : mixed) x /= norm;
    geometry.prototypes[c] = std::move(mixed);
  }
  for (auto& p : geometry.prototypes) {
    for (auto& x : p) x *= config.class_separation;
  }

  // Sub-cluster centers around each prototype.
  geometry.centers.resize(classes);
  for (int c = 0; c < classes; ++c) {
    geometry.centers[c].resize(config.subclusters_per_class);
    for (int m = 0; m < config.subclusters_per_class; ++m) {
      std::vector<double> offset = RandomUnit(dim, rng);
      geometry.centers[c][m].resize(dim);
      for (size_t d = 0; d < dim; ++d) {
        geometry.centers[c][m][d] =
            geometry.prototypes[c][d] + config.subcluster_spread * offset[d];
      }
    }
  }
  return geometry;
}

ClassGeometry ShiftGeometry(const ClassGeometry& geometry, double shift,
                            Rng& rng) {
  ENLD_CHECK_GE(shift, 0.0);
  ClassGeometry shifted = geometry;
  if (shift == 0.0) return shifted;
  const size_t dim = geometry.dim();
  for (auto& modes : shifted.centers) {
    for (auto& center : modes) {
      const std::vector<double> direction = RandomUnit(dim, rng);
      for (size_t d = 0; d < dim; ++d) center[d] += shift * direction[d];
    }
  }
  return shifted;
}

Dataset SampleFromGeometry(const ClassGeometry& geometry,
                           size_t samples_per_class, double sample_stddev,
                           Rng& rng, uint64_t first_id) {
  ENLD_CHECK_GT(samples_per_class, 0u);
  const int classes = geometry.num_classes();
  const size_t dim = geometry.dim();
  ENLD_CHECK_GT(classes, 0);

  const size_t total = static_cast<size_t>(classes) * samples_per_class;
  Matrix features(total, dim);
  std::vector<int> labels(total);
  size_t row = 0;
  for (int c = 0; c < classes; ++c) {
    const auto& modes = geometry.centers[c];
    for (size_t i = 0; i < samples_per_class; ++i) {
      const auto& center = modes[i % modes.size()];
      float* out = features.Row(row);
      for (size_t d = 0; d < dim; ++d) {
        out[d] =
            static_cast<float>(center[d] + sample_stddev * rng.Gaussian());
      }
      labels[row] = c;
      ++row;
    }
  }

  // Shuffle sample order so splits downstream see mixed classes.
  std::vector<size_t> perm(total);
  for (size_t i = 0; i < total; ++i) perm[i] = i;
  rng.Shuffle(perm);

  Dataset grouped =
      MakeDataset(std::move(features), std::move(labels), {}, classes,
                  first_id);
  return grouped.Subset(perm);
}

Dataset GenerateSynthetic(const SyntheticConfig& config) {
  Rng rng(config.seed);
  const ClassGeometry geometry = MakeClassGeometry(config, rng);
  return SampleFromGeometry(geometry, config.samples_per_class,
                            config.sample_stddev, rng);
}

SyntheticConfig EmnistSimConfig() {
  SyntheticConfig config;
  config.name = "emnist-sim";
  config.num_classes = 26;
  config.samples_per_class = 360;
  config.feature_dim = 32;
  config.class_separation = 8.0;
  config.adjacent_correlation = 0.30;
  config.subclusters_per_class = 2;
  config.subcluster_spread = 1.2;
  config.sample_stddev = 1.0;
  config.incremental_domain_shift = 1.0;
  config.seed = 101;
  return config;
}

SyntheticConfig Cifar100SimConfig() {
  SyntheticConfig config;
  config.name = "cifar100-sim";
  config.num_classes = 100;
  config.samples_per_class = 120;
  config.feature_dim = 32;
  config.class_separation = 6.8;
  config.adjacent_correlation = 0.42;
  config.subclusters_per_class = 2;
  config.subcluster_spread = 1.5;
  config.sample_stddev = 1.0;
  config.incremental_domain_shift = 1.4;
  config.seed = 202;
  return config;
}

SyntheticConfig TinyImagenetSimConfig() {
  SyntheticConfig config;
  config.name = "tiny-imagenet-sim";
  config.num_classes = 200;
  config.samples_per_class = 75;
  config.feature_dim = 32;
  config.class_separation = 6.2;
  config.adjacent_correlation = 0.50;
  config.subclusters_per_class = 3;
  config.subcluster_spread = 1.8;
  config.sample_stddev = 1.0;
  config.incremental_domain_shift = 1.8;
  config.seed = 303;
  return config;
}

}  // namespace enld
