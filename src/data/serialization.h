#ifndef ENLD_DATA_SERIALIZATION_H_
#define ENLD_DATA_SERIALIZATION_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace enld {

/// Writes a dataset as CSV: a header line
/// `id,observed,true,f0,...,f{dim-1}` preceded by a comment line
/// `# classes=<n> dim=<d>`. Missing observed labels are written as -1.
Status SaveDatasetCsv(const Dataset& dataset, const std::string& path);

/// Reads a dataset written by SaveDatasetCsv. Fails with NotFound when the
/// file cannot be opened and InvalidArgument on malformed content.
StatusOr<Dataset> LoadDatasetCsv(const std::string& path);

}  // namespace enld

#endif  // ENLD_DATA_SERIALIZATION_H_
