#ifndef ENLD_DATA_SERIALIZATION_H_
#define ENLD_DATA_SERIALIZATION_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace enld {

/// Writes a dataset as CSV: a header line
/// `id,observed,true,f0,...,f{dim-1}` preceded by a comment line
/// `# classes=<n> dim=<d>`. Missing observed labels are written as -1.
Status SaveDatasetCsv(const Dataset& dataset, const std::string& path);

/// How LoadDatasetCsv treats invalid cell values.
struct CsvLoadOptions {
  /// Strict (default): a non-numeric or non-finite feature cell or an
  /// out-of-range label fails the load with InvalidArgument naming the row
  /// and column. Permissive: the file loads anyway — unparseable or
  /// non-finite features come back as NaN and bad labels are kept verbatim,
  /// so per-sample admission screening (enld/admission.h, `enld_cli
  /// validate`) can quarantine the offending rows instead.
  bool permissive = false;
};

/// Reads a dataset written by SaveDatasetCsv. Fails with NotFound when the
/// file cannot be opened and InvalidArgument on malformed content
/// (including, in strict mode, NaN/Inf features and labels outside [0,K)).
StatusOr<Dataset> LoadDatasetCsv(const std::string& path,
                                 const CsvLoadOptions& options = {});

}  // namespace enld

#endif  // ENLD_DATA_SERIALIZATION_H_
