#include "data/serialization.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

namespace enld {

namespace {

class File {
 public:
  File(const std::string& path, const char* mode)
      : handle_(std::fopen(path.c_str(), mode)) {}
  ~File() {
    if (handle_ != nullptr) std::fclose(handle_);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  FILE* get() const { return handle_; }
  bool ok() const { return handle_ != nullptr; }

 private:
  FILE* handle_;
};

/// Splits a CSV line into fields (no quoting — the format never emits it).
std::vector<std::string> SplitCsv(const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    const size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return fields;
}

/// Reads one line, tolerating CRLF endings (the trailing '\r' of a file
/// written or transferred on Windows is stripped).
bool ReadLine(FILE* file, std::string* out) {
  out->clear();
  int c;
  bool got_newline = false;
  while ((c = std::fgetc(file)) != EOF) {
    if (c == '\n') {
      got_newline = true;
      break;
    }
    out->push_back(static_cast<char>(c));
  }
  if (!out->empty() && out->back() == '\r') out->pop_back();
  return got_newline || !out->empty();
}

}  // namespace

Status SaveDatasetCsv(const Dataset& dataset, const std::string& path) {
  File file(path, "w");
  if (!file.ok()) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  std::fprintf(file.get(), "# classes=%d dim=%zu\n", dataset.num_classes,
               dataset.dim());
  std::fprintf(file.get(), "id,observed,true");
  for (size_t d = 0; d < dataset.dim(); ++d) {
    std::fprintf(file.get(), ",f%zu", d);
  }
  std::fprintf(file.get(), "\n");
  for (size_t i = 0; i < dataset.size(); ++i) {
    std::fprintf(file.get(), "%" PRIu64 ",%d,%d", dataset.ids[i],
                 dataset.observed_labels[i], dataset.true_labels[i]);
    const float* row = dataset.features.Row(i);
    for (size_t d = 0; d < dataset.dim(); ++d) {
      std::fprintf(file.get(), ",%.9g", row[d]);
    }
    std::fprintf(file.get(), "\n");
  }
  return Status::OK();
}

StatusOr<Dataset> LoadDatasetCsv(const std::string& path,
                                 const CsvLoadOptions& options) {
  File file(path, "r");
  if (!file.ok()) {
    return Status::NotFound("cannot open for reading: " + path);
  }

  std::string line;
  if (!ReadLine(file.get(), &line)) {
    return Status::InvalidArgument("empty file: " + path);
  }
  int classes = 0;
  size_t dim = 0;
  if (std::sscanf(line.c_str(), "# classes=%d dim=%zu", &classes, &dim) !=
          2 ||
      classes <= 0 || dim == 0) {
    return Status::InvalidArgument("missing or corrupt metadata line");
  }
  if (!ReadLine(file.get(), &line)) {
    return Status::InvalidArgument("missing header line");
  }

  std::vector<uint64_t> ids;
  std::vector<int> observed;
  std::vector<int> truth;
  std::vector<float> values;
  while (ReadLine(file.get(), &line)) {
    if (line.empty()) continue;
    const auto fields = SplitCsv(line);
    if (fields.size() != 3 + dim) {
      return Status::InvalidArgument("wrong field count in row " +
                                     std::to_string(ids.size()));
    }
    const size_t row = ids.size();
    char* end = nullptr;
    ids.push_back(std::strtoull(fields[0].c_str(), &end, 10));
    observed.push_back(static_cast<int>(std::strtol(fields[1].c_str(),
                                                    &end, 10)));
    truth.push_back(static_cast<int>(std::strtol(fields[2].c_str(), &end,
                                                 10)));
    for (size_t d = 0; d < dim; ++d) {
      const std::string& cell = fields[3 + d];
      end = nullptr;
      float value = std::strtof(cell.c_str(), &end);
      const bool syntactic = !cell.empty() && end == cell.c_str() + cell.size();
      if (!syntactic || !std::isfinite(value)) {
        if (!options.permissive) {
          return Status::InvalidArgument(
              std::string(syntactic ? "non-finite feature value '"
                                    : "unparseable feature value '") +
              cell + "' in row " + std::to_string(row) + ", column f" +
              std::to_string(d));
        }
        // Permissive: surface the bad cell as NaN so admission screening
        // quarantines this row with a typed reason.
        value = std::numeric_limits<float>::quiet_NaN();
      }
      values.push_back(value);
    }
    const int obs = observed.back();
    const int tru = truth.back();
    if (!options.permissive &&
        ((obs != kMissingLabel && (obs < 0 || obs >= classes)) || tru < 0 ||
         tru >= classes)) {
      return Status::InvalidArgument(
          "label out of range in row " + std::to_string(row) +
          " (observed=" + std::to_string(obs) +
          ", true=" + std::to_string(tru) + ", classes=" +
          std::to_string(classes) + ")");
    }
  }

  Dataset out;
  out.num_classes = classes;
  out.features.Reset(ids.size(), dim);
  std::memcpy(out.features.data(), values.data(),
              values.size() * sizeof(float));
  out.observed_labels = std::move(observed);
  out.true_labels = std::move(truth);
  out.ids = std::move(ids);
  // CheckConsistent aborts on bad labels; a permissive load deliberately
  // carries them through for admission screening to report.
  if (!options.permissive) out.CheckConsistent();
  return out;
}

}  // namespace enld
