#ifndef ENLD_DATA_DATASET_H_
#define ENLD_DATA_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "common/status.h"

namespace enld {

/// Observed-label value for samples whose label is missing (Section V-H).
inline constexpr int kMissingLabel = -1;

/// A labeled dataset: one feature vector per row plus, for every sample,
/// the *observed* (possibly corrupted or missing) label, the hidden *true*
/// label used only for evaluation, and a stable global id.
///
/// Plain struct by design — every algorithm in the library reads it and
/// subsets of it are taken constantly, so value semantics with explicit
/// `Subset` copies keep ownership trivial.
struct Dataset {
  /// (size x dim) sample features.
  Matrix features;
  /// Observed labels ỹ; kMissingLabel marks a missing label.
  std::vector<int> observed_labels;
  /// Ground-truth labels y* (evaluation only; detectors must not read them).
  std::vector<int> true_labels;
  /// Stable global sample ids, preserved across Subset() calls.
  std::vector<uint64_t> ids;
  /// Total number of classes in the labeling task (not just those present).
  int num_classes = 0;

  size_t size() const { return observed_labels.size(); }
  size_t dim() const { return features.cols(); }
  bool empty() const { return observed_labels.empty(); }

  /// Copies the selected rows (positions into this dataset) into a new
  /// dataset; ids travel with their samples.
  Dataset Subset(const std::vector<size_t>& indices) const;

  /// Concatenates `other` below this dataset. Feature dims and num_classes
  /// must match.
  void Append(const Dataset& other);

  /// Positions of samples whose observed label equals `label`.
  std::vector<size_t> IndicesWithObservedLabel(int label) const;

  /// Sorted distinct observed labels present (missing labels excluded) —
  /// the paper's label(D).
  std::vector<int> ObservedLabelSet() const;

  /// Positions whose observed label is kMissingLabel.
  std::vector<size_t> MissingLabelIndices() const;

  /// Positions where observed != true (ground-truth noisy set D_N).
  /// Samples with missing labels are not counted as noisy.
  std::vector<size_t> GroundTruthNoisyIndices() const;

  /// Checks internal consistency (matching lengths, labels in range).
  /// Programming-error checks; aborts on violation.
  void CheckConsistent() const;
};

/// Non-aborting counterpart of Dataset::CheckConsistent for data read
/// from external sources (shard files, snapshots): matching column
/// lengths, positive class count, labels in range. Returns
/// InvalidArgument describing the first violation instead of aborting.
Status ValidateDataset(const Dataset& dataset);

/// Builds a dataset from parallel arrays. `true_labels` may be empty, in
/// which case observed labels are copied as truth. Ids are assigned
/// sequentially starting at `first_id`.
Dataset MakeDataset(Matrix features, std::vector<int> observed_labels,
                    std::vector<int> true_labels, int num_classes,
                    uint64_t first_id = 0);

}  // namespace enld

#endif  // ENLD_DATA_DATASET_H_
