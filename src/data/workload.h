#ifndef ENLD_DATA_WORKLOAD_H_
#define ENLD_DATA_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "data/noise.h"
#include "data/split.h"
#include "data/synthetic.h"

namespace enld {

/// Everything needed to stand up one paper experiment: a dataset profile,
/// a noise level and the incremental-stream shape.
struct WorkloadConfig {
  SyntheticConfig profile;
  /// Pair-asymmetric noise rate eta (Section V-A2).
  double noise_rate = 0.2;
  /// Fraction of the source that becomes inventory I (paper: 2:1).
  double inventory_fraction = 2.0 / 3.0;
  IncrementalStreamConfig stream;
  /// Seed for noise injection and splitting (independent of profile.seed).
  uint64_t seed = 4242;
};

/// A fully materialized experiment input: noisy inventory plus the noisy
/// arriving datasets, with ground truth retained for evaluation only.
struct Workload {
  Dataset inventory;
  std::vector<Dataset> incremental;
  TransitionMatrix transition = TransitionMatrix::Identity(1);
  WorkloadConfig config;
};

/// Generates the clean source, applies pair-asymmetric noise at
/// `config.noise_rate` to all of it (the paper corrupts both I and D with
/// the same transition matrix), then performs the 2:1 inventory split and
/// carves the incremental stream. Deterministic for a fixed config.
Workload BuildWorkload(const WorkloadConfig& config);

/// Paper stream shapes (Section V-A1).
WorkloadConfig EmnistWorkloadConfig(double noise_rate);
WorkloadConfig Cifar100WorkloadConfig(double noise_rate);
WorkloadConfig TinyImagenetWorkloadConfig(double noise_rate);

}  // namespace enld

#endif  // ENLD_DATA_WORKLOAD_H_
