#include "data/noise.h"

#include <cmath>

#include "common/check.h"

namespace enld {

TransitionMatrix TransitionMatrix::Identity(int num_classes) {
  ENLD_CHECK_GT(num_classes, 0);
  std::vector<std::vector<double>> rows(
      num_classes, std::vector<double>(num_classes, 0.0));
  for (int i = 0; i < num_classes; ++i) rows[i][i] = 1.0;
  return TransitionMatrix(std::move(rows));
}

TransitionMatrix TransitionMatrix::PairAsymmetric(int num_classes,
                                                  double eta) {
  ENLD_CHECK_GT(num_classes, 1);
  ENLD_CHECK_GE(eta, 0.0);
  ENLD_CHECK_LE(eta, 1.0);
  std::vector<std::vector<double>> rows(
      num_classes, std::vector<double>(num_classes, 0.0));
  for (int i = 0; i < num_classes; ++i) {
    rows[i][i] = 1.0 - eta;
    rows[i][(i + 1) % num_classes] += eta;
  }
  return TransitionMatrix(std::move(rows));
}

TransitionMatrix TransitionMatrix::Symmetric(int num_classes, double eta) {
  ENLD_CHECK_GT(num_classes, 1);
  ENLD_CHECK_GE(eta, 0.0);
  ENLD_CHECK_LE(eta, 1.0);
  std::vector<std::vector<double>> rows(
      num_classes, std::vector<double>(num_classes, eta / (num_classes - 1)));
  for (int i = 0; i < num_classes; ++i) rows[i][i] = 1.0 - eta;
  return TransitionMatrix(std::move(rows));
}

StatusOr<TransitionMatrix> TransitionMatrix::FromRows(
    std::vector<std::vector<double>> rows) {
  if (rows.empty()) {
    return Status::InvalidArgument("transition matrix has no rows");
  }
  const size_t n = rows.size();
  for (const auto& row : rows) {
    if (row.size() != n) {
      return Status::InvalidArgument("transition matrix is not square");
    }
    double sum = 0.0;
    for (double v : row) {
      if (v < 0.0) {
        return Status::InvalidArgument("transition probability is negative");
      }
      sum += v;
    }
    if (std::abs(sum - 1.0) > 1e-6) {
      return Status::InvalidArgument("transition row does not sum to 1");
    }
  }
  return TransitionMatrix(std::move(rows));
}

double TransitionMatrix::At(int true_label, int observed) const {
  ENLD_CHECK_GE(true_label, 0);
  ENLD_CHECK_LT(true_label, num_classes());
  ENLD_CHECK_GE(observed, 0);
  ENLD_CHECK_LT(observed, num_classes());
  return rows_[true_label][observed];
}

int TransitionMatrix::SampleObserved(int true_label, Rng& rng) const {
  ENLD_CHECK_GE(true_label, 0);
  ENLD_CHECK_LT(true_label, num_classes());
  return static_cast<int>(rng.Discrete(rows_[true_label]));
}

bool TransitionMatrix::IsRowStochastic(double tolerance) const {
  for (const auto& row : rows_) {
    double sum = 0.0;
    for (double v : row) {
      if (v < 0.0) return false;
      sum += v;
    }
    if (std::abs(sum - 1.0) > tolerance) return false;
  }
  return true;
}

double TransitionMatrix::ExpectedNoiseRate() const {
  double total = 0.0;
  for (int i = 0; i < num_classes(); ++i) total += 1.0 - rows_[i][i];
  return total / num_classes();
}

size_t ApplyLabelNoise(Dataset* dataset, const TransitionMatrix& transition,
                       Rng& rng) {
  ENLD_CHECK(dataset != nullptr);
  ENLD_CHECK_EQ(transition.num_classes(), dataset->num_classes);
  size_t flipped = 0;
  for (size_t i = 0; i < dataset->size(); ++i) {
    const int truth = dataset->true_labels[i];
    const int observed = transition.SampleObserved(truth, rng);
    dataset->observed_labels[i] = observed;
    if (observed != truth) ++flipped;
  }
  return flipped;
}

size_t ApplyInstanceDependentNoise(Dataset* dataset,
                                   const ClassGeometry& geometry,
                                   double eta, double temperature,
                                   Rng& rng) {
  ENLD_CHECK(dataset != nullptr);
  ENLD_CHECK_EQ(geometry.num_classes(), dataset->num_classes);
  ENLD_CHECK_EQ(geometry.dim(), dataset->dim());
  ENLD_CHECK_GE(eta, 0.0);
  ENLD_CHECK_LT(eta, 1.0);
  ENLD_CHECK_GT(temperature, 0.0);
  if (dataset->empty() || eta == 0.0) return 0;

  const int classes = dataset->num_classes;
  const size_t dim = dataset->dim();

  // Per sample: distance margin between its own prototype and the nearest
  // *other* prototype, plus that other class.
  std::vector<double> score(dataset->size());
  std::vector<int> nearest_other(dataset->size());
  for (size_t i = 0; i < dataset->size(); ++i) {
    const int truth = dataset->true_labels[i];
    const float* x = dataset->features.Row(i);
    double own = 0.0;
    for (size_t d = 0; d < dim; ++d) {
      const double diff = x[d] - geometry.prototypes[truth][d];
      own += diff * diff;
    }
    own = std::sqrt(own);
    double best = 1e300;
    int best_class = (truth + 1) % classes;
    for (int c = 0; c < classes; ++c) {
      if (c == truth) continue;
      double dist = 0.0;
      for (size_t d = 0; d < dim; ++d) {
        const double diff = x[d] - geometry.prototypes[c][d];
        dist += diff * diff;
      }
      dist = std::sqrt(dist);
      if (dist < best) {
        best = dist;
        best_class = c;
      }
    }
    score[i] = std::exp(-(best - own) / temperature);
    nearest_other[i] = best_class;
  }

  // Rescale so the mean flip probability equals eta.
  double mean_score = 0.0;
  for (double s : score) mean_score += s;
  mean_score /= static_cast<double>(dataset->size());
  ENLD_CHECK_GT(mean_score, 0.0);
  const double scale = eta / mean_score;

  size_t flipped = 0;
  for (size_t i = 0; i < dataset->size(); ++i) {
    const double p = std::min(0.95, score[i] * scale);
    if (rng.Bernoulli(p)) {
      dataset->observed_labels[i] = nearest_other[i];
      ++flipped;
    } else {
      dataset->observed_labels[i] = dataset->true_labels[i];
    }
  }
  return flipped;
}

std::vector<size_t> MaskMissingLabels(Dataset* dataset, double missing_rate,
                                      Rng& rng) {
  ENLD_CHECK(dataset != nullptr);
  ENLD_CHECK_GE(missing_rate, 0.0);
  ENLD_CHECK_LE(missing_rate, 1.0);
  const size_t count =
      static_cast<size_t>(missing_rate * static_cast<double>(dataset->size()));
  std::vector<size_t> masked =
      rng.SampleWithoutReplacement(dataset->size(), count);
  for (size_t i : masked) dataset->observed_labels[i] = kMissingLabel;
  return masked;
}

}  // namespace enld
