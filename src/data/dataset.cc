#include "data/dataset.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <string>

#include "common/check.h"

namespace enld {

Dataset Dataset::Subset(const std::vector<size_t>& indices) const {
  Dataset out;
  out.features = features.SelectRows(indices);
  out.observed_labels.reserve(indices.size());
  out.true_labels.reserve(indices.size());
  out.ids.reserve(indices.size());
  for (size_t i : indices) {
    ENLD_CHECK_LT(i, size());
    out.observed_labels.push_back(observed_labels[i]);
    out.true_labels.push_back(true_labels[i]);
    out.ids.push_back(ids[i]);
  }
  out.num_classes = num_classes;
  return out;
}

void Dataset::Append(const Dataset& other) {
  if (other.empty()) return;
  if (empty()) {
    *this = other;
    return;
  }
  ENLD_CHECK_EQ(dim(), other.dim());
  ENLD_CHECK_EQ(num_classes, other.num_classes);
  Matrix merged(size() + other.size(), dim());
  for (size_t r = 0; r < size(); ++r) {
    std::copy(features.Row(r), features.Row(r) + dim(), merged.Row(r));
  }
  for (size_t r = 0; r < other.size(); ++r) {
    std::copy(other.features.Row(r), other.features.Row(r) + dim(),
              merged.Row(size() + r));
  }
  features = std::move(merged);
  observed_labels.insert(observed_labels.end(), other.observed_labels.begin(),
                         other.observed_labels.end());
  true_labels.insert(true_labels.end(), other.true_labels.begin(),
                     other.true_labels.end());
  ids.insert(ids.end(), other.ids.begin(), other.ids.end());
}

std::vector<size_t> Dataset::IndicesWithObservedLabel(int label) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < size(); ++i) {
    if (observed_labels[i] == label) out.push_back(i);
  }
  return out;
}

std::vector<int> Dataset::ObservedLabelSet() const {
  std::set<int> labels;
  for (int y : observed_labels) {
    if (y != kMissingLabel) labels.insert(y);
  }
  return std::vector<int>(labels.begin(), labels.end());
}

std::vector<size_t> Dataset::MissingLabelIndices() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < size(); ++i) {
    if (observed_labels[i] == kMissingLabel) out.push_back(i);
  }
  return out;
}

std::vector<size_t> Dataset::GroundTruthNoisyIndices() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < size(); ++i) {
    if (observed_labels[i] != kMissingLabel &&
        observed_labels[i] != true_labels[i]) {
      out.push_back(i);
    }
  }
  return out;
}

void Dataset::CheckConsistent() const {
  ENLD_CHECK_EQ(features.rows(), observed_labels.size());
  ENLD_CHECK_EQ(observed_labels.size(), true_labels.size());
  ENLD_CHECK_EQ(observed_labels.size(), ids.size());
  ENLD_CHECK_GT(num_classes, 0);
  for (size_t i = 0; i < size(); ++i) {
    ENLD_CHECK(observed_labels[i] == kMissingLabel ||
               (observed_labels[i] >= 0 && observed_labels[i] < num_classes));
    ENLD_CHECK(true_labels[i] >= 0 && true_labels[i] < num_classes);
  }
}

Status ValidateDataset(const Dataset& dataset) {
  const size_t rows = dataset.observed_labels.size();
  if (dataset.true_labels.size() != rows || dataset.ids.size() != rows ||
      dataset.features.rows() != rows) {
    return Status::InvalidArgument("dataset column lengths disagree");
  }
  if (dataset.num_classes <= 0) {
    return Status::InvalidArgument("dataset num_classes must be positive");
  }
  for (size_t i = 0; i < rows; ++i) {
    const int obs = dataset.observed_labels[i];
    const int tru = dataset.true_labels[i];
    if (obs != kMissingLabel && (obs < 0 || obs >= dataset.num_classes)) {
      return Status::InvalidArgument("observed label out of range at row " +
                                     std::to_string(i));
    }
    if (tru < 0 || tru >= dataset.num_classes) {
      return Status::InvalidArgument("true label out of range at row " +
                                     std::to_string(i));
    }
    const float* row = dataset.features.Row(i);
    for (size_t c = 0; c < dataset.features.cols(); ++c) {
      if (!std::isfinite(row[c])) {
        return Status::InvalidArgument(
            "non-finite feature value at row " + std::to_string(i) +
            ", column " + std::to_string(c));
      }
    }
  }
  return Status::OK();
}

Dataset MakeDataset(Matrix features, std::vector<int> observed_labels,
                    std::vector<int> true_labels, int num_classes,
                    uint64_t first_id) {
  Dataset out;
  const size_t n = observed_labels.size();
  ENLD_CHECK_EQ(features.rows(), n);
  out.features = std::move(features);
  out.observed_labels = std::move(observed_labels);
  out.true_labels =
      true_labels.empty() ? out.observed_labels : std::move(true_labels);
  out.ids.resize(n);
  for (size_t i = 0; i < n; ++i) out.ids[i] = first_id + i;
  out.num_classes = num_classes;
  out.CheckConsistent();
  return out;
}

}  // namespace enld
