#ifndef ENLD_DATA_SPLIT_H_
#define ENLD_DATA_SPLIT_H_

#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace enld {

/// Result of splitting a source dataset into the data-lake inventory and
/// the pool future incremental datasets are drawn from (paper ratio 2:1).
struct InventorySplit {
  Dataset inventory;
  Dataset incremental_pool;
};

/// Uniformly random split; `inventory_fraction` of samples go to the
/// inventory. Requires 0 < inventory_fraction < 1.
InventorySplit SplitInventoryIncremental(const Dataset& source,
                                         double inventory_fraction, Rng& rng);

/// The I = I_t ∪ I_c split of Section IV-B: `train` initializes the general
/// model, `candidate` is the contrastive-sample candidate pool.
struct TrainCandidateSplit {
  Dataset train;      // I_t
  Dataset candidate;  // I_c
};

/// Uniform random halves (the paper splits "uniformly and randomly").
TrainCandidateSplit SplitTrainCandidate(const Dataset& inventory, Rng& rng);

/// Controls how the incremental pool is carved into arriving datasets.
struct IncrementalStreamConfig {
  /// How many incremental datasets to build.
  size_t num_datasets = 10;
  /// Each dataset draws samples from this many distinct classes...
  int min_classes_per_dataset = 5;
  /// ...up to this many (inclusive).
  int max_classes_per_dataset = 6;
  /// Per (dataset, class) the fraction of that class's remaining pool
  /// samples taken is drawn uniformly from [min_take_fraction,
  /// max_take_fraction] — this produces the paper's *unbalanced* class
  /// distributions inside each incremental dataset.
  double min_take_fraction = 0.25;
  double max_take_fraction = 1.0;
};

/// Partitions `pool` into unbalanced incremental datasets per `config`
/// (Section V-A1). Every produced dataset is non-empty; samples are used at
/// most once across the stream. Classes are chosen so that each class is
/// visited before any class repeats (round-robin over a shuffled class
/// list), mirroring "divide D into N unbalanced datasets with c categories".
std::vector<Dataset> BuildIncrementalDatasets(
    const Dataset& pool, const IncrementalStreamConfig& config, Rng& rng);

}  // namespace enld

#endif  // ENLD_DATA_SPLIT_H_
