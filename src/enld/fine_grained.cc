#include "enld/fine_grained.h"

#include <algorithm>
#include <exception>

#include "common/check.h"
#include "common/parallel.h"
#include "common/telemetry/metrics.h"
#include "common/telemetry/trace.h"
#include "enld/contrastive.h"
#include "enld/feature_cache.h"
#include "enld/sample_sets.h"
#include "enld/strategies.h"
#include "knn/class_index.h"
#include "nn/loss.h"
#include "nn/trainer.h"

namespace enld {

namespace {

/// Materializes the training set for one iteration: the contrastive
/// multiset (positions into `iprime`, possibly with pseudo labels) plus the
/// already-selected clean samples of D.
Dataset BuildTrainingSet(const Dataset& iprime,
                         const std::vector<size_t>& contrastive,
                         const std::vector<int>& contrastive_labels,
                         const Dataset& incremental,
                         const std::vector<size_t>& clean_positions) {
  const size_t total = contrastive.size() + clean_positions.size();
  Dataset out;
  out.num_classes = incremental.num_classes;
  if (total == 0) return out;
  const size_t dim = incremental.dim();
  out.features.Reset(total, dim);
  out.observed_labels.reserve(total);
  out.true_labels.reserve(total);
  out.ids.reserve(total);

  size_t row = 0;
  for (size_t i = 0; i < contrastive.size(); ++i) {
    const size_t pos = contrastive[i];
    const float* src = iprime.features.Row(pos);
    std::copy(src, src + dim, out.features.Row(row));
    out.observed_labels.push_back(contrastive_labels.empty()
                                      ? iprime.observed_labels[pos]
                                      : contrastive_labels[i]);
    out.true_labels.push_back(iprime.true_labels[pos]);
    out.ids.push_back(iprime.ids[pos]);
    ++row;
  }
  for (size_t pos : clean_positions) {
    const float* src = incremental.features.Row(pos);
    std::copy(src, src + dim, out.features.Row(row));
    out.observed_labels.push_back(incremental.observed_labels[pos]);
    out.true_labels.push_back(incremental.true_labels[pos]);
    out.ids.push_back(incremental.ids[pos]);
    ++row;
  }
  return out;
}

}  // namespace

FineGrainedOutputs FineGrainedDetect(const FineGrainedInputs& inputs,
                                     const EnldConfig& config, Rng& rng) {
  ENLD_CHECK(inputs.model != nullptr);
  ENLD_CHECK(inputs.incremental != nullptr);
  ENLD_CHECK(inputs.candidate != nullptr);
  ENLD_CHECK(inputs.conditional != nullptr);
  ENLD_CHECK_GT(config.steps_per_iteration, 0u);

  MlpModel* model = inputs.model;
  const Dataset& incremental = *inputs.incremental;
  const Dataset& candidate = *inputs.candidate;
  FineGrainedOutputs out;

  // Detector internals exported per run (docs/OBSERVABILITY.md): series
  // get one value per fine-grained iteration, the vote-margin histogram
  // one observation per labeled sample per iteration. All appends happen
  // in sequential regions, so every value is thread-count invariant.
  ENLD_TRACE_SPAN("detect");
  auto& registry = telemetry::MetricsRegistry::Global();
  telemetry::Series* clean_series = registry.GetSeries("detect/clean_size");
  telemetry::Series* ambiguous_series =
      registry.GetSeries("detect/ambiguous_size");
  telemetry::Series* high_quality_series =
      registry.GetSeries("detect/high_quality_size");
  telemetry::Series* train_set_series =
      registry.GetSeries("detect/train_set_size");
  telemetry::Histogram* vote_margin = registry.GetHistogram(
      "detect/vote_margin", {0.0, 0.2, 0.4, 0.6, 0.8, 1.0});
  telemetry::Counter* votes_cast = registry.GetCounter("detect/votes_cast");
  telemetry::Counter* clean_admitted =
      registry.GetCounter("detect/clean_admitted");
  telemetry::Counter* contrastive_picks =
      registry.GetCounter("detect/contrastive_picks");
  telemetry::Counter* resample_rounds =
      registry.GetCounter("detect/resample_rounds");
  telemetry::Counter* sampling_fallbacks =
      registry.GetCounter("detect/sampling_fallbacks");

  // I' — the candidate rows whose observed label is in label(D) (line 3 of
  // Algorithm 3). All sampling pools below live inside I'.
  const std::vector<bool> label_mask =
      LabelMask(incremental.ObservedLabelSet(), incremental.num_classes);
  std::vector<size_t> iprime_positions;
  for (size_t i = 0; i < candidate.size(); ++i) {
    const int y = candidate.observed_labels[i];
    if (y != kMissingLabel && label_mask[y]) iprime_positions.push_back(i);
  }
  const Dataset iprime = candidate.Subset(iprime_positions);
  std::vector<size_t> all_iprime_rows(iprime.size());
  for (size_t i = 0; i < all_iprime_rows.size(); ++i) all_iprime_rows[i] = i;

  // Cross-request memo (enld/feature_cache.h): valid only while the
  // per-request model copy still carries the weights of the cache's
  // current version. The first fine-tune step moves the weights off that
  // version; everything recomputes from then on, exactly as uncached.
  FeatureCache* cache = inputs.cache;
  const uint64_t base_version =
      cache != nullptr ? cache->model_version() : 0;
  bool model_at_base = cache != nullptr;
  const uint64_t pool_key = FingerprintPositions(iprime_positions);

  // Model view over I'. On the cached path, compute (or reuse) the full
  // candidate view once and select the I' rows out of it — bitwise
  // identical to forwarding I' directly, because every view row depends
  // only on the same input row (see ComputeModelView).
  auto compute_iprime_view = [&]() -> ModelView {
    if (model_at_base && !iprime.empty()) {
      const ModelView* full = cache->FindView(base_version);
      if (full == nullptr) {
        full = cache->StoreView(base_version,
                                ComputeModelView(model, candidate));
      }
      return SelectViewRows(*full, iprime_positions);
    }
    return ComputeModelView(model, iprime);
  };

  // Sampling round: produces the contrastive multiset (positions into
  // iprime) and, for the Pseudo policy, replacement labels.
  auto resample = [&](const ModelView& view,
                      const std::vector<size_t>& ambiguous,
                      const Matrix& ambiguous_features,
                      std::vector<size_t>* picks,
                      std::vector<int>* pick_labels) {
    picks->clear();
    pick_labels->clear();
    if (iprime.empty()) return;

    if (config.policy == SamplingPolicy::kContrastive) {
      // High-quality pool: model agrees with the observed label, filtered
      // by the per-class mean-confidence criterion.
      std::vector<size_t> high_quality;
      for (size_t i = 0; i < iprime.size(); ++i) {
        if (view.predicted[i] == iprime.observed_labels[i]) {
          high_quality.push_back(i);
        }
      }
      high_quality = FilterHighQualityByConfidence(
          view.probs, view.predicted, high_quality,
          config.high_quality_strictness);
      high_quality_series->Append(static_cast<double>(high_quality.size()));
      if (high_quality.empty() || ambiguous.empty()) return;
      if (config.ablation.use_contrastive) {
        // Graceful degradation (docs/ROBUSTNESS.md): when the class KNN
        // index cannot be built or produces no picks (every per-class pool
        // empty), fall back to the Random strategy over the high-quality
        // pool instead of training on an empty contrastive set. The
        // condition is a deterministic function of the data, so a degraded
        // run is still reproducible.
        // The index is shareable across requests whenever the model is
        // still at the cached version and I' has the same positions: its
        // other inputs (high_quality, labels) are deterministic functions
        // of the cached view and the fixed candidate set.
        std::shared_ptr<const ClassKnnIndex> index;
        if (model_at_base) {
          index = cache->FindIndex(base_version, pool_key);
        }
        try {
          if (index == nullptr) {
            index = std::make_shared<const ClassKnnIndex>(
                view.features, iprime.observed_labels, high_quality,
                iprime.num_classes);
            if (model_at_base) {
              cache->StoreIndex(base_version, pool_key, index);
            }
          }
          *picks = ContrastiveSampling(
              incremental, ambiguous, ambiguous_features, *index,
              *inputs.conditional, config.contrastive_k,
              config.ablation.use_probability_label, rng);
        } catch (const std::exception&) {
          picks->clear();
        }
        if (picks->empty()) {
          sampling_fallbacks->Increment();
          const size_t budget = config.contrastive_k * ambiguous.size();
          *picks = PolicySampling(SamplingPolicy::kRandom, view.probs,
                                  high_quality, budget, rng);
        }
      } else {
        // ENLD-1: same budget, but uniform picks from the high-quality
        // pool instead of feature-nearest ones.
        const size_t budget = config.contrastive_k * ambiguous.size();
        picks->reserve(budget);
        for (size_t i = 0; i < budget; ++i) {
          picks->push_back(high_quality[rng.UniformInt(high_quality.size())]);
        }
      }
      return;
    }

    // Alternative policies (Section V-D): pool = I' (the label(D)-related
    // candidates, matching the fair-comparison restriction used for the
    // baselines), budget = k |A|.
    const size_t budget = config.contrastive_k * std::max<size_t>(
        ambiguous.size(), 1);
    *picks = PolicySampling(config.policy, view.probs, all_iprime_rows,
                            budget, rng);
    if (config.policy == SamplingPolicy::kPseudo) {
      pick_labels->reserve(picks->size());
      for (size_t pos : *picks) {
        pick_labels->push_back(view.predicted[pos]);
      }
    }
  };

  // Initial sets (Algorithm 1, lines 5–7).
  ModelView view = [&] {
    ENLD_TRACE_SPAN("detect/inference");
    return compute_iprime_view();
  }();
  Matrix d_features = incremental.empty() ? Matrix()
                                          : model->Features(incremental.features);
  std::vector<size_t> ambiguous = AmbiguousPositions(model, incremental);

  std::vector<size_t> contrastive;
  std::vector<int> contrastive_labels;
  {
    ENLD_TRACE_SPAN("detect/sampling");
    resample(view, ambiguous, d_features, &contrastive, &contrastive_labels);
  }
  contrastive_picks->Add(contrastive.size());
  resample_rounds->Increment();

  std::vector<size_t> clean_positions;  // S as sorted positions of D.
  std::vector<bool> in_clean(incremental.size(), false);
  Dataset train_set = BuildTrainingSet(iprime, contrastive,
                                       contrastive_labels, incremental,
                                       clean_positions);
  train_set_series->Append(static_cast<double>(train_set.size()));

  // Warm-up (Algorithm 3, line 4): short training on C, keeping the
  // weights with the best validation accuracy on D.
  if (config.warmup_epochs > 0 && !train_set.empty()) {
    ENLD_TRACE_SPAN("detect/warmup");
    TrainConfig warm = config.finetune;
    warm.epochs = config.warmup_epochs;
    warm.select_best_on_validation = true;
    warm.seed = rng.NextUInt64();
    TrainModel(model, train_set, &incremental, warm);
    model_at_base = false;
  }

  // Missing-label pseudo votes, accumulated over every step (Section V-H).
  const std::vector<size_t> missing = incremental.MissingLabelIndices();
  std::vector<std::vector<uint32_t>> missing_votes(
      incremental.size(),
      std::vector<uint32_t>());
  for (size_t pos : missing) {
    missing_votes[pos].assign(incremental.num_classes, 0);
  }

  // S_c bookkeeping: per-iteration membership counts over I_c positions.
  std::vector<uint32_t> candidate_counts(candidate.size(), 0);

  const size_t majority_threshold =
      config.ablation.use_majority_voting
          ? config.steps_per_iteration / 2 + 1
          : 1;

  TrainConfig step_config = config.finetune;
  step_config.epochs = 1;
  step_config.select_best_on_validation = false;

  for (size_t iter = 0; iter < config.iterations; ++iter) {
    telemetry::ScopedSpan iteration_span("detect/iteration");
    std::vector<uint32_t> count(incremental.size(), 0);
    for (size_t step = 0; step < config.steps_per_iteration; ++step) {
      if (!train_set.empty()) {
        ENLD_TRACE_SPAN("detect/finetune");
        step_config.seed = rng.NextUInt64();
        TrainModel(model, train_set, /*validation=*/nullptr, step_config);
        model_at_base = false;
      }
      ENLD_TRACE_SPAN("detect/voting");
      votes_cast->Add(incremental.size());
      const std::vector<int> predicted = model->Predict(incremental.features);
      // Each sample owns its vote slots, so the scan chunks freely.
      ParallelFor(0, incremental.size(), 1024, [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          const int observed = incremental.observed_labels[i];
          if (observed == kMissingLabel) {
            ++missing_votes[i][predicted[i]];
          } else if (predicted[i] == observed) {
            ++count[i];
          }
        }
      });
    }

    // Majority voting (line 11): a sample joins S when it agreed in a
    // strict majority of this iteration's steps.
    size_t admitted_this_iteration = 0;
    const double steps =
        static_cast<double>(config.steps_per_iteration);
    for (size_t i = 0; i < incremental.size(); ++i) {
      if (incremental.observed_labels[i] != kMissingLabel) {
        vote_margin->Observe(static_cast<double>(count[i]) / steps);
      }
      if (!in_clean[i] && count[i] >= majority_threshold) {
        in_clean[i] = true;
        clean_positions.push_back(i);
        ++admitted_this_iteration;
      }
    }
    clean_admitted->Add(admitted_this_iteration);
    iteration_span.AddStat("clean_admitted",
                           static_cast<double>(admitted_this_iteration));
    clean_series->Append(static_cast<double>(clean_positions.size()));
    out.result.per_iteration_clean.push_back(clean_positions);

    // Sample update & re-sampling (lines 15–21).
    {
      ENLD_TRACE_SPAN("detect/inference");
      view = compute_iprime_view();
      if (!incremental.empty()) {
        d_features = model->Features(incremental.features);
      }
      ambiguous = AmbiguousPositions(model, incremental);
    }
    ambiguous_series->Append(static_cast<double>(ambiguous.size()));
    out.result.per_iteration_ambiguous.push_back(ambiguous.size());

    // Inventory data selection: count candidates the current model agrees
    // with; the stringency comes from requiring agreement in *every*
    // iteration (the confidence filter stays specific to contrastive
    // sampling — here it would shrink S_c far below what the model update
    // needs).
    for (size_t i = 0; i < iprime.size(); ++i) {
      if (view.predicted[i] == iprime.observed_labels[i]) {
        ++candidate_counts[iprime_positions[i]];
      }
    }

    const bool last_iteration = iter + 1 == config.iterations;
    if (!last_iteration) {
      {
        ENLD_TRACE_SPAN("detect/sampling");
        resample(view, ambiguous, d_features, &contrastive,
                 &contrastive_labels);
        train_set = BuildTrainingSet(
            iprime, contrastive, contrastive_labels, incremental,
            config.ablation.merge_clean_into_c ? clean_positions
                                               : std::vector<size_t>());
      }
      contrastive_picks->Add(contrastive.size());
      resample_rounds->Increment();
      train_set_series->Append(static_cast<double>(train_set.size()));
    }
  }

  // Final S / N partition over labeled samples.
  std::sort(clean_positions.begin(), clean_positions.end());
  for (size_t i = 0; i < incremental.size(); ++i) {
    if (incremental.observed_labels[i] == kMissingLabel) continue;
    if (in_clean[i]) {
      out.result.clean_indices.push_back(i);
    } else {
      out.result.noisy_indices.push_back(i);
    }
  }

  // Recovered labels for missing-label samples.
  if (config.recover_missing_labels && !missing.empty()) {
    out.result.recovered_labels.assign(incremental.size(), kMissingLabel);
    for (size_t pos : missing) {
      const auto& votes = missing_votes[pos];
      int best = kMissingLabel;
      uint32_t best_votes = 0;
      for (int c = 0; c < incremental.num_classes; ++c) {
        if (votes[c] > best_votes) {
          best_votes = votes[c];
          best = c;
        }
      }
      out.result.recovered_labels[pos] = best;
    }
  }

  // S_c' — stringent filter: clean in every iteration.
  if (config.iterations > 0) {
    for (size_t i = 0; i < candidate.size(); ++i) {
      if (candidate_counts[i] == config.iterations) {
        out.selected_candidate.push_back(i);
      }
    }
  }
  return out;
}

}  // namespace enld
