#ifndef ENLD_ENLD_PIPELINE_H_
#define ENLD_ENLD_PIPELINE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "enld/platform.h"

namespace enld {

/// Asynchronous request pipeline in front of a DataPlatform (Fig. 1's
/// serving loop, decoupled from request arrival).
///
/// Producers call Submit from any thread; requests land in a bounded MPSC
/// queue and a single dispatcher thread drains them in batches of up to
/// `batch_size`, serving each through DataPlatform::Process. With a
/// snapshot hook configured, the post-request snapshot is captured
/// synchronously on the dispatcher thread, but its durable write runs on
/// the shared thread pool (common/parallel.h), overlapping store IO with
/// the next request's detection.
///
/// Determinism contract: detection results are byte-identical to calling
/// Process sequentially in submission order, at any thread count. Two
/// properties make this hold without any per-request re-seeding tricks:
/// the dispatcher completes requests strictly in submission order (the
/// framework's RNG stream and S_c accumulation advance exactly as in the
/// sequential path), and deferred snapshot writes only touch state that
/// was copied out synchronously before the next request started. Requests
/// are numbered by a monotonic submission sequence; that sequence — not
/// wall clock — is the identity used in responses and audit trails.
///
/// Deadline semantics: the platform's request_deadline_seconds budget is
/// enforced inside Process (admission + detection checks) — it is a
/// *service-time* budget, so a request that merely waited behind a slow
/// one still gets its full budget once picked up. With
/// `drop_stale_in_queue` set, the pipeline additionally fails a request
/// whose queue wait alone already exceeded the budget, without touching
/// the platform at all (load-shedding for latency-sensitive callers that
/// would ignore a late answer anyway). Either way the response carries
/// kDeadlineExceeded and the next queued request is served normally — a
/// slow request degrades, the stream never stalls.
struct PipelineConfig {
  /// Maximum requests waiting in the submission queue; Submit blocks the
  /// producer (backpressure) while the queue is full. Must be >= 1.
  size_t queue_capacity = 64;
  /// Maximum requests the dispatcher claims per drain cycle. Batching
  /// amortizes queue synchronization and keeps the snapshot writer busy
  /// with a steady stream of overlapped writes; it never changes results.
  size_t batch_size = 1;
  /// Fail requests whose queue wait alone exceeded their queue-wait
  /// budget, without serving them (see the deadline semantics above). Off
  /// by default: the deadline bounds service time, not time-in-system.
  bool drop_stale_in_queue = false;
  /// Queue-wait budget in seconds, decoupled from the service deadline so
  /// ops can tune shedding independently of service budgets
  /// (docs/SERVING.md §5): it bounds the wait `drop_stale_in_queue` sheds
  /// on, and feeds the head-of-line alarm (`hol_blocked` counter +
  /// "pipeline/hol_blocked" telemetry) that fires whenever a request
  /// waited past the budget — shed or not. 0 falls back to the request's
  /// service deadline (the platform config's request_deadline_seconds, or
  /// the per-request override), the original coupled behavior.
  double queue_wait_budget_seconds = 0.0;
  /// Optional snapshot hook, typically
  ///   [&] { return platform.BeginSnapshot(dir); }
  /// Called on the dispatcher thread after every successful request; the
  /// returned closure (the durable write) is enqueued on the shared pool.
  /// Writes are serialized with each other — the next capture waits for
  /// the previous write — so snapshot sequence numbers advance in request
  /// order, but detection of later requests proceeds concurrently.
  std::function<StatusOr<std::function<Status()>>()> snapshot_capture;
  /// Optional background integrity scrub, typically
  ///   [&] { auto r = store::ScrubSnapshotStore(dir); ... }
  /// returning the number of findings. Runs on the shared pool — off the
  /// request path — every `scrub_every` completed requests, reusing the
  /// snapshot-write serialization: the scrub waits for the in-flight
  /// snapshot write, and the next write waits for the scrub, so the
  /// scrubber never reads a store mid-publish. Results land in the
  /// scrub_runs / scrub_findings counters and pipeline/scrub_* telemetry
  /// (docs/ROBUSTNESS.md §"Self-healing runbook").
  std::function<StatusOr<uint64_t>()> scrub_hook;
  /// Completed requests between background scrubs; 0 disables scrubbing.
  size_t scrub_every = 0;
  /// Completed requests remembered in the recent-request ring buffer
  /// (RecentRequests) for the stats endpoint; oldest entries fall off.
  /// Must be >= 1.
  size_t recent_ring_capacity = 64;
};

/// Per-request options carried alongside the dataset.
struct SubmitOptions {
  /// Service-deadline override in seconds for this request only —
  /// propagated from the wire deadline header by the RPC front-end
  /// (docs/SERVING.md §4). Negative (the default) applies the platform
  /// config's request_deadline_seconds; 0 explicitly disables the
  /// deadline for this request; positive values replace the config's
  /// budget (they may extend it as well as tighten it).
  double deadline_seconds = -1.0;
  /// Client-set observability id from the frame header (0 = unset).
  /// Carried into Process, the audit records, the recent-request ring,
  /// and the response (docs/OBSERVABILITY.md).
  uint64_t request_id = 0;
};

/// Everything the caller needs to render one completed request, snapshot
/// at completion time on the dispatcher thread. Reading the platform
/// directly from a producer thread races with later requests; reading the
/// response does not.
struct PipelineResponse {
  /// 1-based submission sequence number.
  uint64_t sequence = 0;
  /// The SubmitOptions request id, echoed through the pipeline (0 = unset).
  uint64_t request_id = 0;
  StatusOr<DetectionResult> result = Status::Internal("request not processed");
  /// Platform stats immediately after this request completed.
  PlatformStats stats_after;
  /// framework().selected_clean_count() immediately after this request.
  size_t clean_bank_after = 0;
  /// Time spent queued before the dispatcher picked the request up.
  double queue_seconds = 0.0;
  /// Time spent inside DataPlatform::Process.
  double process_seconds = 0.0;
  /// Stage breakdown of Process (platform last_request_timings); zero for
  /// requests shed in the queue or failed before the stage ran.
  double admission_seconds = 0.0;
  double detect_seconds = 0.0;
};

/// One completed request as remembered by the recent-request ring buffer —
/// the per-request trace record the stats endpoint exposes. The aggregated
/// span tree cannot carry per-request identity (spans merge by name), so
/// this ring is where a live request id can actually be found again.
struct RequestRecord {
  uint64_t sequence = 0;
  uint64_t request_id = 0;
  StatusCode status = StatusCode::kOk;
  double queue_seconds = 0.0;
  double admission_seconds = 0.0;
  double detect_seconds = 0.0;
  double process_seconds = 0.0;
};

class RequestPipeline {
 public:
  /// `platform` must be initialized and must outlive the pipeline; the
  /// dispatcher is the only thread touching it between construction and
  /// Shutdown.
  RequestPipeline(DataPlatform* platform, PipelineConfig config);
  ~RequestPipeline();

  RequestPipeline(const RequestPipeline&) = delete;
  RequestPipeline& operator=(const RequestPipeline&) = delete;

  /// Enqueues one detection request; blocks while the queue is full. The
  /// future resolves when the dispatcher completes the request — in
  /// submission order. After Shutdown, resolves immediately with
  /// FailedPrecondition.
  std::future<PipelineResponse> Submit(Dataset incremental);

  /// Same, with per-request options (e.g. a wire-propagated deadline).
  std::future<PipelineResponse> Submit(Dataset incremental,
                                       SubmitOptions options);

  /// Drains every queued request, waits for the in-flight snapshot write,
  /// stops the dispatcher, and returns the first deferred snapshot error
  /// (OK when every write landed). Idempotent; also run by the destructor.
  Status Shutdown();

  /// First error produced by a deferred snapshot write, latched; OK while
  /// all writes (so far) succeeded. Complete only after Shutdown.
  Status snapshot_status() const;

  /// Monotonic pipeline counters (also exported as pipeline/* telemetry).
  struct Counters {
    uint64_t submitted = 0;
    uint64_t completed = 0;
    uint64_t batches = 0;
    uint64_t largest_batch = 0;
    uint64_t queue_deadline_drops = 0;
    /// Requests whose queue wait exceeded the queue-wait budget — the
    /// head-of-line-blocking alarm. Counts shed and served requests alike,
    /// so the alarm fires even when drop_stale_in_queue is off.
    uint64_t hol_blocked = 0;
    uint64_t snapshot_writes = 0;
    /// Background store scrubs completed and the total findings they
    /// surfaced (0 findings = healthy store).
    uint64_t scrub_runs = 0;
    uint64_t scrub_findings = 0;
  };
  Counters counters() const;

  /// Copy of the recent-request ring, oldest first (at most
  /// recent_ring_capacity entries).
  std::vector<RequestRecord> RecentRequests() const;

  /// Requests currently waiting in the submission queue (excludes the
  /// batch the dispatcher already claimed).
  size_t queue_depth() const;

 private:
  struct PendingRequest {
    uint64_t sequence = 0;
    Dataset dataset;
    SubmitOptions options;
    std::promise<PipelineResponse> promise;
    Stopwatch queued;
  };

  void DispatcherLoop();
  void CompleteRequest(PendingRequest& request);
  /// Captures the post-request snapshot and enqueues its durable write.
  void BeginDeferredSnapshot();
  /// Enqueues a background store scrub on the shared pool, serialized
  /// with snapshot writes. Dispatcher thread only.
  void BeginBackgroundScrub();
  /// Joins the in-flight snapshot write, latching any error. Dispatcher
  /// thread only.
  void AwaitSnapshotWrite();

  DataPlatform* platform_;
  PipelineConfig config_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;  ///< dispatcher waits for work
  std::condition_variable space_cv_;  ///< producers wait for capacity
  std::deque<PendingRequest> queue_;
  bool stopping_ = false;
  uint64_t next_sequence_ = 0;
  Counters counters_;
  std::deque<RequestRecord> recent_;  ///< ring buffer, guarded by mu_

  /// In-flight deferred snapshot write; dispatcher thread only.
  std::future<Status> snapshot_write_;
  mutable std::mutex snapshot_mu_;
  Status snapshot_status_;  ///< guarded by snapshot_mu_

  std::thread dispatcher_;
};

}  // namespace enld

#endif  // ENLD_ENLD_PIPELINE_H_
