#ifndef ENLD_ENLD_CONTRASTIVE_H_
#define ENLD_ENLD_CONTRASTIVE_H_

#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "knn/class_index.h"

namespace enld {

/// Draws the estimated true label j for an ambiguous sample observed as
/// `observed`: j ~ P̃(y* = · | ỹ = observed) restricted to the labels with
/// `available[j]` (Corollary 1 restricts to label(H')). Falls back to the
/// observed label when it is available and no restricted mass exists, and
/// to a uniform available label otherwise. Returns -1 when nothing is
/// available.
int RandomLabel(int observed,
                const std::vector<std::vector<double>>& conditional,
                const std::vector<bool>& available, Rng& rng);

/// Algorithm 2 — contrastive sampling. For each ambiguous sample of the
/// incremental dataset: draw a plausible true label j, then take its k
/// nearest high-quality candidate samples of class j in feature space.
///
/// `index` must be built over the candidate set's feature representations
/// restricted to the (restricted + confidence-filtered) high-quality rows;
/// `ambiguous_features` must hold the feature vectors of the incremental
/// dataset under the same model.
///
/// Returns a *multiset* of candidate-set positions: duplicates are
/// intentional and act as the paper's implicit re-weighting of samples that
/// serve several ambiguous samples at once.
std::vector<size_t> ContrastiveSampling(
    const Dataset& incremental, const std::vector<size_t>& ambiguous,
    const Matrix& ambiguous_features, const ClassKnnIndex& index,
    const std::vector<std::vector<double>>& conditional, size_t k,
    bool use_probability_label, Rng& rng);

}  // namespace enld

#endif  // ENLD_ENLD_CONTRASTIVE_H_
