#include "enld/contrastive.h"

#include "common/check.h"

namespace enld {

int RandomLabel(int observed,
                const std::vector<std::vector<double>>& conditional,
                const std::vector<bool>& available, Rng& rng) {
  const int classes = static_cast<int>(conditional.size());
  ENLD_CHECK_GE(observed, 0);
  ENLD_CHECK_LT(observed, classes);
  ENLD_CHECK_EQ(available.size(), conditional.size());

  std::vector<double> weights(classes, 0.0);
  double mass = 0.0;
  for (int j = 0; j < classes; ++j) {
    if (available[j]) {
      weights[j] = conditional[observed][j];
      mass += weights[j];
    }
  }
  if (mass > 0.0) return static_cast<int>(rng.Discrete(weights));

  if (available[observed]) return observed;

  std::vector<int> options;
  for (int j = 0; j < classes; ++j) {
    if (available[j]) options.push_back(j);
  }
  if (options.empty()) return -1;
  return options[rng.UniformInt(options.size())];
}

std::vector<size_t> ContrastiveSampling(
    const Dataset& incremental, const std::vector<size_t>& ambiguous,
    const Matrix& ambiguous_features, const ClassKnnIndex& index,
    const std::vector<std::vector<double>>& conditional, size_t k,
    bool use_probability_label, Rng& rng) {
  ENLD_CHECK_GT(k, 0u);
  ENLD_CHECK_EQ(ambiguous_features.rows(), incremental.size());

  std::vector<bool> available(index.num_classes(), false);
  for (int c = 0; c < index.num_classes(); ++c) {
    available[c] = index.HasClass(c);
  }

  // Phase 1 (sequential): draw the estimated-true-label per ambiguous
  // sample. The rng is consumed in ambiguous order — the exact draw
  // sequence of the original one-pass loop — so the chosen labels do not
  // depend on the thread count.
  std::vector<int> query_labels;
  std::vector<size_t> query_rows;
  query_labels.reserve(ambiguous.size());
  query_rows.reserve(ambiguous.size());
  for (size_t pos : ambiguous) {
    const int observed = incremental.observed_labels[pos];
    ENLD_CHECK_NE(observed, kMissingLabel);
    int j;
    if (use_probability_label) {
      j = RandomLabel(observed, conditional, available, rng);
    } else {
      // ENLD-4 ablation: query the observed label directly.
      j = available[observed]
              ? observed
              : RandomLabel(observed, conditional, available, rng);
    }
    if (j < 0) continue;  // No high-quality sample available at all.
    query_labels.push_back(j);
    query_rows.push_back(pos);
  }

  // Phase 2 (parallel): the class-constrained k-nearest queries — the
  // dominant cost of Algorithm 2 — fan out across the pool.
  const std::vector<std::vector<Neighbor>> batched =
      index.NearestBatch(query_labels, ambiguous_features, query_rows, k);

  std::vector<size_t> selected;
  selected.reserve(k * ambiguous.size());
  for (const auto& neighbors : batched) {
    for (const Neighbor& n : neighbors) selected.push_back(n.index);
  }
  return selected;
}

}  // namespace enld
