#ifndef ENLD_ENLD_FRAMEWORK_H_
#define ENLD_ENLD_FRAMEWORK_H_

#include <string>
#include <vector>

#include "baselines/detector.h"
#include "common/rng.h"
#include "common/status.h"
#include "enld/config.h"
#include "enld/feature_cache.h"
#include "nn/confident_joint.h"
#include "nn/general_model.h"

namespace enld {

/// The complete restorable state of an EnldFramework, as captured by
/// CaptureState and persisted by the durable store (src/store/): the
/// general model θ (architecture + weights), the I_t / I_c split, P̃, the
/// accumulated S_c membership and the RNG stream position. Restoring this
/// state into a framework built from the same EnldConfig reproduces the
/// byte-exact behaviour of the original instance for all future calls.
struct EnldFrameworkState {
  std::vector<size_t> model_dims;
  std::vector<float> model_weights;
  Dataset train_set;      // I_t.
  Dataset candidate_set;  // I_c.
  /// P̃(y* = j | ỹ = i), square over all classes.
  std::vector<std::vector<double>> conditional;
  /// S_c membership (0/1), parallel to candidate_set.
  std::vector<uint8_t> selected_clean;
  RngState rng;
};

/// The ENLD framework (Algorithm 1): one-time model initialization and
/// probability estimation on the inventory, then per-arriving-dataset
/// fine-grained detection with contrastive sampling, plus the optional
/// model-update process (Algorithm 4).
///
/// Usage:
///   EnldFramework enld(config);
///   enld.Setup(inventory);                  // Stage 0.
///   for (const Dataset& d : arriving) {
///     DetectionResult r = enld.Detect(d);   // Stage 1 per dataset.
///   }
///   enld.UpdateModel();                     // Optional refresh.
class EnldFramework : public NoisyLabelDetector {
 public:
  explicit EnldFramework(const EnldConfig& config);

  /// Splits I into I_t / I_c, trains the general model θ on I_t with
  /// mixup, and estimates P̃(y* = j | ỹ = i) on I_c (Section IV-B).
  void Setup(const Dataset& inventory) override;

  /// Fine-grained noisy-label detection on one arriving dataset. Fine-tunes
  /// a *copy* of θ; the general model itself only changes via UpdateModel.
  /// Also accumulates the inventory clean-selection S_c.
  DetectionResult Detect(const Dataset& incremental) override;

  std::string name() const override {
    return SamplingPolicyKey(config_.policy);
  }
  std::string display_name() const override {
    return SamplingPolicyName(config_.policy);
  }

  /// Algorithm 4: retrains the general model on the accumulated S_c, swaps
  /// I_t and I_c, and re-estimates P̃ on the new candidate set. Fails with
  /// FailedPrecondition when no clean inventory samples have been selected
  /// yet (run Detect first).
  Status UpdateModel();

  /// The general model θ (valid after Setup).
  MlpModel* general_model() { return general_.model.get(); }
  /// The candidate set I_c.
  const Dataset& candidate_set() const { return general_.candidate_set; }
  /// The training set I_t.
  const Dataset& train_set() const { return general_.train_set; }
  /// P̃(y* = j | ỹ = i), row i = observed label.
  const std::vector<std::vector<double>>& conditional() const {
    return conditional_;
  }
  /// Number of inventory samples currently in S_c.
  size_t selected_clean_count() const;
  /// Positions of S_c inside candidate_set().
  std::vector<size_t> selected_clean_positions() const;

  const EnldConfig& config() const { return config_; }

  /// The cross-request feature/KNN-index cache. Its model version bumps on
  /// Setup, UpdateModel, RestoreState and InvalidateFeatureCache; Detect
  /// passes it to the fine-grained run when `feature_cache_enabled()`.
  const FeatureCache& feature_cache() const { return feature_cache_; }

  /// True when EnldConfig::use_feature_cache is set and the
  /// ENLD_FEATURE_CACHE env var (read at construction) does not disable it.
  bool feature_cache_enabled() const { return feature_cache_enabled_; }

  /// Explicit ops-level invalidation: drops every cached entry and bumps
  /// the model version. Never changes detection output — only whether the
  /// next request recomputes its view/index.
  void InvalidateFeatureCache() { feature_cache_.BumpModelVersion(); }

  /// Copies out the complete framework state for snapshotting. Requires
  /// Setup (or RestoreState) to have run.
  EnldFrameworkState CaptureState() const;

  /// Replaces the framework's state with a previously captured one,
  /// skipping Setup entirely. Validates the state first and fails with
  /// InvalidArgument — leaving the framework untouched — on any
  /// inconsistency (mismatched column lengths, weight counts, a
  /// non-square P̃, a degenerate RNG state).
  Status RestoreState(EnldFrameworkState state);

 private:
  EnldConfig config_;
  GeneralModel general_;
  std::vector<std::vector<double>> conditional_;
  /// S_c membership, parallel to general_.candidate_set.
  std::vector<bool> selected_clean_;
  Rng rng_;
  FeatureCache feature_cache_;
  bool feature_cache_enabled_ = true;
};

}  // namespace enld

#endif  // ENLD_ENLD_FRAMEWORK_H_
