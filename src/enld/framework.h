#ifndef ENLD_ENLD_FRAMEWORK_H_
#define ENLD_ENLD_FRAMEWORK_H_

#include <string>
#include <vector>

#include "baselines/detector.h"
#include "common/rng.h"
#include "common/status.h"
#include "enld/config.h"
#include "nn/confident_joint.h"
#include "nn/general_model.h"

namespace enld {

/// The ENLD framework (Algorithm 1): one-time model initialization and
/// probability estimation on the inventory, then per-arriving-dataset
/// fine-grained detection with contrastive sampling, plus the optional
/// model-update process (Algorithm 4).
///
/// Usage:
///   EnldFramework enld(config);
///   enld.Setup(inventory);                  // Stage 0.
///   for (const Dataset& d : arriving) {
///     DetectionResult r = enld.Detect(d);   // Stage 1 per dataset.
///   }
///   enld.UpdateModel();                     // Optional refresh.
class EnldFramework : public NoisyLabelDetector {
 public:
  explicit EnldFramework(const EnldConfig& config);

  /// Splits I into I_t / I_c, trains the general model θ on I_t with
  /// mixup, and estimates P̃(y* = j | ỹ = i) on I_c (Section IV-B).
  void Setup(const Dataset& inventory) override;

  /// Fine-grained noisy-label detection on one arriving dataset. Fine-tunes
  /// a *copy* of θ; the general model itself only changes via UpdateModel.
  /// Also accumulates the inventory clean-selection S_c.
  DetectionResult Detect(const Dataset& incremental) override;

  std::string name() const override {
    return SamplingPolicyName(config_.policy);
  }

  /// Algorithm 4: retrains the general model on the accumulated S_c, swaps
  /// I_t and I_c, and re-estimates P̃ on the new candidate set. Fails with
  /// FailedPrecondition when no clean inventory samples have been selected
  /// yet (run Detect first).
  Status UpdateModel();

  /// The general model θ (valid after Setup).
  MlpModel* general_model() { return general_.model.get(); }
  /// The candidate set I_c.
  const Dataset& candidate_set() const { return general_.candidate_set; }
  /// The training set I_t.
  const Dataset& train_set() const { return general_.train_set; }
  /// P̃(y* = j | ỹ = i), row i = observed label.
  const std::vector<std::vector<double>>& conditional() const {
    return conditional_;
  }
  /// Number of inventory samples currently in S_c.
  size_t selected_clean_count() const;
  /// Positions of S_c inside candidate_set().
  std::vector<size_t> selected_clean_positions() const;

  const EnldConfig& config() const { return config_; }

 private:
  EnldConfig config_;
  GeneralModel general_;
  std::vector<std::vector<double>> conditional_;
  /// S_c membership, parallel to general_.candidate_set.
  std::vector<bool> selected_clean_;
  Rng rng_;
};

}  // namespace enld

#endif  // ENLD_ENLD_FRAMEWORK_H_
