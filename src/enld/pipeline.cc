#include "enld/pipeline.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "common/parallel.h"
#include "common/telemetry/metrics.h"

namespace enld {

namespace {

struct PipelineMetrics {
  telemetry::Counter* submitted;
  telemetry::Counter* completed;
  telemetry::Counter* batches;
  telemetry::Counter* queue_deadline_drops;
  telemetry::Counter* hol_blocked;
  telemetry::Counter* snapshot_writes;
  telemetry::Counter* scrub_runs;
  telemetry::Counter* scrub_findings;
  telemetry::Counter* scrub_failures;
  // Per-request latency histograms (log-scale buckets, _seconds suffix =
  // cost metrics, outside the cross-thread determinism contract).
  telemetry::Histogram* queue_wait_seconds;
  telemetry::Histogram* admission_seconds;
  telemetry::Histogram* detect_seconds;
  telemetry::Histogram* snapshot_publish_seconds;
  telemetry::Histogram* scrub_seconds;

  static const PipelineMetrics& Get() {
    static const PipelineMetrics m = [] {
      auto& registry = telemetry::MetricsRegistry::Global();
      const std::vector<double> bounds = telemetry::LogScaleBuckets();
      return PipelineMetrics{
          registry.GetCounter("pipeline/submitted"),
          registry.GetCounter("pipeline/completed"),
          registry.GetCounter("pipeline/batches"),
          registry.GetCounter("pipeline/queue_deadline_drops"),
          registry.GetCounter("pipeline/hol_blocked"),
          registry.GetCounter("pipeline/snapshot_writes"),
          registry.GetCounter("pipeline/scrub_runs"),
          registry.GetCounter("pipeline/scrub_findings"),
          registry.GetCounter("pipeline/scrub_failures"),
          registry.GetHistogram("pipeline/queue_wait_seconds", bounds),
          registry.GetHistogram("pipeline/admission_seconds", bounds),
          registry.GetHistogram("pipeline/detect_seconds", bounds),
          registry.GetHistogram("pipeline/snapshot_publish_seconds", bounds),
          registry.GetHistogram("pipeline/scrub_seconds", bounds)};
    }();
    return m;
  }
};

}  // namespace

RequestPipeline::RequestPipeline(DataPlatform* platform, PipelineConfig config)
    : platform_(platform), config_(std::move(config)) {
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
  if (config_.batch_size == 0) config_.batch_size = 1;
  if (config_.recent_ring_capacity == 0) config_.recent_ring_capacity = 1;
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

RequestPipeline::~RequestPipeline() { Shutdown(); }

std::future<PipelineResponse> RequestPipeline::Submit(Dataset incremental) {
  return Submit(std::move(incremental), SubmitOptions{});
}

std::future<PipelineResponse> RequestPipeline::Submit(Dataset incremental,
                                                      SubmitOptions options) {
  PendingRequest request;
  request.dataset = std::move(incremental);
  request.options = options;
  std::future<PipelineResponse> future = request.promise.get_future();

  {
    std::unique_lock<std::mutex> lock(mu_);
    // Bounded queue: block the producer until a slot frees up (or the
    // pipeline stops). This is the backpressure that keeps a burst of
    // arrivals from buffering unbounded datasets in memory.
    space_cv_.wait(lock, [this] {
      return stopping_ || queue_.size() < config_.queue_capacity;
    });
    if (stopping_) {
      PipelineResponse response;
      response.result =
          Status::FailedPrecondition("pipeline is shut down");
      request.promise.set_value(std::move(response));
      return future;
    }
    request.sequence = ++next_sequence_;
    request.queued.Restart();
    ++counters_.submitted;
    queue_.push_back(std::move(request));
  }
  PipelineMetrics::Get().submitted->Increment();
  queue_cv_.notify_one();
  return future;
}

void RequestPipeline::DispatcherLoop() {
  std::vector<PendingRequest> batch;
  while (true) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) break;  // stopping_ and fully drained
      const size_t take = std::min(config_.batch_size, queue_.size());
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      ++counters_.batches;
      counters_.largest_batch = std::max<uint64_t>(counters_.largest_batch,
                                                   batch.size());
    }
    // Claimed slots are free before the batch is served, so producers
    // refill the queue while detection runs.
    space_cv_.notify_all();
    PipelineMetrics::Get().batches->Increment();

    for (PendingRequest& request : batch) CompleteRequest(request);
  }
  AwaitSnapshotWrite();
}

void RequestPipeline::CompleteRequest(PendingRequest& request) {
  PipelineResponse response;
  response.sequence = request.sequence;
  response.request_id = request.options.request_id;
  response.queue_seconds = request.queued.ElapsedSeconds();
  PipelineMetrics::Get().queue_wait_seconds->Observe(response.queue_seconds);

  // The service budget for this request: the per-request override when one
  // was submitted (wire deadline header), else the platform config's.
  const double service_deadline =
      request.options.deadline_seconds >= 0.0
          ? request.options.deadline_seconds
          : platform_->config().request_deadline_seconds;
  // The queue-wait budget is its own knob; 0 falls back to the service
  // budget so existing drop_stale_in_queue configs behave as before.
  const double queue_budget = config_.queue_wait_budget_seconds > 0.0
                                  ? config_.queue_wait_budget_seconds
                                  : service_deadline;
  const bool waited_past_budget =
      queue_budget > 0.0 && response.queue_seconds > queue_budget;
  if (waited_past_budget) {
    // Head-of-line alarm: whatever sat in front of this request consumed
    // its whole queue budget. Counted even when the request is served
    // anyway, so ops can see HOL pressure before turning shedding on.
    PipelineMetrics::Get().hol_blocked->Increment();
  }
  bool dropped_in_queue = false;
  if (config_.drop_stale_in_queue && waited_past_budget) {
    // The request's whole budget evaporated in the queue: fail it without
    // touching the platform, so detection state (RNG stream included) is
    // exactly what it would be had the request never been submitted.
    dropped_in_queue = true;
    PipelineMetrics::Get().queue_deadline_drops->Increment();
    response.result = Status::DeadlineExceeded(
        "request spent " + std::to_string(response.queue_seconds) +
        "s queued, over its queue-wait budget of " +
        std::to_string(queue_budget) + "s");
  } else {
    Stopwatch service;
    response.result = platform_->Process(request.dataset,
                                         request.options.deadline_seconds,
                                         request.options.request_id);
    response.process_seconds = service.ElapsedSeconds();
    const RequestTimings& timings = platform_->last_request_timings();
    response.admission_seconds = timings.admission_seconds;
    response.detect_seconds = timings.detect_seconds;
    PipelineMetrics::Get().admission_seconds->Observe(
        timings.admission_seconds);
    if (timings.detect_seconds > 0.0) {
      PipelineMetrics::Get().detect_seconds->Observe(timings.detect_seconds);
    }
    if (response.result.ok()) BeginDeferredSnapshot();
  }

  response.stats_after = platform_->stats();
  response.clean_bank_after = platform_->framework().selected_clean_count();

  RequestRecord record;
  record.sequence = response.sequence;
  record.request_id = response.request_id;
  record.status = response.result.ok() ? StatusCode::kOk
                                       : response.result.status().code();
  record.queue_seconds = response.queue_seconds;
  record.admission_seconds = response.admission_seconds;
  record.detect_seconds = response.detect_seconds;
  record.process_seconds = response.process_seconds;
  bool scrub_due = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.completed;
    if (waited_past_budget) ++counters_.hol_blocked;
    if (dropped_in_queue) ++counters_.queue_deadline_drops;
    scrub_due = config_.scrub_hook && config_.scrub_every > 0 &&
                counters_.completed % config_.scrub_every == 0;
    recent_.push_back(record);
    while (recent_.size() > config_.recent_ring_capacity) {
      recent_.pop_front();
    }
  }
  PipelineMetrics::Get().completed->Increment();
  request.promise.set_value(std::move(response));
  if (scrub_due) BeginBackgroundScrub();
}

void RequestPipeline::BeginDeferredSnapshot() {
  if (!config_.snapshot_capture) return;
  // Serialize writes: snapshot seq numbers (and CURRENT) must advance in
  // request order, so the previous write has to land before the next
  // capture is taken. Detection of the *next* request still overlaps the
  // write enqueued below.
  AwaitSnapshotWrite();
  StatusOr<std::function<Status()>> deferred = config_.snapshot_capture();
  if (!deferred.ok()) {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    if (snapshot_status_.ok()) snapshot_status_ = deferred.status();
    return;
  }
  auto write = std::make_shared<std::function<Status()>>(
      std::move(deferred).value());
  auto promise = std::make_shared<std::promise<Status>>();
  snapshot_write_ = promise->get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.snapshot_writes;
  }
  PipelineMetrics::Get().snapshot_writes->Increment();
  // The publish histogram times the durable write itself, on whatever pool
  // thread runs it — the capture cost is already inside detect/process.
  ParallelEnqueue([write, promise] {
    Stopwatch publish;
    Status written = (*write)();
    PipelineMetrics::Get().snapshot_publish_seconds->Observe(
        publish.ElapsedSeconds());
    promise->set_value(std::move(written));
  });
}

void RequestPipeline::BeginBackgroundScrub() {
  // The scrub reads the same store the deferred writes publish to, so it
  // rides the snapshot-write serialization chain: it starts only after
  // the in-flight write landed, and the next capture waits for it. The
  // request path never blocks on the scrub itself — only the *snapshot*
  // of a later request would, exactly as it waits for any write.
  AwaitSnapshotWrite();
  auto hook = config_.scrub_hook;
  auto promise = std::make_shared<std::promise<Status>>();
  snapshot_write_ = promise->get_future();
  ParallelEnqueue([this, hook, promise] {
    Stopwatch scrub;
    StatusOr<uint64_t> findings = hook();
    PipelineMetrics::Get().scrub_seconds->Observe(scrub.ElapsedSeconds());
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.scrub_runs;
      if (findings.ok()) counters_.scrub_findings += findings.value();
    }
    PipelineMetrics::Get().scrub_runs->Increment();
    if (findings.ok()) {
      for (uint64_t i = 0; i < findings.value(); ++i) {
        PipelineMetrics::Get().scrub_findings->Increment();
      }
    } else {
      PipelineMetrics::Get().scrub_failures->Increment();
    }
    // A failed scrub (e.g. no snapshot written yet) is telemetry, not a
    // pipeline error: it must not poison snapshot_status_.
    promise->set_value(Status::OK());
  });
}

void RequestPipeline::AwaitSnapshotWrite() {
  if (!snapshot_write_.valid()) return;
  const Status written = snapshot_write_.get();
  if (!written.ok()) {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    if (snapshot_status_.ok()) snapshot_status_ = written;
  }
}

Status RequestPipeline::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  return snapshot_status();
}

Status RequestPipeline::snapshot_status() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_status_;
}

RequestPipeline::Counters RequestPipeline::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::vector<RequestRecord> RequestPipeline::RecentRequests() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<RequestRecord>(recent_.begin(), recent_.end());
}

size_t RequestPipeline::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace enld
