#ifndef ENLD_ENLD_PLATFORM_H_
#define ENLD_ENLD_PLATFORM_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "enld/admission.h"
#include "enld/framework.h"

namespace enld {

/// Configuration of the DataPlatform service façade.
struct DataPlatformConfig {
  EnldConfig enld;
  /// Canonical registry key of the detector serving Process requests.
  /// "enld" (the default) is the built-in framework, configured via the
  /// `enld` field above and eligible for model updates and snapshots. Any
  /// other key requires the detector instance to be installed via
  /// InstallDetector before Initialize —
  /// detect::ConfigurePlatformDetector (src/detect/platform_detector.h)
  /// resolves the key through the registry and installs in one call; link
  /// the `enld_detect` (or umbrella `enld`) target to use it.
  std::string detector = "enld";
  /// Registry options for the named detector (validated, typed — see
  /// docs/DETECTORS.md), e.g. {{"epochs", "5"}}. Must stay empty for
  /// "enld": the built-in framework is configured via `enld` above.
  std::map<std::string, std::string> detector_options;
  /// Automatically refresh the general model (Algorithm 4) after this many
  /// detection requests; 0 disables auto-updates.
  size_t update_every = 0;
  /// An auto-update is skipped (and retried after the next request) until
  /// the accumulated clean-inventory selection reaches this size — updating
  /// from a tiny S_c degrades the model instead of improving it.
  size_t min_update_samples = 200;
  /// Per-sample admission control (docs/ROBUSTNESS.md). Not part of the
  /// snapshot config fingerprint: strictness may change across restarts
  /// without orphaning existing snapshots.
  AdmissionConfig admission;
  /// Per-request wall-clock budget for Process, in seconds; 0 disables the
  /// deadline. Measured from request entry (queue wait excluded — the
  /// pipeline accounts that separately) and checked after admission and
  /// after detection: an over-budget request returns kDeadlineExceeded and
  /// is audited instead of stalling the stream behind it. An ops knob like
  /// admission — excluded from the snapshot config fingerprint.
  double request_deadline_seconds = 0.0;
  /// Keep-last-N retention for SaveSnapshot: after a successful save, all
  /// but the newest N snapshots are garbage-collected (0 keeps every
  /// snapshot). CURRENT and its target always survive. Also excluded from
  /// the config fingerprint.
  size_t snapshot_keep_last = 0;
};

/// Audit record of one request that blew its deadline budget — the
/// quarantine-style trail for the watchdog path (capped, inspectable,
/// telemetry-counted).
struct DeadlineRecord {
  uint64_t request = 0;       ///< platform request number
  /// Client-set observability id carried down from the wire (0 = unset);
  /// lets an operator join this audit row with the client's own logs and
  /// the serving ring buffer (docs/OBSERVABILITY.md).
  uint64_t request_id = 0;
  double elapsed_seconds = 0.0;
  double budget_seconds = 0.0;
  /// Where the budget ran out: "admission" (before detection — the
  /// framework RNG stream was not consumed) or "detection" (the computed
  /// result was discarded).
  std::string stage;
};

/// Wall-clock stage breakdown of the most recent Process call, for the
/// serving layer's per-request histograms and ring buffer. Includes
/// injected-stall penalties, like total_process_seconds does.
struct RequestTimings {
  double admission_seconds = 0.0;  ///< entry through admission screening
  double detect_seconds = 0.0;     ///< detection proper (0 if never reached)
  double total_seconds = 0.0;      ///< full Process wall time, every exit path
};

/// Running counters of a platform instance.
struct PlatformStats {
  uint64_t requests = 0;
  uint64_t samples_processed = 0;
  uint64_t samples_flagged_noisy = 0;
  uint64_t model_updates = 0;
  /// Samples refused admission and routed to the quarantine log.
  uint64_t samples_quarantined = 0;
  /// Same count broken down by RejectionReason (indexed by its value).
  uint64_t quarantined_by_reason[kNumRejectionReasons] = {0, 0, 0};
  /// Requests rejected wholesale: strict-mode admission failures and
  /// requests whose samples were all quarantined.
  uint64_t requests_rejected = 0;
  /// Auto-updates that came due but were deferred (S_c below
  /// min_update_samples, or a failed update attempt) and will be retried
  /// on a later request.
  uint64_t update_retries = 0;
  /// Requests dropped for exceeding request_deadline_seconds.
  uint64_t requests_deadline_exceeded = 0;
  /// Wall time spent inside Process, measured from request entry — it
  /// includes admission screening, the subset copy, and failed requests'
  /// time, not just detection.
  double total_process_seconds = 0.0;
};

/// The deployment façade of Fig. 1: owns an EnldFramework, validates
/// incoming requests, applies the automatic model-update policy, and keeps
/// service statistics. This is the class a data platform embeds; the lower
/// EnldFramework API remains available for research use.
class DataPlatform {
 public:
  explicit DataPlatform(const DataPlatformConfig& config);

  /// Installs the detector instance serving Process when
  /// config().detector names anything but the built-in "enld". Must run
  /// before Initialize; the instance's name() must equal
  /// config().detector. Callers normally do not invoke this directly —
  /// detect::ConfigurePlatformDetector resolves the configured key through
  /// the detector registry and installs the result.
  Status InstallDetector(std::unique_ptr<NoisyLabelDetector> detector);

  /// One-time initialization with the data-lake inventory. Fails on an
  /// empty or inconsistent inventory, and (FailedPrecondition) when
  /// config().detector names a non-"enld" detector that was never
  /// installed. Must be called exactly once before Process.
  Status Initialize(const Dataset& inventory);

  /// Serves one detection request. Fails when the platform is not
  /// initialized or the dataset is incompatible with the inventory
  /// (feature dimension / class-count mismatch, empty input). Individual
  /// invalid samples (non-finite features, out-of-range labels) are
  /// quarantined and the clean remainder is processed; indices in the
  /// returned DetectionResult always refer to rows of the dataset as
  /// passed in. With `admission.strict`, any invalid sample fails the
  /// whole request instead. With `request_deadline_seconds` set, a request
  /// over budget returns kDeadlineExceeded: before detection the framework
  /// state (including its RNG stream) is untouched, after detection the
  /// result is discarded; either way the next request proceeds normally.
  /// On success, may trigger an automatic model update per the configured
  /// policy; an update that comes due but cannot run yet is retried on
  /// later requests rather than dropped.
  ///
  /// `deadline_override_seconds` replaces the configured
  /// request_deadline_seconds for this request only — the RPC front-end
  /// propagates the wire deadline header through it (docs/SERVING.md §4).
  /// Negative (the default) keeps the config's budget; 0 disables the
  /// deadline for this request.
  ///
  /// `request_id` is the client-set observability id from the frame header
  /// (0 = unset). It changes no behavior: it is stamped into quarantine
  /// and deadline-audit records produced by this request and counted into
  /// the "platform/process" trace span, so a live request can be followed
  /// from the wire into the audit trails (docs/OBSERVABILITY.md).
  StatusOr<DetectionResult> Process(const Dataset& incremental,
                                    double deadline_override_seconds = -1.0,
                                    uint64_t request_id = 0);

  /// Manually triggers a model update (same preconditions as
  /// EnldFramework::UpdateModel, plus the min_update_samples policy).
  Status Update();

  bool initialized() const { return initialized_; }
  const DataPlatformConfig& config() const { return config_; }
  const PlatformStats& stats() const { return stats_; }
  /// Inspectable log of quarantined samples (capped by
  /// admission.quarantine_capacity; counters keep counting past the cap).
  const QuarantineLog& quarantine() const { return quarantine_; }
  /// Audit trail of deadline-exceeded requests (capped like the quarantine
  /// log; stats_.requests_deadline_exceeded keeps counting past the cap).
  const std::vector<DeadlineRecord>& deadline_audit() const {
    return deadline_audit_;
  }
  /// Stage breakdown of the most recent Process call (zeroed at its
  /// entry). Read it right after Process returns, from the same thread
  /// that called it — the pipeline dispatcher does exactly that to feed
  /// the serving histograms and the recent-request ring.
  const RequestTimings& last_request_timings() const { return last_timings_; }
  /// True while a due auto-update is deferred awaiting enough clean
  /// samples (or a successful retry).
  bool update_pending() const { return update_pending_; }
  /// Direct access to the underlying framework (valid after Initialize;
  /// meaningful only when the built-in "enld" detector serves requests).
  EnldFramework& framework() { return framework_; }
  /// Ops-level feature-cache invalidation (enld/feature_cache.h): drops
  /// the framework's cached candidate view / KNN index and bumps its model
  /// version. Safe at any time; never changes detection output.
  void InvalidateFeatureCache() { framework_.InvalidateFeatureCache(); }
  /// The detector serving Process: the installed instance, or the built-in
  /// framework when config().detector == "enld".
  NoisyLabelDetector& active_detector() {
    return detector_ != nullptr ? *detector_ : framework_;
  }

  /// Writes a crash-safe snapshot of the complete platform state (model,
  /// I_t / I_c, P̃, S_c, stats, RNG position) into `dir` and advances the
  /// store's CURRENT pointer, then applies the snapshot_keep_last
  /// retention policy. Requires Initialize. Defined in
  /// src/store/snapshot.cc; link the `enld_store` (or umbrella `enld`)
  /// target to use it.
  Status SaveSnapshot(const std::string& dir) const;

  /// Asynchronous variant used by the request pipeline: captures the
  /// complete platform state *now* (synchronously, so the platform may
  /// keep serving) and returns a deferred durable write. Running the
  /// returned closure — on any thread, e.g. via ParallelEnqueue — performs
  /// the same save-and-retain work as SaveSnapshot and yields its Status.
  /// Defined in src/store/snapshot.cc.
  StatusOr<std::function<Status()>> BeginSnapshot(
      const std::string& dir) const;

  /// Replaces this platform's state with the latest snapshot in `dir`.
  /// The platform must have been built from the same DataPlatformConfig
  /// that wrote the snapshot (checked via a config fingerprint;
  /// FailedPrecondition on mismatch). Validates the snapshot completely
  /// before mutating anything — a failed restore leaves the platform
  /// untouched and usable. Defined in src/store/snapshot.cc.
  Status RestoreFromSnapshot(const std::string& dir);

 private:
  /// Screens `dataset`, records rejections (stamped with `request_id`)
  /// into the quarantine log and stats, and returns the row positions
  /// admitted for processing. InvalidArgument in strict mode or when
  /// nothing survives screening.
  StatusOr<std::vector<size_t>> AdmitSamples(const Dataset& dataset,
                                             uint64_t request,
                                             uint64_t request_id);
  void RunUpdatePolicy();
  /// Records a deadline overrun (stats, telemetry, capped audit trail) and
  /// builds the kDeadlineExceeded status Process returns for it.
  /// `budget_seconds` is the budget that actually applied — the config's
  /// or a per-request override.
  Status RecordDeadlineExceeded(double elapsed_seconds,
                                const std::string& stage,
                                double budget_seconds, uint64_t request_id);

  DataPlatformConfig config_;
  EnldFramework framework_;
  /// Non-null when a non-"enld" detector was installed; it then serves
  /// every Process request in place of framework_. Model updates and
  /// snapshots are framework-only and refused while it is active.
  std::unique_ptr<NoisyLabelDetector> detector_;
  PlatformStats stats_;
  QuarantineLog quarantine_;
  std::vector<DeadlineRecord> deadline_audit_;
  RequestTimings last_timings_;
  bool update_pending_ = false;
  bool initialized_ = false;
  size_t inventory_dim_ = 0;
  int inventory_classes_ = 0;
};

}  // namespace enld

#endif  // ENLD_ENLD_PLATFORM_H_
