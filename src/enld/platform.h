#ifndef ENLD_ENLD_PLATFORM_H_
#define ENLD_ENLD_PLATFORM_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "enld/framework.h"

namespace enld {

/// Configuration of the DataPlatform service façade.
struct DataPlatformConfig {
  EnldConfig enld;
  /// Automatically refresh the general model (Algorithm 4) after this many
  /// detection requests; 0 disables auto-updates.
  size_t update_every = 0;
  /// An auto-update is skipped (and retried after the next request) until
  /// the accumulated clean-inventory selection reaches this size — updating
  /// from a tiny S_c degrades the model instead of improving it.
  size_t min_update_samples = 200;
};

/// Running counters of a platform instance.
struct PlatformStats {
  uint64_t requests = 0;
  uint64_t samples_processed = 0;
  uint64_t samples_flagged_noisy = 0;
  uint64_t model_updates = 0;
  double total_process_seconds = 0.0;
};

/// The deployment façade of Fig. 1: owns an EnldFramework, validates
/// incoming requests, applies the automatic model-update policy, and keeps
/// service statistics. This is the class a data platform embeds; the lower
/// EnldFramework API remains available for research use.
class DataPlatform {
 public:
  explicit DataPlatform(const DataPlatformConfig& config);

  /// One-time initialization with the data-lake inventory. Fails on an
  /// empty or inconsistent inventory. Must be called exactly once before
  /// Process.
  Status Initialize(const Dataset& inventory);

  /// Serves one detection request. Fails when the platform is not
  /// initialized or the dataset is incompatible with the inventory
  /// (feature dimension / class-count mismatch, empty input). On success,
  /// may trigger an automatic model update per the configured policy.
  StatusOr<DetectionResult> Process(const Dataset& incremental);

  /// Manually triggers a model update (same preconditions as
  /// EnldFramework::UpdateModel, plus the min_update_samples policy).
  Status Update();

  bool initialized() const { return initialized_; }
  const PlatformStats& stats() const { return stats_; }
  /// Direct access to the underlying framework (valid after Initialize).
  EnldFramework& framework() { return framework_; }

  /// Writes a crash-safe snapshot of the complete platform state (model,
  /// I_t / I_c, P̃, S_c, stats, RNG position) into `dir` and advances the
  /// store's CURRENT pointer. Requires Initialize. Defined in
  /// src/store/snapshot.cc; link the `enld_store` (or umbrella `enld`)
  /// target to use it.
  Status SaveSnapshot(const std::string& dir) const;

  /// Replaces this platform's state with the latest snapshot in `dir`.
  /// The platform must have been built from the same DataPlatformConfig
  /// that wrote the snapshot (checked via a config fingerprint;
  /// FailedPrecondition on mismatch). Validates the snapshot completely
  /// before mutating anything — a failed restore leaves the platform
  /// untouched and usable. Defined in src/store/snapshot.cc.
  Status RestoreFromSnapshot(const std::string& dir);

 private:

  DataPlatformConfig config_;
  EnldFramework framework_;
  PlatformStats stats_;
  bool initialized_ = false;
  size_t inventory_dim_ = 0;
  int inventory_classes_ = 0;
};

}  // namespace enld

#endif  // ENLD_ENLD_PLATFORM_H_
