#ifndef ENLD_ENLD_ADMISSION_H_
#define ENLD_ENLD_ADMISSION_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace enld {

/// Per-sample admission control for the DataPlatform (docs/ROBUSTNESS.md).
///
/// A data lake serving live traffic sees NaN/Inf features and corrupted
/// labels routinely; rejecting the whole request on the first bad sample
/// (the pre-admission behavior, still available as `strict`) throws away
/// the clean majority of the batch. Admission screens every sample,
/// quarantines the bad ones with a typed reason, and lets the rest proceed
/// through detection.

/// Why a sample was refused admission. Values are part of the snapshot v2
/// on-disk format — append only, never renumber.
enum class RejectionReason : uint32_t {
  kNonFiniteFeature = 0,        ///< a feature value is NaN or +/-Inf
  kObservedLabelOutOfRange = 1, ///< observed label not in [0,K) and not
                                ///  kMissingLabel
  kTrueLabelOutOfRange = 2,     ///< evaluation label not in [0,K)
};
inline constexpr size_t kNumRejectionReasons = 3;

/// Stable lower-case name ("non_finite_feature", ...) used in stats
/// rendering and the quarantine JSON log.
const char* RejectionReasonName(RejectionReason reason);

/// One quarantined sample: where it came from and why it was refused.
struct QuarantineRecord {
  uint64_t request = 0;   ///< platform request number (0 = Initialize)
  /// Client-set observability id of the request that carried the sample
  /// (0 = unset / not request-scoped). Stamped by DataPlatform, not by
  /// ScreenDataset — screening has no wire context.
  uint64_t request_id = 0;
  uint64_t sample_id = 0; ///< the sample's stable id
  size_t row = 0;         ///< row within the offending request dataset
  RejectionReason reason = RejectionReason::kNonFiniteFeature;
  size_t column = 0;      ///< offending feature column (kNonFiniteFeature)
  double value = 0.0;     ///< offending value (feature or label)
  std::string detail;     ///< human-readable message naming row/column
};

/// Admission-control policy knobs. Deliberately excluded from the snapshot
/// config fingerprint: toggling strictness or capacity must not orphan
/// existing snapshots (`resume --strict_admission` restores old state).
struct AdmissionConfig {
  /// When true, any invalid sample fails the whole request with
  /// InvalidArgument (the pre-admission behavior); nothing is processed
  /// and nothing is quarantined.
  bool strict = false;
  /// Maximum quarantine records retained for inspection. Beyond it the
  /// typed counters keep counting but record details are dropped.
  size_t quarantine_capacity = 1024;
};

/// Capped in-memory log of quarantined samples. `total()` keeps counting
/// past the capacity; only record details are dropped.
class QuarantineLog {
 public:
  explicit QuarantineLog(size_t capacity = 1024) : capacity_(capacity) {}

  void Add(QuarantineRecord record) {
    ++total_;
    if (records_.size() < capacity_) records_.push_back(std::move(record));
  }

  const std::vector<QuarantineRecord>& records() const { return records_; }
  uint64_t total() const { return total_; }
  size_t capacity() const { return capacity_; }
  bool truncated() const { return total_ > records_.size(); }

  void Clear() {
    records_.clear();
    total_ = 0;
  }

 private:
  size_t capacity_;
  std::vector<QuarantineRecord> records_;
  uint64_t total_ = 0;
};

/// Outcome of screening one dataset: which rows may proceed and why the
/// others may not. `admitted` is in ascending row order, so
/// `dataset.Subset(admitted)` preserves the original sample order.
struct AdmissionResult {
  std::vector<size_t> admitted;
  std::vector<QuarantineRecord> rejected;

  bool all_admitted() const { return rejected.empty(); }
};

/// Screens every row of `dataset` against the per-sample admission rules
/// (finite features, labels in [0,K) with kMissingLabel allowed for
/// observed labels). Shape-level problems (column length mismatches,
/// non-positive num_classes, dimension mismatch against the inventory) are
/// request-level errors, not per-sample ones — callers check those before
/// screening. A row with several defects is quarantined once, under the
/// first reason found (features, then observed, then true label).
AdmissionResult ScreenDataset(const Dataset& dataset, uint64_t request);

}  // namespace enld

#endif  // ENLD_ENLD_ADMISSION_H_
