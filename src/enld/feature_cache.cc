#include "enld/feature_cache.h"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "common/parallel.h"
#include "common/telemetry/metrics.h"

namespace enld {

namespace {

struct CacheMetrics {
  telemetry::Counter* view_hits;
  telemetry::Counter* view_misses;
  telemetry::Counter* index_hits;
  telemetry::Counter* index_misses;
  telemetry::Counter* invalidations;
  telemetry::Gauge* model_version;

  static CacheMetrics& Get() {
    static CacheMetrics m = [] {
      auto& registry = telemetry::MetricsRegistry::Global();
      CacheMetrics out;
      out.view_hits = registry.GetCounter("cache/view_hits");
      out.view_misses = registry.GetCounter("cache/view_misses");
      out.index_hits = registry.GetCounter("cache/index_hits");
      out.index_misses = registry.GetCounter("cache/index_misses");
      out.invalidations = registry.GetCounter("cache/invalidations");
      out.model_version = registry.GetGauge("cache/model_version");
      return out;
    }();
    return m;
  }
};

}  // namespace

ModelView ComputeModelView(MlpModel* model, const Dataset& dataset) {
  ModelView view;
  if (dataset.empty()) return view;
  Matrix logits;
  model->Forward(dataset.features, &logits, &view.features);
  SoftmaxRows(logits, &view.probs);
  view.predicted.resize(dataset.size());
  ParallelFor(0, dataset.size(), 512, [&](size_t lo, size_t hi) {
    for (size_t r = lo; r < hi; ++r) {
      view.predicted[r] = static_cast<int>(ArgMaxRow(logits, r));
    }
  });
  return view;
}

ModelView SelectViewRows(const ModelView& full,
                         const std::vector<size_t>& rows) {
  ModelView out;
  if (rows.empty()) return out;
  out.probs.Reset(rows.size(), full.probs.cols());
  out.features.Reset(rows.size(), full.features.cols());
  out.predicted.resize(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    const size_t r = rows[i];
    std::copy(full.probs.Row(r), full.probs.Row(r) + full.probs.cols(),
              out.probs.Row(i));
    std::copy(full.features.Row(r),
              full.features.Row(r) + full.features.cols(),
              out.features.Row(i));
    out.predicted[i] = full.predicted[r];
  }
  return out;
}

uint64_t FingerprintPositions(const std::vector<size_t>& positions) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis.
  auto mix = [&h](uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (byte * 8)) & 0xffu;
      h *= 1099511628211ull;  // FNV prime.
    }
  };
  mix(positions.size());
  for (size_t p : positions) mix(p);
  return h;
}

FeatureCache::FeatureCache() {
  CacheMetrics::Get().model_version->Set(
      static_cast<double>(model_version_));
}

bool FeatureCache::HoldsEntries() const {
  return has_view_ || !indexes_.empty();
}

void FeatureCache::BumpModelVersion() {
  if (HoldsEntries()) {
    ++stats_.invalidations;
    CacheMetrics::Get().invalidations->Increment();
  }
  has_view_ = false;
  view_ = ModelView();
  indexes_.clear();
  ++model_version_;
  CacheMetrics::Get().model_version->Set(
      static_cast<double>(model_version_));
}

const ModelView* FeatureCache::FindView(uint64_t version) {
  if (has_view_ && view_version_ == version) {
    ++stats_.view_hits;
    CacheMetrics::Get().view_hits->Increment();
    return &view_;
  }
  ++stats_.view_misses;
  CacheMetrics::Get().view_misses->Increment();
  return nullptr;
}

const ModelView* FeatureCache::StoreView(uint64_t version, ModelView view) {
  view_ = std::move(view);
  view_version_ = version;
  has_view_ = true;
  return &view_;
}

std::shared_ptr<const ClassKnnIndex> FeatureCache::FindIndex(
    uint64_t version, uint64_t pool_key) {
  for (size_t i = indexes_.size(); i-- > 0;) {
    if (indexes_[i].version == version && indexes_[i].pool_key == pool_key) {
      // Move to most-recently-used (back) so replayed request streams keep
      // their entries alive past interleaved unrelated requests.
      IndexEntry entry = std::move(indexes_[i]);
      indexes_.erase(indexes_.begin() + static_cast<ptrdiff_t>(i));
      indexes_.push_back(std::move(entry));
      ++stats_.index_hits;
      CacheMetrics::Get().index_hits->Increment();
      return indexes_.back().index;
    }
  }
  ++stats_.index_misses;
  CacheMetrics::Get().index_misses->Increment();
  return nullptr;
}

void FeatureCache::StoreIndex(uint64_t version, uint64_t pool_key,
                              std::shared_ptr<const ClassKnnIndex> index) {
  for (IndexEntry& entry : indexes_) {
    if (entry.version == version && entry.pool_key == pool_key) {
      entry.index = std::move(index);
      return;
    }
  }
  if (indexes_.size() >= kMaxIndexEntries) {
    indexes_.erase(indexes_.begin());  // Least-recently-used is front.
  }
  IndexEntry entry;
  entry.version = version;
  entry.pool_key = pool_key;
  entry.index = std::move(index);
  indexes_.push_back(std::move(entry));
}

}  // namespace enld
