#ifndef ENLD_ENLD_SAMPLE_SETS_H_
#define ENLD_ENLD_SAMPLE_SETS_H_

#include <vector>

#include "data/dataset.h"
#include "nn/mlp.h"

namespace enld {

/// Definition 1 helpers: the high-quality set H (model agrees with the
/// observed label) and the ambiguous set A (model disagrees). Both return
/// positions into `dataset`; missing-label samples belong to neither.

/// Positions where argmax M(x, θ) == ỹ.
std::vector<size_t> HighQualityPositions(MlpModel* model,
                                         const Dataset& dataset);

/// Positions where argmax M(x, θ) != ỹ.
std::vector<size_t> AmbiguousPositions(MlpModel* model,
                                       const Dataset& dataset);

/// Filters `high_quality` (positions into `dataset`) by the paper's
/// confidence criterion: keep x only if its predicted-class probability is
/// at least the mean predicted-class probability over the high-quality
/// samples sharing that predicted label. `probs` are the model's softmax
/// outputs for all of `dataset`.
/// `strictness` scales the threshold: 1.0 is the paper's mean rule; larger
/// values keep only the most confidently-predicted samples.
std::vector<size_t> FilterHighQualityByConfidence(
    const Matrix& probs, const std::vector<int>& predicted,
    const std::vector<size_t>& high_quality, double strictness = 1.0);

/// Restricts `positions` (into `dataset`) to samples whose observed label
/// is in `label_set` (given as a membership mask over classes).
std::vector<size_t> RestrictToLabelSet(const Dataset& dataset,
                                       const std::vector<size_t>& positions,
                                       const std::vector<bool>& label_mask);

/// Builds a membership mask over `num_classes` classes from a label list.
std::vector<bool> LabelMask(const std::vector<int>& labels, int num_classes);

}  // namespace enld

#endif  // ENLD_ENLD_SAMPLE_SETS_H_
