#include "enld/strategies.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace enld {

const char* SamplingPolicyName(SamplingPolicy policy) {
  switch (policy) {
    case SamplingPolicy::kContrastive:
      return "ENLD";
    case SamplingPolicy::kRandom:
      return "Random-ENLD";
    case SamplingPolicy::kHighestConfidence:
      return "HC-ENLD";
    case SamplingPolicy::kLeastConfidence:
      return "LC-ENLD";
    case SamplingPolicy::kEntropy:
      return "Entropy-ENLD";
    case SamplingPolicy::kPseudo:
      return "Pseudo-ENLD";
  }
  return "unknown";
}

const char* SamplingPolicyKey(SamplingPolicy policy) {
  switch (policy) {
    case SamplingPolicy::kContrastive:
      return "enld";
    case SamplingPolicy::kRandom:
      return "enld-random";
    case SamplingPolicy::kHighestConfidence:
      return "enld-hc";
    case SamplingPolicy::kLeastConfidence:
      return "enld-lc";
    case SamplingPolicy::kEntropy:
      return "enld-entropy";
    case SamplingPolicy::kPseudo:
      return "enld-pseudo";
  }
  return "unknown";
}

std::vector<double> RowEntropies(const Matrix& probs) {
  std::vector<double> out(probs.rows(), 0.0);
  for (size_t r = 0; r < probs.rows(); ++r) {
    const float* p = probs.Row(r);
    double h = 0.0;
    for (size_t c = 0; c < probs.cols(); ++c) {
      if (p[c] > 0.0f) h -= static_cast<double>(p[c]) * std::log(p[c]);
    }
    out[r] = h;
  }
  return out;
}

std::vector<size_t> PolicySampling(SamplingPolicy policy,
                                   const Matrix& candidate_probs,
                                   const std::vector<size_t>& pool,
                                   size_t count, Rng& rng) {
  ENLD_CHECK(policy != SamplingPolicy::kContrastive);
  if (pool.empty() || count == 0) return {};
  const size_t take = std::min(count, pool.size());

  if (policy == SamplingPolicy::kRandom) {
    std::vector<size_t> picks = rng.SampleWithoutReplacement(pool.size(),
                                                             take);
    std::vector<size_t> out;
    out.reserve(take);
    for (size_t p : picks) out.push_back(pool[p]);
    return out;
  }

  // Score every pool row, then take the top-`take` by the policy.
  std::vector<double> score(pool.size(), 0.0);
  if (policy == SamplingPolicy::kEntropy) {
    const std::vector<double> entropy = RowEntropies(candidate_probs);
    for (size_t i = 0; i < pool.size(); ++i) score[i] = entropy[pool[i]];
  } else {
    for (size_t i = 0; i < pool.size(); ++i) {
      const float* p = candidate_probs.Row(pool[i]);
      float best = p[0];
      for (size_t c = 1; c < candidate_probs.cols(); ++c) {
        best = std::max(best, p[c]);
      }
      // Least-confidence ranks ascending; flip the sign so one sort works.
      score[i] = policy == SamplingPolicy::kLeastConfidence
                     ? -static_cast<double>(best)
                     : static_cast<double>(best);
    }
  }

  std::vector<size_t> order(pool.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::partial_sort(order.begin(), order.begin() + take, order.end(),
                    [&](size_t a, size_t b) { return score[a] > score[b]; });
  std::vector<size_t> out;
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) out.push_back(pool[order[i]]);
  return out;
}

}  // namespace enld
