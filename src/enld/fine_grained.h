#ifndef ENLD_ENLD_FINE_GRAINED_H_
#define ENLD_ENLD_FINE_GRAINED_H_

#include <vector>

#include "baselines/detector.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "enld/config.h"
#include "nn/mlp.h"

namespace enld {

class FeatureCache;

/// Inputs of one fine-grained detection run (Algorithm 3).
struct FineGrainedInputs {
  /// θ' — a fresh copy of the general model, fine-tuned in place.
  MlpModel* model = nullptr;
  /// The arriving dataset D.
  const Dataset* incremental = nullptr;
  /// The contrastive candidate set I_c.
  const Dataset* candidate = nullptr;
  /// P̃(y* = j | ỹ = i), square over all classes.
  const std::vector<std::vector<double>>* conditional = nullptr;
  /// Optional cross-request memo (enld/feature_cache.h). When set, `model`
  /// must start with the weights of the cache's current model version; the
  /// initial candidate view and KNN index are then served from / stored
  /// into the cache, and any fine-tune step falls back to recomputation.
  /// Output is bitwise identical with or without it.
  FeatureCache* cache = nullptr;
};

/// Outputs: the clean/noisy split of D (with per-iteration trajectories and
/// recovered missing labels inside `result`) and S_c' — the I_c positions
/// judged clean in *every* iteration (the stringent inventory-selection
/// criterion feeding Algorithm 4).
struct FineGrainedOutputs {
  DetectionResult result;
  std::vector<size_t> selected_candidate;
};

/// Runs warm-up, t iterations of s fine-tune steps with per-iteration
/// majority voting, sample-set updates and contrastive re-sampling —
/// Algorithm 3, including the ablation switches and alternative sampling
/// policies from `config`. Deterministic given `rng`'s state.
FineGrainedOutputs FineGrainedDetect(const FineGrainedInputs& inputs,
                                     const EnldConfig& config, Rng& rng);

}  // namespace enld

#endif  // ENLD_ENLD_FINE_GRAINED_H_
