#ifndef ENLD_ENLD_STRATEGIES_H_
#define ENLD_ENLD_STRATEGIES_H_

#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "enld/config.h"

namespace enld {

/// Selects `count` candidate-set positions according to the alternative
/// sampling policies of Section V-D. `candidate_probs` are the current
/// model's softmax outputs for every candidate row; `pool` restricts the
/// selection (pass all rows for the paper's "select in I_c" semantics).
///
/// kRandom draws without replacement; the confidence/entropy policies take
/// the top-`count` by their criterion. Must not be called with
/// kContrastive (that path has its own sampler).
std::vector<size_t> PolicySampling(SamplingPolicy policy,
                                   const Matrix& candidate_probs,
                                   const std::vector<size_t>& pool,
                                   size_t count, Rng& rng);

/// Row-wise Shannon entropy of a probability matrix (natural log).
std::vector<double> RowEntropies(const Matrix& probs);

}  // namespace enld

#endif  // ENLD_ENLD_STRATEGIES_H_
