#ifndef ENLD_ENLD_CONFIG_H_
#define ENLD_ENLD_CONFIG_H_

#include <cstdint>

#include "nn/general_model.h"
#include "nn/trainer.h"

namespace enld {

/// How contrastive samples are chosen each (re-)sampling round. The paper
/// compares the default contrastive sampler against the active-learning /
/// semi-supervised policies of Section V-D (Fig. 10).
enum class SamplingPolicy {
  kContrastive,        // ENLD's default (Algorithm 2).
  kRandom,             // Uniform from I_c.
  kHighestConfidence,  // Largest max M(x, θ) in I_c.
  kLeastConfidence,    // Smallest max M(x, θ) in I_c.
  kEntropy,            // Largest entropy of M(x, θ) in I_c.
  kPseudo,             // Highest confidence + pseudo label argmax M(x, θ).
};

/// Human-readable policy name (matches the paper's figure legends).
const char* SamplingPolicyName(SamplingPolicy policy);

/// Canonical lowercase detector key of an ENLD variant — "enld" for the
/// default contrastive policy, "enld-random" / "enld-hc" / ... for the
/// Section V-D alternatives. This is the key the detector registry and the
/// bench reports use (docs/DETECTORS.md).
const char* SamplingPolicyKey(SamplingPolicy policy);

/// Ablation switches of Section V-I (Fig. 14). Defaults = full ENLD.
struct EnldAblation {
  /// false => ENLD-1: random picks from the high-quality pool instead of
  /// feature-nearest contrastive sampling.
  bool use_contrastive = true;
  /// false => ENLD-2: a single agreeing step marks a sample clean
  /// (no ⌊s/2⌋+1 majority).
  bool use_majority_voting = true;
  /// false => ENLD-3: drop the C = C ∪ S merge of selected clean samples.
  bool merge_clean_into_c = true;
  /// false => ENLD-4: query the sampled label as j = i (the observed
  /// label) instead of drawing j ~ P̃(·|ỹ=i).
  bool use_probability_label = true;
};

/// Full configuration of the ENLD framework (Algorithms 1–4).
struct EnldConfig {
  /// Stage-0 model initialization (shared with pretrain baselines).
  GeneralModelConfig general;

  /// Contrastive samples per ambiguous sample (paper: k = 3).
  size_t contrastive_k = 3;
  /// Fine-grained training iterations t (paper: 5 for EMNIST, 17 for
  /// CIFAR100 / Tiny-ImageNet; benches scale this down — see DESIGN.md).
  size_t iterations = 5;
  /// Steps s per iteration (paper: 5).
  size_t steps_per_iteration = 5;
  /// Warm-up epochs on the initial contrastive set (paper: 2).
  size_t warmup_epochs = 2;
  /// Strictness of the high-quality confidence filter (1.0 = the paper's
  /// "at least the class-mean predicted probability" rule; this library
  /// defaults to a stricter 1.5 x mean, which keeps the contrastive pool
  /// nearly noise-free on the synthetic substrate — see DESIGN.md).
  double high_quality_strictness = 1.5;

  /// Optimizer settings for warm-up and fine-tune steps. `epochs` is
  /// ignored (the algorithm drives the step structure).
  TrainConfig finetune;

  SamplingPolicy policy = SamplingPolicy::kContrastive;
  EnldAblation ablation;

  /// Assign pseudo labels to missing-label samples by per-step voting
  /// (Section V-H).
  bool recover_missing_labels = true;

  /// Memoize the candidate-inventory model view and per-class KNN index
  /// across fine-grained iterations and requests (enld/feature_cache.h).
  /// Detection output is bitwise identical either way; this is purely an
  /// ops/perf knob, so it is excluded from the snapshot config fingerprint
  /// (store/snapshot.cc) like the other serving knobs. The ENLD_FEATURE_CACHE
  /// env var ("0"/"off") can disable it without a config change.
  bool use_feature_cache = true;

  uint64_t seed = 1234;

  EnldConfig() {
    finetune.epochs = 1;
    finetune.batch_size = 64;
    finetune.sgd.learning_rate = 0.002;
    finetune.sgd.momentum = 0.9;
    finetune.mixup_alpha = 0.0;
    finetune.lr_decay_per_epoch = 1.0;
  }
};

}  // namespace enld

#endif  // ENLD_ENLD_CONFIG_H_
