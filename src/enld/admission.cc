#include "enld/admission.h"

#include <cmath>

namespace enld {

const char* RejectionReasonName(RejectionReason reason) {
  switch (reason) {
    case RejectionReason::kNonFiniteFeature:
      return "non_finite_feature";
    case RejectionReason::kObservedLabelOutOfRange:
      return "observed_label_out_of_range";
    case RejectionReason::kTrueLabelOutOfRange:
      return "true_label_out_of_range";
  }
  return "unknown";
}

AdmissionResult ScreenDataset(const Dataset& dataset, uint64_t request) {
  AdmissionResult result;
  const size_t rows = dataset.size();
  const size_t cols = dataset.dim();
  result.admitted.reserve(rows);

  for (size_t i = 0; i < rows; ++i) {
    QuarantineRecord record;
    record.request = request;
    record.row = i;
    record.sample_id = i < dataset.ids.size() ? dataset.ids[i] : 0;
    bool rejected = false;

    const float* row = dataset.features.Row(i);
    for (size_t c = 0; c < cols; ++c) {
      if (!std::isfinite(row[c])) {
        record.reason = RejectionReason::kNonFiniteFeature;
        record.column = c;
        record.value = row[c];
        record.detail = "non-finite feature at row " + std::to_string(i) +
                        ", column " + std::to_string(c);
        rejected = true;
        break;
      }
    }

    if (!rejected) {
      const int obs = dataset.observed_labels[i];
      if (obs != kMissingLabel && (obs < 0 || obs >= dataset.num_classes)) {
        record.reason = RejectionReason::kObservedLabelOutOfRange;
        record.value = obs;
        record.detail = "observed label " + std::to_string(obs) +
                        " out of [0," + std::to_string(dataset.num_classes) +
                        ") at row " + std::to_string(i);
        rejected = true;
      }
    }

    if (!rejected) {
      const int tru = dataset.true_labels[i];
      if (tru < 0 || tru >= dataset.num_classes) {
        record.reason = RejectionReason::kTrueLabelOutOfRange;
        record.value = tru;
        record.detail = "true label " + std::to_string(tru) + " out of [0," +
                        std::to_string(dataset.num_classes) + ") at row " +
                        std::to_string(i);
        rejected = true;
      }
    }

    if (rejected) {
      result.rejected.push_back(std::move(record));
    } else {
      result.admitted.push_back(i);
    }
  }
  return result;
}

}  // namespace enld
