#include "enld/sample_sets.h"

#include <algorithm>

#include "common/check.h"

namespace enld {

std::vector<size_t> HighQualityPositions(MlpModel* model,
                                         const Dataset& dataset) {
  ENLD_CHECK(model != nullptr);
  std::vector<size_t> out;
  if (dataset.empty()) return out;
  const std::vector<int> predicted = model->Predict(dataset.features);
  for (size_t i = 0; i < dataset.size(); ++i) {
    const int observed = dataset.observed_labels[i];
    if (observed != kMissingLabel && predicted[i] == observed) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<size_t> AmbiguousPositions(MlpModel* model,
                                       const Dataset& dataset) {
  ENLD_CHECK(model != nullptr);
  std::vector<size_t> out;
  if (dataset.empty()) return out;
  const std::vector<int> predicted = model->Predict(dataset.features);
  for (size_t i = 0; i < dataset.size(); ++i) {
    const int observed = dataset.observed_labels[i];
    if (observed != kMissingLabel && predicted[i] != observed) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<size_t> FilterHighQualityByConfidence(
    const Matrix& probs, const std::vector<int>& predicted,
    const std::vector<size_t>& high_quality, double strictness) {
  ENLD_CHECK_EQ(probs.rows(), predicted.size());
  if (high_quality.empty()) return {};
  const int classes = static_cast<int>(probs.cols());

  // Per predicted label over the high-quality set: mean predicted-class
  // probability and the 75th-percentile value.
  std::vector<std::vector<double>> per_class(classes);
  for (size_t pos : high_quality) {
    per_class[predicted[pos]].push_back(probs(pos, predicted[pos]));
  }
  std::vector<double> threshold(classes, 0.0);
  for (int c = 0; c < classes; ++c) {
    auto& values = per_class[c];
    if (values.empty()) continue;
    double mean = 0.0;
    for (double v : values) mean += v;
    mean /= static_cast<double>(values.size());
    std::sort(values.begin(), values.end());
    // Cap the scaled threshold at the class's 75th percentile so that
    // strictness can never shrink a class below a quarter of its
    // high-quality samples (with a confident model, strictness * mean
    // could otherwise exceed every probability and empty the class).
    const double p75 = values[(values.size() * 3) / 4 == values.size()
                                  ? values.size() - 1
                                  : (values.size() * 3) / 4];
    threshold[c] = std::min(strictness * mean, p75);
  }

  std::vector<size_t> out;
  out.reserve(high_quality.size());
  for (size_t pos : high_quality) {
    const int p = predicted[pos];
    if (probs(pos, p) >= threshold[p]) out.push_back(pos);
  }
  return out;
}

std::vector<size_t> RestrictToLabelSet(const Dataset& dataset,
                                       const std::vector<size_t>& positions,
                                       const std::vector<bool>& label_mask) {
  std::vector<size_t> out;
  out.reserve(positions.size());
  for (size_t pos : positions) {
    const int y = dataset.observed_labels[pos];
    if (y != kMissingLabel && label_mask[y]) out.push_back(pos);
  }
  return out;
}

std::vector<bool> LabelMask(const std::vector<int>& labels, int num_classes) {
  std::vector<bool> mask(num_classes, false);
  for (int y : labels) {
    ENLD_CHECK_GE(y, 0);
    ENLD_CHECK_LT(y, num_classes);
    mask[y] = true;
  }
  return mask;
}

}  // namespace enld
