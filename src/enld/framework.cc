#include "enld/framework.h"

#include "common/check.h"
#include "common/phase_timing.h"
#include "enld/fine_grained.h"
#include "nn/trainer.h"

namespace enld {

EnldFramework::EnldFramework(const EnldConfig& config)
    : config_(config), rng_(config.seed) {}

void EnldFramework::Setup(const Dataset& inventory) {
  {
    ScopedPhaseTimer timer("setup/general_model");
    general_ = InitGeneralModel(inventory, config_.general);
  }
  {
    ScopedPhaseTimer timer("setup/joint_estimation");
    const JointCounts joint =
        EstimateJointCounts(general_.model.get(), general_.candidate_set);
    conditional_ = ConditionalFromJoint(joint);
  }
  selected_clean_.assign(general_.candidate_set.size(), false);
}

DetectionResult EnldFramework::Detect(const Dataset& incremental) {
  ENLD_CHECK(general_.model != nullptr);  // Setup must run first.
  ENLD_CHECK_EQ(incremental.num_classes, general_.candidate_set.num_classes);

  // Fine-tune a copy of θ so the general model survives the request.
  Rng model_rng = rng_.Fork();
  MlpModel finetuned(general_.model->layer_dims(), model_rng);
  finetuned.SetWeights(general_.model->GetWeights());

  FineGrainedInputs inputs;
  inputs.model = &finetuned;
  inputs.incremental = &incremental;
  inputs.candidate = &general_.candidate_set;
  inputs.conditional = &conditional_;
  FineGrainedOutputs outputs = FineGrainedDetect(inputs, config_, rng_);

  for (size_t pos : outputs.selected_candidate) {
    ENLD_CHECK_LT(pos, selected_clean_.size());
    selected_clean_[pos] = true;
  }
  return std::move(outputs.result);
}

size_t EnldFramework::selected_clean_count() const {
  size_t count = 0;
  for (bool b : selected_clean_) count += b ? 1 : 0;
  return count;
}

std::vector<size_t> EnldFramework::selected_clean_positions() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < selected_clean_.size(); ++i) {
    if (selected_clean_[i]) out.push_back(i);
  }
  return out;
}

Status EnldFramework::UpdateModel() {
  if (general_.model == nullptr) {
    return Status::FailedPrecondition("Setup has not been run");
  }
  const std::vector<size_t> positions = selected_clean_positions();
  if (positions.empty()) {
    return Status::FailedPrecondition(
        "no clean inventory samples selected yet; run Detect first");
  }

  // θ^u = train(S_c): the updated model is warm-started from the current
  // general model so classes under-represented in S_c keep their learned
  // structure, then trained on the selected clean samples.
  const Dataset clean = general_.candidate_set.Subset(positions);
  Rng model_rng = rng_.Fork();
  auto updated = MakeBackboneModel(config_.general.backbone, clean.dim(),
                                   clean.num_classes, model_rng);
  updated->SetWeights(general_.model->GetWeights());
  TrainConfig train = config_.general.train;
  train.seed = rng_.NextUInt64();
  TrainModel(updated.get(), clean, /*validation=*/nullptr, train);
  general_.model = std::move(updated);

  // Swap I_t and I_c, then re-estimate P̃ on the new candidate set.
  std::swap(general_.train_set, general_.candidate_set);
  const JointCounts joint =
      EstimateJointCounts(general_.model.get(), general_.candidate_set);
  conditional_ = ConditionalFromJoint(joint);
  selected_clean_.assign(general_.candidate_set.size(), false);
  return Status::OK();
}

}  // namespace enld
