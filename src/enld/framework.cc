#include "enld/framework.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/check.h"
#include "common/telemetry/metrics.h"
#include "common/telemetry/trace.h"
#include "enld/fine_grained.h"
#include "nn/trainer.h"

namespace enld {

namespace {

/// Appends the diagonal of P̃ (the per-class "observed label is right"
/// probability) to `series_name`, one value per class, so reports capture
/// the estimated confusion structure and its drift across model updates.
void RecordConditionalDiagonal(
    const std::vector<std::vector<double>>& conditional,
    const std::string& series_name) {
  telemetry::Series* series =
      telemetry::MetricsRegistry::Global().GetSeries(series_name);
  for (size_t c = 0; c < conditional.size(); ++c) {
    series->Append(conditional[c][c]);
  }
}

/// ENLD_FEATURE_CACHE=0 (or "off") disables the cache regardless of
/// config, so ops and CI drills can compare cached vs uncached runs of the
/// same binary without a config change.
bool FeatureCacheEnvEnabled() {
  const char* env = std::getenv("ENLD_FEATURE_CACHE");
  if (env == nullptr) return true;
  return std::strcmp(env, "0") != 0 && std::strcmp(env, "off") != 0;
}

}  // namespace

EnldFramework::EnldFramework(const EnldConfig& config)
    : config_(config),
      rng_(config.seed),
      feature_cache_enabled_(config.use_feature_cache &&
                             FeatureCacheEnvEnabled()) {}

void EnldFramework::Setup(const Dataset& inventory) {
  ENLD_TRACE_SPAN("setup");
  {
    ENLD_TRACE_SPAN("setup/general_model");
    general_ = InitGeneralModel(inventory, config_.general);
  }
  {
    ENLD_TRACE_SPAN("setup/joint_estimation");
    const JointCounts joint =
        EstimateJointCounts(general_.model.get(), general_.candidate_set);
    conditional_ = ConditionalFromJoint(joint);
  }
  RecordConditionalDiagonal(conditional_, "setup/ptilde_diag");
  selected_clean_.assign(general_.candidate_set.size(), false);
  feature_cache_.BumpModelVersion();
}

DetectionResult EnldFramework::Detect(const Dataset& incremental) {
  ENLD_CHECK(general_.model != nullptr);  // Setup must run first.
  ENLD_CHECK_EQ(incremental.num_classes, general_.candidate_set.num_classes);

  // Fine-tune a copy of θ so the general model survives the request.
  Rng model_rng = rng_.Fork();
  MlpModel finetuned(general_.model->layer_dims(), model_rng);
  finetuned.SetWeights(general_.model->GetWeights());

  FineGrainedInputs inputs;
  inputs.model = &finetuned;
  inputs.incremental = &incremental;
  inputs.candidate = &general_.candidate_set;
  inputs.conditional = &conditional_;
  if (feature_cache_enabled_) inputs.cache = &feature_cache_;
  FineGrainedOutputs outputs = FineGrainedDetect(inputs, config_, rng_);

  for (size_t pos : outputs.selected_candidate) {
    ENLD_CHECK_LT(pos, selected_clean_.size());
    selected_clean_[pos] = true;
  }
  return std::move(outputs.result);
}

size_t EnldFramework::selected_clean_count() const {
  size_t count = 0;
  for (bool b : selected_clean_) count += b ? 1 : 0;
  return count;
}

std::vector<size_t> EnldFramework::selected_clean_positions() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < selected_clean_.size(); ++i) {
    if (selected_clean_[i]) out.push_back(i);
  }
  return out;
}

EnldFrameworkState EnldFramework::CaptureState() const {
  ENLD_CHECK(general_.model != nullptr);  // Setup must run first.
  EnldFrameworkState state;
  state.model_dims = general_.model->layer_dims();
  state.model_weights = general_.model->GetWeights();
  state.train_set = general_.train_set;
  state.candidate_set = general_.candidate_set;
  state.conditional = conditional_;
  state.selected_clean.reserve(selected_clean_.size());
  for (bool b : selected_clean_) {
    state.selected_clean.push_back(b ? 1 : 0);
  }
  state.rng = rng_.GetState();
  return state;
}

Status EnldFramework::RestoreState(EnldFrameworkState state) {
  // Validate everything before touching any member so a bad state leaves
  // the framework exactly as it was.
  ENLD_RETURN_IF_ERROR(ValidateDataset(state.train_set));
  ENLD_RETURN_IF_ERROR(ValidateDataset(state.candidate_set));
  if (state.train_set.num_classes != state.candidate_set.num_classes) {
    return Status::InvalidArgument(
        "train and candidate sets disagree on num_classes");
  }
  if (!state.train_set.empty() && !state.candidate_set.empty() &&
      state.train_set.dim() != state.candidate_set.dim()) {
    return Status::InvalidArgument(
        "train and candidate sets disagree on feature dim");
  }
  if (state.model_dims.size() < 3) {
    return Status::InvalidArgument("model needs at least one hidden layer");
  }
  size_t expected_weights = 0;
  for (size_t i = 0; i + 1 < state.model_dims.size(); ++i) {
    if (state.model_dims[i] == 0 || state.model_dims[i + 1] == 0) {
      return Status::InvalidArgument("model layer dims must be positive");
    }
    expected_weights +=
        state.model_dims[i] * state.model_dims[i + 1] + state.model_dims[i + 1];
  }
  if (state.model_weights.size() != expected_weights) {
    return Status::InvalidArgument(
        "model weight count does not match the architecture");
  }
  if (state.model_dims.back() !=
      static_cast<size_t>(state.candidate_set.num_classes)) {
    return Status::InvalidArgument(
        "model output dim does not match num_classes");
  }
  const size_t classes = state.conditional.size();
  if (classes != static_cast<size_t>(state.candidate_set.num_classes)) {
    return Status::InvalidArgument("P~ row count does not match num_classes");
  }
  for (const auto& row : state.conditional) {
    if (row.size() != classes) {
      return Status::InvalidArgument("P~ must be square");
    }
  }
  if (state.selected_clean.size() != state.candidate_set.size()) {
    return Status::InvalidArgument(
        "S_c bitmap length does not match the candidate set");
  }
  if (state.rng.state[0] == 0 && state.rng.state[1] == 0 &&
      state.rng.state[2] == 0 && state.rng.state[3] == 0) {
    return Status::InvalidArgument("degenerate (all-zero) RNG state");
  }

  // Commit. The Rng used for construction is throwaway: SetWeights
  // replaces the He initialization entirely.
  Rng init_rng(1);
  auto model = std::make_unique<MlpModel>(state.model_dims, init_rng);
  model->SetWeights(state.model_weights);
  general_.model = std::move(model);
  general_.train_set = std::move(state.train_set);
  general_.candidate_set = std::move(state.candidate_set);
  conditional_ = std::move(state.conditional);
  selected_clean_.assign(state.selected_clean.size(), false);
  for (size_t i = 0; i < state.selected_clean.size(); ++i) {
    selected_clean_[i] = state.selected_clean[i] != 0;
  }
  rng_.SetState(state.rng);
  // The restored weights/candidate set need not match anything cached from
  // the pre-restore lineage.
  feature_cache_.BumpModelVersion();
  return Status::OK();
}

Status EnldFramework::UpdateModel() {
  if (general_.model == nullptr) {
    return Status::FailedPrecondition("Setup has not been run");
  }
  const std::vector<size_t> positions = selected_clean_positions();
  if (positions.empty()) {
    return Status::FailedPrecondition(
        "no clean inventory samples selected yet; run Detect first");
  }
  ENLD_TRACE_SPAN("update");
  telemetry::MetricsRegistry::Global()
      .GetCounter("update/clean_samples")
      ->Add(positions.size());

  // θ^u = train(S_c): the updated model is warm-started from the current
  // general model so classes under-represented in S_c keep their learned
  // structure, then trained on the selected clean samples.
  const Dataset clean = general_.candidate_set.Subset(positions);
  Rng model_rng = rng_.Fork();
  auto updated = MakeBackboneModel(config_.general.backbone, clean.dim(),
                                   clean.num_classes, model_rng);
  updated->SetWeights(general_.model->GetWeights());
  TrainConfig train = config_.general.train;
  train.seed = rng_.NextUInt64();
  TrainModel(updated.get(), clean, /*validation=*/nullptr, train);
  general_.model = std::move(updated);

  // Swap I_t and I_c, then re-estimate P̃ on the new candidate set.
  std::swap(general_.train_set, general_.candidate_set);
  const std::vector<std::vector<double>> previous = conditional_;
  const JointCounts joint =
      EstimateJointCounts(general_.model.get(), general_.candidate_set);
  conditional_ = ConditionalFromJoint(joint);

  // Per-class P̃ drift: L1 distance between the old and new conditional
  // rows, one series value per class per update.
  telemetry::Series* drift =
      telemetry::MetricsRegistry::Global().GetSeries("update/ptilde_drift");
  for (size_t c = 0; c < conditional_.size(); ++c) {
    double l1 = 0.0;
    if (c < previous.size()) {
      for (size_t j = 0; j < conditional_[c].size(); ++j) {
        l1 += std::abs(conditional_[c][j] - previous[c][j]);
      }
    }
    drift->Append(l1);
  }
  RecordConditionalDiagonal(conditional_, "update/ptilde_diag");

  selected_clean_.assign(general_.candidate_set.size(), false);
  // New weights and a swapped candidate set: everything cached is stale.
  feature_cache_.BumpModelVersion();
  return Status::OK();
}

}  // namespace enld
