#include "enld/framework.h"

#include <cmath>

#include "common/check.h"
#include "common/telemetry/metrics.h"
#include "common/telemetry/trace.h"
#include "enld/fine_grained.h"
#include "nn/trainer.h"

namespace enld {

namespace {

/// Appends the diagonal of P̃ (the per-class "observed label is right"
/// probability) to `series_name`, one value per class, so reports capture
/// the estimated confusion structure and its drift across model updates.
void RecordConditionalDiagonal(
    const std::vector<std::vector<double>>& conditional,
    const std::string& series_name) {
  telemetry::Series* series =
      telemetry::MetricsRegistry::Global().GetSeries(series_name);
  for (size_t c = 0; c < conditional.size(); ++c) {
    series->Append(conditional[c][c]);
  }
}

}  // namespace

EnldFramework::EnldFramework(const EnldConfig& config)
    : config_(config), rng_(config.seed) {}

void EnldFramework::Setup(const Dataset& inventory) {
  ENLD_TRACE_SPAN("setup");
  {
    ENLD_TRACE_SPAN("setup/general_model");
    general_ = InitGeneralModel(inventory, config_.general);
  }
  {
    ENLD_TRACE_SPAN("setup/joint_estimation");
    const JointCounts joint =
        EstimateJointCounts(general_.model.get(), general_.candidate_set);
    conditional_ = ConditionalFromJoint(joint);
  }
  RecordConditionalDiagonal(conditional_, "setup/ptilde_diag");
  selected_clean_.assign(general_.candidate_set.size(), false);
}

DetectionResult EnldFramework::Detect(const Dataset& incremental) {
  ENLD_CHECK(general_.model != nullptr);  // Setup must run first.
  ENLD_CHECK_EQ(incremental.num_classes, general_.candidate_set.num_classes);

  // Fine-tune a copy of θ so the general model survives the request.
  Rng model_rng = rng_.Fork();
  MlpModel finetuned(general_.model->layer_dims(), model_rng);
  finetuned.SetWeights(general_.model->GetWeights());

  FineGrainedInputs inputs;
  inputs.model = &finetuned;
  inputs.incremental = &incremental;
  inputs.candidate = &general_.candidate_set;
  inputs.conditional = &conditional_;
  FineGrainedOutputs outputs = FineGrainedDetect(inputs, config_, rng_);

  for (size_t pos : outputs.selected_candidate) {
    ENLD_CHECK_LT(pos, selected_clean_.size());
    selected_clean_[pos] = true;
  }
  return std::move(outputs.result);
}

size_t EnldFramework::selected_clean_count() const {
  size_t count = 0;
  for (bool b : selected_clean_) count += b ? 1 : 0;
  return count;
}

std::vector<size_t> EnldFramework::selected_clean_positions() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < selected_clean_.size(); ++i) {
    if (selected_clean_[i]) out.push_back(i);
  }
  return out;
}

Status EnldFramework::UpdateModel() {
  if (general_.model == nullptr) {
    return Status::FailedPrecondition("Setup has not been run");
  }
  const std::vector<size_t> positions = selected_clean_positions();
  if (positions.empty()) {
    return Status::FailedPrecondition(
        "no clean inventory samples selected yet; run Detect first");
  }
  ENLD_TRACE_SPAN("update");
  telemetry::MetricsRegistry::Global()
      .GetCounter("update/clean_samples")
      ->Add(positions.size());

  // θ^u = train(S_c): the updated model is warm-started from the current
  // general model so classes under-represented in S_c keep their learned
  // structure, then trained on the selected clean samples.
  const Dataset clean = general_.candidate_set.Subset(positions);
  Rng model_rng = rng_.Fork();
  auto updated = MakeBackboneModel(config_.general.backbone, clean.dim(),
                                   clean.num_classes, model_rng);
  updated->SetWeights(general_.model->GetWeights());
  TrainConfig train = config_.general.train;
  train.seed = rng_.NextUInt64();
  TrainModel(updated.get(), clean, /*validation=*/nullptr, train);
  general_.model = std::move(updated);

  // Swap I_t and I_c, then re-estimate P̃ on the new candidate set.
  std::swap(general_.train_set, general_.candidate_set);
  const std::vector<std::vector<double>> previous = conditional_;
  const JointCounts joint =
      EstimateJointCounts(general_.model.get(), general_.candidate_set);
  conditional_ = ConditionalFromJoint(joint);

  // Per-class P̃ drift: L1 distance between the old and new conditional
  // rows, one series value per class per update.
  telemetry::Series* drift =
      telemetry::MetricsRegistry::Global().GetSeries("update/ptilde_drift");
  for (size_t c = 0; c < conditional_.size(); ++c) {
    double l1 = 0.0;
    if (c < previous.size()) {
      for (size_t j = 0; j < conditional_[c].size(); ++j) {
        l1 += std::abs(conditional_[c][j] - previous[c][j]);
      }
    }
    drift->Append(l1);
  }
  RecordConditionalDiagonal(conditional_, "update/ptilde_diag");

  selected_clean_.assign(general_.candidate_set.size(), false);
  return Status::OK();
}

}  // namespace enld
