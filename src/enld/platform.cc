#include "enld/platform.h"

#include "common/stopwatch.h"

namespace enld {

DataPlatform::DataPlatform(const DataPlatformConfig& config)
    : config_(config), framework_(config.enld) {}

Status DataPlatform::Initialize(const Dataset& inventory) {
  if (initialized_) {
    return Status::FailedPrecondition("platform already initialized");
  }
  if (inventory.size() < 2) {
    return Status::InvalidArgument("inventory needs at least 2 samples");
  }
  if (inventory.num_classes <= 1) {
    return Status::InvalidArgument("inventory needs at least 2 classes");
  }
  framework_.Setup(inventory);
  inventory_dim_ = inventory.dim();
  inventory_classes_ = inventory.num_classes;
  initialized_ = true;
  return Status::OK();
}

StatusOr<DetectionResult> DataPlatform::Process(const Dataset& incremental) {
  if (!initialized_) {
    return Status::FailedPrecondition("platform not initialized");
  }
  if (incremental.empty()) {
    return Status::InvalidArgument("incremental dataset is empty");
  }
  if (incremental.dim() != inventory_dim_) {
    return Status::InvalidArgument(
        "incremental feature dimension does not match the inventory");
  }
  if (incremental.num_classes != inventory_classes_) {
    return Status::InvalidArgument(
        "incremental class count does not match the inventory");
  }

  Stopwatch timer;
  DetectionResult result = framework_.Detect(incremental);
  stats_.total_process_seconds += timer.ElapsedSeconds();
  ++stats_.requests;
  stats_.samples_processed += incremental.size();
  stats_.samples_flagged_noisy += result.noisy_indices.size();

  if (config_.update_every > 0 &&
      stats_.requests % config_.update_every == 0) {
    // Best-effort policy update: skipped silently while S_c is too small.
    if (framework_.selected_clean_count() >= config_.min_update_samples) {
      if (framework_.UpdateModel().ok()) ++stats_.model_updates;
    }
  }
  return result;
}

Status DataPlatform::Update() {
  if (!initialized_) {
    return Status::FailedPrecondition("platform not initialized");
  }
  if (framework_.selected_clean_count() < config_.min_update_samples) {
    return Status::FailedPrecondition(
        "selected clean set below min_update_samples");
  }
  ENLD_RETURN_IF_ERROR(framework_.UpdateModel());
  ++stats_.model_updates;
  return Status::OK();
}

}  // namespace enld
