#include "enld/platform.h"

#include <chrono>
#include <thread>
#include <utility>

#include "common/faults.h"
#include "common/stopwatch.h"
#include "common/telemetry/metrics.h"
#include "common/telemetry/trace.h"

namespace enld {

namespace {

/// How long one fire of a latency fault site ("platform/slow_admission",
/// "platform/slow_detect") stalls Process. Latency sites model a slow
/// request rather than a failing one: ShouldFail decides deterministically
/// whether this request is slow, and a fire sleeps instead of erroring, so
/// chaos drills can overrun a deadline on demand. The real sleep stays
/// short; when a deadline budget is configured the fire additionally
/// charges the full budget to the request's deadline clock (the returned
/// penalty), so the overrun is guaranteed on any machine — however generous
/// the budget relative to real work, and however slow the machine (TSan
/// runs included) relative to the budget.
constexpr double kInjectedStallSeconds = 0.1;

double MaybeInjectStall(const char* site, double deadline_seconds) {
  if (faults::Enabled() && faults::ShouldFail(site)) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(kInjectedStallSeconds));
    return deadline_seconds > 0.0 ? deadline_seconds : 0.0;
  }
  return 0.0;
}

/// Charges the enclosing scope's wall time to `sink` on every exit path —
/// Process must account screening, subset-copy and failure time, not just
/// detection (stats comment on total_process_seconds). Injected stall
/// penalties (modeled time that did not really pass) are folded into both
/// the elapsed reading and the charge, so a faulted request is accounted as
/// if it had genuinely been that slow.
class ScopedTimeCharge {
 public:
  /// `sink` is accumulated (+=); `total_out`, when given, is assigned (=)
  /// the same elapsed reading — the per-request timings slot, which wants
  /// this request's total rather than a running sum.
  explicit ScopedTimeCharge(double* sink, double* total_out = nullptr)
      : sink_(sink), total_out_(total_out) {}
  ~ScopedTimeCharge() {
    const double elapsed = ElapsedSeconds();
    *sink_ += elapsed;
    if (total_out_ != nullptr) *total_out_ = elapsed;
  }
  void AddPenalty(double seconds) { penalty_ += seconds; }
  double ElapsedSeconds() const {
    return timer_.ElapsedSeconds() + penalty_;
  }

 private:
  Stopwatch timer_;
  double penalty_ = 0.0;
  double* sink_;
  double* total_out_;
};

/// Rewrites a DetectionResult computed on the admitted subset so its
/// indices refer to rows of the original request dataset. `admitted[i]` is
/// the original position of subset row i; `original_rows` restores the
/// recovered-labels vector to full length (kMissingLabel for quarantined
/// rows — their labels are never recovered).
DetectionResult RemapResult(DetectionResult result,
                            const std::vector<size_t>& admitted,
                            size_t original_rows) {
  for (size_t& idx : result.noisy_indices) idx = admitted[idx];
  for (size_t& idx : result.clean_indices) idx = admitted[idx];
  for (auto& iteration : result.per_iteration_clean) {
    for (size_t& idx : iteration) idx = admitted[idx];
  }
  if (!result.recovered_labels.empty()) {
    std::vector<int> expanded(original_rows, kMissingLabel);
    for (size_t i = 0; i < admitted.size(); ++i) {
      expanded[admitted[i]] = result.recovered_labels[i];
    }
    result.recovered_labels = std::move(expanded);
  }
  return result;
}

}  // namespace

DataPlatform::DataPlatform(const DataPlatformConfig& config)
    : config_(config),
      framework_(config.enld),
      quarantine_(config.admission.quarantine_capacity) {}

StatusOr<std::vector<size_t>> DataPlatform::AdmitSamples(
    const Dataset& dataset, uint64_t request, uint64_t request_id) {
  AdmissionResult screen = ScreenDataset(dataset, request);
  for (QuarantineRecord& record : screen.rejected) {
    record.request_id = request_id;
  }
  if (screen.all_admitted()) return std::move(screen.admitted);

  if (config_.admission.strict) {
    ++stats_.requests_rejected;
    return Status::InvalidArgument(
        "strict admission rejected the request: " +
        screen.rejected.front().detail + " (" +
        std::to_string(screen.rejected.size()) + " invalid sample(s) of " +
        std::to_string(dataset.size()) + ")");
  }

  static telemetry::Counter* quarantined =
      telemetry::MetricsRegistry::Global().GetCounter(
          "platform/samples_quarantined");
  for (QuarantineRecord& record : screen.rejected) {
    ++stats_.samples_quarantined;
    ++stats_.quarantined_by_reason[static_cast<size_t>(record.reason)];
    quarantined->Increment();
    quarantine_.Add(std::move(record));
  }

  if (screen.admitted.empty()) {
    ++stats_.requests_rejected;
    return Status::InvalidArgument(
        "all " + std::to_string(dataset.size()) +
        " sample(s) were quarantined; nothing to process");
  }
  return std::move(screen.admitted);
}

Status DataPlatform::InstallDetector(
    std::unique_ptr<NoisyLabelDetector> detector) {
  if (initialized_) {
    return Status::FailedPrecondition(
        "detectors must be installed before Initialize");
  }
  if (detector == nullptr) {
    return Status::InvalidArgument("cannot install a null detector");
  }
  if (config_.detector == "enld") {
    return Status::InvalidArgument(
        "config names the built-in 'enld' detector; it is served by the "
        "platform's own framework and cannot be replaced");
  }
  if (detector->name() != config_.detector) {
    return Status::InvalidArgument(
        "installed detector '" + detector->name() +
        "' does not match the configured detector '" + config_.detector +
        "'");
  }
  detector_ = std::move(detector);
  return Status::OK();
}

Status DataPlatform::Initialize(const Dataset& inventory) {
  if (initialized_) {
    return Status::FailedPrecondition("platform already initialized");
  }
  if (config_.detector != "enld" && detector_ == nullptr) {
    return Status::FailedPrecondition(
        "config names detector '" + config_.detector +
        "' but none was installed; call detect::ConfigurePlatformDetector "
        "(link enld_detect) or InstallDetector before Initialize");
  }
  if (inventory.size() < 2) {
    return Status::InvalidArgument("inventory needs at least 2 samples");
  }
  if (inventory.num_classes <= 1) {
    return Status::InvalidArgument("inventory needs at least 2 classes");
  }

  StatusOr<std::vector<size_t>> admitted = AdmitSamples(inventory, 0, 0);
  if (!admitted.ok()) return admitted.status();
  if (admitted->size() < 2) {
    ++stats_.requests_rejected;
    return Status::InvalidArgument(
        "fewer than 2 inventory samples survived admission");
  }

  if (admitted->size() == inventory.size()) {
    active_detector().Setup(inventory);
  } else {
    active_detector().Setup(inventory.Subset(*admitted));
  }
  inventory_dim_ = inventory.dim();
  inventory_classes_ = inventory.num_classes;
  initialized_ = true;
  return Status::OK();
}

Status DataPlatform::RecordDeadlineExceeded(double elapsed_seconds,
                                            const std::string& stage,
                                            double budget_seconds,
                                            uint64_t request_id) {
  static telemetry::Counter* exceeded =
      telemetry::MetricsRegistry::Global().GetCounter(
          "platform/deadline_exceeded");
  exceeded->Increment();
  ++stats_.requests_deadline_exceeded;
  if (deadline_audit_.size() < config_.admission.quarantine_capacity) {
    DeadlineRecord record;
    record.request = stats_.requests + 1;
    record.request_id = request_id;
    record.elapsed_seconds = elapsed_seconds;
    record.budget_seconds = budget_seconds;
    record.stage = stage;
    deadline_audit_.push_back(std::move(record));
  }
  return Status::DeadlineExceeded(
      "request exceeded its deadline budget of " +
      std::to_string(budget_seconds) + "s during " + stage + " (" +
      std::to_string(elapsed_seconds) + "s elapsed)");
}

StatusOr<DetectionResult> DataPlatform::Process(
    const Dataset& incremental, double deadline_override_seconds,
    uint64_t request_id) {
  // The budget that applies to this request: the per-request override when
  // one was propagated (wire deadline header), else the config's.
  const double deadline = deadline_override_seconds >= 0.0
                              ? deadline_override_seconds
                              : config_.request_deadline_seconds;
  if (!initialized_) {
    return Status::FailedPrecondition("platform not initialized");
  }
  // Timing starts at request entry: admission screening and the subset
  // copy are part of serving the request and count toward both
  // total_process_seconds and the deadline budget.
  last_timings_ = RequestTimings{};
  ScopedTimeCharge timer(&stats_.total_process_seconds,
                         &last_timings_.total_seconds);
  // The span tree aggregates by name, so the id itself lives in the
  // serving ring buffer and audit records; the span counts how many
  // requests carried one (docs/OBSERVABILITY.md).
  ENLD_TRACE_SPAN("platform/process");
  telemetry::CurrentSpanStat("requests", 1.0);
  if (request_id != 0) telemetry::CurrentSpanStat("tagged_requests", 1.0);
  ENLD_RETURN_IF_ERROR(faults::Check("platform/process"));
  if (incremental.empty()) {
    return Status::InvalidArgument("incremental dataset is empty");
  }
  if (incremental.dim() != inventory_dim_) {
    return Status::InvalidArgument(
        "incremental feature dimension does not match the inventory");
  }
  if (incremental.num_classes != inventory_classes_) {
    return Status::InvalidArgument(
        "incremental class count does not match the inventory");
  }

  timer.AddPenalty(MaybeInjectStall("platform/slow_admission", deadline));
  StatusOr<std::vector<size_t>> admitted =
      AdmitSamples(incremental, stats_.requests + 1, request_id);
  last_timings_.admission_seconds = timer.ElapsedSeconds();
  if (!admitted.ok()) return admitted.status();
  const bool screened = admitted->size() != incremental.size();

  // Deadline check #1, before detection: a request already over budget is
  // dropped without touching the framework (its RNG stream included), so
  // the remaining stream is byte-identical to one that never saw it.
  if (deadline > 0.0 && timer.ElapsedSeconds() > deadline) {
    return RecordDeadlineExceeded(timer.ElapsedSeconds(), "admission",
                                  deadline, request_id);
  }

  timer.AddPenalty(MaybeInjectStall("platform/slow_detect", deadline));
  DetectionResult result =
      screened
          ? RemapResult(active_detector().Detect(incremental.Subset(*admitted)),
                        *admitted, incremental.size())
          : active_detector().Detect(incremental);
  last_timings_.detect_seconds =
      timer.ElapsedSeconds() - last_timings_.admission_seconds;

  // Deadline check #2, after detection: the work happened but the caller's
  // budget is blown — degrade by discarding the result so the queue behind
  // this request keeps draining.
  if (deadline > 0.0 && timer.ElapsedSeconds() > deadline) {
    return RecordDeadlineExceeded(timer.ElapsedSeconds(), "detection",
                                  deadline, request_id);
  }

  ++stats_.requests;
  stats_.samples_processed += admitted->size();
  stats_.samples_flagged_noisy += result.noisy_indices.size();

  RunUpdatePolicy();
  return result;
}

void DataPlatform::RunUpdatePolicy() {
  // Algorithm 4 refreshes the ENLD general model; other detectors have no
  // update process, so the policy never comes due for them.
  if (detector_ != nullptr) return;
  const bool due = config_.update_every > 0 &&
                   stats_.requests % config_.update_every == 0;
  if (!due && !update_pending_) return;

  // Skip-and-retry: an update that comes due while S_c is still too small
  // (or whose attempt fails) stays pending and is retried after the next
  // request instead of being dropped until the next update_every boundary.
  if (framework_.selected_clean_count() >= config_.min_update_samples) {
    if (framework_.UpdateModel().ok()) {
      ++stats_.model_updates;
      update_pending_ = false;
      return;
    }
  }
  ++stats_.update_retries;
  update_pending_ = true;
}

Status DataPlatform::Update() {
  if (!initialized_) {
    return Status::FailedPrecondition("platform not initialized");
  }
  if (detector_ != nullptr) {
    return Status::FailedPrecondition(
        "model updates require the built-in 'enld' detector; '" +
        config_.detector + "' has no update process");
  }
  if (framework_.selected_clean_count() < config_.min_update_samples) {
    return Status::FailedPrecondition(
        "selected clean set below min_update_samples");
  }
  ENLD_RETURN_IF_ERROR(framework_.UpdateModel());
  ++stats_.model_updates;
  update_pending_ = false;
  return Status::OK();
}

}  // namespace enld
