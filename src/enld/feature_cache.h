#ifndef ENLD_ENLD_FEATURE_CACHE_H_
#define ENLD_ENLD_FEATURE_CACHE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/matrix.h"
#include "data/dataset.h"
#include "knn/class_index.h"
#include "nn/mlp.h"

namespace enld {

/// Model outputs over a fixed dataset: softmax probabilities, penultimate
/// features and the argmax prediction per row.
struct ModelView {
  Matrix probs;
  Matrix features;
  std::vector<int> predicted;

  bool empty() const { return predicted.empty(); }
};

/// Computes the view (forward pass + softmax + parallel argmax). Every row
/// of every member depends only on the same row of `dataset` — the MLP has
/// no cross-row coupling at inference — so a view over a subset of rows
/// equals the row-selection of the full view, bit for bit. FeatureCache
/// relies on exactly this property.
ModelView ComputeModelView(MlpModel* model, const Dataset& dataset);

/// Selects rows of a full view: result row i == full row rows[i], bitwise
/// (see the row-independence note on ComputeModelView).
ModelView SelectViewRows(const ModelView& full, const std::vector<size_t>& rows);

/// FNV-1a fingerprint of a position list — the pool key under which cached
/// KNN indexes are stored. Distinguishes the empty list from "no key".
uint64_t FingerprintPositions(const std::vector<size_t>& positions);

/// Cross-request memo for the fine-grained hot path (Algorithm 3): the
/// candidate inventory I_c is fixed between trainer updates, yet every
/// request used to recompute its full forward pass and rebuild every
/// per-class KD-tree. The cache keeps
///   - the full candidate-set ModelView, keyed on the model version, and
///   - a small LRU set of ClassKnnIndexes, keyed on (model version,
///     pool key), sized so a replayed request stream (the store's
///     quarantine-replay pattern) still hits after unrelated requests ran
///     in between,
/// where the model version is a counter bumped only by trainer updates
/// (EnldFramework::Setup / UpdateModel / RestoreState, or an explicit
/// InvalidateFeatureCache). Fine-grained detection consults the cache only
/// while its per-request model copy is still at the cached version — the
/// first fine-tune step marks it dirty and everything recomputes — so
/// detection output is bitwise identical with the cache on or off
/// (docs/ARCHITECTURE.md, "FeatureCache invalidation contract").
///
/// Not thread-safe: the request pipeline serializes detections through a
/// single dispatcher, and the framework owns exactly one cache.
class FeatureCache {
 public:
  struct Stats {
    uint64_t view_hits = 0;
    uint64_t view_misses = 0;
    uint64_t index_hits = 0;
    uint64_t index_misses = 0;
    uint64_t invalidations = 0;
  };

  FeatureCache();

  /// Current model version. Entries are only served at this version.
  uint64_t model_version() const { return model_version_; }

  /// Invalidates everything: bumps the version and drops cached entries.
  /// Counts an invalidation only when entries were actually dropped.
  void BumpModelVersion();

  /// Cached full candidate view for `version`, or nullptr. Counts hit/miss.
  const ModelView* FindView(uint64_t version);

  /// Stores the view for `version` (replacing any previous) and returns a
  /// stable pointer to the stored copy.
  const ModelView* StoreView(uint64_t version, ModelView view);

  /// Cached index for (version, pool_key), or nullptr. A hit moves the
  /// entry to most-recently-used. Counts hit/miss.
  std::shared_ptr<const ClassKnnIndex> FindIndex(uint64_t version,
                                                 uint64_t pool_key);

  /// Stores an index, evicting the least-recently-used entry once
  /// kMaxIndexEntries are held.
  void StoreIndex(uint64_t version, uint64_t pool_key,
                  std::shared_ptr<const ClassKnnIndex> index);

  const Stats& stats() const { return stats_; }

  /// Index slots: enough that a replayed batch of incremental datasets
  /// (typically single digits per trainer epoch) still hits.
  static constexpr size_t kMaxIndexEntries = 8;

 private:
  struct IndexEntry {
    uint64_t version = 0;
    uint64_t pool_key = 0;
    std::shared_ptr<const ClassKnnIndex> index;
  };

  bool HoldsEntries() const;

  uint64_t model_version_ = 1;
  bool has_view_ = false;
  uint64_t view_version_ = 0;
  ModelView view_;
  std::vector<IndexEntry> indexes_;  // Most-recently-used last.
  Stats stats_;
};

}  // namespace enld

#endif  // ENLD_ENLD_FEATURE_CACHE_H_
