#ifndef ENLD_STORE_JSON_H_
#define ENLD_STORE_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace enld {
namespace store {

/// Minimal JSON document model for the store's manifests: objects, arrays,
/// strings, numbers (double), booleans and null. Good enough to parse what
/// the store itself writes plus hand-edited manifests; not a general JSON
/// library (no \uXXXX escapes, numbers go through strtod).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue Bool(bool v);
  static JsonValue Number(double v);
  static JsonValue String(std::string v);
  static JsonValue Array();
  static JsonValue Object();

  /// Parses one JSON document (trailing garbage is an error). Fails with
  /// InvalidArgument on malformed input.
  static StatusOr<JsonValue> Parse(const std::string& text);

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  std::vector<JsonValue>& items() { return items_; }
  const std::vector<JsonValue>& items() const { return items_; }

  /// Object field lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
  /// Sets an object field (insertion order is preserved on write).
  void Set(const std::string& key, JsonValue value);

  /// Serializes with 2-space indentation and object keys in insertion
  /// order, so manifests are stable and diff cleanly.
  std::string ToString() const;

 private:
  void Write(std::string* out, int indent) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;                             // kArray.
  std::vector<std::pair<std::string, JsonValue>> fields_;    // kObject.
};

/// Escapes a string for embedding in JSON (quotes not included).
std::string JsonEscape(const std::string& text);

}  // namespace store
}  // namespace enld

#endif  // ENLD_STORE_JSON_H_
