#ifndef ENLD_STORE_MANIFEST_H_
#define ENLD_STORE_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace enld {
namespace store {

/// A logical dataset on disk: a directory holding `manifest.json` plus one
/// or more shard files. The manifest records the dataset geometry and, per
/// shard, the file name, row count, byte size and whole-file CRC32 — so
/// truncation or tampering is caught from the manifest before any shard is
/// parsed, and tools/check_snapshot.py can audit a store offline.

/// One shard as listed in a dataset manifest.
struct ShardEntry {
  std::string file;    // Relative to the manifest's directory.
  uint64_t rows = 0;
  uint64_t bytes = 0;
  uint32_t crc32 = 0;
};

/// The parsed manifest.json of one logical dataset.
struct DatasetManifest {
  std::string name;
  uint64_t num_rows = 0;
  uint64_t dim = 0;
  int num_classes = 0;
  std::vector<ShardEntry> shards;
};

/// Default shard granularity for sharded saves.
inline constexpr size_t kDefaultRowsPerShard = 2048;

/// Writes `dataset` into `dir` as `manifest.json` plus
/// `shard-00000.bin`... with at most `rows_per_shard` rows each (at least
/// one shard, even when empty). Creates `dir` if needed. Crash-safe: every
/// file is written via temp + fsync + rename, shards before the manifest,
/// so a reader that finds a manifest can read every shard it names.
Status SaveDatasetSharded(const Dataset& dataset, const std::string& dir,
                          const std::string& name,
                          size_t rows_per_shard = kDefaultRowsPerShard);

/// Reads `dir`/manifest.json. NotFound when absent, InvalidArgument on
/// malformed or internally inconsistent content.
StatusOr<DatasetManifest> ReadDatasetManifest(const std::string& dir);

/// Loads the logical dataset from `dir`: validates the manifest, checks
/// every shard file's size and CRC32 against it, then parses shards — in
/// parallel on the shared thread pool when several are listed — and
/// concatenates them in manifest order. The result is byte-identical at
/// any ENLD_THREADS setting.
StatusOr<Dataset> LoadDatasetSharded(const std::string& dir);

}  // namespace store
}  // namespace enld

#endif  // ENLD_STORE_MANIFEST_H_
