#include "store/io.h"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define ENLD_STORE_HAS_FSYNC 1
#endif

#include "common/faults.h"
#include "common/retry.h"
#include "common/telemetry/metrics.h"

namespace enld {
namespace store {

namespace {

telemetry::Counter* BytesReadCounter() {
  static telemetry::Counter* counter =
      telemetry::MetricsRegistry::Global().GetCounter("store/bytes_read");
  return counter;
}

telemetry::Counter* BytesWrittenCounter() {
  static telemetry::Counter* counter =
      telemetry::MetricsRegistry::Global().GetCounter("store/bytes_written");
  return counter;
}

/// The standard reflected CRC-32 table, built on first use.
const uint32_t* Crc32Table() {
  static uint32_t table[256];
  static const bool initialized = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
      }
      table[i] = crc;
    }
    return true;
  }();
  (void)initialized;
  return table;
}

class File {
 public:
  File(const std::string& path, const char* mode)
      : handle_(std::fopen(path.c_str(), mode)) {}
  ~File() { Close(); }
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  FILE* get() const { return handle_; }
  bool ok() const { return handle_ != nullptr; }
  void Close() {
    if (handle_ != nullptr) std::fclose(handle_);
    handle_ = nullptr;
  }

 private:
  FILE* handle_;
};

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  const uint32_t* table = Crc32Table();
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const std::string& data) {
  return Crc32(data.data(), data.size());
}

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void PutI32(std::string* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

void PutF32(std::string* out, float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU32(out, bits);
}

void PutF64(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutBytes(std::string* out, const void* data, size_t size) {
  out->append(static_cast<const char*>(data), size);
}

bool BinaryReader::ReadU8(uint8_t* v) {
  if (remaining() < 1) return false;
  *v = static_cast<uint8_t>(data_[offset_++]);
  return true;
}

bool BinaryReader::ReadU32(uint32_t* v) {
  if (remaining() < 4) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(
               static_cast<unsigned char>(data_[offset_ + i]))
           << (8 * i);
  }
  offset_ += 4;
  *v = out;
  return true;
}

bool BinaryReader::ReadU64(uint64_t* v) {
  if (remaining() < 8) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(
               static_cast<unsigned char>(data_[offset_ + i]))
           << (8 * i);
  }
  offset_ += 8;
  *v = out;
  return true;
}

bool BinaryReader::ReadI32(int32_t* v) {
  uint32_t bits = 0;
  if (!ReadU32(&bits)) return false;
  *v = static_cast<int32_t>(bits);
  return true;
}

bool BinaryReader::ReadF32(float* v) {
  uint32_t bits = 0;
  if (!ReadU32(&bits)) return false;
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

bool BinaryReader::ReadF64(double* v) {
  uint64_t bits = 0;
  if (!ReadU64(&bits)) return false;
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

bool BinaryReader::ReadBytes(size_t size, std::string* out) {
  if (remaining() < size) return false;
  out->assign(data_, offset_, size);
  offset_ += size;
  return true;
}

bool BinaryReader::Skip(size_t size) {
  if (remaining() < size) return false;
  offset_ += size;
  return true;
}

void PutSection(std::string* out, uint32_t id, const std::string& payload) {
  PutU32(out, id);
  PutU64(out, payload.size());
  PutU32(out, Crc32(payload));
  out->append(payload);
}

Status ReadSection(BinaryReader* reader, uint32_t expected_id,
                   std::string* payload) {
  uint32_t id = 0;
  uint64_t bytes = 0;
  uint32_t crc = 0;
  if (!reader->ReadU32(&id) || !reader->ReadU64(&bytes) ||
      !reader->ReadU32(&crc)) {
    return Status::InvalidArgument("truncated section header");
  }
  if (id != expected_id) {
    return Status::InvalidArgument("unexpected section id " +
                                   std::to_string(id) + " (want " +
                                   std::to_string(expected_id) + ")");
  }
  if (!reader->ReadBytes(static_cast<size_t>(bytes), payload)) {
    return Status::InvalidArgument("truncated section " + std::to_string(id) +
                                   " payload");
  }
  if (Crc32(*payload) != crc) {
    static telemetry::Counter* failures =
        telemetry::MetricsRegistry::Global().GetCounter("store/crc_failures");
    failures->Increment();
    return Status::InvalidArgument("CRC mismatch in section " +
                                   std::to_string(id));
  }
  return Status::OK();
}

namespace {

// One read attempt; ReadFile wraps this in the retry policy.
StatusOr<std::string> ReadFileOnce(const std::string& path) {
  ENLD_RETURN_IF_ERROR(faults::Check("store/read_file"));
  File file(path, "rb");
  if (!file.ok()) {
    return Status::NotFound("cannot open for reading: " + path);
  }
  std::string data;
  char buffer[1 << 16];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file.get())) > 0) {
    data.append(buffer, got);
  }
  if (std::ferror(file.get())) {
    return Status::Internal("read error: " + path);
  }
  BytesReadCounter()->Add(data.size());
  return data;
}

// One durable-write attempt. Every attempt restarts from the temp write,
// so a fault at any step leaves only a stray `.tmp` behind, never a torn
// file under the final name.
Status WriteFileDurableOnce(const std::string& path, const std::string& data) {
  const std::string tmp = path + ".tmp";
  {
    ENLD_RETURN_IF_ERROR(faults::Check("store/write_file"));
    File file(tmp, "wb");
    if (!file.ok()) {
      return Status::NotFound("cannot open for writing: " + tmp);
    }
    if (!data.empty() &&
        std::fwrite(data.data(), 1, data.size(), file.get()) !=
            data.size()) {
      return Status::Internal("short write: " + tmp);
    }
    if (std::fflush(file.get()) != 0) {
      return Status::Internal("flush failed: " + tmp);
    }
    ENLD_RETURN_IF_ERROR(faults::Check("store/fsync"));
#ifdef ENLD_STORE_HAS_FSYNC
    if (::fsync(::fileno(file.get())) != 0) {
      return Status::Internal("fsync failed: " + tmp);
    }
#endif
  }
  if (Status fault = faults::Check("store/rename"); !fault.ok()) {
    std::remove(tmp.c_str());
    return fault;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("rename failed: " + tmp + " -> " + path);
  }
  // Parent directory must persist the new entry too.
  const size_t slash = path.find_last_of('/');
  const Status dir_sync =
      SyncDir(slash == std::string::npos ? "." : path.substr(0, slash));
  if (!dir_sync.ok()) return dir_sync;
  BytesWrittenCounter()->Add(data.size());
  return Status::OK();
}

}  // namespace

RetryPolicy& DefaultIoRetryPolicy() {
  static RetryPolicy* policy = new RetryPolicy();
  return *policy;
}

StatusOr<std::string> ReadFile(const std::string& path) {
  return RetryWithBackoffOr<std::string>(
      DefaultIoRetryPolicy(), "read " + path,
      [&]() { return ReadFileOnce(path); });
}

Status WriteFileDurable(const std::string& path, const std::string& data) {
  return RetryWithBackoff(DefaultIoRetryPolicy(), "write " + path,
                          [&]() { return WriteFileDurableOnce(path, data); });
}

Status SyncDir(const std::string& path) {
#ifdef ENLD_STORE_HAS_FSYNC
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open directory: " + path);
  }
  // Some filesystems refuse fsync on directories; treat that as done.
  ::fsync(fd);
  ::close(fd);
#else
  (void)path;
#endif
  return Status::OK();
}

}  // namespace store
}  // namespace enld
