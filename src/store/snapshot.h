#ifndef ENLD_STORE_SNAPSHOT_H_
#define ENLD_STORE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "enld/platform.h"

namespace enld {
namespace store {

/// Crash-safe snapshots of a complete DataPlatform. A snapshot root
/// directory holds numbered snapshots plus a CURRENT pointer file:
///
///   <root>/
///     CURRENT            — one line: the directory name of the latest
///                          snapshot ("snap-000003")
///     snap-000003/
///       MANIFEST.json    — schema, seq, config fingerprint, per-file
///                          byte size + CRC32
///       state.bin        — platform scalars, stats, RNG stream, P̃, S_c
///       model.bin        — the general model θ (nn/serialization format)
///       train/           — I_t as a sharded dataset (manifest + shards)
///       candidate/       — I_c as a sharded dataset
///
/// Saves are atomic: everything is written into a staging directory
/// ("snap-000003.tmp"), each file durably (temp + fsync + rename), then
/// the staging directory is renamed into place and only afterwards is
/// CURRENT updated. A crash at any point leaves either the previous
/// snapshot or the complete new one as CURRENT — never a partial state.
///
/// Error contract on load (asserted by the corruption tests): NotFound =
/// missing snapshot/CURRENT/listed file; InvalidArgument = structural
/// corruption (bad magic, truncation, CRC mismatch, inconsistent
/// sections). Config mismatches surface as FailedPrecondition from
/// DataPlatform::RestoreFromSnapshot.

/// Section ids inside state.bin (mirrored by tools/check_snapshot.py).
/// Version history: v1 wrote sections 1–5; v2 appends the admission
/// section; v3 (this build) appends the deadline-exceeded counter to the
/// admission section's payload. Loads accept all three.
inline constexpr uint32_t kSnapshotSectionMeta = 1;
inline constexpr uint32_t kSnapshotSectionStats = 2;
inline constexpr uint32_t kSnapshotSectionRng = 3;
inline constexpr uint32_t kSnapshotSectionConditional = 4;
inline constexpr uint32_t kSnapshotSectionSelected = 5;
inline constexpr uint32_t kSnapshotSectionAdmission = 6;

/// File and directory names inside a snapshot store, shared with the
/// integrity scrubber (store/scrub.h) and repairer (store/repair.h).
inline constexpr char kSnapshotCurrentFile[] = "CURRENT";
inline constexpr char kSnapshotManifestFile[] = "MANIFEST.json";
inline constexpr char kSnapshotStateFile[] = "state.bin";
inline constexpr char kSnapshotModelFile[] = "model.bin";
inline constexpr char kSnapshotTrainDir[] = "train";
inline constexpr char kSnapshotCandidateDir[] = "candidate";

/// FNV-1a hash over every behaviour-affecting field of the platform
/// configuration, in a fixed canonical byte encoding. Two configs with the
/// same fingerprint drive the detection pipeline identically, so restoring
/// a snapshot into a platform with a matching fingerprint is safe.
uint64_t FingerprintConfig(const DataPlatformConfig& config);

/// Everything a snapshot captures, decoded and structurally validated.
struct SnapshotContents {
  uint64_t seq = 0;
  uint64_t config_fingerprint = 0;
  EnldFrameworkState framework;
  PlatformStats stats;
  uint64_t inventory_dim = 0;
  int inventory_classes = 0;
  /// Whether a due auto-update was still deferred when the snapshot was
  /// taken (snapshot v2; defaults to false when restoring a v1 snapshot).
  bool update_pending = false;
};

/// Serializes the state.bin payload (platform scalars, stats, RNG, P̃,
/// S_c — everything but the model and the datasets, which ride in their
/// own files). Deterministic: identical contents yield identical bytes.
std::string EncodeSnapshotState(const SnapshotContents& contents);

/// Parses a state.bin buffer back into `contents`, verifying every section
/// envelope. The repairer uses this directly to salvage a snapshot whose
/// other files are damaged; SnapshotStore::Load stitches the model and
/// datasets in afterwards.
Status DecodeSnapshotState(const std::string& data,
                           SnapshotContents* contents);

/// Manages the snapshot directory: sequential saves, CURRENT tracking,
/// keep-last-N retention, and fully validated loads.
class SnapshotStore {
 public:
  /// `keep_last` = 0 retains every snapshot; otherwise each successful
  /// Save garbage-collects all but the newest `keep_last` snapshot
  /// directories (CURRENT's target always survives).
  explicit SnapshotStore(std::string root, size_t keep_last = 0)
      : root_(std::move(root)), keep_last_(keep_last) {}

  const std::string& root() const { return root_; }
  size_t keep_last() const { return keep_last_; }

  /// Writes `contents` as the next snapshot (seq := LatestSeq() + 1),
  /// advances CURRENT, then applies the retention policy. Returns the
  /// sequence number written.
  StatusOr<uint64_t> Save(const SnapshotContents& contents);

  /// Applies keep-last-N retention now: removes every snapshot directory
  /// except the newest keep_last() and the one CURRENT points at (which
  /// survives unconditionally, so a reader holding CURRENT never loses
  /// its target — including after a mid-publish crash left newer,
  /// unpublished directories behind). Best-effort: returns the number of
  /// snapshot directories removed; IO errors skip the entry. No-op when
  /// keep_last() is 0.
  size_t GarbageCollect() const;

  /// Loads one snapshot by sequence number, verifying the manifest, every
  /// file CRC and all cross-section invariants.
  StatusOr<SnapshotContents> Load(uint64_t seq) const;

  /// Loads the snapshot CURRENT points at.
  StatusOr<SnapshotContents> LoadLatest() const;

  /// Sequence number CURRENT points at; NotFound when the store is empty.
  StatusOr<uint64_t> LatestSeq() const;

  /// All snapshot sequence numbers present on disk, ascending (including
  /// any not pointed at by CURRENT).
  std::vector<uint64_t> ListSeqs() const;

  /// Directory name for a sequence number ("snap-000042").
  static std::string DirName(uint64_t seq);

 private:
  std::string root_;
  size_t keep_last_ = 0;
};

}  // namespace store
}  // namespace enld

#endif  // ENLD_STORE_SNAPSHOT_H_
