#include "store/repair.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <utility>

#include "common/faults.h"
#include "common/retry.h"
#include "common/telemetry/metrics.h"
#include "common/telemetry/trace.h"
#include "nn/serialization.h"
#include "store/io.h"
#include "store/json.h"
#include "store/manifest.h"
#include "store/shard.h"
#include "store/snapshot.h"

namespace enld {
namespace store {

namespace {

constexpr char kShardMagic[8] = {'E', 'N', 'L', 'D', 'S', 'H', 'D', '1'};
constexpr uint32_t kEndianTag = 0x01020304u;

/// Re-parses a damaged shard buffer leniently: the header and the four
/// data sections (features, observed, true, ids) must each individually
/// pass their CRC and match the header geometry; the redundant bitmap
/// section may be arbitrarily damaged since EncodeDatasetShard recomputes
/// it. The caller still only accepts the result when the canonical
/// re-encoding matches the dataset manifest's size and CRC.
StatusOr<Dataset> RebuildShardFromSections(const std::string& data) {
  if (data.size() < sizeof(kShardMagic) ||
      std::memcmp(data.data(), kShardMagic, sizeof(kShardMagic)) != 0) {
    return Status::InvalidArgument("shard magic damaged");
  }
  BinaryReader reader(data);
  reader.Skip(sizeof(kShardMagic));
  uint32_t endian = 0, version = 0, classes = 0, sections = 0;
  uint64_t rows = 0, dim = 0;
  if (!reader.ReadU32(&endian) || !reader.ReadU32(&version) ||
      !reader.ReadU64(&rows) || !reader.ReadU64(&dim) ||
      !reader.ReadU32(&classes) || !reader.ReadU32(&sections)) {
    return Status::InvalidArgument("shard header truncated");
  }
  if (endian != kEndianTag || version != 1 || sections != 5) {
    return Status::InvalidArgument("shard header damaged");
  }

  const uint64_t expected_len[4] = {rows * dim * sizeof(float),
                                    rows * sizeof(int32_t),
                                    rows * sizeof(int32_t),
                                    rows * sizeof(uint64_t)};
  std::string payloads[4];
  for (uint32_t id = 1; id <= 4; ++id) {
    uint32_t got_id = 0, crc = 0;
    uint64_t length = 0;
    if (!reader.ReadU32(&got_id) || !reader.ReadU64(&length) ||
        !reader.ReadU32(&crc) || got_id != id) {
      return Status::InvalidArgument("section " + std::to_string(id) +
                                     " envelope damaged");
    }
    std::string payload;
    if (length > reader.remaining() || !reader.ReadBytes(length, &payload)) {
      return Status::InvalidArgument("section " + std::to_string(id) +
                                     " truncated");
    }
    if (length != expected_len[id - 1] || Crc32(payload) != crc) {
      return Status::InvalidArgument("section " + std::to_string(id) +
                                     " does not survive its CRC");
    }
    payloads[id - 1] = std::move(payload);
  }

  Dataset dataset;
  dataset.num_classes = static_cast<int>(classes);
  dataset.features = Matrix(rows, dim);
  if (rows > 0 && dim > 0) {
    std::memcpy(dataset.features.Row(0), payloads[0].data(),
                payloads[0].size());
  }
  dataset.observed_labels.resize(rows);
  dataset.true_labels.resize(rows);
  dataset.ids.resize(rows);
  if (rows > 0) {
    std::memcpy(dataset.observed_labels.data(), payloads[1].data(),
                rows * sizeof(int32_t));
    std::memcpy(dataset.true_labels.data(), payloads[2].data(),
                rows * sizeof(int32_t));
    std::memcpy(dataset.ids.data(), payloads[3].data(),
                rows * sizeof(uint64_t));
  }
  ENLD_RETURN_IF_ERROR(ValidateDataset(dataset));
  return dataset;
}

/// Bytes/CRC the target's snapshot manifest records for model.bin, when
/// the manifest itself survives.
struct ModelEntry {
  bool listed = false;
  uint64_t bytes = 0;
  uint32_t crc = 0;
};

/// One repair pass over a single target snapshot. Holds the donor list
/// (sibling seqs, newest first) plus a cache of donor datasets so a
/// multi-shard rebuild loads each donor at most once.
class Repairer {
 public:
  Repairer(std::string root, uint64_t target, std::vector<uint64_t> donors,
           const RepairOptions& options, RepairReport* report)
      : root_(std::move(root)),
        target_(target),
        donors_(std::move(donors)),
        options_(options),
        report_(report) {}

  uint64_t shards_rebuilt() const { return shards_rebuilt_; }

  void AddAction(const std::string& file, const std::string& method,
                 const std::string& source, const std::string& detail) {
    report_->actions.push_back({target_, file, method, source, detail});
  }

  /// Parses the target's MANIFEST.json just far enough to recover the
  /// model.bin entry. A damaged manifest is not fatal — Save regenerates
  /// it — but without it a model donor cannot be verified.
  ModelEntry ReadModelEntry() {
    ModelEntry entry;
    StatusOr<std::string> text =
        ReadFile(TargetDir() + "/" + kSnapshotManifestFile);
    if (!text.ok()) return entry;
    StatusOr<JsonValue> parsed = JsonValue::Parse(text.value());
    if (!parsed.ok() || !parsed.value().is_object()) return entry;
    const JsonValue* files = parsed.value().Find("files");
    if (files == nullptr || !files->is_array()) return entry;
    for (const JsonValue& item : files->items()) {
      const JsonValue* file = item.Find("file");
      const JsonValue* bytes = item.Find("bytes");
      const JsonValue* crc = item.Find("crc32");
      if (file == nullptr || !file->is_string() || bytes == nullptr ||
          !bytes->is_number() || crc == nullptr || !crc->is_number()) {
        continue;
      }
      if (file->AsString() == kSnapshotModelFile) {
        entry.listed = true;
        entry.bytes = static_cast<uint64_t>(bytes->AsNumber());
        entry.crc = static_cast<uint32_t>(crc->AsNumber());
      }
    }
    return entry;
  }

  /// Recovers model dims/weights: the target's own file when it verifies,
  /// else a manifest-verified sibling copy.
  Status RepairModel(SnapshotContents* contents) {
    const std::string rel =
        SnapshotStore::DirName(target_) + "/" + kSnapshotModelFile;
    const ModelEntry entry = ReadModelEntry();
    if (TryModel(TargetDir() + "/" + kSnapshotModelFile, entry, contents)) {
      return Status::OK();
    }
    if (entry.listed) {
      for (uint64_t donor : donors_) {
        const std::string donor_dir = SnapshotStore::DirName(donor);
        if (TryModel(root_ + "/" + donor_dir + "/" + kSnapshotModelFile,
                     entry, contents)) {
          AddAction(rel, "donor_file", donor_dir + "/" + kSnapshotModelFile,
                    "sibling copy matches the manifest CRC");
          return Status::OK();
        }
      }
    }
    return Status::InvalidArgument(
        "model.bin is damaged and no sibling snapshot holds a "
        "manifest-verified copy");
  }

  /// Recovers one logical dataset ("train"/"candidate") of the target.
  StatusOr<Dataset> RepairDataset(const std::string& ds) {
    const std::string dir = TargetDir() + "/" + ds;
    const std::string rel = SnapshotStore::DirName(target_) + "/" + ds;
    StatusOr<DatasetManifest> manifest = ReadDatasetManifest(dir);
    if (!manifest.ok()) return RebuildDatasetManifest(dir, rel);

    Dataset out;
    bool first = true;
    uint64_t row_lo = 0;
    for (const ShardEntry& entry : manifest.value().shards) {
      StatusOr<Dataset> shard = RepairShard(ds, dir, rel, entry, row_lo);
      if (!shard.ok()) return shard.status();
      if (first) {
        out = std::move(shard.value());
        first = false;
      } else {
        out.Append(shard.value());
      }
      row_lo += entry.rows;
    }
    const DatasetManifest& m = manifest.value();
    if (out.size() != m.num_rows || out.dim() != m.dim ||
        out.num_classes != m.num_classes) {
      return Status::InvalidArgument(
          "rebuilt dataset " + ds + " disagrees with its manifest geometry");
    }
    return out;
  }

 private:
  std::string TargetDir() const {
    return root_ + "/" + SnapshotStore::DirName(target_);
  }

  bool TryModel(const std::string& path, const ModelEntry& entry,
                SnapshotContents* contents) {
    if (entry.listed) {
      StatusOr<std::string> bytes = ReadFile(path);
      if (!bytes.ok() || bytes.value().size() != entry.bytes ||
          Crc32(bytes.value()) != entry.crc) {
        return false;
      }
    }
    StatusOr<ModelFile> model = LoadModelFile(path);
    if (!model.ok()) return false;
    contents->framework.model_dims = std::move(model.value().dims);
    contents->framework.model_weights = std::move(model.value().weights);
    return true;
  }

  /// Recovers one shard named by the dataset manifest. Tries, in order:
  /// the file as-is, an intra-file section rebuild, a sibling copy, and a
  /// donor-row re-encoding — each accepted only on an exact size + CRC
  /// match against the manifest entry.
  StatusOr<Dataset> RepairShard(const std::string& ds, const std::string& dir,
                                const std::string& rel,
                                const ShardEntry& entry, uint64_t row_lo) {
    const std::string shard_rel = rel + "/" + entry.file;
    StatusOr<std::string> bytes = ReadFile(dir + "/" + entry.file);
    if (bytes.ok() && Matches(bytes.value(), entry)) {
      StatusOr<Dataset> decoded = DecodeDatasetShard(bytes.value());
      if (decoded.ok() && decoded.value().size() == entry.rows) {
        return decoded;
      }
    }

    // 1. Section rebuild from the damaged bytes themselves.
    if (bytes.ok()) {
      StatusOr<Dataset> salvaged = RebuildShardFromSections(bytes.value());
      if (salvaged.ok()) {
        const std::string encoded = EncodeDatasetShard(salvaged.value());
        if (Matches(encoded, entry)) {
          AddAction(shard_rel, "section_rebuild", shard_rel,
                    "re-encoded from the shard's surviving sections");
          ++shards_rebuilt_;
          return salvaged;
        }
      }
    }

    // 2. The same file from a sibling snapshot.
    for (uint64_t donor : donors_) {
      const std::string donor_rel =
          SnapshotStore::DirName(donor) + "/" + ds + "/" + entry.file;
      StatusOr<std::string> donor_bytes = ReadFile(root_ + "/" + donor_rel);
      if (!donor_bytes.ok() || !Matches(donor_bytes.value(), entry)) continue;
      StatusOr<Dataset> decoded = DecodeDatasetShard(donor_bytes.value());
      if (!decoded.ok() || decoded.value().size() != entry.rows) continue;
      AddAction(shard_rel, "donor_file", donor_rel,
                "sibling copy matches the manifest CRC");
      ++shards_rebuilt_;
      return decoded;
    }

    // 3. Re-encode the exact rows [row_lo, row_lo + rows) the manifest
    //    names, from a sibling dataset or the operator's --source dir.
    std::vector<std::string> sources;
    for (uint64_t donor : donors_) {
      sources.push_back(SnapshotStore::DirName(donor) + "/" + ds);
    }
    if (!options_.source_dir.empty()) sources.push_back(options_.source_dir);
    for (const std::string& source : sources) {
      const Dataset* donor = DonorDataset(source);
      if (donor == nullptr || donor->size() < row_lo + entry.rows) continue;
      std::vector<size_t> rows(entry.rows);
      for (uint64_t i = 0; i < entry.rows; ++i) {
        rows[i] = static_cast<size_t>(row_lo + i);
      }
      Dataset candidate = donor->Subset(rows);
      const std::string encoded = EncodeDatasetShard(candidate);
      if (!Matches(encoded, entry)) continue;
      AddAction(shard_rel, "donor_rows", source,
                "rows " + std::to_string(row_lo) + ".." +
                    std::to_string(row_lo + entry.rows) +
                    " re-encoded to the manifest CRC");
      ++shards_rebuilt_;
      return candidate;
    }

    return Status::InvalidArgument(
        "shard " + shard_rel +
        " is unrepairable: no surviving sections, sibling copy or donor "
        "rows reproduce the manifest CRC");
  }

  /// Regenerates a dataset whose manifest.json is damaged: every shard
  /// file present must decode cleanly; Save rewrites the manifest.
  StatusOr<Dataset> RebuildDatasetManifest(const std::string& dir,
                                           const std::string& rel) {
    std::vector<std::string> names;
    std::error_code ec;
    for (const auto& item : std::filesystem::directory_iterator(dir, ec)) {
      const std::string name = item.path().filename().string();
      if (name.size() > 10 && name.compare(0, 6, "shard-") == 0 &&
          name.compare(name.size() - 4, 4, ".bin") == 0) {
        names.push_back(name);
      }
    }
    if (ec || names.empty()) {
      return Status::InvalidArgument("dataset " + rel +
                                     " has no readable shards to rebuild "
                                     "its manifest from");
    }
    std::sort(names.begin(), names.end());
    Dataset out;
    bool first = true;
    for (const std::string& name : names) {
      StatusOr<Dataset> shard = LoadDatasetShard(dir + "/" + name);
      if (!shard.ok()) {
        return Status::InvalidArgument(
            "dataset " + rel + " manifest is damaged and shard " + name +
            " does not decode cleanly: " + shard.status().message());
      }
      if (first) {
        out = std::move(shard.value());
        first = false;
      } else {
        out.Append(shard.value());
      }
    }
    AddAction(rel + "/manifest.json", "dataset_manifest_rebuild", rel,
              "regenerated from " + std::to_string(names.size()) +
                  " intact shards");
    return out;
  }

  bool Matches(const std::string& data, const ShardEntry& entry) const {
    return data.size() == entry.bytes && Crc32(data) == entry.crc32;
  }

  /// Loads (and caches) a donor dataset directory; nullptr when it does
  /// not load cleanly.
  const Dataset* DonorDataset(const std::string& source) {
    auto it = donor_cache_.find(source);
    if (it == donor_cache_.end()) {
      const std::string dir = source.front() == '/' || options_.source_dir == source
                                  ? source
                                  : root_ + "/" + source;
      StatusOr<Dataset> loaded = LoadDatasetSharded(dir);
      it = donor_cache_
               .emplace(source, loaded.ok()
                                    ? std::make_unique<Dataset>(
                                          std::move(loaded.value()))
                                    : nullptr)
               .first;
    }
    return it->second.get();
  }

  const std::string root_;
  const uint64_t target_;
  const std::vector<uint64_t> donors_;
  const RepairOptions& options_;
  RepairReport* report_;
  uint64_t shards_rebuilt_ = 0;
  std::map<std::string, std::unique_ptr<Dataset>> donor_cache_;
};

/// Durably rewrites CURRENT, through the repair fault site and the store
/// retry policy — the same discipline as a publish.
Status WriteCurrentPointer(const std::string& root, uint64_t seq) {
  return RetryWithBackoff(
      DefaultIoRetryPolicy(), "repair CURRENT", [&]() -> Status {
        ENLD_RETURN_IF_ERROR(faults::Check("store/repair_publish"));
        ENLD_RETURN_IF_ERROR(
            WriteFileDurable(root + "/" + kSnapshotCurrentFile,
                             SnapshotStore::DirName(seq) + "\n"));
        return SyncDir(root);
      });
}

/// Removes superseded damaged snapshot directories once a healthy snapshot
/// is reachable at `keep` — their bytes were either rebuilt into `keep` or
/// explicitly abandoned (rollback), and leaving them behind would alarm
/// every later scrub of the lineage. Best-effort: a failed removal is
/// recorded in the action detail, never an error (the next repair pass
/// converges on it).
void GcDamagedSnapshots(const std::string& root, const ScrubReport& scrub,
                        uint64_t keep, RepairReport* report) {
  for (uint64_t seq : scrub.scrubbed) {
    if (seq == keep || scrub.snapshot_clean(seq)) continue;
    std::error_code ec;
    std::filesystem::remove_all(
        std::filesystem::path(root) / SnapshotStore::DirName(seq), ec);
    report->actions.push_back(
        {seq, SnapshotStore::DirName(seq), "gc", "",
         ec ? "removal of the superseded damaged snapshot failed: " +
                  ec.message()
            : "superseded damaged snapshot removed after repair"});
  }
}

}  // namespace

StatusOr<RepairReport> RepairSnapshotStore(const std::string& root,
                                           const RepairOptions& options) {
  ENLD_TRACE_SPAN("store/repair");
  auto& registry = telemetry::MetricsRegistry::Global();
  static telemetry::Counter* runs = registry.GetCounter("store/repair_runs");
  static telemetry::Counter* published_counter =
      registry.GetCounter("store/repairs_published");
  static telemetry::Counter* shard_counter =
      registry.GetCounter("store/shards_rebuilt");
  runs->Increment();

  RepairReport report;
  report.root = root;
  report.dry_run = options.dry_run;
  StatusOr<ScrubReport> scrub = ScrubSnapshotStore(root);
  if (!scrub.ok()) return scrub.status();
  report.scrub = std::move(scrub.value());
  const std::vector<uint64_t> intact = report.scrub.intact_seqs();

  /// Fails the repair, naming the newest intact snapshot; with
  /// allow_rollback, repoints CURRENT at it instead.
  auto unrepairable = [&](const std::string& why) -> StatusOr<RepairReport> {
    report.failure = why;
    if (!intact.empty()) {
      report.failure +=
          "; newest intact snapshot is " + SnapshotStore::DirName(intact.back());
      if (options.allow_rollback) {
        const uint64_t back = intact.back();
        if (!options.dry_run) {
          ENLD_RETURN_IF_ERROR(WriteCurrentPointer(root, back));
        }
        report.actions.push_back(
            {back, kSnapshotCurrentFile, "rollback",
             SnapshotStore::DirName(back),
             "CURRENT repointed at the newest intact snapshot; the damaged "
             "snapshot's unique data is abandoned"});
        report.failure.clear();
        report.repaired = true;
        report.published_seq = back;
        if (!options.dry_run) {
          GcDamagedSnapshots(root, report.scrub, back, &report);
        }
      }
    }
    return report;
  };

  // Phase 1: a damaged CURRENT pointer is re-derived from the directories
  // on disk; the target snapshot itself is healed in phase 2.
  uint64_t target = report.scrub.current_seq;
  const SnapshotStore store(root);
  if (target == 0) {
    const std::vector<uint64_t> seqs = store.ListSeqs();
    if (seqs.empty()) {
      report.failure = "store has no snapshot directories to point CURRENT at";
      return report;
    }
    target = seqs.back();
    if (!options.dry_run) {
      ENLD_RETURN_IF_ERROR(WriteCurrentPointer(root, target));
    }
    report.actions.push_back(
        {target, kSnapshotCurrentFile, "current_rebuild",
         SnapshotStore::DirName(target),
         "CURRENT re-derived from the newest snapshot directory on disk"});
  }
  report.target_seq = target;

  if (report.scrub.snapshot_clean(target)) {
    if (!options.dry_run) {
      GcDamagedSnapshots(root, report.scrub, target, &report);
    }
    report.clean = report.actions.empty();
    report.repaired = !report.actions.empty() && !options.dry_run;
    report.published_seq = target;
    return report;
  }

  // Phase 2: rebuild the target snapshot's contents from what survives.
  std::vector<uint64_t> donors;
  for (auto it = report.scrub.scrubbed.rbegin();
       it != report.scrub.scrubbed.rend(); ++it) {
    if (*it != target) donors.push_back(*it);
  }
  Repairer repairer(root, target, donors, options, &report);
  const std::string dir = root + "/" + SnapshotStore::DirName(target);
  const std::string name = SnapshotStore::DirName(target);

  // state.bin is the one artifact with no redundancy: its sections must
  // decode cleanly or the snapshot is unrepairable.
  SnapshotContents contents;
  StatusOr<std::string> state = ReadFile(dir + "/" + kSnapshotStateFile);
  if (!state.ok()) {
    return unrepairable("state.bin is unreadable (" + state.status().message() +
                        ") and holds the snapshot's only copy of its state");
  }
  const Status decoded = DecodeSnapshotState(state.value(), &contents);
  if (!decoded.ok() || contents.seq != target) {
    return unrepairable(
        "state.bin does not decode cleanly and holds the snapshot's only "
        "copy of its state" +
        (decoded.ok() ? std::string(" (seq mismatch)")
                      : ": " + decoded.message()));
  }

  const Status model = repairer.RepairModel(&contents);
  if (!model.ok()) return unrepairable(model.message());

  StatusOr<Dataset> train = repairer.RepairDataset(kSnapshotTrainDir);
  if (!train.ok()) return unrepairable(train.status().message());
  contents.framework.train_set = std::move(train.value());
  StatusOr<Dataset> candidate = repairer.RepairDataset(kSnapshotCandidateDir);
  if (!candidate.ok()) return unrepairable(candidate.status().message());
  contents.framework.candidate_set = std::move(candidate.value());

  // The cross-file invariants SnapshotStore::Load enforces must hold
  // before the rebuilt state is published.
  if (contents.framework.selected_clean.size() !=
      contents.framework.candidate_set.size()) {
    return unrepairable(
        "rebuilt candidate set disagrees with the clean-selection bitmap");
  }
  if (!contents.framework.candidate_set.empty() &&
      (contents.framework.candidate_set.dim() != contents.inventory_dim ||
       contents.framework.candidate_set.num_classes !=
           contents.inventory_classes)) {
    return unrepairable(
        "rebuilt candidate set disagrees with the snapshot's inventory "
        "geometry");
  }

  // When the snapshot manifest itself was among the damage, publishing
  // regenerates it — record that as an explicit action.
  StatusOr<std::string> manifest_text =
      ReadFile(dir + "/" + kSnapshotManifestFile);
  StatusOr<JsonValue> parsed =
      manifest_text.ok() ? JsonValue::Parse(manifest_text.value())
                         : StatusOr<JsonValue>(manifest_text.status());
  if (!parsed.ok() || !parsed.value().is_object()) {
    repairer.AddAction(name + "/" + kSnapshotManifestFile, "manifest_rebuild",
                       name, "snapshot manifest regenerated at publish");
  }

  for (uint64_t i = 0; i < repairer.shards_rebuilt(); ++i) {
    shard_counter->Increment();
  }

  if (options.dry_run) {
    report.published_seq = 0;
    return report;
  }

  // Publish through the normal atomic staging path: the repaired state
  // becomes a NEW sequence and CURRENT only advances after the rename, so
  // a crash here leaves the store exactly as the scrub found it.
  ENLD_RETURN_IF_ERROR(RetryWithBackoff(
      DefaultIoRetryPolicy(), "repair publish",
      [&]() -> Status { return faults::Check("store/repair_publish"); }));
  StatusOr<uint64_t> published = SnapshotStore(root).Save(contents);
  if (!published.ok()) return published.status();
  StatusOr<SnapshotContents> verify =
      SnapshotStore(root).Load(published.value());
  if (!verify.ok()) {
    return Status::Internal("repaired snapshot failed verification: " +
                            verify.status().message());
  }
  GcDamagedSnapshots(root, report.scrub, published.value(), &report);
  report.published_seq = published.value();
  report.repaired = true;
  published_counter->Increment();
  return report;
}

Status WriteRepairReportJson(const RepairReport& report,
                             const std::string& path) {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema", JsonValue::String("enld-repair-v1"));
  doc.Set("root", JsonValue::String(report.root));
  doc.Set("target_seq",
          JsonValue::Number(static_cast<double>(report.target_seq)));
  doc.Set("published_seq",
          JsonValue::Number(static_cast<double>(report.published_seq)));
  doc.Set("clean", JsonValue::Bool(report.clean));
  doc.Set("repaired", JsonValue::Bool(report.repaired));
  doc.Set("dry_run", JsonValue::Bool(report.dry_run));
  doc.Set("failure", JsonValue::String(report.failure));
  doc.Set("scrub_findings",
          JsonValue::Number(static_cast<double>(report.scrub.findings.size())));
  JsonValue intact = JsonValue::Array();
  for (uint64_t seq : report.scrub.intact_seqs()) {
    intact.items().push_back(JsonValue::Number(static_cast<double>(seq)));
  }
  doc.Set("intact", std::move(intact));
  JsonValue actions = JsonValue::Array();
  for (const RepairAction& action : report.actions) {
    JsonValue entry = JsonValue::Object();
    entry.Set("seq", JsonValue::Number(static_cast<double>(action.seq)));
    entry.Set("file", JsonValue::String(action.file));
    entry.Set("method", JsonValue::String(action.method));
    entry.Set("source", JsonValue::String(action.source));
    entry.Set("detail", JsonValue::String(action.detail));
    actions.items().push_back(std::move(entry));
  }
  doc.Set("actions", std::move(actions));
  return WriteFileDurable(path, doc.ToString());
}

}  // namespace store
}  // namespace enld
