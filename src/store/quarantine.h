#ifndef ENLD_STORE_QUARANTINE_H_
#define ENLD_STORE_QUARANTINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "enld/admission.h"

namespace enld {
namespace store {

/// Writes a quarantine log as a durable JSON file (schema
/// "enld-quarantine-v1") for offline inspection, the
/// tools/check_quarantine.py audit, and `enld_cli replay`:
///
///   {"schema": "enld-quarantine-v1",
///    "total": <all-time quarantined count>,
///    "recorded": <records retained below the capacity cap>,
///    "capacity": <cap>,
///    "truncated": <true when the cap dropped records — a replay of this
///                  file cannot re-screen what was never written down>,
///    "records": [{"request": .., "row": .., "sample_id": ..,
///                 "reason": "non_finite_feature", "column": ..,
///                 "value": .., "detail": "..."}, ...]}
///
/// Lives in the store layer (not enld_core) so the platform keeps zero
/// dependencies on file IO. Uses WriteFileDurable, so the file is
/// crash-safe and the write retries transient faults like any store write.
Status WriteQuarantineJson(const QuarantineLog& log, const std::string& path);

/// One record parsed back out of a quarantine JSON file. The reason stays
/// a string so files from builds with newer RejectionReason values still
/// read (replay re-screens rows; it never trusts the recorded reason).
struct QuarantineFileRecord {
  uint64_t request = 0;
  uint64_t request_id = 0;
  uint64_t row = 0;
  uint64_t sample_id = 0;
  std::string reason;
  uint64_t column = 0;
  std::string value;
  std::string detail;
};

/// A parsed quarantine JSON file.
struct QuarantineFile {
  uint64_t total = 0;
  uint64_t capacity = 0;
  /// True when the writer's capacity cap dropped records. Absent in files
  /// from older builds; then derived as total > records.size().
  bool truncated = false;
  std::vector<QuarantineFileRecord> records;
};

/// Parses a file written by WriteQuarantineJson. NotFound when the file
/// is absent, InvalidArgument on a schema mismatch or malformed record.
StatusOr<QuarantineFile> ReadQuarantineJson(const std::string& path);

}  // namespace store
}  // namespace enld

#endif  // ENLD_STORE_QUARANTINE_H_
