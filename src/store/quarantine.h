#ifndef ENLD_STORE_QUARANTINE_H_
#define ENLD_STORE_QUARANTINE_H_

#include <string>

#include "common/status.h"
#include "enld/admission.h"

namespace enld {
namespace store {

/// Writes a quarantine log as a durable JSON file (schema
/// "enld-quarantine-v1") for offline inspection and the
/// tools/check_quarantine.py audit:
///
///   {"schema": "enld-quarantine-v1",
///    "total": <all-time quarantined count>,
///    "recorded": <records retained below the capacity cap>,
///    "capacity": <cap>,
///    "records": [{"request": .., "row": .., "sample_id": ..,
///                 "reason": "non_finite_feature", "column": ..,
///                 "value": .., "detail": "..."}, ...]}
///
/// Lives in the store layer (not enld_core) so the platform keeps zero
/// dependencies on file IO. Uses WriteFileDurable, so the file is
/// crash-safe and the write retries transient faults like any store write.
Status WriteQuarantineJson(const QuarantineLog& log, const std::string& path);

}  // namespace store
}  // namespace enld

#endif  // ENLD_STORE_QUARANTINE_H_
