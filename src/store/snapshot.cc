#include "store/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <utility>

#include "common/check.h"
#include "common/faults.h"
#include "common/retry.h"
#include "common/telemetry/metrics.h"
#include "common/telemetry/trace.h"
#include "nn/serialization.h"
#include "store/io.h"
#include "store/json.h"
#include "store/manifest.h"

namespace enld {
namespace store {

namespace {

constexpr char kSnapshotMagic[8] = {'E', 'N', 'L', 'D', 'S', 'N', 'P', '1'};
constexpr uint32_t kEndianTag = 0x01020304u;
constexpr uint32_t kSnapshotVersion = 3;
constexpr uint32_t kSectionCount = 6;
// v1 files (sections 1-5, no admission data) still load; their admission
// counters and update_pending default to zero/false. v2 files lack the
// deadline-exceeded counter at the end of the admission section; it
// defaults to zero.
constexpr uint32_t kLegacyVersion1 = 1;
constexpr uint32_t kLegacySectionCount1 = 5;
constexpr uint32_t kLegacyVersion2 = 2;
constexpr char kSnapshotSchema[] = "enld-snapshot-manifest-v1";
// Short aliases of the exported names in snapshot.h.
constexpr const char* kCurrentFile = kSnapshotCurrentFile;
constexpr const char* kManifestFile = kSnapshotManifestFile;
constexpr const char* kStateFile = kSnapshotStateFile;
constexpr const char* kModelFile = kSnapshotModelFile;
constexpr const char* kTrainDir = kSnapshotTrainDir;
constexpr const char* kCandidateDir = kSnapshotCandidateDir;

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t Fnv1a(const std::string& bytes) {
  uint64_t hash = kFnvOffset;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= kFnvPrime;
  }
  return hash;
}

/// Canonical byte encodings for fingerprinting. Field order is part of the
/// fingerprint: appending new config fields keeps old fingerprints stable
/// only if they are appended at the end with their default values.
void AppendTrainConfig(std::string* out, const TrainConfig& config) {
  PutU64(out, config.epochs);
  PutU64(out, config.batch_size);
  PutU32(out, static_cast<uint32_t>(config.optimizer));
  PutF64(out, config.sgd.learning_rate);
  PutF64(out, config.sgd.momentum);
  PutF64(out, config.sgd.weight_decay);
  PutF64(out, config.adam.learning_rate);
  PutF64(out, config.adam.beta1);
  PutF64(out, config.adam.beta2);
  PutF64(out, config.adam.epsilon);
  PutF64(out, config.mixup_alpha);
  PutF64(out, config.lr_decay_per_epoch);
  PutU8(out, config.select_best_on_validation ? 1 : 0);
  PutU64(out, config.seed);
}

std::string FingerprintHex(uint64_t fingerprint) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buffer;
}

telemetry::Counter* CrcFailures() {
  static telemetry::Counter* counter =
      telemetry::MetricsRegistry::Global().GetCounter("store/crc_failures");
  return counter;
}

}  // namespace

std::string EncodeSnapshotState(const SnapshotContents& contents) {
  std::string out;
  out.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  PutU32(&out, kEndianTag);
  PutU32(&out, kSnapshotVersion);
  PutU32(&out, kSectionCount);

  std::string payload;
  PutU64(&payload, contents.seq);
  PutU64(&payload, contents.config_fingerprint);
  PutU64(&payload, contents.inventory_dim);
  PutU32(&payload, static_cast<uint32_t>(contents.inventory_classes));
  PutSection(&out, kSnapshotSectionMeta, payload);

  payload.clear();
  PutU64(&payload, contents.stats.requests);
  PutU64(&payload, contents.stats.samples_processed);
  PutU64(&payload, contents.stats.samples_flagged_noisy);
  PutU64(&payload, contents.stats.model_updates);
  PutF64(&payload, contents.stats.total_process_seconds);
  PutSection(&out, kSnapshotSectionStats, payload);

  payload.clear();
  for (uint64_t word : contents.framework.rng.state) PutU64(&payload, word);
  PutF64(&payload, contents.framework.rng.cached_gaussian);
  PutU8(&payload, contents.framework.rng.has_cached_gaussian ? 1 : 0);
  PutSection(&out, kSnapshotSectionRng, payload);

  payload.clear();
  const size_t classes = contents.framework.conditional.size();
  PutU32(&payload, static_cast<uint32_t>(classes));
  for (const auto& row : contents.framework.conditional) {
    ENLD_CHECK_EQ(row.size(), classes);  // P~ is square by construction.
    for (double v : row) PutF64(&payload, v);
  }
  PutSection(&out, kSnapshotSectionConditional, payload);

  payload.clear();
  const auto& selected = contents.framework.selected_clean;
  PutU64(&payload, selected.size());
  std::string bitmap((selected.size() + 7) / 8, '\0');
  for (size_t i = 0; i < selected.size(); ++i) {
    if (selected[i] != 0) {
      bitmap[i / 8] |= static_cast<char>(1u << (i % 8));
    }
  }
  payload.append(bitmap);
  PutSection(&out, kSnapshotSectionSelected, payload);

  payload.clear();
  PutU64(&payload, contents.stats.samples_quarantined);
  PutU64(&payload, contents.stats.requests_rejected);
  PutU64(&payload, contents.stats.update_retries);
  PutU32(&payload, static_cast<uint32_t>(kNumRejectionReasons));
  for (size_t i = 0; i < kNumRejectionReasons; ++i) {
    PutU64(&payload, contents.stats.quarantined_by_reason[i]);
  }
  PutU8(&payload, contents.update_pending ? 1 : 0);
  PutU64(&payload, contents.stats.requests_deadline_exceeded);  // v3
  PutSection(&out, kSnapshotSectionAdmission, payload);
  return out;
}

Status DecodeSnapshotState(const std::string& data,
                           SnapshotContents* contents) {
  BinaryReader reader(data);
  std::string magic;
  if (!reader.ReadBytes(sizeof(kSnapshotMagic), &magic) ||
      std::memcmp(magic.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) !=
          0) {
    return Status::InvalidArgument("not an ENLD snapshot state file");
  }
  uint32_t endian = 0, version = 0, sections = 0;
  if (!reader.ReadU32(&endian) || !reader.ReadU32(&version) ||
      !reader.ReadU32(&sections)) {
    return Status::InvalidArgument("truncated snapshot state header");
  }
  if (endian != kEndianTag) {
    return Status::InvalidArgument(
        "snapshot byte-order tag mismatch (foreign-endian or corrupt file)");
  }
  if (version != kSnapshotVersion && version != kLegacyVersion1 &&
      version != kLegacyVersion2) {
    return Status::InvalidArgument("unsupported snapshot version " +
                                   std::to_string(version));
  }
  const uint32_t expected_sections =
      version == kLegacyVersion1 ? kLegacySectionCount1 : kSectionCount;
  if (sections != expected_sections) {
    return Status::InvalidArgument("unexpected snapshot section count");
  }

  std::string payload;
  ENLD_RETURN_IF_ERROR(ReadSection(&reader, kSnapshotSectionMeta, &payload));
  {
    BinaryReader meta(payload);
    uint32_t classes = 0;
    if (!meta.ReadU64(&contents->seq) ||
        !meta.ReadU64(&contents->config_fingerprint) ||
        !meta.ReadU64(&contents->inventory_dim) || !meta.ReadU32(&classes) ||
        meta.remaining() != 0) {
      return Status::InvalidArgument("malformed snapshot meta section");
    }
    contents->inventory_classes = static_cast<int>(classes);
  }

  ENLD_RETURN_IF_ERROR(ReadSection(&reader, kSnapshotSectionStats, &payload));
  {
    BinaryReader stats(payload);
    if (!stats.ReadU64(&contents->stats.requests) ||
        !stats.ReadU64(&contents->stats.samples_processed) ||
        !stats.ReadU64(&contents->stats.samples_flagged_noisy) ||
        !stats.ReadU64(&contents->stats.model_updates) ||
        !stats.ReadF64(&contents->stats.total_process_seconds) ||
        stats.remaining() != 0) {
      return Status::InvalidArgument("malformed snapshot stats section");
    }
  }

  ENLD_RETURN_IF_ERROR(ReadSection(&reader, kSnapshotSectionRng, &payload));
  {
    BinaryReader rng(payload);
    uint8_t has_cached = 0;
    if (!rng.ReadU64(&contents->framework.rng.state[0]) ||
        !rng.ReadU64(&contents->framework.rng.state[1]) ||
        !rng.ReadU64(&contents->framework.rng.state[2]) ||
        !rng.ReadU64(&contents->framework.rng.state[3]) ||
        !rng.ReadF64(&contents->framework.rng.cached_gaussian) ||
        !rng.ReadU8(&has_cached) || has_cached > 1 ||
        rng.remaining() != 0) {
      return Status::InvalidArgument("malformed snapshot RNG section");
    }
    contents->framework.rng.has_cached_gaussian = has_cached == 1;
  }

  ENLD_RETURN_IF_ERROR(
      ReadSection(&reader, kSnapshotSectionConditional, &payload));
  {
    BinaryReader cond(payload);
    uint32_t classes = 0;
    if (!cond.ReadU32(&classes) ||
        cond.remaining() !=
            static_cast<size_t>(classes) * classes * sizeof(double)) {
      return Status::InvalidArgument(
          "malformed snapshot conditional-probability section");
    }
    contents->framework.conditional.assign(classes,
                                           std::vector<double>(classes, 0.0));
    for (auto& row : contents->framework.conditional) {
      for (double& v : row) cond.ReadF64(&v);
    }
  }

  ENLD_RETURN_IF_ERROR(
      ReadSection(&reader, kSnapshotSectionSelected, &payload));
  {
    BinaryReader sel(payload);
    uint64_t count = 0;
    if (!sel.ReadU64(&count) ||
        sel.remaining() != (static_cast<size_t>(count) + 7) / 8) {
      return Status::InvalidArgument(
          "malformed snapshot clean-selection section");
    }
    std::string bitmap;
    sel.ReadBytes(sel.remaining(), &bitmap);
    contents->framework.selected_clean.resize(static_cast<size_t>(count));
    for (size_t i = 0; i < contents->framework.selected_clean.size(); ++i) {
      contents->framework.selected_clean[i] =
          (static_cast<unsigned char>(bitmap[i / 8]) >> (i % 8)) & 1u;
    }
  }

  if (version != kLegacyVersion1) {
    ENLD_RETURN_IF_ERROR(
        ReadSection(&reader, kSnapshotSectionAdmission, &payload));
    BinaryReader admission(payload);
    uint32_t reasons = 0;
    uint8_t pending = 0;
    if (!admission.ReadU64(&contents->stats.samples_quarantined) ||
        !admission.ReadU64(&contents->stats.requests_rejected) ||
        !admission.ReadU64(&contents->stats.update_retries) ||
        !admission.ReadU32(&reasons) ||
        reasons != static_cast<uint32_t>(kNumRejectionReasons)) {
      return Status::InvalidArgument("malformed snapshot admission section");
    }
    for (size_t i = 0; i < kNumRejectionReasons; ++i) {
      if (!admission.ReadU64(&contents->stats.quarantined_by_reason[i])) {
        return Status::InvalidArgument(
            "malformed snapshot admission section");
      }
    }
    if (!admission.ReadU8(&pending) || pending > 1) {
      return Status::InvalidArgument("malformed snapshot admission section");
    }
    if (version >= kSnapshotVersion &&
        !admission.ReadU64(&contents->stats.requests_deadline_exceeded)) {
      return Status::InvalidArgument("malformed snapshot admission section");
    }
    if (admission.remaining() != 0) {
      return Status::InvalidArgument("malformed snapshot admission section");
    }
    contents->update_pending = pending == 1;
  }

  if (reader.remaining() != 0) {
    return Status::InvalidArgument(
        "trailing bytes after last snapshot section");
  }
  return Status::OK();
}

namespace {

/// Verifies one manifest-listed file's size and CRC and returns nothing
/// but the Status; Load re-reads the file via its typed loader afterwards.
Status VerifyListedFile(const std::string& dir, const std::string& name,
                        uint64_t bytes, uint32_t crc) {
  StatusOr<std::string> data = ReadFile(dir + "/" + name);
  if (!data.ok()) return data.status();
  if (data.value().size() != bytes) {
    return Status::InvalidArgument(
        name + " is " + std::to_string(data.value().size()) +
        " bytes, snapshot manifest says " + std::to_string(bytes) +
        " (truncated?)");
  }
  if (Crc32(data.value()) != crc) {
    CrcFailures()->Increment();
    return Status::InvalidArgument(
        name + " CRC32 does not match the snapshot manifest");
  }
  return Status::OK();
}

}  // namespace

uint64_t FingerprintConfig(const DataPlatformConfig& config) {
  std::string bytes;
  PutU64(&bytes, config.update_every);
  PutU64(&bytes, config.min_update_samples);

  const EnldConfig& enld = config.enld;
  PutU32(&bytes, static_cast<uint32_t>(enld.general.backbone));
  AppendTrainConfig(&bytes, enld.general.train);
  PutU64(&bytes, enld.general.seed);

  PutU64(&bytes, enld.contrastive_k);
  PutU64(&bytes, enld.iterations);
  PutU64(&bytes, enld.steps_per_iteration);
  PutU64(&bytes, enld.warmup_epochs);
  PutF64(&bytes, enld.high_quality_strictness);
  AppendTrainConfig(&bytes, enld.finetune);
  PutU32(&bytes, static_cast<uint32_t>(enld.policy));
  PutU8(&bytes, enld.ablation.use_contrastive ? 1 : 0);
  PutU8(&bytes, enld.ablation.use_majority_voting ? 1 : 0);
  PutU8(&bytes, enld.ablation.merge_clean_into_c ? 1 : 0);
  PutU8(&bytes, enld.ablation.use_probability_label ? 1 : 0);
  PutU8(&bytes, enld.recover_missing_labels ? 1 : 0);
  PutU64(&bytes, enld.seed);
  return Fnv1a(bytes);
}

std::string SnapshotStore::DirName(uint64_t seq) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "snap-%06llu",
                static_cast<unsigned long long>(seq));
  return buffer;
}

StatusOr<uint64_t> SnapshotStore::LatestSeq() const {
  StatusOr<std::string> current = ReadFile(root_ + "/" + kCurrentFile);
  if (!current.ok()) return current.status();
  std::string name = current.value();
  while (!name.empty() && (name.back() == '\n' || name.back() == '\r')) {
    name.pop_back();
  }
  if (name.size() != 11 || name.compare(0, 5, "snap-") != 0) {
    return Status::InvalidArgument("malformed CURRENT pointer: '" + name +
                                   "'");
  }
  uint64_t seq = 0;
  for (size_t i = 5; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') {
      return Status::InvalidArgument("malformed CURRENT pointer: '" + name +
                                     "'");
    }
    seq = seq * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  if (seq == 0) {
    return Status::InvalidArgument("CURRENT points at sequence 0");
  }
  return seq;
}

std::vector<uint64_t> SnapshotStore::ListSeqs() const {
  std::vector<uint64_t> seqs;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(root_, ec)) {
    if (!entry.is_directory(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() != 11 || name.compare(0, 5, "snap-") != 0) continue;
    uint64_t seq = 0;
    bool numeric = true;
    for (size_t i = 5; i < name.size(); ++i) {
      if (name[i] < '0' || name[i] > '9') {
        numeric = false;
        break;
      }
      seq = seq * 10 + static_cast<uint64_t>(name[i] - '0');
    }
    if (numeric && seq > 0) seqs.push_back(seq);
  }
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

StatusOr<uint64_t> SnapshotStore::Save(const SnapshotContents& contents) {
  ENLD_TRACE_SPAN("store/save_snapshot");
  std::error_code ec;
  std::filesystem::create_directories(root_, ec);
  if (ec) {
    return Status::Internal("cannot create snapshot root " + root_ + ": " +
                            ec.message());
  }

  const StatusOr<uint64_t> latest = LatestSeq();
  const uint64_t seq = latest.ok() ? latest.value() + 1 : 1;
  const std::string name = DirName(seq);
  const std::string final_dir = root_ + "/" + name;
  const std::string staging = final_dir + ".tmp";

  // A stale staging dir (or an unpublished final dir from a crash between
  // the directory rename and the CURRENT update) was never visible to
  // readers and is safe to discard.
  std::filesystem::remove_all(staging, ec);
  std::filesystem::remove_all(final_dir, ec);
  std::filesystem::create_directories(staging, ec);
  if (ec) {
    return Status::Internal("cannot create staging directory " + staging +
                            ": " + ec.message());
  }

  SnapshotContents stamped_meta = contents;
  stamped_meta.seq = seq;
  const std::string state = EncodeSnapshotState(stamped_meta);
  ENLD_RETURN_IF_ERROR(
      WriteFileDurable(staging + "/" + kStateFile, state));

  // The model rides in the nn/serialization format. SaveModelFile writes
  // plainly, so the bytes are read back once for the manifest CRC and
  // re-written durably.
  ModelFile model;
  model.dims = contents.framework.model_dims;
  model.weights = contents.framework.model_weights;
  const std::string model_path = staging + "/" + kModelFile;
  ENLD_RETURN_IF_ERROR(SaveModelFile(model, model_path));
  StatusOr<std::string> model_bytes = ReadFile(model_path);
  if (!model_bytes.ok()) return model_bytes.status();
  ENLD_RETURN_IF_ERROR(WriteFileDurable(model_path, model_bytes.value()));

  ENLD_RETURN_IF_ERROR(SaveDatasetSharded(
      contents.framework.train_set, staging + "/" + kTrainDir, kTrainDir));
  ENLD_RETURN_IF_ERROR(SaveDatasetSharded(contents.framework.candidate_set,
                                          staging + "/" + kCandidateDir,
                                          kCandidateDir));

  JsonValue manifest = JsonValue::Object();
  manifest.Set("schema", JsonValue::String(kSnapshotSchema));
  manifest.Set("seq", JsonValue::Number(static_cast<double>(seq)));
  manifest.Set("config_fingerprint",
               JsonValue::String(FingerprintHex(contents.config_fingerprint)));
  JsonValue files = JsonValue::Array();
  const std::pair<const char*, const std::string*> listed[] = {
      {kStateFile, &state}, {kModelFile, &model_bytes.value()}};
  for (const auto& [file_name, bytes] : listed) {
    JsonValue entry = JsonValue::Object();
    entry.Set("file", JsonValue::String(file_name));
    entry.Set("bytes", JsonValue::Number(static_cast<double>(bytes->size())));
    entry.Set("crc32", JsonValue::Number(static_cast<double>(Crc32(*bytes))));
    files.items().push_back(std::move(entry));
  }
  manifest.Set("files", std::move(files));
  JsonValue datasets = JsonValue::Array();
  datasets.items().push_back(JsonValue::String(kTrainDir));
  datasets.items().push_back(JsonValue::String(kCandidateDir));
  manifest.Set("datasets", std::move(datasets));
  ENLD_RETURN_IF_ERROR(WriteFileDurable(staging + "/" + kManifestFile,
                                        manifest.ToString()));

  // Publish: rename the complete staging dir into place, persist the
  // parent, then (and only then) move CURRENT forward. The staging dir
  // survives a failed attempt untouched, so publishing retries under the
  // same policy as the file IO.
  ENLD_RETURN_IF_ERROR(RetryWithBackoff(
      DefaultIoRetryPolicy(), "publish snapshot " + name, [&]() -> Status {
        ENLD_RETURN_IF_ERROR(faults::Check("snapshot/publish"));
        std::error_code rename_ec;
        std::filesystem::rename(staging, final_dir, rename_ec);
        if (rename_ec) {
          return Status::Internal("cannot publish snapshot " + final_dir +
                                  ": " + rename_ec.message());
        }
        return Status::OK();
      }));
  ENLD_RETURN_IF_ERROR(SyncDir(root_));
  ENLD_RETURN_IF_ERROR(
      WriteFileDurable(root_ + "/" + kCurrentFile, name + "\n"));

  static telemetry::Counter* saved =
      telemetry::MetricsRegistry::Global().GetCounter(
          "store/snapshots_written");
  saved->Increment();
  GarbageCollect();
  return seq;
}

size_t SnapshotStore::GarbageCollect() const {
  if (keep_last_ == 0) return 0;
  const std::vector<uint64_t> seqs = ListSeqs();
  if (seqs.size() <= keep_last_) return 0;

  // CURRENT's target is immortal regardless of its age. After a crash
  // between a snapshot publish and the CURRENT update, newer unpublished
  // directories outrank the published one by sequence number — retention
  // must still never delete the only snapshot a reader can reach.
  uint64_t current = 0;
  const StatusOr<uint64_t> latest = LatestSeq();
  if (latest.ok()) current = latest.value();

  static telemetry::Counter* collected =
      telemetry::MetricsRegistry::Global().GetCounter(
          "store/snapshots_collected");
  size_t removed = 0;
  for (size_t i = 0; i + keep_last_ < seqs.size(); ++i) {
    if (seqs[i] == current) continue;
    std::error_code ec;
    std::filesystem::remove_all(root_ + "/" + DirName(seqs[i]), ec);
    if (!ec) {
      ++removed;
      collected->Increment();
    }
  }
  return removed;
}

StatusOr<SnapshotContents> SnapshotStore::Load(uint64_t seq) const {
  ENLD_TRACE_SPAN("store/load_snapshot");
  const std::string dir = root_ + "/" + DirName(seq);

  StatusOr<std::string> manifest_text = ReadFile(dir + "/" + kManifestFile);
  if (!manifest_text.ok()) return manifest_text.status();
  StatusOr<JsonValue> parsed = JsonValue::Parse(manifest_text.value());
  if (!parsed.ok()) return parsed.status();
  const JsonValue& root = parsed.value();
  if (!root.is_object()) {
    return Status::InvalidArgument("snapshot manifest is not a JSON object");
  }
  const JsonValue* schema = root.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->AsString() != kSnapshotSchema) {
    return Status::InvalidArgument("unsupported snapshot manifest schema");
  }
  const JsonValue* seq_field = root.Find("seq");
  if (seq_field == nullptr || !seq_field->is_number() ||
      static_cast<uint64_t>(seq_field->AsNumber()) != seq) {
    return Status::InvalidArgument(
        "snapshot manifest seq does not match its directory");
  }
  const JsonValue* fingerprint_field = root.Find("config_fingerprint");
  if (fingerprint_field == nullptr || !fingerprint_field->is_string()) {
    return Status::InvalidArgument(
        "snapshot manifest is missing config_fingerprint");
  }
  char* end = nullptr;
  const std::string& hex = fingerprint_field->AsString();
  const uint64_t manifest_fingerprint =
      std::strtoull(hex.c_str(), &end, 16);
  if (hex.empty() || end == nullptr || *end != '\0') {
    return Status::InvalidArgument("malformed config fingerprint: '" + hex +
                                   "'");
  }

  const JsonValue* files = root.Find("files");
  if (files == nullptr || !files->is_array() || files->items().empty()) {
    return Status::InvalidArgument("snapshot manifest has no 'files' array");
  }
  bool state_listed = false, model_listed = false;
  for (const JsonValue& item : files->items()) {
    const JsonValue* file_field = item.Find("file");
    const JsonValue* bytes_field = item.Find("bytes");
    const JsonValue* crc_field = item.Find("crc32");
    if (file_field == nullptr || !file_field->is_string() ||
        bytes_field == nullptr || !bytes_field->is_number() ||
        crc_field == nullptr || !crc_field->is_number()) {
      return Status::InvalidArgument("malformed snapshot file entry");
    }
    const std::string& file_name = file_field->AsString();
    if (file_name.empty() || file_name.find('/') != std::string::npos) {
      return Status::InvalidArgument(
          "snapshot file name must be a plain name");
    }
    ENLD_RETURN_IF_ERROR(VerifyListedFile(
        dir, file_name, static_cast<uint64_t>(bytes_field->AsNumber()),
        static_cast<uint32_t>(crc_field->AsNumber())));
    state_listed = state_listed || file_name == kStateFile;
    model_listed = model_listed || file_name == kModelFile;
  }
  if (!state_listed || !model_listed) {
    return Status::InvalidArgument(
        "snapshot manifest must list state.bin and model.bin");
  }

  SnapshotContents contents;
  StatusOr<std::string> state = ReadFile(dir + "/" + kStateFile);
  if (!state.ok()) return state.status();
  ENLD_RETURN_IF_ERROR(DecodeSnapshotState(state.value(), &contents));
  if (contents.seq != seq) {
    return Status::InvalidArgument(
        "state.bin seq does not match the snapshot directory");
  }
  if (contents.config_fingerprint != manifest_fingerprint) {
    return Status::InvalidArgument(
        "state.bin config fingerprint disagrees with the manifest");
  }

  StatusOr<ModelFile> model = LoadModelFile(dir + "/" + kModelFile);
  if (!model.ok()) return model.status();
  contents.framework.model_dims = std::move(model.value().dims);
  contents.framework.model_weights = std::move(model.value().weights);

  StatusOr<Dataset> train = LoadDatasetSharded(dir + "/" + kTrainDir);
  if (!train.ok()) return train.status();
  contents.framework.train_set = std::move(train.value());
  StatusOr<Dataset> candidate = LoadDatasetSharded(dir + "/" + kCandidateDir);
  if (!candidate.ok()) return candidate.status();
  contents.framework.candidate_set = std::move(candidate.value());

  if (contents.framework.selected_clean.size() !=
      contents.framework.candidate_set.size()) {
    return Status::InvalidArgument(
        "clean-selection bitmap length does not match the candidate set");
  }
  if (contents.framework.conditional.size() !=
      static_cast<size_t>(contents.framework.candidate_set.num_classes)) {
    return Status::InvalidArgument(
        "conditional-probability size does not match num_classes");
  }

  static telemetry::Counter* loaded =
      telemetry::MetricsRegistry::Global().GetCounter(
          "store/snapshots_read");
  loaded->Increment();
  return contents;
}

StatusOr<SnapshotContents> SnapshotStore::LoadLatest() const {
  StatusOr<uint64_t> seq = LatestSeq();
  if (!seq.ok()) return seq.status();
  return Load(seq.value());
}

}  // namespace store

StatusOr<std::function<Status()>> DataPlatform::BeginSnapshot(
    const std::string& dir) const {
  if (!initialized_) {
    return Status::FailedPrecondition(
        "platform not initialized; nothing to snapshot");
  }
  if (detector_ != nullptr) {
    return Status::FailedPrecondition(
        "snapshots capture the built-in 'enld' framework state; detector '" +
        config_.detector + "' is not snapshottable");
  }
  // The capture is synchronous — every byte below is copied before this
  // returns, so the platform may process further requests while the
  // returned closure performs the durable write on another thread.
  auto contents = std::make_shared<store::SnapshotContents>();
  contents->config_fingerprint = store::FingerprintConfig(config_);
  contents->framework = framework_.CaptureState();
  contents->stats = stats_;
  contents->inventory_dim = inventory_dim_;
  contents->inventory_classes = inventory_classes_;
  contents->update_pending = update_pending_;
  const size_t keep_last = config_.snapshot_keep_last;
  return std::function<Status()>([dir, keep_last, contents]() -> Status {
    store::SnapshotStore snapshots(dir, keep_last);
    StatusOr<uint64_t> seq = snapshots.Save(*contents);
    return seq.ok() ? Status::OK() : seq.status();
  });
}

Status DataPlatform::SaveSnapshot(const std::string& dir) const {
  StatusOr<std::function<Status()>> write = BeginSnapshot(dir);
  if (!write.ok()) return write.status();
  return write.value()();
}

Status DataPlatform::RestoreFromSnapshot(const std::string& dir) {
  ENLD_TRACE_SPAN("store/restore_snapshot");
  if (detector_ != nullptr) {
    return Status::FailedPrecondition(
        "snapshots restore the built-in 'enld' framework state; detector '" +
        config_.detector + "' is not snapshottable");
  }
  store::SnapshotStore snapshots(dir);
  StatusOr<store::SnapshotContents> loaded = snapshots.LoadLatest();
  if (!loaded.ok()) return loaded.status();
  store::SnapshotContents& contents = loaded.value();

  if (contents.config_fingerprint != store::FingerprintConfig(config_)) {
    return Status::FailedPrecondition(
        "snapshot was written under a different platform configuration "
        "(fingerprint mismatch); restore refused");
  }
  const uint64_t dim = contents.inventory_dim;
  const int classes = contents.inventory_classes;
  if (!contents.framework.candidate_set.empty() &&
      (contents.framework.candidate_set.dim() != dim ||
       contents.framework.candidate_set.num_classes != classes)) {
    return Status::InvalidArgument(
        "snapshot inventory geometry disagrees with its candidate set");
  }

  // RestoreState validates everything before mutating; only after it
  // commits are the platform-level fields replaced, so a failed restore
  // leaves this platform exactly as it was.
  ENLD_RETURN_IF_ERROR(
      framework_.RestoreState(std::move(contents.framework)));
  stats_ = contents.stats;
  inventory_dim_ = static_cast<size_t>(dim);
  inventory_classes_ = classes;
  update_pending_ = contents.update_pending;
  initialized_ = true;
  return Status::OK();
}

}  // namespace enld
