#ifndef ENLD_STORE_IO_H_
#define ENLD_STORE_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/retry.h"
#include "common/status.h"

namespace enld {
namespace store {

/// Low-level byte layer of the durable store: explicit little-endian
/// encoding, CRC32 checksums, and crash-safe file writes.
///
/// Every multi-byte value written by the store goes through the Put*
/// helpers, so on-disk bytes are little-endian on any host and a file
/// written on one machine loads on another. Durability follows the
/// write-to-temp + fsync + rename discipline: a reader never observes a
/// partially written file under the final name, even across a crash.
///
/// All store reads and writes are counted into the telemetry registry
/// ("store/bytes_read", "store/bytes_written", "store/crc_failures"), and
/// the counts are independent of ENLD_THREADS.

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected), matching
/// Python's zlib.crc32 so tools/check_snapshot.py can re-verify files.
uint32_t Crc32(const void* data, size_t size);
uint32_t Crc32(const std::string& data);

/// Little-endian append helpers.
void PutU8(std::string* out, uint8_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutI32(std::string* out, int32_t v);
void PutF32(std::string* out, float v);
void PutF64(std::string* out, double v);
void PutBytes(std::string* out, const void* data, size_t size);

/// Bounds-checked little-endian cursor over an in-memory buffer. Read*
/// returns false (leaving the output untouched) once the buffer is
/// exhausted — callers turn that into a typed "truncated" Status.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& data) : data_(data) {}

  size_t offset() const { return offset_; }
  size_t remaining() const { return data_.size() - offset_; }

  bool ReadU8(uint8_t* v);
  bool ReadU32(uint32_t* v);
  bool ReadU64(uint64_t* v);
  bool ReadI32(int32_t* v);
  bool ReadF32(float* v);
  bool ReadF64(double* v);
  /// Copies `size` raw bytes into `out` (resized).
  bool ReadBytes(size_t size, std::string* out);
  bool Skip(size_t size);

 private:
  const std::string& data_;
  size_t offset_ = 0;
};

/// Appends a checksummed section envelope shared by every store binary
/// format: id (u32), payload byte length (u64), CRC32(payload) (u32),
/// payload.
void PutSection(std::string* out, uint32_t id, const std::string& payload);

/// Reads one section envelope, verifying the id and the CRC. Fails with
/// InvalidArgument on truncation, an unexpected id, or a checksum
/// mismatch; CRC mismatches also count store/crc_failures.
Status ReadSection(BinaryReader* reader, uint32_t expected_id,
                   std::string* payload);

/// The retry policy every store IO path applies around transient errors
/// (fault sites firing, flaky reads/writes). Mutable so entry points can
/// honor a --max_retries flag; set it once at startup, before any store
/// traffic. Typed logical errors (NotFound, InvalidArgument) are never
/// retried. The schedule is the plain exponential one — no jitter Rng here,
/// so store retries never perturb the model's random streams.
RetryPolicy& DefaultIoRetryPolicy();

/// Reads a whole file into memory, retrying transient failures under
/// DefaultIoRetryPolicy. NotFound when the file cannot be opened, Internal
/// on a read error that survives the retries. Counts store/bytes_read.
/// Fault site: "store/read_file".
StatusOr<std::string> ReadFile(const std::string& path);

/// Crash-safe write: writes `data` to `path + ".tmp"`, fsyncs it, renames
/// over `path`, then fsyncs the parent directory. After a crash either the
/// old file or the complete new file is visible — never a prefix. Counts
/// store/bytes_written. Transient failures retry under
/// DefaultIoRetryPolicy; each attempt restarts from the temp write, so a
/// failed attempt never leaves a torn final file. Fault sites:
/// "store/write_file", "store/fsync", "store/rename".
Status WriteFileDurable(const std::string& path, const std::string& data);

/// Fsyncs a directory so a just-created/renamed entry survives a crash.
/// Best-effort no-op on platforms without directory fsync.
Status SyncDir(const std::string& path);

}  // namespace store
}  // namespace enld

#endif  // ENLD_STORE_IO_H_
