#ifndef ENLD_STORE_REPAIR_H_
#define ENLD_STORE_REPAIR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "store/scrub.h"

namespace enld {
namespace store {

/// Self-healing repair of a damaged snapshot store (docs/ROBUSTNESS.md
/// §"Self-healing runbook", `enld_cli repair`). A repair pass scrubs the
/// whole lineage, then rebuilds the snapshot CURRENT points at from
/// whatever still carries verifiable bytes:
///
///   * a damaged shard whose non-bitmap sections survive is re-encoded
///     from those sections ("section_rebuild"),
///   * or replaced by the same file from a sibling snapshot
///     ("donor_file"),
///   * or re-encoded from the exact row range the dataset manifest names,
///     taken from any sibling snapshot's dataset or an operator-supplied
///     --source directory ("donor_rows");
///   * a damaged dataset manifest is regenerated from its intact shards
///     ("dataset_manifest_rebuild");
///   * a damaged model.bin is replaced by a sibling copy
///     ("donor_file");
///   * a damaged CURRENT pointer is re-derived from the directories on
///     disk ("current_rebuild").
///
/// Every rebuilt artifact is accepted ONLY when its bytes match the size
/// and CRC32 the manifest recorded — a donor that diverged (datasets swap
/// at model updates) is rejected, never trusted. state.bin is unique per
/// snapshot and cannot be rebuilt; when it is damaged, repair fails (or,
/// with `allow_rollback`, repoints CURRENT at the newest intact
/// snapshot).
///
/// The repaired snapshot is published as a NEW sequence through
/// SnapshotStore::Save — the same staging + atomic-rename + CURRENT
/// protocol as every other save — so a crash mid-repair never loses the
/// last good snapshot. Fault site: "store/repair_publish" (checked before
/// the publish, under the store retry policy). Once a healthy snapshot is
/// reachable again, the superseded damaged directories are
/// garbage-collected ("gc" actions) so the healed lineage scrubs clean.

/// One rebuild step the repairer took (or planned, under dry_run).
struct RepairAction {
  uint64_t seq = 0;     ///< snapshot the artifact belongs to
  std::string file;     ///< store-root-relative path of the artifact
  std::string method;   ///< section_rebuild | donor_file | donor_rows |
                        ///  dataset_manifest_rebuild | manifest_rebuild |
                        ///  current_rebuild | rollback | gc
  std::string source;   ///< where the bytes came from
  std::string detail;   ///< human-readable message
};

struct RepairOptions {
  /// Optional sharded-dataset directory consulted as an extra row donor
  /// (after sibling snapshots) for "donor_rows" rebuilds.
  std::string source_dir;
  /// Scrub and plan the rebuild, but publish nothing.
  bool dry_run = false;
  /// When the target snapshot is unrepairable (state.bin damaged), repoint
  /// CURRENT at the newest intact snapshot instead of failing. Off by
  /// default: rolling back silently discards the damaged snapshot's data.
  bool allow_rollback = false;
};

struct RepairReport {
  std::string root;
  ScrubReport scrub;           ///< the pre-repair scrub of the whole store
  uint64_t target_seq = 0;     ///< snapshot the repair worked on
  uint64_t published_seq = 0;  ///< seq the repaired state is reachable at
  bool clean = false;          ///< store was already healthy; no-op
  bool repaired = false;       ///< store is healthy again
  bool dry_run = false;
  std::vector<RepairAction> actions;
  /// Why the store could not be healed (empty when clean or repaired);
  /// names the newest intact snapshot when one exists.
  std::string failure;
};

/// Scrubs `root` and heals the snapshot CURRENT points at, as described
/// above. The returned Status is non-OK only for environment-level
/// problems (unreadable root, publish IO errors that survive retries); an
/// unrepairable store is reported via `failure`, not an error. Telemetry:
/// store/repair_runs, store/repairs_published, store/shards_rebuilt.
StatusOr<RepairReport> RepairSnapshotStore(const std::string& root,
                                           const RepairOptions& options = {});

/// Writes the report as durable JSON, schema "enld-repair-v1" (validated
/// offline by tools/check_scrub_report.py).
Status WriteRepairReportJson(const RepairReport& report,
                             const std::string& path);

}  // namespace store
}  // namespace enld

#endif  // ENLD_STORE_REPAIR_H_
