#include "store/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace enld {
namespace store {

namespace {

/// Recursive-descent parser over a character range.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> ParseDocument() {
    StatusOr<JsonValue> value = ParseValue();
    if (!value.ok()) return value;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    const size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  StatusOr<JsonValue> ParseValue() {
    if (++depth_ > 64) return Error("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    StatusOr<JsonValue> out = [&]() -> StatusOr<JsonValue> {
      const char c = text_[pos_];
      if (c == '{') return ParseObject();
      if (c == '[') return ParseArray();
      if (c == '"') {
        StatusOr<std::string> s = ParseString();
        if (!s.ok()) return s.status();
        return JsonValue::String(std::move(s.value()));
      }
      if (ConsumeWord("true")) return JsonValue::Bool(true);
      if (ConsumeWord("false")) return JsonValue::Bool(false);
      if (ConsumeWord("null")) return JsonValue();
      return ParseNumber();
    }();
    --depth_;
    return out;
  }

  StatusOr<JsonValue> ParseObject() {
    ++pos_;  // '{'.
    JsonValue object = JsonValue::Object();
    SkipSpace();
    if (Consume('}')) return object;
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      StatusOr<std::string> key = ParseString();
      if (!key.ok()) return key.status();
      if (!Consume(':')) return Error("expected ':'");
      StatusOr<JsonValue> value = ParseValue();
      if (!value.ok()) return value;
      object.Set(key.value(), std::move(value.value()));
      if (Consume(',')) continue;
      if (Consume('}')) return object;
      return Error("expected ',' or '}'");
    }
  }

  StatusOr<JsonValue> ParseArray() {
    ++pos_;  // '['.
    JsonValue array = JsonValue::Array();
    SkipSpace();
    if (Consume(']')) return array;
    while (true) {
      StatusOr<JsonValue> value = ParseValue();
      if (!value.ok()) return value;
      array.items().push_back(std::move(value.value()));
      if (Consume(',')) continue;
      if (Consume(']')) return array;
      return Error("expected ',' or ']'");
    }
  }

  StatusOr<std::string> ParseString() {
    ++pos_;  // '"'.
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          default:
            return Error("unsupported escape sequence");
        }
        continue;
      }
      out.push_back(c);
    }
    return Error("unterminated string");
  }

  StatusOr<JsonValue> ParseNumber() {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) return Error("expected a JSON value");
    pos_ += static_cast<size_t>(end - start);
    return JsonValue::Number(v);
  }

  const std::string& text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

void WriteNumber(std::string* out, double v) {
  char buffer[64];
  // Integers (the common case: row counts, CRCs, sizes) print exactly;
  // other doubles use round-trippable %.17g.
  if (v == static_cast<double>(static_cast<long long>(v))) {
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(v));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  }
  out->append(buffer);
}

}  // namespace

JsonValue JsonValue::Bool(bool v) {
  JsonValue out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::Number(double v) {
  JsonValue out;
  out.kind_ = Kind::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::String(std::string v) {
  JsonValue out;
  out.kind_ = Kind::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::Array() {
  JsonValue out;
  out.kind_ = Kind::kArray;
  return out;
}

JsonValue JsonValue::Object() {
  JsonValue out;
  out.kind_ = Kind::kObject;
  return out;
}

StatusOr<JsonValue> JsonValue::Parse(const std::string& text) {
  return Parser(text).ParseDocument();
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : fields_) {
    if (name == key) return &value;
  }
  return nullptr;
}

void JsonValue::Set(const std::string& key, JsonValue value) {
  for (auto& [name, existing] : fields_) {
    if (name == key) {
      existing = std::move(value);
      return;
    }
  }
  fields_.emplace_back(key, std::move(value));
}

std::string JsonValue::ToString() const {
  std::string out;
  Write(&out, 0);
  out.push_back('\n');
  return out;
}

void JsonValue::Write(std::string* out, int indent) const {
  const std::string pad(2 * (indent + 1), ' ');
  const std::string closing_pad(2 * indent, ' ');
  switch (kind_) {
    case Kind::kNull:
      out->append("null");
      break;
    case Kind::kBool:
      out->append(bool_ ? "true" : "false");
      break;
    case Kind::kNumber:
      WriteNumber(out, number_);
      break;
    case Kind::kString:
      out->push_back('"');
      out->append(JsonEscape(string_));
      out->push_back('"');
      break;
    case Kind::kArray: {
      if (items_.empty()) {
        out->append("[]");
        break;
      }
      out->append("[\n");
      for (size_t i = 0; i < items_.size(); ++i) {
        out->append(pad);
        items_[i].Write(out, indent + 1);
        if (i + 1 < items_.size()) out->push_back(',');
        out->push_back('\n');
      }
      out->append(closing_pad);
      out->push_back(']');
      break;
    }
    case Kind::kObject: {
      if (fields_.empty()) {
        out->append("{}");
        break;
      }
      out->append("{\n");
      for (size_t i = 0; i < fields_.size(); ++i) {
        out->append(pad);
        out->push_back('"');
        out->append(JsonEscape(fields_[i].first));
        out->append("\": ");
        fields_[i].second.Write(out, indent + 1);
        if (i + 1 < fields_.size()) out->push_back(',');
        out->push_back('\n');
      }
      out->append(closing_pad);
      out->push_back('}');
      break;
    }
  }
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out.append("\\\""); break;
      case '\\': out.append("\\\\"); break;
      case '\n': out.append("\\n"); break;
      case '\t': out.append("\\t"); break;
      case '\r': out.append("\\r"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out.append(buffer);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace store
}  // namespace enld
