#ifndef ENLD_STORE_SCRUB_H_
#define ENLD_STORE_SCRUB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace enld {
namespace store {

/// Integrity scrubber for a snapshot store (docs/ROBUSTNESS.md
/// §"Self-healing runbook"). Where SnapshotStore::Load stops at the first
/// defect, the scrubber walks the whole lineage — CURRENT, every snap-*
/// directory, every manifest, every per-section CRC envelope inside
/// state.bin and the dataset shards — and collects *every* finding, typed
/// precisely enough for RepairSnapshotStore (store/repair.h) to decide
/// which surviving pieces a rebuild can start from.
///
/// Scrub reads go through the "store/scrub_read" fault site and retry
/// under DefaultIoRetryPolicy like all store IO. The walk itself never
/// mutates the store.

/// One defect, located down to the section that fails its CRC.
struct ScrubFinding {
  /// Snapshot sequence the finding belongs to; 0 = store-level (CURRENT).
  uint64_t seq = 0;
  /// Path relative to the store root ("snap-000002/train/shard-00000.bin").
  std::string file;
  /// Finer location: "file" (whole-file size/CRC vs its manifest),
  /// "header", "section-<id>", "manifest" (structural JSON problems),
  /// "pointer" (CURRENT), or "geometry" (cross-file disagreement).
  std::string section;
  /// Stable machine-readable key: "missing", "unreadable", "malformed",
  /// "bad_magic", "truncated", "size_mismatch", "crc_mismatch",
  /// "mismatch", "dangling".
  std::string reason;
  std::string detail;  ///< human-readable message
};

/// Everything one scrub pass observed. Findings are ordered
/// deterministically: store-level first, then snapshots by ascending seq,
/// files in manifest order within each snapshot.
struct ScrubReport {
  std::string root;
  /// Sequence CURRENT points at; 0 when CURRENT is missing, malformed or
  /// dangling (a matching finding explains which).
  uint64_t current_seq = 0;
  std::vector<uint64_t> scrubbed;  ///< snapshot seqs examined, ascending
  uint64_t files_checked = 0;
  uint64_t sections_checked = 0;
  uint64_t bytes_scrubbed = 0;
  std::vector<ScrubFinding> findings;

  bool clean() const { return findings.empty(); }
  /// True when snapshot `seq` was scrubbed and produced no findings.
  bool snapshot_clean(uint64_t seq) const;
  /// Scrubbed snapshots with zero findings, ascending.
  std::vector<uint64_t> intact_seqs() const;
};

/// Scrubs every snapshot directory under `root` plus the CURRENT pointer.
/// Defects are findings, not errors — the returned Status is only non-OK
/// when the root itself is unusable (missing or unreadable directory).
/// Telemetry: store/scrub_runs, store/scrub_files, store/scrub_findings.
StatusOr<ScrubReport> ScrubSnapshotStore(const std::string& root);

/// Writes the report as durable JSON, schema "enld-scrub-v1" (validated
/// offline by tools/check_scrub_report.py).
Status WriteScrubReportJson(const ScrubReport& report,
                            const std::string& path);

}  // namespace store
}  // namespace enld

#endif  // ENLD_STORE_SCRUB_H_
