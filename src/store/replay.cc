#include "store/replay.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/telemetry/metrics.h"
#include "common/telemetry/trace.h"
#include "store/io.h"
#include "store/json.h"

namespace enld {
namespace store {

StatusOr<ReplayReport> ReplayQuarantine(const QuarantineFile& log,
                                        const Dataset& source,
                                        DataPlatform* platform,
                                        uint64_t request_id) {
  ENLD_TRACE_SPAN("store/replay_quarantine");
  ReplayReport report;
  report.request_id = request_id;
  report.quarantine_truncated = log.truncated;

  // Log records in order, deduplicated by sample id (a sample quarantined
  // by several requests replays once).
  std::vector<std::pair<uint64_t, std::string>> samples;  // id, prior reason
  std::unordered_set<uint64_t> seen;
  for (const QuarantineFileRecord& record : log.records) {
    if (seen.insert(record.sample_id).second) {
      samples.emplace_back(record.sample_id, record.reason);
    }
  }
  report.records = samples.size();

  // Match each sample to the corrected source by stable id (first
  // occurrence wins), then re-screen the matched rows as ONE dataset in
  // ascending source-row order — deterministic at any thread count.
  std::unordered_map<uint64_t, size_t> source_row_by_id;
  for (size_t row = 0; row < source.size(); ++row) {
    source_row_by_id.emplace(source.ids[row], row);
  }
  std::vector<size_t> replay_rows;
  for (const auto& [sample_id, reason] : samples) {
    auto it = source_row_by_id.find(sample_id);
    if (it != source_row_by_id.end()) replay_rows.push_back(it->second);
  }
  std::sort(replay_rows.begin(), replay_rows.end());
  const Dataset replay = source.Subset(replay_rows);
  const AdmissionResult screen = ScreenDataset(replay, 0);

  // Per-replay-row verdicts, keyed by position within `replay`.
  std::unordered_map<size_t, RejectionReason> rejected_at;
  for (const QuarantineRecord& record : screen.rejected) {
    rejected_at.emplace(record.row, record.reason);
  }
  std::unordered_map<size_t, size_t> replay_index_of_source_row;
  for (size_t i = 0; i < replay_rows.size(); ++i) {
    replay_index_of_source_row.emplace(replay_rows[i], i);
  }

  for (const auto& [sample_id, prior_reason] : samples) {
    ReplayOutcome outcome;
    outcome.sample_id = sample_id;
    outcome.prior_reason = prior_reason;
    auto row_it = source_row_by_id.find(sample_id);
    if (row_it == source_row_by_id.end()) {
      outcome.verdict = "missing";
      ++report.missing;
    } else {
      outcome.source_row = row_it->second;
      ++report.replayed;
      const size_t replay_index =
          replay_index_of_source_row.at(row_it->second);
      auto rejected_it = rejected_at.find(replay_index);
      if (rejected_it == rejected_at.end()) {
        outcome.verdict = "readmitted";
        ++report.readmitted;
      } else {
        outcome.verdict = "still_rejected";
        outcome.reason = RejectionReasonName(rejected_it->second);
        ++report.still_rejected;
        ++report.still_rejected_by_reason[static_cast<size_t>(
            rejected_it->second)];
      }
    }
    report.outcomes.push_back(std::move(outcome));
  }

  if (platform != nullptr && !screen.admitted.empty()) {
    report.processed = true;
    StatusOr<DetectionResult> result =
        platform->Process(replay.Subset(screen.admitted), -1.0, request_id);
    if (result.ok()) {
      report.process_status = "ok";
      report.process_flagged_noisy = result.value().noisy_indices.size();
    } else {
      report.process_status = result.status().message();
    }
  }

  auto& registry = telemetry::MetricsRegistry::Global();
  static telemetry::Counter* runs =
      registry.GetCounter("store/replay_runs");
  static telemetry::Counter* readmitted =
      registry.GetCounter("store/replay_readmitted");
  runs->Increment();
  for (uint64_t i = 0; i < report.readmitted; ++i) readmitted->Increment();
  return report;
}

Status WriteReplayReportJson(const ReplayReport& report,
                             const std::string& path) {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema", JsonValue::String("enld-replay-v1"));
  doc.Set("request_id",
          JsonValue::Number(static_cast<double>(report.request_id)));
  doc.Set("quarantine_truncated",
          JsonValue::Bool(report.quarantine_truncated));
  doc.Set("records", JsonValue::Number(static_cast<double>(report.records)));
  doc.Set("replayed",
          JsonValue::Number(static_cast<double>(report.replayed)));
  doc.Set("missing", JsonValue::Number(static_cast<double>(report.missing)));
  doc.Set("readmitted",
          JsonValue::Number(static_cast<double>(report.readmitted)));
  doc.Set("still_rejected",
          JsonValue::Number(static_cast<double>(report.still_rejected)));
  JsonValue by_reason = JsonValue::Object();
  for (size_t i = 0; i < kNumRejectionReasons; ++i) {
    by_reason.Set(RejectionReasonName(static_cast<RejectionReason>(i)),
                  JsonValue::Number(static_cast<double>(
                      report.still_rejected_by_reason[i])));
  }
  doc.Set("still_rejected_by_reason", std::move(by_reason));
  doc.Set("all_readmitted", JsonValue::Bool(report.all_readmitted()));
  JsonValue outcomes = JsonValue::Array();
  for (const ReplayOutcome& outcome : report.outcomes) {
    JsonValue entry = JsonValue::Object();
    entry.Set("sample_id",
              JsonValue::Number(static_cast<double>(outcome.sample_id)));
    entry.Set("source_row",
              JsonValue::Number(static_cast<double>(outcome.source_row)));
    entry.Set("prior_reason", JsonValue::String(outcome.prior_reason));
    entry.Set("verdict", JsonValue::String(outcome.verdict));
    entry.Set("reason", JsonValue::String(outcome.reason));
    outcomes.items().push_back(std::move(entry));
  }
  doc.Set("outcomes", std::move(outcomes));
  doc.Set("processed", JsonValue::Bool(report.processed));
  doc.Set("process_status", JsonValue::String(report.process_status));
  doc.Set("process_flagged_noisy",
          JsonValue::Number(
              static_cast<double>(report.process_flagged_noisy)));
  return WriteFileDurable(path, doc.ToString());
}

}  // namespace store
}  // namespace enld
