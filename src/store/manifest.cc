#include "store/manifest.h"

#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/parallel.h"
#include "common/telemetry/metrics.h"
#include "common/telemetry/trace.h"
#include "store/io.h"
#include "store/json.h"
#include "store/shard.h"

namespace enld {
namespace store {

namespace {

constexpr char kManifestSchema[] = "enld-dataset-manifest-v1";
constexpr char kManifestFile[] = "manifest.json";

telemetry::Counter* CrcFailures() {
  static telemetry::Counter* counter =
      telemetry::MetricsRegistry::Global().GetCounter("store/crc_failures");
  return counter;
}

std::string ShardFileName(size_t index) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "shard-%05zu.bin", index);
  return buffer;
}

/// Fetches a non-negative integer field from a manifest object.
Status GetUInt(const JsonValue& object, const std::string& key,
               uint64_t* out) {
  const JsonValue* field = object.Find(key);
  if (field == nullptr || !field->is_number() || field->AsNumber() < 0) {
    return Status::InvalidArgument("manifest field '" + key +
                                   "' missing or not a non-negative number");
  }
  *out = static_cast<uint64_t>(field->AsNumber());
  return Status::OK();
}

Status GetString(const JsonValue& object, const std::string& key,
                 std::string* out) {
  const JsonValue* field = object.Find(key);
  if (field == nullptr || !field->is_string()) {
    return Status::InvalidArgument("manifest field '" + key +
                                   "' missing or not a string");
  }
  *out = field->AsString();
  return Status::OK();
}

}  // namespace

Status SaveDatasetSharded(const Dataset& dataset, const std::string& dir,
                          const std::string& name, size_t rows_per_shard) {
  ENLD_TRACE_SPAN("store/save_dataset");
  ENLD_RETURN_IF_ERROR(ValidateDataset(dataset));
  if (rows_per_shard == 0) rows_per_shard = kDefaultRowsPerShard;

  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create directory " + dir + ": " +
                            ec.message());
  }

  const size_t rows = dataset.size();
  const size_t num_shards =
      rows == 0 ? 1 : (rows + rows_per_shard - 1) / rows_per_shard;
  std::vector<ShardEntry> entries(num_shards);
  std::vector<Status> statuses(num_shards);

  // Shards are independent row ranges: encode and write them in parallel.
  ParallelFor(0, num_shards, 1, [&](size_t begin, size_t end) {
    for (size_t s = begin; s < end; ++s) {
      const size_t lo = s * rows_per_shard;
      const size_t hi = std::min(rows, lo + rows_per_shard);
      std::vector<size_t> indices(hi - lo);
      for (size_t i = lo; i < hi; ++i) indices[i - lo] = i;
      const std::string encoded =
          EncodeDatasetShard(dataset.Subset(indices));
      entries[s].file = ShardFileName(s);
      entries[s].rows = hi - lo;
      entries[s].bytes = encoded.size();
      entries[s].crc32 = Crc32(encoded);
      statuses[s] = WriteFileDurable(dir + "/" + entries[s].file, encoded);
    }
  });
  for (const Status& status : statuses) {
    ENLD_RETURN_IF_ERROR(status);
  }

  JsonValue manifest = JsonValue::Object();
  manifest.Set("schema", JsonValue::String(kManifestSchema));
  manifest.Set("name", JsonValue::String(name));
  manifest.Set("num_rows", JsonValue::Number(static_cast<double>(rows)));
  manifest.Set("dim",
               JsonValue::Number(static_cast<double>(dataset.dim())));
  manifest.Set("num_classes", JsonValue::Number(dataset.num_classes));
  JsonValue shards = JsonValue::Array();
  for (const ShardEntry& entry : entries) {
    JsonValue shard = JsonValue::Object();
    shard.Set("file", JsonValue::String(entry.file));
    shard.Set("rows", JsonValue::Number(static_cast<double>(entry.rows)));
    shard.Set("bytes",
              JsonValue::Number(static_cast<double>(entry.bytes)));
    shard.Set("crc32",
              JsonValue::Number(static_cast<double>(entry.crc32)));
    shards.items().push_back(std::move(shard));
  }
  manifest.Set("shards", std::move(shards));
  ENLD_RETURN_IF_ERROR(
      WriteFileDurable(dir + "/" + kManifestFile, manifest.ToString()));
  return SyncDir(dir);
}

StatusOr<DatasetManifest> ReadDatasetManifest(const std::string& dir) {
  StatusOr<std::string> text = ReadFile(dir + "/" + kManifestFile);
  if (!text.ok()) return text.status();
  StatusOr<JsonValue> parsed = JsonValue::Parse(text.value());
  if (!parsed.ok()) return parsed.status();
  const JsonValue& root = parsed.value();
  if (!root.is_object()) {
    return Status::InvalidArgument("dataset manifest is not a JSON object");
  }

  DatasetManifest manifest;
  std::string schema;
  ENLD_RETURN_IF_ERROR(GetString(root, "schema", &schema));
  if (schema != kManifestSchema) {
    return Status::InvalidArgument("unsupported dataset manifest schema: " +
                                   schema);
  }
  ENLD_RETURN_IF_ERROR(GetString(root, "name", &manifest.name));
  uint64_t classes = 0;
  ENLD_RETURN_IF_ERROR(GetUInt(root, "num_rows", &manifest.num_rows));
  ENLD_RETURN_IF_ERROR(GetUInt(root, "dim", &manifest.dim));
  ENLD_RETURN_IF_ERROR(GetUInt(root, "num_classes", &classes));
  manifest.num_classes = static_cast<int>(classes);

  const JsonValue* shards = root.Find("shards");
  if (shards == nullptr || !shards->is_array() || shards->items().empty()) {
    return Status::InvalidArgument(
        "dataset manifest has no 'shards' array");
  }
  uint64_t listed_rows = 0;
  for (const JsonValue& item : shards->items()) {
    if (!item.is_object()) {
      return Status::InvalidArgument("shard entry is not an object");
    }
    ShardEntry entry;
    uint64_t crc = 0;
    ENLD_RETURN_IF_ERROR(GetString(item, "file", &entry.file));
    ENLD_RETURN_IF_ERROR(GetUInt(item, "rows", &entry.rows));
    ENLD_RETURN_IF_ERROR(GetUInt(item, "bytes", &entry.bytes));
    ENLD_RETURN_IF_ERROR(GetUInt(item, "crc32", &crc));
    entry.crc32 = static_cast<uint32_t>(crc);
    if (entry.file.empty() || entry.file.find('/') != std::string::npos) {
      return Status::InvalidArgument("shard file name must be a plain name");
    }
    listed_rows += entry.rows;
    manifest.shards.push_back(std::move(entry));
  }
  if (listed_rows != manifest.num_rows) {
    return Status::InvalidArgument(
        "manifest num_rows (" + std::to_string(manifest.num_rows) +
        ") does not match the shard list total (" +
        std::to_string(listed_rows) + ")");
  }
  return manifest;
}

StatusOr<Dataset> LoadDatasetSharded(const std::string& dir) {
  ENLD_TRACE_SPAN("store/load_dataset");
  StatusOr<DatasetManifest> manifest_or = ReadDatasetManifest(dir);
  if (!manifest_or.ok()) return manifest_or.status();
  const DatasetManifest& manifest = manifest_or.value();

  const size_t num_shards = manifest.shards.size();
  std::vector<StatusOr<Dataset>> loaded(num_shards, Status::OK());

  // Shard files are independent: read and decode them on the shared pool.
  // Results are stitched in manifest order on the calling thread, so the
  // output is identical at any thread count.
  ParallelFor(0, num_shards, 1, [&](size_t begin, size_t end) {
    for (size_t s = begin; s < end; ++s) {
      const ShardEntry& entry = manifest.shards[s];
      StatusOr<std::string> data = ReadFile(dir + "/" + entry.file);
      if (!data.ok()) {
        loaded[s] = data.status();
        continue;
      }
      if (data.value().size() != entry.bytes) {
        loaded[s] = Status::InvalidArgument(
            "shard " + entry.file + " is " +
            std::to_string(data.value().size()) + " bytes, manifest says " +
            std::to_string(entry.bytes) + " (truncated?)");
        continue;
      }
      if (Crc32(data.value()) != entry.crc32) {
        CrcFailures()->Increment();
        loaded[s] = Status::InvalidArgument(
            "shard " + entry.file + " CRC32 does not match the manifest");
        continue;
      }
      loaded[s] = DecodeDatasetShard(data.value());
    }
  });

  Dataset out;
  out.num_classes = manifest.num_classes;
  out.features.Reset(static_cast<size_t>(manifest.num_rows),
                     static_cast<size_t>(manifest.dim));
  out.observed_labels.reserve(manifest.num_rows);
  out.true_labels.reserve(manifest.num_rows);
  out.ids.reserve(manifest.num_rows);
  size_t row = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    if (!loaded[s].ok()) {
      return Status(loaded[s].status().code(),
                    loaded[s].status().message() + " [" + dir + "]");
    }
    const Dataset& shard = loaded[s].value();
    if (shard.size() != manifest.shards[s].rows ||
        shard.dim() != manifest.dim ||
        shard.num_classes != manifest.num_classes) {
      return Status::InvalidArgument(
          "shard " + manifest.shards[s].file +
          " geometry disagrees with the manifest");
    }
    if (shard.size() > 0) {
      std::memcpy(out.features.Row(row), shard.features.data(),
                  shard.features.size() * sizeof(float));
    }
    out.observed_labels.insert(out.observed_labels.end(),
                               shard.observed_labels.begin(),
                               shard.observed_labels.end());
    out.true_labels.insert(out.true_labels.end(), shard.true_labels.begin(),
                           shard.true_labels.end());
    out.ids.insert(out.ids.end(), shard.ids.begin(), shard.ids.end());
    row += shard.size();
  }
  return out;
}

}  // namespace store
}  // namespace enld
