#ifndef ENLD_STORE_REPLAY_H_
#define ENLD_STORE_REPLAY_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "enld/admission.h"
#include "enld/platform.h"
#include "store/quarantine.h"

namespace enld {
namespace store {

/// Quarantine replay (`enld_cli replay`, docs/ROBUSTNESS.md §"Self-healing
/// runbook"): after an operator fixes the root cause of a batch of
/// rejections — a corrupted source regenerated, a num_classes config
/// mistake corrected — the quarantined rows are re-screened through the
/// SAME ScreenDataset admission path every live request goes through, and
/// the survivors re-admitted via DataPlatform::Process. Nothing in the
/// quarantine log is trusted: the recorded reason is reported for context
/// only, and every row is judged afresh against the supplied source data.

/// What happened to one quarantined sample on replay. Outcomes follow the
/// quarantine log's record order, deduplicated by sample id.
struct ReplayOutcome {
  uint64_t sample_id = 0;
  /// Row within `source` the sample was matched to (by id).
  uint64_t source_row = 0;
  /// The reason the quarantine log recorded (context only).
  std::string prior_reason;
  /// "readmitted", "still_rejected" or "missing" (id not in `source`).
  std::string verdict;
  /// Fresh rejection reason when still rejected; empty otherwise.
  std::string reason;
};

struct ReplayReport {
  uint64_t request_id = 0;
  /// True when the quarantine log was capacity-truncated: records were
  /// dropped at write time, so this replay cannot cover them.
  bool quarantine_truncated = false;
  uint64_t records = 0;    ///< records in the log (after id-dedup)
  uint64_t replayed = 0;   ///< matched to a source row and re-screened
  uint64_t missing = 0;    ///< sample id absent from the source data
  uint64_t readmitted = 0;
  uint64_t still_rejected = 0;
  /// Still-rejected counts indexed by RejectionReason.
  std::array<uint64_t, kNumRejectionReasons> still_rejected_by_reason = {};
  std::vector<ReplayOutcome> outcomes;
  /// Set when readmitted rows were handed to DataPlatform::Process.
  bool processed = false;
  std::string process_status;  ///< "ok" or the Process error message
  uint64_t process_flagged_noisy = 0;

  bool all_readmitted() const {
    return records > 0 && readmitted == records;
  }
};

/// Re-screens the quarantined samples in `log` against `source` (the
/// corrected data, matched by stable sample id; first occurrence wins when
/// a source repeats an id). Rows that now pass admission form one replay
/// dataset, ordered by ascending source row so the result is deterministic
/// at any thread count. When `platform` is non-null and at least one row
/// was readmitted, the replay dataset is submitted through
/// DataPlatform::Process with `request_id` stamped into the audit trail.
StatusOr<ReplayReport> ReplayQuarantine(const QuarantineFile& log,
                                        const Dataset& source,
                                        DataPlatform* platform,
                                        uint64_t request_id);

/// Writes the report as durable JSON, schema "enld-replay-v1" (validated
/// offline by tools/check_scrub_report.py).
Status WriteReplayReportJson(const ReplayReport& report,
                             const std::string& path);

}  // namespace store
}  // namespace enld

#endif  // ENLD_STORE_REPLAY_H_
