#include "store/shard.h"

#include <cstring>

#include "common/faults.h"
#include "common/telemetry/metrics.h"
#include "common/telemetry/trace.h"
#include "store/io.h"

namespace enld {
namespace store {

namespace {

constexpr char kShardMagic[8] = {'E', 'N', 'L', 'D', 'S', 'H', 'D', '1'};
constexpr uint32_t kEndianTag = 0x01020304u;
constexpr uint32_t kShardVersion = 1;
constexpr uint32_t kSectionCount = 5;

}  // namespace

std::string EncodeDatasetShard(const Dataset& dataset) {
  const size_t rows = dataset.size();
  const size_t dim = dataset.dim();

  std::string out;
  out.reserve(64 + rows * (dim * 4 + 17));
  out.append(kShardMagic, sizeof(kShardMagic));
  PutU32(&out, kEndianTag);
  PutU32(&out, kShardVersion);
  PutU64(&out, rows);
  PutU64(&out, dim);
  PutU32(&out, static_cast<uint32_t>(dataset.num_classes));
  PutU32(&out, kSectionCount);

  std::string payload;
  payload.reserve(rows * dim * 4);
  for (size_t i = 0; i < rows * dim; ++i) {
    PutF32(&payload, dataset.features.data()[i]);
  }
  PutSection(&out, kShardSectionFeatures, payload);

  payload.clear();
  for (int label : dataset.observed_labels) PutI32(&payload, label);
  PutSection(&out, kShardSectionObserved, payload);

  payload.clear();
  for (int label : dataset.true_labels) PutI32(&payload, label);
  PutSection(&out, kShardSectionTrue, payload);

  payload.clear();
  for (uint64_t id : dataset.ids) PutU64(&payload, id);
  PutSection(&out, kShardSectionIds, payload);

  payload.assign((rows + 7) / 8, '\0');
  for (size_t i = 0; i < rows; ++i) {
    if (dataset.observed_labels[i] == kMissingLabel) {
      payload[i / 8] |= static_cast<char>(1u << (i % 8));
    }
  }
  PutSection(&out, kShardSectionMissingBitmap, payload);
  return out;
}

StatusOr<Dataset> DecodeDatasetShard(const std::string& data) {
  BinaryReader reader(data);
  std::string magic;
  if (!reader.ReadBytes(sizeof(kShardMagic), &magic) ||
      std::memcmp(magic.data(), kShardMagic, sizeof(kShardMagic)) != 0) {
    return Status::InvalidArgument("not an ENLD shard (bad magic)");
  }
  uint32_t endian = 0, version = 0, classes = 0, sections = 0;
  uint64_t rows = 0, dim = 0;
  if (!reader.ReadU32(&endian) || !reader.ReadU32(&version) ||
      !reader.ReadU64(&rows) || !reader.ReadU64(&dim) ||
      !reader.ReadU32(&classes) || !reader.ReadU32(&sections)) {
    return Status::InvalidArgument("truncated shard header");
  }
  if (endian != 0x01020304u) {
    return Status::InvalidArgument(
        "shard byte-order tag mismatch (foreign-endian or corrupt file)");
  }
  if (version != kShardVersion) {
    return Status::InvalidArgument("unsupported shard version " +
                                   std::to_string(version));
  }
  if (sections != kSectionCount) {
    return Status::InvalidArgument("unexpected shard section count");
  }
  // Cheap sanity bound before allocating: the sections cannot be larger
  // than the file.
  if (rows > data.size() || dim > data.size()) {
    return Status::InvalidArgument("implausible shard geometry");
  }

  std::string payload;
  Dataset out;
  out.num_classes = static_cast<int>(classes);

  ENLD_RETURN_IF_ERROR(
      ReadSection(&reader, kShardSectionFeatures, &payload));
  if (payload.size() != rows * dim * 4) {
    return Status::InvalidArgument("feature section length mismatch");
  }
  out.features.Reset(static_cast<size_t>(rows), static_cast<size_t>(dim));
  {
    BinaryReader column(payload);
    for (size_t i = 0; i < rows * dim; ++i) {
      column.ReadF32(out.features.data() + i);
    }
  }

  ENLD_RETURN_IF_ERROR(
      ReadSection(&reader, kShardSectionObserved, &payload));
  if (payload.size() != rows * 4) {
    return Status::InvalidArgument("observed-label section length mismatch");
  }
  out.observed_labels.resize(static_cast<size_t>(rows));
  {
    BinaryReader column(payload);
    for (auto& label : out.observed_labels) {
      int32_t v = 0;
      column.ReadI32(&v);
      label = static_cast<int>(v);
    }
  }

  ENLD_RETURN_IF_ERROR(ReadSection(&reader, kShardSectionTrue, &payload));
  if (payload.size() != rows * 4) {
    return Status::InvalidArgument("true-label section length mismatch");
  }
  out.true_labels.resize(static_cast<size_t>(rows));
  {
    BinaryReader column(payload);
    for (auto& label : out.true_labels) {
      int32_t v = 0;
      column.ReadI32(&v);
      label = static_cast<int>(v);
    }
  }

  ENLD_RETURN_IF_ERROR(ReadSection(&reader, kShardSectionIds, &payload));
  if (payload.size() != rows * 8) {
    return Status::InvalidArgument("id section length mismatch");
  }
  out.ids.resize(static_cast<size_t>(rows));
  {
    BinaryReader column(payload);
    for (auto& id : out.ids) column.ReadU64(&id);
  }

  ENLD_RETURN_IF_ERROR(
      ReadSection(&reader, kShardSectionMissingBitmap, &payload));
  if (payload.size() != (rows + 7) / 8) {
    return Status::InvalidArgument("missing-bitmap section length mismatch");
  }
  for (size_t i = 0; i < rows; ++i) {
    const bool bit =
        (static_cast<unsigned char>(payload[i / 8]) >> (i % 8)) & 1u;
    if (bit != (out.observed_labels[i] == kMissingLabel)) {
      return Status::InvalidArgument(
          "missing-label bitmap disagrees with observed column at row " +
          std::to_string(i));
    }
  }

  if (reader.remaining() != 0) {
    return Status::InvalidArgument("trailing bytes after last section");
  }
  ENLD_RETURN_IF_ERROR(ValidateDataset(out));
  return out;
}

Status SaveDatasetShard(const Dataset& dataset, const std::string& path) {
  ENLD_TRACE_SPAN("store/save_shard");
  ENLD_RETURN_IF_ERROR(faults::Check("store/save_shard"));
  static telemetry::Counter* shards =
      telemetry::MetricsRegistry::Global().GetCounter(
          "store/shards_written");
  shards->Increment();
  return WriteFileDurable(path, EncodeDatasetShard(dataset));
}

StatusOr<Dataset> LoadDatasetShard(const std::string& path) {
  ENLD_TRACE_SPAN("store/load_shard");
  ENLD_RETURN_IF_ERROR(faults::Check("store/load_shard"));
  static telemetry::Counter* shards =
      telemetry::MetricsRegistry::Global().GetCounter("store/shards_read");
  StatusOr<std::string> data = ReadFile(path);
  if (!data.ok()) return data.status();
  shards->Increment();
  StatusOr<Dataset> dataset = DecodeDatasetShard(data.value());
  if (!dataset.ok()) {
    return Status(dataset.status().code(),
                  dataset.status().message() + " [" + path + "]");
  }
  return dataset;
}

}  // namespace store
}  // namespace enld
