#ifndef ENLD_STORE_SHARD_H_
#define ENLD_STORE_SHARD_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace enld {
namespace store {

/// Binary columnar shard format for Dataset — the fast, byte-exact
/// replacement for the CSV round trip (see docs/PERSISTENCE.md for the
/// layout diagram).
///
/// A shard is one self-describing file:
///
///   header:  magic "ENLDSHD1", little-endian tag 0x01020304, version,
///            num_rows, dim, num_classes, section count
///   section: id, payload byte length, CRC32(payload), payload
///
/// with one section per column: float32 features, int32 observed labels,
/// int32 true labels, uint64 ids, and a missing-label bitmap (bit i set
/// iff observed[i] == kMissingLabel; redundant with the observed column
/// and cross-checked on load, so either a flipped label byte or a flipped
/// bitmap bit is caught).
///
/// Error contract (shared by the whole store, asserted by the corruption
/// tests): NotFound = the file cannot be opened; InvalidArgument = any
/// structural corruption — bad magic, foreign byte order, unknown
/// version, truncation, CRC mismatch, out-of-range labels, inconsistent
/// columns. CRC mismatches additionally increment "store/crc_failures".

/// Section ids, also used by tools/check_snapshot.py.
inline constexpr uint32_t kShardSectionFeatures = 1;
inline constexpr uint32_t kShardSectionObserved = 2;
inline constexpr uint32_t kShardSectionTrue = 3;
inline constexpr uint32_t kShardSectionIds = 4;
inline constexpr uint32_t kShardSectionMissingBitmap = 5;

/// Serializes the dataset into the shard byte format (no I/O).
std::string EncodeDatasetShard(const Dataset& dataset);

/// Parses a shard buffer back into a Dataset, verifying every section CRC
/// and the column invariants. The inverse of EncodeDatasetShard:
/// DecodeDatasetShard(EncodeDatasetShard(d)) == d, byte-exact.
StatusOr<Dataset> DecodeDatasetShard(const std::string& data);

/// Writes the dataset as one shard file (crash-safe: temp + fsync +
/// rename).
Status SaveDatasetShard(const Dataset& dataset, const std::string& path);

/// Reads a shard file written by SaveDatasetShard. Column invariants are
/// re-checked with enld::ValidateDataset, so a decoded shard is always
/// internally consistent.
StatusOr<Dataset> LoadDatasetShard(const std::string& path);

}  // namespace store
}  // namespace enld

#endif  // ENLD_STORE_SHARD_H_
