#include "store/scrub.h"

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "common/faults.h"
#include "common/retry.h"
#include "common/telemetry/metrics.h"
#include "common/telemetry/trace.h"
#include "store/io.h"
#include "store/json.h"
#include "store/manifest.h"
#include "store/shard.h"
#include "store/snapshot.h"

namespace enld {
namespace store {

namespace {

constexpr char kShardMagic[8] = {'E', 'N', 'L', 'D', 'S', 'H', 'D', '1'};
constexpr char kStateMagic[8] = {'E', 'N', 'L', 'D', 'S', 'N', 'P', '1'};
constexpr uint32_t kEndianTag = 0x01020304u;

/// Collects findings for one scrub pass; binds the report plus the
/// current snapshot context so walk helpers stay small.
class Scrubber {
 public:
  explicit Scrubber(ScrubReport* report) : report_(report) {}

  void Add(uint64_t seq, const std::string& file, const std::string& section,
           const std::string& reason, const std::string& detail) {
    report_->findings.push_back({seq, file, section, reason, detail});
  }

  /// Reads one file through the "store/scrub_read" fault site, counting it
  /// into the report. On failure records a finding (reason "missing" for
  /// NotFound, "unreadable" otherwise) and returns the error.
  StatusOr<std::string> Read(uint64_t seq, const std::string& path,
                             const std::string& rel) {
    StatusOr<std::string> data = Status::Internal("not read");
    const Status status = RetryWithBackoff(
        DefaultIoRetryPolicy(), "scrub " + path, [&]() -> Status {
          ENLD_RETURN_IF_ERROR(faults::Check("store/scrub_read"));
          data = ReadFile(path);
          return data.ok() ? Status::OK() : data.status();
        });
    if (!status.ok()) {
      Add(seq, rel, "file",
          status.code() == StatusCode::kNotFound ? "missing" : "unreadable",
          status.message());
      return status;
    }
    ++report_->files_checked;
    report_->bytes_scrubbed += data.value().size();
    return data;
  }

  /// Walks a run of (id u32, len u64, crc u32, payload) envelopes starting
  /// at `offset`, recording a finding per damaged section and counting the
  /// intact ones. Keeps going past a CRC mismatch — repair needs to know
  /// every surviving section — but stops at truncation.
  void WalkSections(uint64_t seq, const std::string& rel,
                    const std::string& data, size_t offset,
                    const std::vector<uint32_t>& expected_ids) {
    BinaryReader reader(data);
    reader.Skip(offset);
    for (uint32_t expected : expected_ids) {
      uint32_t id = 0, crc = 0;
      uint64_t length = 0;
      if (!reader.ReadU32(&id) || !reader.ReadU64(&length) ||
          !reader.ReadU32(&crc)) {
        Add(seq, rel, "section-" + std::to_string(expected), "truncated",
            "file ends before section " + std::to_string(expected));
        return;
      }
      if (id != expected) {
        Add(seq, rel, "section-" + std::to_string(expected), "malformed",
            "section id " + std::to_string(id) + " where " +
                std::to_string(expected) + " expected");
        return;
      }
      std::string payload;
      if (length > reader.remaining() || !reader.ReadBytes(length, &payload)) {
        Add(seq, rel, "section-" + std::to_string(id), "truncated",
            "section " + std::to_string(id) + " payload truncated");
        return;
      }
      ++report_->sections_checked;
      if (Crc32(payload) != crc) {
        Add(seq, rel, "section-" + std::to_string(id), "crc_mismatch",
            "section " + std::to_string(id) + " payload fails its CRC");
      }
    }
    if (reader.remaining() != 0) {
      Add(seq, rel, "file", "trailing_bytes",
          std::to_string(reader.remaining()) +
              " trailing bytes after last section");
    }
  }

  /// Structural walk of a state.bin buffer: header then per-section CRCs.
  void WalkState(uint64_t seq, const std::string& rel,
                 const std::string& data) {
    if (data.size() < sizeof(kStateMagic) ||
        std::memcmp(data.data(), kStateMagic, sizeof(kStateMagic)) != 0) {
      Add(seq, rel, "header", "bad_magic",
          "not an ENLD snapshot state file");
      return;
    }
    BinaryReader reader(data);
    reader.Skip(sizeof(kStateMagic));
    uint32_t endian = 0, version = 0, sections = 0;
    if (!reader.ReadU32(&endian) || !reader.ReadU32(&version) ||
        !reader.ReadU32(&sections)) {
      Add(seq, rel, "header", "truncated", "truncated state header");
      return;
    }
    if (endian != kEndianTag) {
      Add(seq, rel, "header", "mismatch", "byte-order tag mismatch");
      return;
    }
    if (version < 1 || version > 3) {
      Add(seq, rel, "header", "malformed",
          "unsupported state version " + std::to_string(version));
      return;
    }
    const uint32_t expected = version == 1 ? 5 : 6;
    if (sections != expected) {
      Add(seq, rel, "header", "mismatch",
          "section count " + std::to_string(sections) + " != " +
              std::to_string(expected));
      return;
    }
    std::vector<uint32_t> ids;
    for (uint32_t id = 1; id <= expected; ++id) ids.push_back(id);
    WalkSections(seq, rel, data, reader.offset(), ids);
  }

  /// Structural walk of a shard buffer. `expect_rows` < 0 skips the
  /// geometry cross-check against the dataset manifest.
  void WalkShard(uint64_t seq, const std::string& rel,
                 const std::string& data, int64_t expect_rows) {
    if (data.size() < sizeof(kShardMagic) ||
        std::memcmp(data.data(), kShardMagic, sizeof(kShardMagic)) != 0) {
      Add(seq, rel, "header", "bad_magic", "not an ENLD shard");
      return;
    }
    BinaryReader reader(data);
    reader.Skip(sizeof(kShardMagic));
    uint32_t endian = 0, version = 0, classes = 0, sections = 0;
    uint64_t rows = 0, dim = 0;
    if (!reader.ReadU32(&endian) || !reader.ReadU32(&version) ||
        !reader.ReadU64(&rows) || !reader.ReadU64(&dim) ||
        !reader.ReadU32(&classes) || !reader.ReadU32(&sections)) {
      Add(seq, rel, "header", "truncated", "truncated shard header");
      return;
    }
    if (endian != kEndianTag) {
      Add(seq, rel, "header", "mismatch", "byte-order tag mismatch");
      return;
    }
    if (version != 1 || sections != 5) {
      Add(seq, rel, "header", "malformed",
          "unsupported shard version/section count");
      return;
    }
    if (expect_rows >= 0 && rows != static_cast<uint64_t>(expect_rows)) {
      Add(seq, rel, "geometry", "mismatch",
          "header rows " + std::to_string(rows) + " != manifest rows " +
              std::to_string(expect_rows));
    }
    WalkSections(seq, rel, data, reader.offset(),
                 {kShardSectionFeatures, kShardSectionObserved,
                  kShardSectionTrue, kShardSectionIds,
                  kShardSectionMissingBitmap});
  }

 private:
  ScrubReport* report_;
};

/// Verifies one file against its manifest-recorded size and CRC.
void CheckAgainstManifest(Scrubber* scrub, uint64_t seq,
                          const std::string& rel, const std::string& data,
                          uint64_t bytes, uint32_t crc) {
  if (data.size() != bytes) {
    scrub->Add(seq, rel, "file", "size_mismatch",
               "file is " + std::to_string(data.size()) +
                   " bytes, manifest says " + std::to_string(bytes));
  }
  if (Crc32(data) != crc) {
    scrub->Add(seq, rel, "file", "crc_mismatch",
               "whole-file CRC32 does not match the manifest");
  }
}

void ScrubDatasetDir(Scrubber* scrub, uint64_t seq,
                     const std::string& dir, const std::string& rel) {
  const std::string manifest_rel = rel + "/manifest.json";
  StatusOr<std::string> text =
      scrub->Read(seq, dir + "/manifest.json", manifest_rel);
  if (!text.ok()) return;
  StatusOr<DatasetManifest> manifest = ReadDatasetManifest(dir);
  if (!manifest.ok()) {
    scrub->Add(seq, manifest_rel, "manifest", "malformed",
               manifest.status().message());
    return;
  }
  for (const ShardEntry& entry : manifest.value().shards) {
    const std::string shard_rel = rel + "/" + entry.file;
    StatusOr<std::string> data =
        scrub->Read(seq, dir + "/" + entry.file, shard_rel);
    if (!data.ok()) continue;
    CheckAgainstManifest(scrub, seq, shard_rel, data.value(), entry.bytes,
                         entry.crc32);
    scrub->WalkShard(seq, shard_rel, data.value(),
                     static_cast<int64_t>(entry.rows));
  }
}

void ScrubSnapshotDir(Scrubber* scrub, ScrubReport* report, uint64_t seq,
                      const std::string& root) {
  const std::string name = SnapshotStore::DirName(seq);
  const std::string dir = root + "/" + name;
  report->scrubbed.push_back(seq);

  // The snapshot manifest drives the walk; when it is damaged the
  // conventional files are still scrubbed so repair knows what survives.
  uint64_t state_bytes = 0, model_bytes = 0;
  uint32_t state_crc = 0, model_crc = 0;
  bool state_listed = false, model_listed = false;
  const std::string manifest_rel = name + "/" + kSnapshotManifestFile;
  StatusOr<std::string> manifest_text =
      scrub->Read(seq, dir + "/" + kSnapshotManifestFile, manifest_rel);
  if (manifest_text.ok()) {
    StatusOr<JsonValue> parsed = JsonValue::Parse(manifest_text.value());
    const JsonValue* doc = parsed.ok() ? &parsed.value() : nullptr;
    const JsonValue* schema =
        doc != nullptr && doc->is_object() ? doc->Find("schema") : nullptr;
    if (schema == nullptr || !schema->is_string() ||
        schema->AsString() != "enld-snapshot-manifest-v1") {
      scrub->Add(seq, manifest_rel, "manifest", "malformed",
                 "missing or unsupported snapshot manifest schema");
    } else {
      const JsonValue* seq_field = doc->Find("seq");
      if (seq_field == nullptr || !seq_field->is_number() ||
          static_cast<uint64_t>(seq_field->AsNumber()) != seq) {
        scrub->Add(seq, manifest_rel, "manifest", "mismatch",
                   "manifest seq does not match its directory");
      }
      const JsonValue* files = doc->Find("files");
      if (files == nullptr || !files->is_array()) {
        scrub->Add(seq, manifest_rel, "manifest", "malformed",
                   "manifest has no 'files' array");
      } else {
        for (const JsonValue& item : files->items()) {
          const JsonValue* file = item.Find("file");
          const JsonValue* bytes = item.Find("bytes");
          const JsonValue* crc = item.Find("crc32");
          if (file == nullptr || !file->is_string() || bytes == nullptr ||
              !bytes->is_number() || crc == nullptr || !crc->is_number()) {
            scrub->Add(seq, manifest_rel, "manifest", "malformed",
                       "malformed file entry");
            continue;
          }
          if (file->AsString() == kSnapshotStateFile) {
            state_listed = true;
            state_bytes = static_cast<uint64_t>(bytes->AsNumber());
            state_crc = static_cast<uint32_t>(crc->AsNumber());
          } else if (file->AsString() == kSnapshotModelFile) {
            model_listed = true;
            model_bytes = static_cast<uint64_t>(bytes->AsNumber());
            model_crc = static_cast<uint32_t>(crc->AsNumber());
          }
        }
        if (!state_listed || !model_listed) {
          scrub->Add(seq, manifest_rel, "manifest", "malformed",
                     "manifest must list state.bin and model.bin");
        }
      }
    }
  }

  const std::string state_rel = name + "/" + kSnapshotStateFile;
  StatusOr<std::string> state =
      scrub->Read(seq, dir + "/" + kSnapshotStateFile, state_rel);
  if (state.ok()) {
    if (state_listed) {
      CheckAgainstManifest(scrub, seq, state_rel, state.value(), state_bytes,
                           state_crc);
    }
    scrub->WalkState(seq, state_rel, state.value());
  }

  const std::string model_rel = name + "/" + kSnapshotModelFile;
  StatusOr<std::string> model =
      scrub->Read(seq, dir + "/" + kSnapshotModelFile, model_rel);
  if (model.ok() && model_listed) {
    CheckAgainstManifest(scrub, seq, model_rel, model.value(), model_bytes,
                         model_crc);
  }

  for (const char* dataset : {kSnapshotTrainDir, kSnapshotCandidateDir}) {
    std::error_code ec;
    if (!std::filesystem::is_directory(dir + "/" + dataset, ec)) {
      scrub->Add(seq, name + "/" + dataset, "manifest", "missing",
                 std::string("dataset directory ") + dataset + " is missing");
      continue;
    }
    ScrubDatasetDir(scrub, seq, dir + "/" + dataset,
                    name + "/" + dataset);
  }
}

}  // namespace

bool ScrubReport::snapshot_clean(uint64_t seq) const {
  if (std::find(scrubbed.begin(), scrubbed.end(), seq) == scrubbed.end()) {
    return false;
  }
  for (const ScrubFinding& finding : findings) {
    if (finding.seq == seq) return false;
  }
  return true;
}

std::vector<uint64_t> ScrubReport::intact_seqs() const {
  std::vector<uint64_t> intact;
  for (uint64_t seq : scrubbed) {
    if (snapshot_clean(seq)) intact.push_back(seq);
  }
  return intact;
}

StatusOr<ScrubReport> ScrubSnapshotStore(const std::string& root) {
  ENLD_TRACE_SPAN("store/scrub");
  std::error_code ec;
  if (!std::filesystem::is_directory(root, ec) || ec) {
    return Status::NotFound("snapshot root " + root +
                            " is not a readable directory");
  }

  ScrubReport report;
  report.root = root;
  Scrubber scrub(&report);

  // CURRENT first (store-level, seq 0 in findings).
  const SnapshotStore store(root);
  StatusOr<std::string> current =
      scrub.Read(0, root + "/" + kSnapshotCurrentFile, kSnapshotCurrentFile);
  if (current.ok()) {
    const StatusOr<uint64_t> seq = store.LatestSeq();
    if (!seq.ok()) {
      scrub.Add(0, kSnapshotCurrentFile, "pointer", "malformed",
                seq.status().message());
    } else if (!std::filesystem::is_directory(
                   root + "/" + SnapshotStore::DirName(seq.value()), ec)) {
      scrub.Add(0, kSnapshotCurrentFile, "pointer", "dangling",
                "CURRENT points at missing directory " +
                    SnapshotStore::DirName(seq.value()));
    } else {
      report.current_seq = seq.value();
    }
  }

  for (uint64_t seq : store.ListSeqs()) {
    ScrubSnapshotDir(&scrub, &report, seq, root);
  }

  auto& registry = telemetry::MetricsRegistry::Global();
  static telemetry::Counter* runs = registry.GetCounter("store/scrub_runs");
  static telemetry::Counter* files = registry.GetCounter("store/scrub_files");
  static telemetry::Counter* found =
      registry.GetCounter("store/scrub_findings");
  runs->Increment();
  for (uint64_t i = 0; i < report.files_checked; ++i) files->Increment();
  for (size_t i = 0; i < report.findings.size(); ++i) found->Increment();
  return report;
}

Status WriteScrubReportJson(const ScrubReport& report,
                            const std::string& path) {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema", JsonValue::String("enld-scrub-v1"));
  doc.Set("root", JsonValue::String(report.root));
  doc.Set("current_seq",
          JsonValue::Number(static_cast<double>(report.current_seq)));
  JsonValue scrubbed = JsonValue::Array();
  for (uint64_t seq : report.scrubbed) {
    scrubbed.items().push_back(
        JsonValue::Number(static_cast<double>(seq)));
  }
  doc.Set("scrubbed", std::move(scrubbed));
  JsonValue intact = JsonValue::Array();
  for (uint64_t seq : report.intact_seqs()) {
    intact.items().push_back(JsonValue::Number(static_cast<double>(seq)));
  }
  doc.Set("intact", std::move(intact));
  doc.Set("files_checked",
          JsonValue::Number(static_cast<double>(report.files_checked)));
  doc.Set("sections_checked",
          JsonValue::Number(static_cast<double>(report.sections_checked)));
  doc.Set("bytes_scrubbed",
          JsonValue::Number(static_cast<double>(report.bytes_scrubbed)));
  doc.Set("clean", JsonValue::Bool(report.clean()));
  JsonValue findings = JsonValue::Array();
  for (const ScrubFinding& finding : report.findings) {
    JsonValue entry = JsonValue::Object();
    entry.Set("seq", JsonValue::Number(static_cast<double>(finding.seq)));
    entry.Set("file", JsonValue::String(finding.file));
    entry.Set("section", JsonValue::String(finding.section));
    entry.Set("reason", JsonValue::String(finding.reason));
    entry.Set("detail", JsonValue::String(finding.detail));
    findings.items().push_back(std::move(entry));
  }
  doc.Set("findings", std::move(findings));
  return WriteFileDurable(path, doc.ToString());
}

}  // namespace store
}  // namespace enld
