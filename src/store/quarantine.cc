#include "store/quarantine.h"

#include "store/io.h"
#include "store/json.h"

namespace enld {
namespace store {

Status WriteQuarantineJson(const QuarantineLog& log, const std::string& path) {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema", JsonValue::String("enld-quarantine-v1"));
  doc.Set("total", JsonValue::Number(static_cast<double>(log.total())));
  doc.Set("recorded",
          JsonValue::Number(static_cast<double>(log.records().size())));
  doc.Set("capacity",
          JsonValue::Number(static_cast<double>(log.capacity())));

  JsonValue records = JsonValue::Array();
  for (const QuarantineRecord& record : log.records()) {
    JsonValue entry = JsonValue::Object();
    entry.Set("request",
              JsonValue::Number(static_cast<double>(record.request)));
    entry.Set("request_id",
              JsonValue::Number(static_cast<double>(record.request_id)));
    entry.Set("row", JsonValue::Number(static_cast<double>(record.row)));
    entry.Set("sample_id",
              JsonValue::Number(static_cast<double>(record.sample_id)));
    entry.Set("reason",
              JsonValue::String(RejectionReasonName(record.reason)));
    entry.Set("column",
              JsonValue::Number(static_cast<double>(record.column)));
    // NaN is not representable in JSON; the non-finite offender values are
    // exactly what lands here, so serialize the value as a string.
    entry.Set("value", JsonValue::String(std::to_string(record.value)));
    entry.Set("detail", JsonValue::String(record.detail));
    records.items().push_back(std::move(entry));
  }
  doc.Set("records", std::move(records));
  return WriteFileDurable(path, doc.ToString());
}

}  // namespace store
}  // namespace enld
