#include "store/quarantine.h"

#include <utility>

#include "store/io.h"
#include "store/json.h"

namespace enld {
namespace store {

Status WriteQuarantineJson(const QuarantineLog& log, const std::string& path) {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema", JsonValue::String("enld-quarantine-v1"));
  doc.Set("total", JsonValue::Number(static_cast<double>(log.total())));
  doc.Set("recorded",
          JsonValue::Number(static_cast<double>(log.records().size())));
  doc.Set("capacity",
          JsonValue::Number(static_cast<double>(log.capacity())));
  doc.Set("truncated", JsonValue::Bool(log.truncated()));

  JsonValue records = JsonValue::Array();
  for (const QuarantineRecord& record : log.records()) {
    JsonValue entry = JsonValue::Object();
    entry.Set("request",
              JsonValue::Number(static_cast<double>(record.request)));
    entry.Set("request_id",
              JsonValue::Number(static_cast<double>(record.request_id)));
    entry.Set("row", JsonValue::Number(static_cast<double>(record.row)));
    entry.Set("sample_id",
              JsonValue::Number(static_cast<double>(record.sample_id)));
    entry.Set("reason",
              JsonValue::String(RejectionReasonName(record.reason)));
    entry.Set("column",
              JsonValue::Number(static_cast<double>(record.column)));
    // NaN is not representable in JSON; the non-finite offender values are
    // exactly what lands here, so serialize the value as a string.
    entry.Set("value", JsonValue::String(std::to_string(record.value)));
    entry.Set("detail", JsonValue::String(record.detail));
    records.items().push_back(std::move(entry));
  }
  doc.Set("records", std::move(records));
  return WriteFileDurable(path, doc.ToString());
}

namespace {

/// Reads a required non-negative numeric field into `out`.
Status GetUint(const JsonValue& object, const char* key, uint64_t* out) {
  const JsonValue* field = object.Find(key);
  if (field == nullptr || !field->is_number() || field->AsNumber() < 0) {
    return Status::InvalidArgument(std::string("quarantine field '") + key +
                                   "' is missing or not a non-negative "
                                   "number");
  }
  *out = static_cast<uint64_t>(field->AsNumber());
  return Status::OK();
}

}  // namespace

StatusOr<QuarantineFile> ReadQuarantineJson(const std::string& path) {
  StatusOr<std::string> text = ReadFile(path);
  if (!text.ok()) return text.status();
  StatusOr<JsonValue> parsed = JsonValue::Parse(text.value());
  if (!parsed.ok()) return parsed.status();
  const JsonValue& doc = parsed.value();
  if (!doc.is_object()) {
    return Status::InvalidArgument("quarantine log is not a JSON object");
  }
  const JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->AsString() != "enld-quarantine-v1") {
    return Status::InvalidArgument(
        "missing or unsupported quarantine log schema");
  }

  QuarantineFile file;
  ENLD_RETURN_IF_ERROR(GetUint(doc, "total", &file.total));
  ENLD_RETURN_IF_ERROR(GetUint(doc, "capacity", &file.capacity));
  const JsonValue* records = doc.Find("records");
  if (records == nullptr || !records->is_array()) {
    return Status::InvalidArgument("quarantine log has no 'records' array");
  }
  for (const JsonValue& item : records->items()) {
    if (!item.is_object()) {
      return Status::InvalidArgument("malformed quarantine record");
    }
    QuarantineFileRecord record;
    ENLD_RETURN_IF_ERROR(GetUint(item, "request", &record.request));
    ENLD_RETURN_IF_ERROR(GetUint(item, "row", &record.row));
    ENLD_RETURN_IF_ERROR(GetUint(item, "sample_id", &record.sample_id));
    const JsonValue* reason = item.Find("reason");
    if (reason == nullptr || !reason->is_string() ||
        reason->AsString().empty()) {
      return Status::InvalidArgument(
          "quarantine record has no 'reason' string");
    }
    record.reason = reason->AsString();
    // request_id, column, value and detail are optional: files from
    // builds before each field existed still replay.
    const JsonValue* request_id = item.Find("request_id");
    if (request_id != nullptr && request_id->is_number() &&
        request_id->AsNumber() >= 0) {
      record.request_id = static_cast<uint64_t>(request_id->AsNumber());
    }
    const JsonValue* column = item.Find("column");
    if (column != nullptr && column->is_number() && column->AsNumber() >= 0) {
      record.column = static_cast<uint64_t>(column->AsNumber());
    }
    const JsonValue* value = item.Find("value");
    if (value != nullptr && value->is_string()) {
      record.value = value->AsString();
    }
    const JsonValue* detail = item.Find("detail");
    if (detail != nullptr && detail->is_string()) {
      record.detail = detail->AsString();
    }
    file.records.push_back(std::move(record));
  }
  const JsonValue* truncated = doc.Find("truncated");
  file.truncated =
      truncated != nullptr && truncated->kind() == JsonValue::Kind::kBool
          ? truncated->AsBool()
          : file.total > file.records.size();
  return file;
}

}  // namespace store
}  // namespace enld
