#ifndef ENLD_NN_OPTIMIZER_H_
#define ENLD_NN_OPTIMIZER_H_

#include <vector>

#include "nn/layer.h"

namespace enld {

/// Abstract optimizer: consumes accumulated gradients and updates
/// parameters in place. Implementations keep per-parameter state keyed by
/// position, so an optimizer instance must always be stepped with the same
/// model's parameter list.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update to every parameter and leaves gradients untouched
  /// (callers zero them before the next accumulation).
  virtual void Step(const std::vector<ParamRef>& params) = 0;

  virtual double learning_rate() const = 0;
  virtual void set_learning_rate(double lr) = 0;
};

/// Hyperparameters for stochastic gradient descent with momentum.
struct SgdConfig {
  double learning_rate = 0.05;
  double momentum = 0.9;
  /// L2 weight decay applied to all parameters.
  double weight_decay = 1e-4;
};

/// SGD with classical momentum:
///   v <- momentum * v - lr * (g + weight_decay * w);  w <- w + v.
class SgdOptimizer : public Optimizer {
 public:
  explicit SgdOptimizer(const SgdConfig& config) : config_(config) {}

  void Step(const std::vector<ParamRef>& params) override;

  /// Drops all velocity state (used when the parameter set changes).
  void ResetState() { velocity_.clear(); }

  double learning_rate() const override { return config_.learning_rate; }
  void set_learning_rate(double lr) override {
    config_.learning_rate = lr;
  }

 private:
  SgdConfig config_;
  std::vector<Matrix> velocity_;
};

/// Hyperparameters for Adam.
struct AdamConfig {
  double learning_rate = 0.001;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double weight_decay = 0.0;
};

/// Adam (Kingma & Ba 2015) with optional decoupled-style L2 applied to the
/// gradient. Provided as an alternative to the paper's SGD schedule for
/// users embedding the library.
class AdamOptimizer : public Optimizer {
 public:
  explicit AdamOptimizer(const AdamConfig& config) : config_(config) {}

  void Step(const std::vector<ParamRef>& params) override;

  double learning_rate() const override { return config_.learning_rate; }
  void set_learning_rate(double lr) override {
    config_.learning_rate = lr;
  }

 private:
  AdamConfig config_;
  std::vector<Matrix> first_moment_;
  std::vector<Matrix> second_moment_;
  uint64_t step_count_ = 0;
};

}  // namespace enld

#endif  // ENLD_NN_OPTIMIZER_H_
