#ifndef ENLD_NN_LAYER_H_
#define ENLD_NN_LAYER_H_

#include <memory>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"

namespace enld {

/// A trainable parameter: the value matrix and its gradient accumulator.
struct ParamRef {
  Matrix* value;
  Matrix* grad;
};

/// One differentiable layer of the minibatch network substrate. Layers are
/// stateful across a Forward/Backward pair (they cache what the backward
/// pass needs), which keeps the training loop allocation-free in steady
/// state.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes `output` from `input` (batch rows). Caches activations needed
  /// by Backward.
  virtual void Forward(const Matrix& input, Matrix* output) = 0;

  /// Given d(loss)/d(output), accumulates parameter gradients and computes
  /// d(loss)/d(input) into `grad_input`. Must follow a Forward call with
  /// the matching batch.
  virtual void Backward(const Matrix& grad_output, Matrix* grad_input) = 0;

  /// Trainable parameters (empty for stateless layers). Stable order.
  virtual std::vector<ParamRef> Params() { return {}; }

  /// Switches between training and inference behaviour (dropout). The
  /// default is inference; stateless layers ignore it.
  virtual void SetTraining(bool training) { (void)training; }

  /// Sets all parameter gradients to zero.
  void ZeroGrads();
};

/// Fully connected layer: output = input * W + b.
/// W is (in x out); b is (1 x out). He-normal initialization.
class LinearLayer : public Layer {
 public:
  LinearLayer(size_t in_dim, size_t out_dim, Rng& rng);

  void Forward(const Matrix& input, Matrix* output) override;
  void Backward(const Matrix& grad_output, Matrix* grad_input) override;
  std::vector<ParamRef> Params() override;

  size_t in_dim() const { return weights_.rows(); }
  size_t out_dim() const { return weights_.cols(); }

 private:
  Matrix weights_;
  Matrix bias_;  // 1 x out.
  Matrix grad_weights_;
  Matrix grad_bias_;
  Matrix cached_input_;
};

/// Rectified linear unit, applied elementwise.
class ReluLayer : public Layer {
 public:
  void Forward(const Matrix& input, Matrix* output) override;
  void Backward(const Matrix& grad_output, Matrix* grad_input) override;

 private:
  Matrix cached_input_;
};

/// Inverted dropout: during training each activation is zeroed with
/// probability `rate` and survivors are scaled by 1/(1-rate); at inference
/// the layer is the identity.
class DropoutLayer : public Layer {
 public:
  /// Requires 0 <= rate < 1.
  DropoutLayer(double rate, uint64_t seed);

  void Forward(const Matrix& input, Matrix* output) override;
  void Backward(const Matrix& grad_output, Matrix* grad_input) override;
  void SetTraining(bool training) override { training_ = training; }

  double rate() const { return rate_; }

 private:
  double rate_;
  Rng rng_;
  Matrix mask_;
  bool training_ = false;
};

}  // namespace enld

#endif  // ENLD_NN_LAYER_H_
