#include "nn/optimizer.h"

#include <cmath>

#include "common/check.h"

namespace enld {

void SgdOptimizer::Step(const std::vector<ParamRef>& params) {
  if (velocity_.empty()) {
    velocity_.reserve(params.size());
    for (const ParamRef& p : params) {
      velocity_.emplace_back(p.value->rows(), p.value->cols(), 0.0f);
    }
  }
  ENLD_CHECK_EQ(velocity_.size(), params.size());

  const float lr = static_cast<float>(config_.learning_rate);
  const float mu = static_cast<float>(config_.momentum);
  const float wd = static_cast<float>(config_.weight_decay);
  for (size_t i = 0; i < params.size(); ++i) {
    Matrix& w = *params[i].value;
    Matrix& g = *params[i].grad;
    Matrix& v = velocity_[i];
    ENLD_CHECK_EQ(w.size(), v.size());
    ENLD_CHECK_EQ(w.size(), g.size());
    float* wp = w.data();
    float* gp = g.data();
    float* vp = v.data();
    for (size_t j = 0; j < w.size(); ++j) {
      vp[j] = mu * vp[j] - lr * (gp[j] + wd * wp[j]);
      wp[j] += vp[j];
    }
  }
}

void AdamOptimizer::Step(const std::vector<ParamRef>& params) {
  if (first_moment_.empty()) {
    first_moment_.reserve(params.size());
    second_moment_.reserve(params.size());
    for (const ParamRef& p : params) {
      first_moment_.emplace_back(p.value->rows(), p.value->cols(), 0.0f);
      second_moment_.emplace_back(p.value->rows(), p.value->cols(), 0.0f);
    }
  }
  ENLD_CHECK_EQ(first_moment_.size(), params.size());

  ++step_count_;
  const double b1 = config_.beta1;
  const double b2 = config_.beta2;
  const double bias1 =
      1.0 - std::pow(b1, static_cast<double>(step_count_));
  const double bias2 =
      1.0 - std::pow(b2, static_cast<double>(step_count_));
  const double lr = config_.learning_rate;
  const double eps = config_.epsilon;
  const double wd = config_.weight_decay;

  for (size_t i = 0; i < params.size(); ++i) {
    Matrix& w = *params[i].value;
    Matrix& g = *params[i].grad;
    Matrix& m = first_moment_[i];
    Matrix& v = second_moment_[i];
    ENLD_CHECK_EQ(w.size(), m.size());
    ENLD_CHECK_EQ(w.size(), g.size());
    float* wp = w.data();
    float* gp = g.data();
    float* mp = m.data();
    float* vp = v.data();
    for (size_t j = 0; j < w.size(); ++j) {
      const double grad = gp[j] + wd * wp[j];
      mp[j] = static_cast<float>(b1 * mp[j] + (1.0 - b1) * grad);
      vp[j] = static_cast<float>(b2 * vp[j] + (1.0 - b2) * grad * grad);
      const double m_hat = mp[j] / bias1;
      const double v_hat = vp[j] / bias2;
      wp[j] -= static_cast<float>(lr * m_hat / (std::sqrt(v_hat) + eps));
    }
  }
}

}  // namespace enld
