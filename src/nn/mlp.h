#ifndef ENLD_NN_MLP_H_
#define ENLD_NN_MLP_H_

#include <memory>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "nn/layer.h"

namespace enld {

/// Multilayer perceptron classifier with a *feature tap*: the activations
/// entering the final linear (softmax) layer are exposed as the feature
/// representation M̂(x, θ) the paper uses for contrastive sampling and
/// Topofilter. Softmax confidences M(x, θ) come from `Probabilities`.
///
/// This is the stand-in for the paper's convolutional backbones; see
/// DESIGN.md §2 for the substitution argument.
class MlpModel {
 public:
  /// `layer_dims` = {input, hidden..., classes}; at least one hidden layer.
  /// Weights are He-initialized from `rng`. When `dropout_rate` > 0 an
  /// inverted-dropout layer follows every hidden activation (active only
  /// inside TrainStep).
  MlpModel(const std::vector<size_t>& layer_dims, Rng& rng,
           double dropout_rate = 0.0);

  MlpModel(const MlpModel&) = delete;
  MlpModel& operator=(const MlpModel&) = delete;

  size_t input_dim() const { return layer_dims_.front(); }
  size_t feature_dim() const { return layer_dims_[layer_dims_.size() - 2]; }
  int num_classes() const { return static_cast<int>(layer_dims_.back()); }
  const std::vector<size_t>& layer_dims() const { return layer_dims_; }
  double dropout_rate() const { return dropout_rate_; }

  /// Forward pass; writes logits and, if non-null, the penultimate features.
  void Forward(const Matrix& inputs, Matrix* logits,
               Matrix* features = nullptr);

  /// Softmax confidences M(x, θ) for every input row.
  Matrix Probabilities(const Matrix& inputs);

  /// Penultimate-layer features M̂(x, θ) for every input row.
  Matrix Features(const Matrix& inputs);

  /// argmax M(x, θ) per row.
  std::vector<int> Predict(const Matrix& inputs);

  /// One optimizer step on a batch against soft targets; returns the batch
  /// loss. Gradients are zeroed, accumulated and applied inside; dropout is
  /// active only for the duration of the call.
  double TrainStep(const Matrix& inputs, const Matrix& soft_targets,
                   class Optimizer* optimizer);

  /// Flattened copy of all parameters (for best-model snapshots).
  std::vector<float> GetWeights() const;

  /// Restores parameters from a GetWeights() snapshot of the same
  /// architecture.
  void SetWeights(const std::vector<float>& weights);

  /// All trainable parameters in stable order.
  std::vector<ParamRef> Params();

 private:
  void SetTraining(bool training);

  std::vector<size_t> layer_dims_;
  double dropout_rate_ = 0.0;
  std::vector<std::unique_ptr<Layer>> layers_;
  // Scratch activations reused across Forward calls.
  std::vector<Matrix> activations_;
};

}  // namespace enld

#endif  // ENLD_NN_MLP_H_
