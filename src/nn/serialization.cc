#include "nn/serialization.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/rng.h"

namespace enld {

namespace {

/// Legacy format: no byte-order tag, documented as little-endian.
constexpr char kMagicV1[8] = {'E', 'N', 'L', 'D', 'M', 'D', 'L', '1'};
/// Current format: a host-order tag follows the magic, so a reader on a
/// machine with different endianness sees the byte-swapped value and
/// rejects the file instead of loading garbage weights.
constexpr char kMagicV2[8] = {'E', 'N', 'L', 'D', 'M', 'D', 'L', '2'};
constexpr uint32_t kByteOrderTag = 0x01020304u;

/// RAII file handle.
class File {
 public:
  File(const std::string& path, const char* mode)
      : handle_(std::fopen(path.c_str(), mode)) {}
  ~File() {
    if (handle_ != nullptr) std::fclose(handle_);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  FILE* get() const { return handle_; }
  bool ok() const { return handle_ != nullptr; }

 private:
  FILE* handle_;
};

Status ValidateDimsAndWeights(const std::vector<size_t>& dims,
                              size_t weight_count) {
  if (dims.size() < 3 || dims.size() > 64) {
    return Status::InvalidArgument("corrupt layer-dimension header");
  }
  uint64_t expected = 0;
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    if (dims[i] == 0 || dims[i] > (1u << 24)) {
      return Status::InvalidArgument("corrupt layer dimension");
    }
    expected += dims[i] * dims[i + 1] + dims[i + 1];
  }
  if (dims.back() == 0 || dims.back() > (1u << 24)) {
    return Status::InvalidArgument("corrupt layer dimension");
  }
  if (expected != weight_count) {
    return Status::InvalidArgument("weight count does not match layers");
  }
  return Status::OK();
}

}  // namespace

Status SaveModelFile(const ModelFile& file, const std::string& path) {
  File out(path, "wb");
  if (!out.ok()) {
    return Status::NotFound("cannot open for writing: " + path);
  }

  if (std::fwrite(kMagicV2, 1, sizeof(kMagicV2), out.get()) !=
      sizeof(kMagicV2)) {
    return Status::Internal("short write of header");
  }
  std::fwrite(&kByteOrderTag, sizeof(kByteOrderTag), 1, out.get());
  const uint64_t num_dims = file.dims.size();
  std::fwrite(&num_dims, sizeof(num_dims), 1, out.get());
  for (size_t d : file.dims) {
    const uint64_t v = d;
    std::fwrite(&v, sizeof(v), 1, out.get());
  }
  const uint64_t count = file.weights.size();
  std::fwrite(&count, sizeof(count), 1, out.get());
  if (std::fwrite(file.weights.data(), sizeof(float), file.weights.size(),
                  out.get()) != file.weights.size()) {
    return Status::Internal("short write of weights");
  }
  return Status::OK();
}

Status SaveModel(const MlpModel& model, const std::string& path) {
  ModelFile file;
  file.dims = model.layer_dims();
  file.weights = model.GetWeights();
  return SaveModelFile(file, path);
}

StatusOr<ModelFile> LoadModelFile(const std::string& path) {
  File file(path, "rb");
  if (!file.ok()) {
    return Status::NotFound("cannot open for reading: " + path);
  }

  char magic[sizeof(kMagicV2)];
  if (std::fread(magic, 1, sizeof(magic), file.get()) != sizeof(magic)) {
    return Status::InvalidArgument("not an ENLD model file: " + path);
  }
  if (std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0) {
    uint32_t tag = 0;
    if (std::fread(&tag, sizeof(tag), 1, file.get()) != 1) {
      return Status::InvalidArgument("truncated byte-order tag");
    }
    if (tag != kByteOrderTag) {
      return Status::InvalidArgument(
          "model file byte order does not match this machine "
          "(written on a foreign-endian host?)");
    }
  } else if (std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) != 0) {
    return Status::InvalidArgument("not an ENLD model file: " + path);
  }
  // Legacy v1 files carry no tag and were always written little-endian in
  // practice; they keep loading unchanged.

  uint64_t num_dims = 0;
  if (std::fread(&num_dims, sizeof(num_dims), 1, file.get()) != 1 ||
      num_dims < 3 || num_dims > 64) {
    return Status::InvalidArgument("corrupt layer-dimension header");
  }
  ModelFile out;
  out.dims.resize(num_dims);
  for (auto& d : out.dims) {
    uint64_t v = 0;
    if (std::fread(&v, sizeof(v), 1, file.get()) != 1 || v == 0 ||
        v > (1u << 24)) {
      return Status::InvalidArgument("corrupt layer dimension");
    }
    d = static_cast<size_t>(v);
  }
  uint64_t count = 0;
  if (std::fread(&count, sizeof(count), 1, file.get()) != 1) {
    return Status::InvalidArgument("missing weight count");
  }
  ENLD_RETURN_IF_ERROR(ValidateDimsAndWeights(out.dims, count));
  out.weights.resize(count);
  if (std::fread(out.weights.data(), sizeof(float), out.weights.size(),
                 file.get()) != out.weights.size()) {
    return Status::InvalidArgument("truncated weights");
  }
  return out;
}

StatusOr<std::unique_ptr<MlpModel>> ModelFromFile(const ModelFile& file) {
  ENLD_RETURN_IF_ERROR(
      ValidateDimsAndWeights(file.dims, file.weights.size()));
  Rng rng(0);  // Immediately overwritten by SetWeights.
  auto model = std::make_unique<MlpModel>(file.dims, rng);
  model->SetWeights(file.weights);
  return model;
}

StatusOr<std::unique_ptr<MlpModel>> LoadModel(const std::string& path) {
  StatusOr<ModelFile> file = LoadModelFile(path);
  if (!file.ok()) return file.status();
  return ModelFromFile(file.value());
}

}  // namespace enld
