#include "nn/serialization.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/rng.h"

namespace enld {

namespace {

constexpr char kMagic[8] = {'E', 'N', 'L', 'D', 'M', 'D', 'L', '1'};

/// RAII file handle.
class File {
 public:
  File(const std::string& path, const char* mode)
      : handle_(std::fopen(path.c_str(), mode)) {}
  ~File() {
    if (handle_ != nullptr) std::fclose(handle_);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  FILE* get() const { return handle_; }
  bool ok() const { return handle_ != nullptr; }

 private:
  FILE* handle_;
};

}  // namespace

Status SaveModel(const MlpModel& model, const std::string& path) {
  File file(path, "wb");
  if (!file.ok()) {
    return Status::NotFound("cannot open for writing: " + path);
  }

  if (std::fwrite(kMagic, 1, sizeof(kMagic), file.get()) != sizeof(kMagic)) {
    return Status::Internal("short write of header");
  }
  const auto& dims = model.layer_dims();
  const uint64_t num_dims = dims.size();
  std::fwrite(&num_dims, sizeof(num_dims), 1, file.get());
  for (size_t d : dims) {
    const uint64_t v = d;
    std::fwrite(&v, sizeof(v), 1, file.get());
  }
  const std::vector<float> weights = model.GetWeights();
  const uint64_t count = weights.size();
  std::fwrite(&count, sizeof(count), 1, file.get());
  if (std::fwrite(weights.data(), sizeof(float), weights.size(),
                  file.get()) != weights.size()) {
    return Status::Internal("short write of weights");
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<MlpModel>> LoadModel(const std::string& path) {
  File file(path, "rb");
  if (!file.ok()) {
    return Status::NotFound("cannot open for reading: " + path);
  }

  char magic[sizeof(kMagic)];
  if (std::fread(magic, 1, sizeof(magic), file.get()) != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not an ENLD model file: " + path);
  }
  uint64_t num_dims = 0;
  if (std::fread(&num_dims, sizeof(num_dims), 1, file.get()) != 1 ||
      num_dims < 3 || num_dims > 64) {
    return Status::InvalidArgument("corrupt layer-dimension header");
  }
  std::vector<size_t> dims(num_dims);
  for (auto& d : dims) {
    uint64_t v = 0;
    if (std::fread(&v, sizeof(v), 1, file.get()) != 1 || v == 0 ||
        v > (1u << 24)) {
      return Status::InvalidArgument("corrupt layer dimension");
    }
    d = static_cast<size_t>(v);
  }
  uint64_t count = 0;
  if (std::fread(&count, sizeof(count), 1, file.get()) != 1) {
    return Status::InvalidArgument("missing weight count");
  }
  std::vector<float> weights(count);
  if (std::fread(weights.data(), sizeof(float), weights.size(),
                 file.get()) != weights.size()) {
    return Status::InvalidArgument("truncated weights");
  }

  // Validate the weight count against the architecture before restoring.
  uint64_t expected = 0;
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    expected += dims[i] * dims[i + 1] + dims[i + 1];
  }
  if (expected != count) {
    return Status::InvalidArgument("weight count does not match layers");
  }

  Rng rng(0);  // Immediately overwritten by SetWeights.
  auto model = std::make_unique<MlpModel>(dims, rng);
  model->SetWeights(weights);
  return model;
}

}  // namespace enld
