#ifndef ENLD_NN_MODEL_ZOO_H_
#define ENLD_NN_MODEL_ZOO_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/mlp.h"

namespace enld {

/// The three backbones the paper evaluates. Our substitutes are MLPs of
/// increasing depth/width with distinct feature dimensions; what matters to
/// every algorithm here is only that each backbone exposes confidences and
/// a feature layer, and that "bigger backbone" costs proportionally more to
/// train — both preserved (DESIGN.md §2).
enum class Backbone {
  kResNet110Sim,     // Paper default.
  kDenseNet121Sim,   // Section V-G.
  kResNet164Sim,     // Section V-G.
};

/// Human-readable name (matches the paper's labels).
const char* BackboneName(Backbone backbone);

/// Layer sizes {input_dim, hidden..., num_classes} for a backbone.
std::vector<size_t> BackboneLayerDims(Backbone backbone, size_t input_dim,
                                      int num_classes);

/// Constructs a freshly initialized model of the given backbone.
std::unique_ptr<MlpModel> MakeBackboneModel(Backbone backbone,
                                            size_t input_dim,
                                            int num_classes, Rng& rng);

}  // namespace enld

#endif  // ENLD_NN_MODEL_ZOO_H_
