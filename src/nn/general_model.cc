#include "nn/general_model.h"

#include "common/check.h"
#include "common/rng.h"

namespace enld {

GeneralModel InitGeneralModel(const Dataset& inventory,
                              const GeneralModelConfig& config) {
  ENLD_CHECK_GT(inventory.size(), 1u);
  Rng rng(config.seed);

  GeneralModel out;
  TrainCandidateSplit split = SplitTrainCandidate(inventory, rng);
  out.train_set = std::move(split.train);
  out.candidate_set = std::move(split.candidate);

  Rng init_rng = rng.Fork();
  out.model = MakeBackboneModel(config.backbone, inventory.dim(),
                                inventory.num_classes, init_rng);
  TrainConfig train = config.train;
  train.seed = rng.NextUInt64();
  TrainModel(out.model.get(), out.train_set, /*validation=*/nullptr, train);
  return out;
}

}  // namespace enld
