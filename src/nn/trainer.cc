#include "nn/trainer.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/telemetry/metrics.h"
#include "common/telemetry/trace.h"
#include "nn/loss.h"

namespace enld {

namespace {

/// Samples per chunk when assembling batches or counting agreement.
constexpr size_t kSampleGrain = 256;

/// Positions of trainable samples (observed label present).
std::vector<size_t> TrainablePositions(const Dataset& data) {
  std::vector<size_t> out;
  out.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    if (data.observed_labels[i] != kMissingLabel) out.push_back(i);
  }
  return out;
}

}  // namespace

TrainResult TrainModel(MlpModel* model, const Dataset& train,
                       const Dataset* validation,
                       const TrainConfig& config) {
  ENLD_CHECK(model != nullptr);
  ENLD_CHECK_GT(config.batch_size, 0u);
  ENLD_CHECK_EQ(train.dim(), model->input_dim());
  ENLD_CHECK_EQ(train.num_classes, model->num_classes());

  TrainResult result;
  std::vector<size_t> positions = TrainablePositions(train);
  if (positions.empty() || config.epochs == 0) return result;

  // One "train" span per call (nests under detect/finetune etc.); step and
  // sample counters are exact integers, the loss histogram observes the
  // deterministic per-epoch mean, and batch-assembly time accumulates into
  // a cost counter ("_us" suffix = exempt from the determinism contract).
  telemetry::ScopedSpan train_span("train");
  auto& registry = telemetry::MetricsRegistry::Global();
  telemetry::Counter* steps_counter = registry.GetCounter("train/steps");
  telemetry::Counter* samples_counter = registry.GetCounter("train/samples");
  telemetry::Counter* epochs_counter = registry.GetCounter("train/epochs");
  telemetry::Counter* assembly_us =
      registry.GetCounter("train/batch_assembly_us");
  telemetry::Histogram* epoch_loss_hist = registry.GetHistogram(
      "train/epoch_loss", {0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0});

  Rng rng(config.seed);
  std::unique_ptr<Optimizer> optimizer;
  if (config.optimizer == OptimizerKind::kAdam) {
    optimizer = std::make_unique<AdamOptimizer>(config.adam);
  } else {
    optimizer = std::make_unique<SgdOptimizer>(config.sgd);
  }
  const int classes = model->num_classes();
  const size_t dim = train.dim();

  std::vector<float> best_weights;
  double best_val = -1.0;

  Matrix batch_x;
  Matrix batch_y;
  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(positions);
    double epoch_loss = 0.0;
    size_t batches = 0;
    for (size_t start = 0; start < positions.size();
         start += config.batch_size) {
      const size_t count =
          std::min(config.batch_size, positions.size() - start);
      Stopwatch assembly_watch;
      batch_x.Reset(count, dim);
      batch_y.Reset(count, classes);
      if (config.mixup_alpha > 0.0) {
        // Mixup (Eq. 1 / Eq. 2): blend with a random trainable partner.
        // Stays sequential: each sample consumes two rng draws, and the
        // draw order is part of the reproducibility contract.
        for (size_t b = 0; b < count; ++b) {
          const size_t i = positions[start + b];
          const float* src = train.features.Row(i);
          float* dst = batch_x.Row(b);
          std::copy(src, src + dim, dst);
          const size_t j = positions[rng.UniformInt(positions.size())];
          const double lambda = rng.BetaSymmetric(config.mixup_alpha);
          const float lf = static_cast<float>(lambda);
          const float* other = train.features.Row(j);
          for (size_t d = 0; d < dim; ++d) {
            dst[d] = lf * dst[d] + (1.0f - lf) * other[d];
          }
          batch_y(b, train.observed_labels[i]) += lf;
          batch_y(b, train.observed_labels[j]) += 1.0f - lf;
        }
      } else {
        // Plain batch assembly is rng-free row gathering — parallel.
        ParallelFor(0, count, kSampleGrain, [&](size_t lo, size_t hi) {
          for (size_t b = lo; b < hi; ++b) {
            const size_t i = positions[start + b];
            const float* src = train.features.Row(i);
            std::copy(src, src + dim, batch_x.Row(b));
            batch_y(b, train.observed_labels[i]) = 1.0f;
          }
        });
      }
      assembly_us->Add(
          static_cast<uint64_t>(assembly_watch.ElapsedSeconds() * 1e6));
      epoch_loss += model->TrainStep(batch_x, batch_y, optimizer.get());
      steps_counter->Increment();
      samples_counter->Add(count);
      ++batches;
    }
    result.final_train_loss = batches > 0 ? epoch_loss / batches : 0.0;
    epoch_loss_hist->Observe(result.final_train_loss);
    epochs_counter->Increment();
    ++result.epochs_run;

    if (validation != nullptr) {
      const double val = AccuracyAgainstObserved(model, *validation);
      if (val > best_val) {
        best_val = val;
        if (config.select_best_on_validation) {
          best_weights = model->GetWeights();
        }
      }
    }
    optimizer->set_learning_rate(optimizer->learning_rate() *
                                 config.lr_decay_per_epoch);
  }

  if (validation != nullptr) {
    result.best_validation_accuracy = std::max(best_val, 0.0);
    if (config.select_best_on_validation && !best_weights.empty()) {
      model->SetWeights(best_weights);
    }
  }
  return result;
}

double AccuracyAgainstObserved(MlpModel* model, const Dataset& dataset) {
  ENLD_CHECK(model != nullptr);
  if (dataset.empty()) return 0.0;
  const std::vector<int> predicted = model->Predict(dataset.features);
  // Integer agreement counts: chunked accumulation is exact, so the result
  // is identical at any thread count.
  using Counts = std::pair<size_t, size_t>;  // (correct, counted)
  const Counts totals = ParallelReduce(
      0, dataset.size(), kSampleGrain, Counts{0, 0},
      [&](size_t lo, size_t hi) {
        Counts local{0, 0};
        for (size_t i = lo; i < hi; ++i) {
          if (dataset.observed_labels[i] == kMissingLabel) continue;
          ++local.second;
          if (predicted[i] == dataset.observed_labels[i]) ++local.first;
        }
        return local;
      },
      [](Counts acc, Counts partial) {
        acc.first += partial.first;
        acc.second += partial.second;
        return acc;
      });
  return totals.second == 0 ? 0.0
                            : static_cast<double>(totals.first) /
                                  static_cast<double>(totals.second);
}

double AccuracyAgainstTrue(MlpModel* model, const Dataset& dataset) {
  ENLD_CHECK(model != nullptr);
  if (dataset.empty()) return 0.0;
  const std::vector<int> predicted = model->Predict(dataset.features);
  const size_t correct = ParallelReduce(
      0, dataset.size(), kSampleGrain, size_t{0},
      [&](size_t lo, size_t hi) {
        size_t local = 0;
        for (size_t i = lo; i < hi; ++i) {
          if (predicted[i] == dataset.true_labels[i]) ++local;
        }
        return local;
      },
      [](size_t acc, size_t partial) { return acc + partial; });
  return static_cast<double>(correct) / static_cast<double>(dataset.size());
}

}  // namespace enld
