#ifndef ENLD_NN_TRAINER_H_
#define ENLD_NN_TRAINER_H_

#include <cstdint>

#include "data/dataset.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"

namespace enld {

/// Which optimizer drives the minibatch updates.
enum class OptimizerKind {
  kSgd,   // Paper setting.
  kAdam,  // Library alternative.
};

/// Minibatch training configuration.
struct TrainConfig {
  size_t epochs = 20;
  size_t batch_size = 64;
  OptimizerKind optimizer = OptimizerKind::kSgd;
  SgdConfig sgd;
  /// Used when optimizer == kAdam.
  AdamConfig adam;
  /// Mixup Beta(alpha, alpha) parameter (paper: 0.2). 0 disables mixup.
  double mixup_alpha = 0.0;
  /// Per-epoch multiplicative learning-rate decay (1.0 = constant).
  double lr_decay_per_epoch = 1.0;
  /// When a validation set is given, keep the weights from the epoch with
  /// the best validation accuracy (used by ENLD's warm-up stage).
  bool select_best_on_validation = false;
  uint64_t seed = 1;
};

/// Summary of one training run.
struct TrainResult {
  double final_train_loss = 0.0;
  /// Best validation accuracy seen (0 when no validation set is supplied).
  double best_validation_accuracy = 0.0;
  size_t epochs_run = 0;
};

/// Trains `model` on the dataset's observed labels (samples with missing
/// labels are skipped). If `validation` is non-null, validation accuracy
/// against *observed* labels is tracked each epoch, and with
/// `select_best_on_validation` the best-epoch weights are restored at the
/// end. Deterministic for a fixed seed.
TrainResult TrainModel(MlpModel* model, const Dataset& train,
                       const Dataset* validation, const TrainConfig& config);

/// Fraction of samples whose model prediction equals the observed label
/// (samples with missing labels are excluded).
double AccuracyAgainstObserved(MlpModel* model, const Dataset& dataset);

/// Fraction of samples whose model prediction equals the true label.
double AccuracyAgainstTrue(MlpModel* model, const Dataset& dataset);

}  // namespace enld

#endif  // ENLD_NN_TRAINER_H_
