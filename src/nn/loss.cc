#include "nn/loss.h"

#include <cmath>

#include "common/check.h"

namespace enld {

Matrix OneHot(const std::vector<int>& labels, int num_classes) {
  ENLD_CHECK_GT(num_classes, 0);
  Matrix out(labels.size(), num_classes, 0.0f);
  for (size_t i = 0; i < labels.size(); ++i) {
    ENLD_CHECK_GE(labels[i], 0);
    ENLD_CHECK_LT(labels[i], num_classes);
    out(i, labels[i]) = 1.0f;
  }
  return out;
}

double SoftmaxCrossEntropy(const Matrix& logits, const Matrix& targets,
                           Matrix* grad_logits) {
  ENLD_CHECK_EQ(logits.rows(), targets.rows());
  ENLD_CHECK_EQ(logits.cols(), targets.cols());
  ENLD_CHECK_GT(logits.rows(), 0u);

  Matrix probs;
  SoftmaxRows(logits, &probs);

  const size_t n = logits.rows();
  const size_t c = logits.cols();
  double total = 0.0;
  for (size_t r = 0; r < n; ++r) {
    const float* p = probs.Row(r);
    const float* t = targets.Row(r);
    for (size_t j = 0; j < c; ++j) {
      if (t[j] > 0.0f) {
        total -= static_cast<double>(t[j]) *
                 std::log(std::max(static_cast<double>(p[j]), 1e-12));
      }
    }
  }
  const double mean_loss = total / static_cast<double>(n);

  if (grad_logits != nullptr) {
    // d(mean CE)/d(logits) = (softmax - target) / n.
    grad_logits->Reset(n, c);
    const float inv_n = 1.0f / static_cast<float>(n);
    for (size_t r = 0; r < n; ++r) {
      const float* p = probs.Row(r);
      const float* t = targets.Row(r);
      float* g = grad_logits->Row(r);
      for (size_t j = 0; j < c; ++j) g[j] = (p[j] - t[j]) * inv_n;
    }
  }
  return mean_loss;
}

double SoftmaxCrossEntropy(const Matrix& logits,
                           const std::vector<int>& labels, int num_classes,
                           Matrix* grad_logits) {
  return SoftmaxCrossEntropy(logits, OneHot(labels, num_classes),
                             grad_logits);
}

std::vector<double> PerSampleCrossEntropy(const Matrix& logits,
                                          const std::vector<int>& labels) {
  ENLD_CHECK_EQ(logits.rows(), labels.size());
  Matrix probs;
  SoftmaxRows(logits, &probs);
  std::vector<double> out(labels.size(), 0.0);
  for (size_t r = 0; r < labels.size(); ++r) {
    if (labels[r] < 0) continue;
    ENLD_CHECK_LT(static_cast<size_t>(labels[r]), logits.cols());
    out[r] = -std::log(
        std::max(static_cast<double>(probs(r, labels[r])), 1e-12));
  }
  return out;
}

}  // namespace enld
