#include "nn/confident_joint.h"

#include "common/check.h"
#include "common/parallel.h"

namespace enld {

namespace {

/// Samples per chunk for the parallel joint-count reductions. The partials
/// hold integer counts stored in doubles, so chunked accumulation is exact
/// and the totals are identical at any thread count (and to the sequential
/// one-pass loop).
constexpr size_t kCountGrain = 1024;

JointCounts AddJoint(JointCounts acc, JointCounts partial) {
  for (size_t i = 0; i < acc.size(); ++i) {
    for (size_t j = 0; j < acc[i].size(); ++j) acc[i][j] += partial[i][j];
  }
  return acc;
}

}  // namespace

JointCounts EstimateJointCounts(MlpModel* model, const Dataset& holdout) {
  ENLD_CHECK(model != nullptr);
  ENLD_CHECK_EQ(holdout.num_classes, model->num_classes());
  const int classes = model->num_classes();
  JointCounts joint(classes, std::vector<double>(classes, 0.0));
  if (holdout.empty()) return joint;

  const std::vector<int> predicted = model->Predict(holdout.features);
  return ParallelReduce(
      0, holdout.size(), kCountGrain, std::move(joint),
      [&](size_t lo, size_t hi) {
        JointCounts local(classes, std::vector<double>(classes, 0.0));
        for (size_t i = lo; i < hi; ++i) {
          const int observed = holdout.observed_labels[i];
          if (observed == kMissingLabel) continue;
          local[observed][predicted[i]] += 1.0;
        }
        return local;
      },
      AddJoint);
}

JointCounts EstimateConfidentJoint(MlpModel* model, const Dataset& holdout) {
  ENLD_CHECK(model != nullptr);
  ENLD_CHECK_EQ(holdout.num_classes, model->num_classes());
  const int classes = model->num_classes();
  JointCounts joint(classes, std::vector<double>(classes, 0.0));
  if (holdout.empty()) return joint;

  const Matrix probs = model->Probabilities(holdout.features);

  // Per-class threshold: mean predicted probability of class j over samples
  // observed as j.
  std::vector<double> threshold(classes, 0.0);
  std::vector<size_t> count(classes, 0);
  for (size_t i = 0; i < holdout.size(); ++i) {
    const int observed = holdout.observed_labels[i];
    if (observed == kMissingLabel) continue;
    threshold[observed] += probs(i, observed);
    ++count[observed];
  }
  for (int c = 0; c < classes; ++c) {
    threshold[c] = count[c] > 0 ? threshold[c] / count[c] : 1.0;
  }

  // Count a sample toward (observed, j*) where j* maximizes probability
  // among classes whose threshold the sample clears. Samples are scanned in
  // parallel chunks; the per-sample argmax touches only row i, so the
  // counts are exact regardless of thread count.
  return ParallelReduce(
      0, holdout.size(), kCountGrain, std::move(joint),
      [&](size_t lo, size_t hi) {
        JointCounts local(classes, std::vector<double>(classes, 0.0));
        for (size_t i = lo; i < hi; ++i) {
          const int observed = holdout.observed_labels[i];
          if (observed == kMissingLabel) continue;
          int best = -1;
          float best_prob = 0.0f;
          for (int j = 0; j < classes; ++j) {
            const float p = probs(i, j);
            if (p >= threshold[j] && p > best_prob) {
              best = j;
              best_prob = p;
            }
          }
          if (best >= 0) local[observed][best] += 1.0;
        }
        return local;
      },
      AddJoint);
}

std::vector<std::vector<double>> ConditionalFromJoint(const JointCounts& j) {
  ENLD_CHECK(!j.empty());
  const size_t classes = j.size();
  std::vector<std::vector<double>> cond(classes,
                                        std::vector<double>(classes, 0.0));
  for (size_t i = 0; i < classes; ++i) {
    ENLD_CHECK_EQ(j[i].size(), classes);
    double row_sum = 0.0;
    for (double v : j[i]) {
      ENLD_CHECK_GE(v, 0.0);
      row_sum += v;
    }
    if (row_sum > 0.0) {
      for (size_t k = 0; k < classes; ++k) cond[i][k] = j[i][k] / row_sum;
    } else {
      cond[i][i] = 1.0;
    }
  }
  return cond;
}

}  // namespace enld
