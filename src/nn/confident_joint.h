#ifndef ENLD_NN_CONFIDENT_JOINT_H_
#define ENLD_NN_CONFIDENT_JOINT_H_

#include <vector>

#include "data/dataset.h"
#include "nn/mlp.h"

namespace enld {

/// A (num_classes x num_classes) count matrix J with
/// J[i][j] = |{x : ỹ(x) = i, predicted/estimated y*(x) = j}| — Eq. 3/4.
using JointCounts = std::vector<std::vector<double>>;

/// Estimates J on `holdout` by taking argmax M(x, θ) as the true-label
/// estimate (the paper's Eq. 4). Samples with missing labels are skipped.
JointCounts EstimateJointCounts(MlpModel* model, const Dataset& holdout);

/// Confident-joint variant used by the Confident Learning baseline: a
/// sample (x, ỹ=i) is counted toward J[i][j] only if its probability of
/// class j is at least the per-class threshold t_j = mean self-confidence
/// of samples observed as j (Northcutt et al. 2021). More robust to
/// miscalibrated models than plain argmax counting.
JointCounts EstimateConfidentJoint(MlpModel* model, const Dataset& holdout);

/// Row-normalizes the joint: P̃(y* = j | ỹ = i) = J[i][j] / Σ_k J[i][k]
/// (Eq. 5). Rows with zero mass fall back to P̃(y* = i | ỹ = i) = 1 — with
/// no evidence the safest assumption is that the observed label is right.
std::vector<std::vector<double>> ConditionalFromJoint(const JointCounts& j);

}  // namespace enld

#endif  // ENLD_NN_CONFIDENT_JOINT_H_
