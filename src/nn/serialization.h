#ifndef ENLD_NN_SERIALIZATION_H_
#define ENLD_NN_SERIALIZATION_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "nn/mlp.h"

namespace enld {

/// Writes the model architecture and weights to a binary file
/// ("ENLDMDL1" magic, layer dims, float32 weights, little-endian as on the
/// writing machine). Overwrites an existing file.
Status SaveModel(const MlpModel& model, const std::string& path);

/// Reads a model written by SaveModel. Fails with InvalidArgument on
/// format problems and NotFound when the file cannot be opened.
StatusOr<std::unique_ptr<MlpModel>> LoadModel(const std::string& path);

}  // namespace enld

#endif  // ENLD_NN_SERIALIZATION_H_
