#ifndef ENLD_NN_SERIALIZATION_H_
#define ENLD_NN_SERIALIZATION_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "nn/mlp.h"

namespace enld {

/// Architecture + flattened weights of one model file — the weight-level
/// view used by the snapshot store, which reconstructs the MlpModel
/// itself.
struct ModelFile {
  std::vector<size_t> dims;
  std::vector<float> weights;
};

/// Writes the model architecture and weights to a binary file. The
/// current format ("ENLDMDL2" magic) carries an explicit byte-order tag:
/// payloads are written in host order and the tag records what that was,
/// so a file from a foreign-endian machine is rejected with
/// InvalidArgument instead of being silently misread. Overwrites an
/// existing file.
Status SaveModel(const MlpModel& model, const std::string& path);
Status SaveModelFile(const ModelFile& file, const std::string& path);

/// Reads a model written by SaveModel / SaveModelFile. Both the current
/// "ENLDMDL2" format and the legacy tag-less "ENLDMDL1" format (assumed
/// little-endian, as documented when it was introduced) are accepted.
/// Fails with InvalidArgument on format problems — including a byte-order
/// tag that does not match this machine — and NotFound when the file
/// cannot be opened.
StatusOr<std::unique_ptr<MlpModel>> LoadModel(const std::string& path);
StatusOr<ModelFile> LoadModelFile(const std::string& path);

/// Builds an MlpModel from a validated ModelFile (dims/weight-count
/// consistency is re-checked; InvalidArgument on mismatch).
StatusOr<std::unique_ptr<MlpModel>> ModelFromFile(const ModelFile& file);

}  // namespace enld

#endif  // ENLD_NN_SERIALIZATION_H_
