#include "nn/layer.h"

#include <cmath>

#include "common/check.h"

namespace enld {

void Layer::ZeroGrads() {
  for (ParamRef p : Params()) p.grad->Fill(0.0f);
}

LinearLayer::LinearLayer(size_t in_dim, size_t out_dim, Rng& rng)
    : weights_(in_dim, out_dim),
      bias_(1, out_dim, 0.0f),
      grad_weights_(in_dim, out_dim),
      grad_bias_(1, out_dim) {
  ENLD_CHECK_GT(in_dim, 0u);
  ENLD_CHECK_GT(out_dim, 0u);
  // He-normal: std = sqrt(2 / fan_in); suits the ReLU stacks used here.
  const double stddev = std::sqrt(2.0 / static_cast<double>(in_dim));
  for (size_t r = 0; r < in_dim; ++r) {
    for (size_t c = 0; c < out_dim; ++c) {
      weights_(r, c) = static_cast<float>(rng.Gaussian(0.0, stddev));
    }
  }
}

void LinearLayer::Forward(const Matrix& input, Matrix* output) {
  ENLD_CHECK_EQ(input.cols(), weights_.rows());
  cached_input_ = input;
  MatMul(input, weights_, output);
  AddRowBroadcast(output, bias_.RowVector(0));
}

void LinearLayer::Backward(const Matrix& grad_output, Matrix* grad_input) {
  ENLD_CHECK_EQ(grad_output.rows(), cached_input_.rows());
  ENLD_CHECK_EQ(grad_output.cols(), weights_.cols());
  // dW += X^T * dY; db += colsum(dY); dX = dY * W^T.
  Matrix dw;
  MatMulAt(cached_input_, grad_output, &dw);
  grad_weights_.Add(dw);
  const std::vector<float> db = ColumnSums(grad_output);
  for (size_t c = 0; c < db.size(); ++c) grad_bias_(0, c) += db[c];
  MatMulBt(grad_output, weights_, grad_input);
}

std::vector<ParamRef> LinearLayer::Params() {
  return {{&weights_, &grad_weights_}, {&bias_, &grad_bias_}};
}

void ReluLayer::Forward(const Matrix& input, Matrix* output) {
  cached_input_ = input;
  output->Reset(input.rows(), input.cols());
  const float* in = input.data();
  float* out = output->data();
  for (size_t i = 0; i < input.size(); ++i) {
    out[i] = in[i] > 0.0f ? in[i] : 0.0f;
  }
}

void ReluLayer::Backward(const Matrix& grad_output, Matrix* grad_input) {
  ENLD_CHECK_EQ(grad_output.rows(), cached_input_.rows());
  ENLD_CHECK_EQ(grad_output.cols(), cached_input_.cols());
  grad_input->Reset(grad_output.rows(), grad_output.cols());
  const float* go = grad_output.data();
  const float* in = cached_input_.data();
  float* gi = grad_input->data();
  for (size_t i = 0; i < grad_output.size(); ++i) {
    gi[i] = in[i] > 0.0f ? go[i] : 0.0f;
  }
}

DropoutLayer::DropoutLayer(double rate, uint64_t seed)
    : rate_(rate), rng_(seed) {
  ENLD_CHECK_GE(rate, 0.0);
  ENLD_CHECK_LT(rate, 1.0);
}

void DropoutLayer::Forward(const Matrix& input, Matrix* output) {
  if (!training_ || rate_ == 0.0) {
    *output = input;
    mask_.Reset(0, 0);
    return;
  }
  const float scale = static_cast<float>(1.0 / (1.0 - rate_));
  mask_.Reset(input.rows(), input.cols());
  output->Reset(input.rows(), input.cols());
  const float* in = input.data();
  float* m = mask_.data();
  float* out = output->data();
  for (size_t i = 0; i < input.size(); ++i) {
    m[i] = rng_.Bernoulli(rate_) ? 0.0f : scale;
    out[i] = in[i] * m[i];
  }
}

void DropoutLayer::Backward(const Matrix& grad_output, Matrix* grad_input) {
  if (mask_.empty()) {  // Inference-mode forward: identity.
    *grad_input = grad_output;
    return;
  }
  ENLD_CHECK_EQ(grad_output.rows(), mask_.rows());
  ENLD_CHECK_EQ(grad_output.cols(), mask_.cols());
  grad_input->Reset(grad_output.rows(), grad_output.cols());
  const float* go = grad_output.data();
  const float* m = mask_.data();
  float* gi = grad_input->data();
  for (size_t i = 0; i < grad_output.size(); ++i) gi[i] = go[i] * m[i];
}

}  // namespace enld
