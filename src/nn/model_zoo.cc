#include "nn/model_zoo.h"

#include "common/check.h"

namespace enld {

const char* BackboneName(Backbone backbone) {
  switch (backbone) {
    case Backbone::kResNet110Sim:
      return "resnet110-sim";
    case Backbone::kDenseNet121Sim:
      return "densenet121-sim";
    case Backbone::kResNet164Sim:
      return "resnet164-sim";
  }
  return "unknown";
}

std::vector<size_t> BackboneLayerDims(Backbone backbone, size_t input_dim,
                                      int num_classes) {
  ENLD_CHECK_GT(input_dim, 0u);
  ENLD_CHECK_GT(num_classes, 0);
  const size_t c = static_cast<size_t>(num_classes);
  switch (backbone) {
    case Backbone::kResNet110Sim:
      return {input_dim, 128, 64, c};
    case Backbone::kDenseNet121Sim:
      return {input_dim, 160, 96, 64, c};
    case Backbone::kResNet164Sim:
      return {input_dim, 192, 96, c};
  }
  return {input_dim, 128, 64, c};
}

std::unique_ptr<MlpModel> MakeBackboneModel(Backbone backbone,
                                            size_t input_dim,
                                            int num_classes, Rng& rng) {
  return std::make_unique<MlpModel>(
      BackboneLayerDims(backbone, input_dim, num_classes), rng);
}

}  // namespace enld
