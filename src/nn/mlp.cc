#include "nn/mlp.h"

#include "common/check.h"
#include "common/parallel.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace enld {

MlpModel::MlpModel(const std::vector<size_t>& layer_dims, Rng& rng,
                   double dropout_rate)
    : layer_dims_(layer_dims), dropout_rate_(dropout_rate) {
  ENLD_CHECK_GE(layer_dims_.size(), 3u);  // input, >=1 hidden, classes.
  for (size_t d : layer_dims_) ENLD_CHECK_GT(d, 0u);
  ENLD_CHECK_GE(dropout_rate, 0.0);
  ENLD_CHECK_LT(dropout_rate, 1.0);
  // Linear+ReLU (+Dropout) per hidden layer, then the classifier Linear.
  for (size_t i = 0; i + 2 < layer_dims_.size(); ++i) {
    layers_.push_back(
        std::make_unique<LinearLayer>(layer_dims_[i], layer_dims_[i + 1],
                                      rng));
    layers_.push_back(std::make_unique<ReluLayer>());
    if (dropout_rate_ > 0.0) {
      layers_.push_back(
          std::make_unique<DropoutLayer>(dropout_rate_, rng.NextUInt64()));
    }
  }
  layers_.push_back(std::make_unique<LinearLayer>(
      layer_dims_[layer_dims_.size() - 2], layer_dims_.back(), rng));
  activations_.resize(layers_.size());
}

void MlpModel::SetTraining(bool training) {
  for (auto& layer : layers_) layer->SetTraining(training);
}

void MlpModel::Forward(const Matrix& inputs, Matrix* logits,
                       Matrix* features) {
  ENLD_CHECK_EQ(inputs.cols(), input_dim());
  const Matrix* current = &inputs;
  for (size_t i = 0; i < layers_.size(); ++i) {
    Matrix* out = (i + 1 == layers_.size()) ? logits : &activations_[i];
    layers_[i]->Forward(*current, out);
    current = out;
  }
  if (features != nullptr) {
    // The input to the final linear layer (output of the last ReLU).
    *features = activations_[layers_.size() - 2];
  }
}

Matrix MlpModel::Probabilities(const Matrix& inputs) {
  Matrix logits;
  Forward(inputs, &logits);
  Matrix probs;
  SoftmaxRows(logits, &probs);
  return probs;
}

Matrix MlpModel::Features(const Matrix& inputs) {
  Matrix logits;
  Matrix features;
  Forward(inputs, &logits, &features);
  return features;
}

std::vector<int> MlpModel::Predict(const Matrix& inputs) {
  Matrix logits;
  Forward(inputs, &logits);
  std::vector<int> out(inputs.rows());
  ParallelFor(0, inputs.rows(), 512, [&](size_t lo, size_t hi) {
    for (size_t r = lo; r < hi; ++r) {
      out[r] = static_cast<int>(ArgMaxRow(logits, r));
    }
  });
  return out;
}

double MlpModel::TrainStep(const Matrix& inputs, const Matrix& soft_targets,
                           Optimizer* optimizer) {
  ENLD_CHECK(optimizer != nullptr);
  ENLD_CHECK_EQ(soft_targets.cols(), static_cast<size_t>(num_classes()));

  SetTraining(true);
  Matrix logits;
  Forward(inputs, &logits);

  Matrix grad;
  const double loss = SoftmaxCrossEntropy(logits, soft_targets, &grad);

  for (auto& layer : layers_) layer->ZeroGrads();
  Matrix grad_in;
  for (size_t i = layers_.size(); i > 0; --i) {
    layers_[i - 1]->Backward(grad, &grad_in);
    std::swap(grad, grad_in);
  }
  optimizer->Step(Params());
  SetTraining(false);
  return loss;
}

std::vector<float> MlpModel::GetWeights() const {
  std::vector<float> out;
  for (const auto& layer : layers_) {
    for (ParamRef p : const_cast<Layer&>(*layer).Params()) {
      const float* d = p.value->data();
      out.insert(out.end(), d, d + p.value->size());
    }
  }
  return out;
}

void MlpModel::SetWeights(const std::vector<float>& weights) {
  size_t offset = 0;
  for (auto& layer : layers_) {
    for (ParamRef p : layer->Params()) {
      ENLD_CHECK_LE(offset + p.value->size(), weights.size());
      std::copy(weights.begin() + offset,
                weights.begin() + offset + p.value->size(),
                p.value->data());
      offset += p.value->size();
    }
  }
  ENLD_CHECK_EQ(offset, weights.size());
}

std::vector<ParamRef> MlpModel::Params() {
  std::vector<ParamRef> out;
  for (auto& layer : layers_) {
    for (ParamRef p : layer->Params()) out.push_back(p);
  }
  return out;
}

}  // namespace enld
