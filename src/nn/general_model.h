#ifndef ENLD_NN_GENERAL_MODEL_H_
#define ENLD_NN_GENERAL_MODEL_H_

#include <memory>

#include "data/dataset.h"
#include "data/split.h"
#include "nn/mlp.h"
#include "nn/model_zoo.h"
#include "nn/trainer.h"

namespace enld {

/// Configuration of the Stage-0 "model initialization" shared by ENLD and
/// the pretrain-based baselines (Section IV-B): split I into I_t / I_c,
/// train a general model on I_t with mixup.
struct GeneralModelConfig {
  Backbone backbone = Backbone::kResNet110Sim;
  TrainConfig train;
  uint64_t seed = 97;

  GeneralModelConfig() {
    // Deliberately a *short* schedule: the paper's general model is weak
    // (Table II reports 59% validation accuracy at noise 0.1) and much of
    // ENLD's advantage rests on the general model disagreeing with
    // mislabeled samples rather than memorizing them.
    train.epochs = 9;
    train.batch_size = 64;
    train.sgd.learning_rate = 0.05;
    train.mixup_alpha = 0.2;  // Paper: Beta(0.2, 0.2).
    train.lr_decay_per_epoch = 0.93;
  }
};

/// The artifacts of model initialization.
struct GeneralModel {
  std::unique_ptr<MlpModel> model;  // θ.
  Dataset train_set;                // I_t.
  Dataset candidate_set;            // I_c.
};

/// Performs the I_t / I_c split and trains θ on I_t. Deterministic for a
/// fixed config and inventory.
GeneralModel InitGeneralModel(const Dataset& inventory,
                              const GeneralModelConfig& config);

}  // namespace enld

#endif  // ENLD_NN_GENERAL_MODEL_H_
