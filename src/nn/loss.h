#ifndef ENLD_NN_LOSS_H_
#define ENLD_NN_LOSS_H_

#include <vector>

#include "common/matrix.h"

namespace enld {

/// Builds a (n x num_classes) one-hot target matrix from hard labels.
/// Every label must be in [0, num_classes).
Matrix OneHot(const std::vector<int>& labels, int num_classes);

/// Softmax cross-entropy against a (batch x classes) target distribution
/// (soft targets support mixup). Returns the mean loss over the batch and,
/// if `grad_logits` is non-null, writes d(mean loss)/d(logits) into it.
double SoftmaxCrossEntropy(const Matrix& logits, const Matrix& targets,
                           Matrix* grad_logits);

/// Convenience overload for hard integer labels.
double SoftmaxCrossEntropy(const Matrix& logits,
                           const std::vector<int>& labels, int num_classes,
                           Matrix* grad_logits);

/// Per-row cross-entropy -log p(label | logits). Rows whose label is
/// negative (e.g. kMissingLabel) get loss 0. Used by the loss-tracking
/// baselines (O2U-Net, Co-teaching).
std::vector<double> PerSampleCrossEntropy(const Matrix& logits,
                                          const std::vector<int>& labels);

}  // namespace enld

#endif  // ENLD_NN_LOSS_H_
