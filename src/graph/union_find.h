#ifndef ENLD_GRAPH_UNION_FIND_H_
#define ENLD_GRAPH_UNION_FIND_H_

#include <cstddef>
#include <vector>

namespace enld {

/// Disjoint-set forest with union by size and path compression. Substrate
/// for the Topofilter baseline's connected-component computation.
class UnionFind {
 public:
  /// Creates `n` singleton sets, labelled 0..n-1.
  explicit UnionFind(size_t n);

  /// Representative of the set containing `x` (with path compression).
  size_t Find(size_t x);

  /// Merges the sets containing `a` and `b`. Returns true if they were
  /// previously distinct.
  bool Union(size_t a, size_t b);

  /// Number of elements in the set containing `x`.
  size_t SetSize(size_t x);

  /// Number of distinct sets remaining.
  size_t num_sets() const { return num_sets_; }

  size_t size() const { return parent_.size(); }

  /// Groups all elements by representative; each inner vector is one
  /// connected component.
  std::vector<std::vector<size_t>> Components();

 private:
  std::vector<size_t> parent_;
  std::vector<size_t> size_;
  size_t num_sets_;
};

}  // namespace enld

#endif  // ENLD_GRAPH_UNION_FIND_H_
