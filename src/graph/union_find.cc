#include "graph/union_find.h"

#include "common/check.h"

namespace enld {

UnionFind::UnionFind(size_t n)
    : parent_(n), size_(n, 1), num_sets_(n) {
  for (size_t i = 0; i < n; ++i) parent_[i] = i;
}

size_t UnionFind::Find(size_t x) {
  ENLD_CHECK_LT(x, parent_.size());
  size_t root = x;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[x] != root) {
    const size_t next = parent_[x];
    parent_[x] = root;
    x = next;
  }
  return root;
}

bool UnionFind::Union(size_t a, size_t b) {
  size_t ra = Find(a);
  size_t rb = Find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --num_sets_;
  return true;
}

size_t UnionFind::SetSize(size_t x) { return size_[Find(x)]; }

std::vector<std::vector<size_t>> UnionFind::Components() {
  std::vector<std::vector<size_t>> by_root(parent_.size());
  for (size_t i = 0; i < parent_.size(); ++i) {
    by_root[Find(i)].push_back(i);
  }
  std::vector<std::vector<size_t>> out;
  out.reserve(num_sets_);
  for (auto& group : by_root) {
    if (!group.empty()) out.push_back(std::move(group));
  }
  return out;
}

}  // namespace enld
