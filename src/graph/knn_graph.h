#ifndef ENLD_GRAPH_KNN_GRAPH_H_
#define ENLD_GRAPH_KNN_GRAPH_H_

#include <cstddef>
#include <vector>

#include "common/matrix.h"

namespace enld {

/// Builds the k-nearest-neighbour graph over the given feature rows and
/// returns its connected components (each component lists positions into
/// `rows`). With `mutual` false, the union of directed kNN edges is treated
/// as undirected; with `mutual` true an edge requires each endpoint to be
/// among the other's k nearest (sparser, cluster-preserving — the variant
/// the Topofilter baseline uses so that a single stray edge cannot merge a
/// mislabeled sub-cluster into the clean component).
std::vector<std::vector<size_t>> KnnGraphComponents(
    const Matrix& features, const std::vector<size_t>& rows, size_t k,
    bool mutual = false);

/// Positions (into `rows`) of the members of the largest connected
/// component of the kNN graph — Topofilter's per-class clean-set rule.
/// Ties broken toward the first-seen component. Empty input -> empty.
std::vector<size_t> LargestKnnComponent(const Matrix& features,
                                        const std::vector<size_t>& rows,
                                        size_t k, bool mutual = false);

}  // namespace enld

#endif  // ENLD_GRAPH_KNN_GRAPH_H_
