#include "graph/knn_graph.h"

#include <algorithm>

#include "common/check.h"
#include "graph/union_find.h"
#include "knn/kdtree.h"

namespace enld {

std::vector<std::vector<size_t>> KnnGraphComponents(
    const Matrix& features, const std::vector<size_t>& rows, size_t k,
    bool mutual) {
  if (rows.empty()) return {};
  ENLD_CHECK_GT(k, 0u);

  // Map feature-row -> position in `rows` so components index positions.
  KdTree tree(features, rows);
  std::vector<std::pair<size_t, size_t>> mapping(rows.size());
  for (size_t pos = 0; pos < rows.size(); ++pos) {
    mapping[pos] = {rows[pos], pos};
  }
  std::sort(mapping.begin(), mapping.end());
  auto pos_of = [&](size_t row) {
    auto it = std::lower_bound(
        mapping.begin(), mapping.end(), std::make_pair(row, size_t{0}),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    ENLD_CHECK(it != mapping.end() && it->first == row);
    return it->second;
  };

  // Per-position kNN lists (k+1 because the query point is its own nearest
  // neighbour). The queries are independent, so they run batched on the
  // global pool.
  const std::vector<std::vector<Neighbor>> found_lists =
      tree.NearestBatch(features, rows, k + 1);
  std::vector<std::vector<size_t>> neighbors(rows.size());
  for (size_t pos = 0; pos < rows.size(); ++pos) {
    for (const Neighbor& n : found_lists[pos]) {
      const size_t other = pos_of(n.index);
      if (other != pos) neighbors[pos].push_back(other);
    }
  }

  UnionFind uf(rows.size());
  for (size_t pos = 0; pos < rows.size(); ++pos) {
    for (size_t other : neighbors[pos]) {
      if (mutual) {
        // Require reciprocation: `pos` must be in `other`'s kNN list too.
        const auto& back = neighbors[other];
        if (std::find(back.begin(), back.end(), pos) == back.end()) {
          continue;
        }
      }
      uf.Union(pos, other);
    }
  }
  return uf.Components();
}

std::vector<size_t> LargestKnnComponent(const Matrix& features,
                                        const std::vector<size_t>& rows,
                                        size_t k, bool mutual) {
  auto components = KnnGraphComponents(features, rows, k, mutual);
  if (components.empty()) return {};
  size_t best = 0;
  for (size_t i = 1; i < components.size(); ++i) {
    if (components[i].size() > components[best].size()) best = i;
  }
  return components[best];
}

}  // namespace enld
