#include "baselines/co_teaching.h"

#include <algorithm>
#include <cmath>

#include "baselines/related.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace enld {

namespace {

/// Gathers rows of `source` into a batch matrix plus the matching one-hot
/// targets.
void GatherBatch(const Dataset& source, const std::vector<size_t>& rows,
                 Matrix* inputs, Matrix* targets) {
  const size_t dim = source.dim();
  inputs->Reset(rows.size(), dim);
  targets->Reset(rows.size(), source.num_classes);
  for (size_t b = 0; b < rows.size(); ++b) {
    const float* src = source.features.Row(rows[b]);
    std::copy(src, src + dim, inputs->Row(b));
    (*targets)(b, source.observed_labels[rows[b]]) = 1.0f;
  }
}

/// Positions (into `rows`) of the `keep` smallest values.
std::vector<size_t> SmallestPositions(const std::vector<double>& values,
                                      size_t keep) {
  std::vector<size_t> order(values.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  keep = std::min(keep, order.size());
  std::partial_sort(order.begin(), order.begin() + keep, order.end(),
                    [&](size_t a, size_t b) { return values[a] < values[b]; });
  order.resize(keep);
  return order;
}

}  // namespace

void CoTeachingDetector::Setup(const Dataset& inventory) {
  inventory_ = inventory;
  request_counter_ = 0;
}

DetectionResult CoTeachingDetector::Detect(const Dataset& incremental) {
  ENLD_CHECK(!inventory_.empty());  // Setup must run first.
  ++request_counter_;

  Dataset train_set = RelatedInventorySubset(inventory_, incremental);
  train_set.Append(incremental);

  Rng rng(config_.seed + request_counter_);
  auto model_a = MakeBackboneModel(config_.backbone, train_set.dim(),
                                   train_set.num_classes, rng);
  auto model_b = MakeBackboneModel(config_.backbone, train_set.dim(),
                                   train_set.num_classes, rng);
  SgdOptimizer optimizer_a(
      {config_.learning_rate, 0.9, config_.weight_decay});
  SgdOptimizer optimizer_b(
      {config_.learning_rate, 0.9, config_.weight_decay});

  // Trainable positions (observed label present).
  std::vector<size_t> positions;
  for (size_t i = 0; i < train_set.size(); ++i) {
    if (train_set.observed_labels[i] != kMissingLabel) positions.push_back(i);
  }
  if (positions.empty()) return DetectionResult();

  double forget_rate = config_.forget_rate;
  Matrix batch_x, batch_y, logits;
  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    // R(t): keep everything at first, then anneal down to 1 - forget_rate.
    double keep_fraction = 1.0;
    if (forget_rate >= 0.0 && config_.anneal_epochs > 0) {
      const double anneal = std::min(
          1.0, static_cast<double>(epoch) /
                   static_cast<double>(config_.anneal_epochs));
      keep_fraction = 1.0 - forget_rate * anneal;
    }

    rng.Shuffle(positions);
    std::vector<double> first_epoch_losses;
    for (size_t start = 0; start < positions.size();
         start += config_.batch_size) {
      const size_t count =
          std::min(config_.batch_size, positions.size() - start);
      std::vector<size_t> batch(positions.begin() + start,
                                positions.begin() + start + count);
      GatherBatch(train_set, batch, &batch_x, &batch_y);

      // Each network scores the batch; the peer updates on the selection.
      std::vector<int> batch_labels(count);
      for (size_t b = 0; b < count; ++b) {
        batch_labels[b] = train_set.observed_labels[batch[b]];
      }
      model_a->Forward(batch_x, &logits);
      const auto loss_a = PerSampleCrossEntropy(logits, batch_labels);
      model_b->Forward(batch_x, &logits);
      const auto loss_b = PerSampleCrossEntropy(logits, batch_labels);

      if (epoch == 0 && forget_rate < 0.0) {
        first_epoch_losses.insert(first_epoch_losses.end(), loss_a.begin(),
                                  loss_a.end());
      }

      const size_t keep = std::max<size_t>(
          1, static_cast<size_t>(std::lround(keep_fraction * count)));
      const auto pick_a = SmallestPositions(loss_a, keep);  // For B.
      const auto pick_b = SmallestPositions(loss_b, keep);  // For A.

      Matrix sel_x, sel_y;
      std::vector<size_t> selected_rows;
      selected_rows.reserve(keep);
      for (size_t p : pick_b) selected_rows.push_back(batch[p]);
      GatherBatch(train_set, selected_rows, &sel_x, &sel_y);
      model_a->TrainStep(sel_x, sel_y, &optimizer_a);

      selected_rows.clear();
      for (size_t p : pick_a) selected_rows.push_back(batch[p]);
      GatherBatch(train_set, selected_rows, &sel_x, &sel_y);
      model_b->TrainStep(sel_x, sel_y, &optimizer_b);
    }

    if (epoch == 0 && forget_rate < 0.0 && !first_epoch_losses.empty()) {
      // Self-estimate the forget rate: the fraction of samples in the
      // high-loss cluster of the first epoch.
      const double threshold = TwoMeansThreshold(first_epoch_losses);
      size_t high = 0;
      for (double v : first_epoch_losses) {
        if (v > threshold) ++high;
      }
      forget_rate = std::min(
          0.5, static_cast<double>(high) / first_epoch_losses.size());
    }
  }

  // A sample is noisy when both networks disagree with the observed label.
  const std::vector<int> pred_a = model_a->Predict(incremental.features);
  const std::vector<int> pred_b = model_b->Predict(incremental.features);
  DetectionResult result;
  for (size_t i = 0; i < incremental.size(); ++i) {
    const int observed = incremental.observed_labels[i];
    if (observed == kMissingLabel) continue;
    if (pred_a[i] != observed && pred_b[i] != observed) {
      result.noisy_indices.push_back(i);
    } else {
      result.clean_indices.push_back(i);
    }
  }
  return result;
}

}  // namespace enld
