#ifndef ENLD_BASELINES_INCV_H_
#define ENLD_BASELINES_INCV_H_

#include <string>

#include "baselines/detector.h"
#include "nn/model_zoo.h"
#include "nn/trainer.h"

namespace enld {

/// Configuration of the INCV-style cross-validation baseline
/// (Chen et al. 2019, adapted to the incremental setting).
struct IncvConfig {
  Backbone backbone = Backbone::kResNet110Sim;
  /// Training schedule of each half-model.
  TrainConfig train;
  /// Refinement iterations: after the first cross-validation pass, the
  /// halves are re-drawn from the currently-selected samples and the
  /// selection is re-validated.
  size_t iterations = 2;
  uint64_t seed = 719;

  IncvConfig() {
    train.epochs = 5;
    train.batch_size = 64;
    train.sgd.learning_rate = 0.05;
    // Cross-validation only filters noise when the half-models do not
    // memorize their training half's noisy labels.
    train.sgd.weight_decay = 0.01;
    train.mixup_alpha = 0.2;
  }
};

/// INCV (Iterative Noisy Cross-Validation): randomly split the data into
/// two halves; train on one half, keep in the *other* half the samples the
/// model agrees with; swap roles; iterate on the kept set. Samples of D
/// never kept by the cross-validation are flagged noisy.
class IncvDetector : public NoisyLabelDetector {
 public:
  explicit IncvDetector(const IncvConfig& config) : config_(config) {}

  void Setup(const Dataset& inventory) override;
  DetectionResult Detect(const Dataset& incremental) override;
  std::string name() const override { return "incv"; }
  std::string display_name() const override { return "INCV"; }

 private:
  IncvConfig config_;
  Dataset inventory_;
  uint64_t request_counter_ = 0;
};

}  // namespace enld

#endif  // ENLD_BASELINES_INCV_H_
