#ifndef ENLD_BASELINES_DEFAULT_DETECTOR_H_
#define ENLD_BASELINES_DEFAULT_DETECTOR_H_

#include <memory>
#include <string>

#include "baselines/detector.h"
#include "nn/general_model.h"

namespace enld {

/// The paper's "Default" baseline: train the general model θ once on the
/// inventory, then flag any incremental sample with
/// argmax M(x, θ) != ỹ as noisy. Zero per-request training cost, but its
/// quality is bounded by θ's generalization to the arriving distribution.
class DefaultDetector : public NoisyLabelDetector {
 public:
  explicit DefaultDetector(const GeneralModelConfig& config) :
      config_(config) {}

  void Setup(const Dataset& inventory) override;
  DetectionResult Detect(const Dataset& incremental) override;
  std::string name() const override { return "default"; }
  std::string display_name() const override { return "Default"; }

  /// The trained general model (valid after Setup).
  MlpModel* model() { return general_.model.get(); }

 private:
  GeneralModelConfig config_;
  GeneralModel general_;
};

}  // namespace enld

#endif  // ENLD_BASELINES_DEFAULT_DETECTOR_H_
