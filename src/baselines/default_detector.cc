#include "baselines/default_detector.h"

#include "common/check.h"

namespace enld {

void DefaultDetector::Setup(const Dataset& inventory) {
  general_ = InitGeneralModel(inventory, config_);
}

DetectionResult DefaultDetector::Detect(const Dataset& incremental) {
  ENLD_CHECK(general_.model != nullptr);  // Setup must run first.
  DetectionResult result;
  const std::vector<int> predicted =
      general_.model->Predict(incremental.features);
  for (size_t i = 0; i < incremental.size(); ++i) {
    const int observed = incremental.observed_labels[i];
    if (observed == kMissingLabel) continue;
    if (predicted[i] != observed) {
      result.noisy_indices.push_back(i);
    } else {
      result.clean_indices.push_back(i);
    }
  }
  return result;
}

}  // namespace enld
