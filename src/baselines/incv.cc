#include "baselines/incv.h"

#include <algorithm>

#include "baselines/related.h"
#include "common/check.h"
#include "common/rng.h"

namespace enld {

void IncvDetector::Setup(const Dataset& inventory) {
  inventory_ = inventory;
  request_counter_ = 0;
}

DetectionResult IncvDetector::Detect(const Dataset& incremental) {
  ENLD_CHECK(!inventory_.empty());  // Setup must run first.
  ENLD_CHECK_GT(config_.iterations, 0u);
  ++request_counter_;

  Dataset train_set = RelatedInventorySubset(inventory_, incremental);
  const size_t d_offset = train_set.size();
  train_set.Append(incremental);

  Rng rng(config_.seed + request_counter_);

  std::vector<size_t> labeled;
  for (size_t i = 0; i < train_set.size(); ++i) {
    if (train_set.observed_labels[i] != kMissingLabel) labeled.push_back(i);
  }
  if (labeled.size() < 4) {
    // Too small to cross-validate; everything stays unjudged -> noisy.
    DetectionResult result;
    for (size_t i = 0; i < incremental.size(); ++i) {
      if (incremental.observed_labels[i] != kMissingLabel) {
        result.noisy_indices.push_back(i);
      }
    }
    return result;
  }

  std::vector<size_t> selection = labeled;
  for (size_t iter = 0; iter < config_.iterations; ++iter) {
    // Split the current selection into two training halves.
    rng.Shuffle(selection);
    const size_t half = selection.size() / 2;
    std::vector<size_t> half_a(selection.begin(), selection.begin() + half);
    std::vector<size_t> half_b(selection.begin() + half, selection.end());
    if (half_a.empty() || half_b.empty()) break;

    std::vector<int> membership(train_set.size(), 0);  // 0=out, 1=A, 2=B.
    for (size_t pos : half_a) membership[pos] = 1;
    for (size_t pos : half_b) membership[pos] = 2;

    Rng model_rng = rng.Fork();
    auto model_a = MakeBackboneModel(config_.backbone, train_set.dim(),
                                     train_set.num_classes, model_rng);
    auto model_b = MakeBackboneModel(config_.backbone, train_set.dim(),
                                     train_set.num_classes, model_rng);
    TrainConfig train = config_.train;
    train.seed = rng.NextUInt64();
    TrainModel(model_a.get(), train_set.Subset(half_a), nullptr, train);
    train.seed = rng.NextUInt64();
    TrainModel(model_b.get(), train_set.Subset(half_b), nullptr, train);

    const std::vector<int> pred_a = model_a->Predict(train_set.features);
    const std::vector<int> pred_b = model_b->Predict(train_set.features);

    // Cross-validated keep rule: a sample is judged by the model that did
    // NOT train on it; dropped samples can be re-admitted when both models
    // agree with their label.
    std::vector<size_t> next;
    next.reserve(labeled.size());
    for (size_t pos : labeled) {
      const int observed = train_set.observed_labels[pos];
      bool keep = false;
      switch (membership[pos]) {
        case 1:
          keep = pred_b[pos] == observed;
          break;
        case 2:
          keep = pred_a[pos] == observed;
          break;
        default:
          keep = pred_a[pos] == observed && pred_b[pos] == observed;
          break;
      }
      if (keep) next.push_back(pos);
    }
    if (next.size() < 4) break;  // Degenerate; keep previous selection.
    selection = std::move(next);
  }

  std::vector<bool> selected(train_set.size(), false);
  for (size_t pos : selection) selected[pos] = true;

  DetectionResult result;
  for (size_t i = 0; i < incremental.size(); ++i) {
    if (incremental.observed_labels[i] == kMissingLabel) continue;
    if (selected[d_offset + i]) {
      result.clean_indices.push_back(i);
    } else {
      result.noisy_indices.push_back(i);
    }
  }
  return result;
}

}  // namespace enld
