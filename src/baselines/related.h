#ifndef ENLD_BASELINES_RELATED_H_
#define ENLD_BASELINES_RELATED_H_

#include "data/dataset.h"

namespace enld {

/// The paper's fair-comparison restriction (Section V-A4): the inventory
/// subset whose observed labels appear in label(D). Every per-request
/// training baseline (Topofilter, O2U-Net, Co-teaching, INCV) trains on
/// this subset together with the arriving dataset.
Dataset RelatedInventorySubset(const Dataset& inventory,
                               const Dataset& incremental);

}  // namespace enld

#endif  // ENLD_BASELINES_RELATED_H_
