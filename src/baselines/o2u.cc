#include "baselines/o2u.h"

#include "baselines/related.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"
#include "nn/loss.h"

namespace enld {

void O2UDetector::Setup(const Dataset& inventory) {
  inventory_ = inventory;
  request_counter_ = 0;
}

DetectionResult O2UDetector::Detect(const Dataset& incremental) {
  ENLD_CHECK(!inventory_.empty());  // Setup must run first.
  ENLD_CHECK_GT(config_.cycles, 0u);
  ENLD_CHECK_GT(config_.epochs_per_cycle, 0u);
  ++request_counter_;

  Dataset train_set = RelatedInventorySubset(inventory_, incremental);
  const size_t d_offset = train_set.size();
  train_set.Append(incremental);

  Rng rng(config_.seed + request_counter_);
  auto model = MakeBackboneModel(config_.backbone, train_set.dim(),
                                 train_set.num_classes, rng);

  // Tracked mean loss per D sample across all post-epoch snapshots.
  std::vector<double> tracked(incremental.size(), 0.0);
  size_t snapshots = 0;
  const std::vector<int>& d_labels = incremental.observed_labels;

  for (size_t cycle = 0; cycle < config_.cycles; ++cycle) {
    for (size_t epoch = 0; epoch < config_.epochs_per_cycle; ++epoch) {
      // Cyclical schedule: linear decay within the cycle, reset at the
      // start of the next one.
      const double progress =
          config_.epochs_per_cycle <= 1
              ? 0.0
              : static_cast<double>(epoch) /
                    static_cast<double>(config_.epochs_per_cycle - 1);
      TrainConfig step;
      step.epochs = 1;
      step.batch_size = config_.batch_size;
      step.sgd.learning_rate =
          config_.lr_max + (config_.lr_min - config_.lr_max) * progress;
      step.sgd.weight_decay = config_.weight_decay;
      step.seed = rng.NextUInt64();
      TrainModel(model.get(), train_set, /*validation=*/nullptr, step);

      Matrix logits;
      model->Forward(incremental.features, &logits);
      const std::vector<double> losses =
          PerSampleCrossEntropy(logits, d_labels);
      for (size_t i = 0; i < incremental.size(); ++i) {
        tracked[i] += losses[i];
      }
      ++snapshots;
    }
  }
  (void)d_offset;

  std::vector<double> mean_losses;
  std::vector<size_t> labeled_positions;
  for (size_t i = 0; i < incremental.size(); ++i) {
    if (incremental.observed_labels[i] == kMissingLabel) continue;
    labeled_positions.push_back(i);
    mean_losses.push_back(tracked[i] / static_cast<double>(snapshots));
  }

  DetectionResult result;
  if (labeled_positions.empty()) return result;
  const double threshold = TwoMeansThreshold(mean_losses);
  for (size_t j = 0; j < labeled_positions.size(); ++j) {
    if (mean_losses[j] > threshold) {
      result.noisy_indices.push_back(labeled_positions[j]);
    } else {
      result.clean_indices.push_back(labeled_positions[j]);
    }
  }
  return result;
}

}  // namespace enld
