#include "baselines/related.h"

namespace enld {

Dataset RelatedInventorySubset(const Dataset& inventory,
                               const Dataset& incremental) {
  std::vector<bool> in_label_set(incremental.num_classes, false);
  for (int y : incremental.ObservedLabelSet()) in_label_set[y] = true;
  std::vector<size_t> related_rows;
  for (size_t i = 0; i < inventory.size(); ++i) {
    const int y = inventory.observed_labels[i];
    if (y != kMissingLabel && in_label_set[y]) related_rows.push_back(i);
  }
  return inventory.Subset(related_rows);
}

}  // namespace enld
