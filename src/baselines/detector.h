#ifndef ENLD_BASELINES_DETECTOR_H_
#define ENLD_BASELINES_DETECTOR_H_

#include <string>
#include <vector>

#include "data/dataset.h"

namespace enld {

/// Output of a noisy-label detection request on one incremental dataset.
/// `noisy_indices` / `clean_indices` partition the positions of the input
/// dataset's labeled samples (missing-label samples appear in neither).
struct DetectionResult {
  std::vector<size_t> noisy_indices;
  std::vector<size_t> clean_indices;

  /// ENLD extras (empty for other detectors):
  /// Clean-set snapshot after each fine-grained iteration (Fig. 9).
  std::vector<std::vector<size_t>> per_iteration_clean;
  /// |A| after each iteration (Fig. 13b).
  std::vector<size_t> per_iteration_ambiguous;
  /// Recovered labels for missing-label samples, parallel to the dataset
  /// (kMissingLabel where not applicable / not recovered) — Section V-H.
  std::vector<int> recovered_labels;
};

/// Interface every detection method implements: one-time setup on the
/// inventory, then repeated detection requests as incremental datasets
/// arrive. The experiment runner times the two phases separately, which is
/// exactly the paper's setup-time / process-time split (Fig. 8).
class NoisyLabelDetector {
 public:
  virtual ~NoisyLabelDetector() = default;

  /// One-time initialization with the data-lake inventory.
  virtual void Setup(const Dataset& inventory) = 0;

  /// Detects noisy labels in one arriving dataset. May adapt internal
  /// state; must be callable repeatedly.
  virtual DetectionResult Detect(const Dataset& incremental) = 0;

  /// Canonical lowercase key of this detector. One key per detector, used
  /// consistently as the registry key (src/detect/registry.h), the
  /// telemetry method label and the bench report column value — e.g.
  /// "cl1", "topofilter", "enld".
  virtual std::string name() const = 0;

  /// Human-readable name for figure-style tables and log headers (e.g.
  /// "CL-1", "O2U-Net"). Defaults to the canonical key.
  virtual std::string display_name() const { return name(); }
};

}  // namespace enld

#endif  // ENLD_BASELINES_DETECTOR_H_
