#ifndef ENLD_BASELINES_CONFIDENT_LEARNING_H_
#define ENLD_BASELINES_CONFIDENT_LEARNING_H_

#include <string>
#include <vector>

#include "baselines/detector.h"
#include "nn/confident_joint.h"
#include "nn/general_model.h"

namespace enld {

/// The two pruning rules of Confident Learning (Northcutt et al. 2021)
/// the paper reports as CL-1 and CL-2.
enum class ClVariant {
  /// Prune-by-class: per observed class i, remove the n_i least
  /// self-confident samples, n_i = estimated off-diagonal mass of row i.
  kPruneByClass,
  /// Prune-by-noise-rate: per off-diagonal cell (i, j), remove the
  /// J[i][j]-proportional count of samples observed as i with the largest
  /// margin toward class j.
  kPruneByNoiseRate,
};

/// Confident Learning baseline: uses the pretrained general model's softmax
/// outputs, re-estimating the confident joint over I_c together with the
/// arriving dataset (the paper's adaptation, Section V-A4), then pruning
/// the arriving samples by the selected rule. No per-request training.
class ConfidentLearningDetector : public NoisyLabelDetector {
 public:
  ConfidentLearningDetector(const GeneralModelConfig& config,
                            ClVariant variant)
      : config_(config), variant_(variant) {}

  void Setup(const Dataset& inventory) override;
  DetectionResult Detect(const Dataset& incremental) override;
  std::string name() const override {
    return variant_ == ClVariant::kPruneByClass ? "cl1" : "cl2";
  }
  std::string display_name() const override {
    return variant_ == ClVariant::kPruneByClass ? "CL-1" : "CL-2";
  }

 private:
  GeneralModelConfig config_;
  ClVariant variant_;
  GeneralModel general_;
};

}  // namespace enld

#endif  // ENLD_BASELINES_CONFIDENT_LEARNING_H_
