#ifndef ENLD_BASELINES_TOPOFILTER_H_
#define ENLD_BASELINES_TOPOFILTER_H_

#include <string>

#include "baselines/detector.h"
#include "nn/model_zoo.h"
#include "nn/trainer.h"

namespace enld {

/// Configuration of the Topofilter baseline (Wu et al. 2020, as adapted by
/// the paper for incremental detection).
struct TopofilterConfig {
  Backbone backbone = Backbone::kResNet110Sim;
  /// Per-request training run over the related inventory subset + D.
  TrainConfig train;
  /// k of the latent-space kNN graph.
  size_t graph_k = 4;
  /// Use the mutual-kNN variant of the graph (cluster-preserving).
  bool mutual_knn = true;
  /// A component also counts as clean when its size is at least this
  /// fraction of the class's largest component (handles classes whose
  /// clean manifold splits into several modes; 1.0 = strict
  /// largest-component rule).
  double component_keep_ratio = 1.0;
  /// Number of evenly spaced training checkpoints at which clean sets are
  /// collected; a sample is clean when a majority of checkpoints select it
  /// (Wu et al. collect clean data during the training process, where
  /// early checkpoints are least affected by label memorization).
  size_t checkpoints = 3;
  uint64_t seed = 131;

  TopofilterConfig() {
    train.epochs = 16;
    train.batch_size = 64;
    train.sgd.learning_rate = 0.05;
    train.lr_decay_per_epoch = 0.9;
    // Mixup + strong weight decay keep the per-request model from
    // memorizing the noisy labels it trains on, which would blend
    // mislabeled samples into the clean component.
    train.mixup_alpha = 0.2;
    train.sgd.weight_decay = 0.01;
  }
};

/// Topofilter: for every arriving dataset, train a fresh model on the
/// inventory subset whose labels appear in label(D) plus D itself (the
/// paper's fairness adaptation, Section V-A4), embed D in the model's
/// latent space, build a kNN graph per observed class over D together with
/// the related inventory samples of that class, and keep the largest
/// connected component as clean; D-samples outside it are noisy.
///
/// Accurate (training-based) but pays a full training run per request —
/// the efficiency foil of Fig. 8.
class TopofilterDetector : public NoisyLabelDetector {
 public:
  explicit TopofilterDetector(const TopofilterConfig& config)
      : config_(config) {}

  void Setup(const Dataset& inventory) override;
  DetectionResult Detect(const Dataset& incremental) override;
  std::string name() const override { return "topofilter"; }
  std::string display_name() const override { return "Topofilter"; }

 private:
  TopofilterConfig config_;
  Dataset inventory_;
  uint64_t request_counter_ = 0;
};

}  // namespace enld

#endif  // ENLD_BASELINES_TOPOFILTER_H_
